"""Tests for the request-level serving simulation."""

import numpy as np
import pytest

from repro.system.loadgen import (
    Batch1Server,
    BatchingServer,
    LoadError,
    bursty_arrivals,
    compare_under_load,
    diurnal_arrivals,
    heavy_tailed_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)


class TestArrivals:
    def test_poisson_mean_rate(self):
        times = poisson_arrivals(100.0, 5000, seed=1)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(100.0, rel=0.1)

    def test_poisson_monotone(self):
        times = poisson_arrivals(10.0, 100, seed=2)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_uniform_spacing(self):
        times = uniform_arrivals(4.0, 4)
        assert times == [0.25, 0.5, 0.75, 1.0]

    def test_invalid_parameters(self):
        with pytest.raises(LoadError):
            poisson_arrivals(0, 10)
        with pytest.raises(LoadError):
            uniform_arrivals(5, 0)


class TestBatch1Server:
    def test_idle_server_latency_is_service_time(self):
        server = Batch1Server(0.001)
        result = server.simulate(uniform_arrivals(10.0, 20))
        assert result.p50_ms == pytest.approx(1.0)
        assert result.p99_ms == pytest.approx(1.0)

    def test_saturated_server_queues(self):
        server = Batch1Server(0.01)  # 100 req/s capacity
        result = server.simulate(uniform_arrivals(200.0, 100))
        # Every second request waits behind the previous one.
        assert result.p99_ms > 10.0
        latencies = [r.latency for r in result.requests]
        assert latencies == sorted(latencies)  # waits grow monotonically

    def test_fifo_order(self):
        server = Batch1Server(0.002)
        result = server.simulate([0.0, 0.0005, 0.001])
        starts = [r.start for r in result.requests]
        assert starts == sorted(starts)
        assert starts[1] == pytest.approx(0.002)

    def test_capacity(self):
        assert Batch1Server(0.004).capacity_rps == pytest.approx(250.0)

    def test_invalid_service_time(self):
        with pytest.raises(LoadError):
            Batch1Server(0.0)


class TestBatchingServer:
    @staticmethod
    def linear_service(base=0.01, per=0.001):
        return lambda b: base + per * b

    def test_low_load_waits_for_timeout(self):
        """A lone request waits the full forming timeout."""
        server = BatchingServer(self.linear_service(), max_batch=8,
                                timeout_s=0.05)
        result = server.simulate([0.0])
        assert result.requests[0].start == pytest.approx(0.05)

    def test_full_batch_dispatches_without_timeout(self):
        server = BatchingServer(self.linear_service(), max_batch=4,
                                timeout_s=10.0)
        arrivals = [0.0, 0.001, 0.002, 0.003]
        result = server.simulate(arrivals)
        assert result.requests[0].start == pytest.approx(0.003)

    def test_batch_size_capped(self):
        server = BatchingServer(self.linear_service(), max_batch=2,
                                timeout_s=1.0)
        result = server.simulate([0.0, 0.0, 0.0, 0.0])
        starts = sorted({r.start for r in result.requests})
        assert len(starts) == 2  # two batches of two

    def test_batchmates_share_finish_time(self):
        server = BatchingServer(self.linear_service(), max_batch=4,
                                timeout_s=0.01)
        result = server.simulate([0.0, 0.001, 0.002])
        finishes = {r.finish for r in result.requests}
        assert len(finishes) == 1

    def test_capacity_uses_full_batches(self):
        service = self.linear_service(0.01, 0.001)
        server = BatchingServer(service, max_batch=10, timeout_s=0.01)
        assert server.capacity_rps() == pytest.approx(10 / 0.02)

    def test_invalid_parameters(self):
        with pytest.raises(LoadError):
            BatchingServer(self.linear_service(), 0, 0.1)
        with pytest.raises(LoadError):
            BatchingServer(self.linear_service(), 4, -1.0)


class TestComparison:
    def test_batch1_wins_latency_under_light_load(self):
        comparisons = compare_under_load(
            bw_service_s=0.001,
            gpu_batch_service=lambda b: 0.05 + 0.002 * b,
            max_batch=16, timeout_s=0.02, rates_rps=(50,),
            requests=400, seed=3)
        comp = comparisons[0]
        assert comp.bw.p99_ms < 5.0
        assert comp.gpu.p99_ms > 10 * comp.bw.p99_ms

    def test_throughput_reported(self):
        comparisons = compare_under_load(
            bw_service_s=0.001,
            gpu_batch_service=lambda b: 0.05 + 0.002 * b,
            max_batch=16, timeout_s=0.02, rates_rps=(100,),
            requests=400, seed=4)
        assert comparisons[0].bw.throughput_rps == pytest.approx(
            100, rel=0.2)

    def test_empty_result_nan_with_flag(self):
        """Degenerate results flag themselves and report nan instead
        of raising or fabricating a misleading 0.0."""
        import math

        from repro.system.loadgen import LoadResult
        res = LoadResult([])
        assert res.empty
        assert math.isnan(res.percentile_latency(50))
        assert math.isnan(res.p99_ms)
        assert math.isnan(res.mean_ms)
        assert math.isnan(res.throughput_rps)

    def test_empty_fault_scenario_nan_with_flag(self):
        import math

        from repro.system.loadgen import FaultScenarioResult
        res = FaultScenarioResult(outcomes=[], arrivals=[])
        assert res.empty and not res.has_successes
        assert math.isnan(res.availability)
        assert math.isnan(res.span_s)
        assert math.isnan(res.goodput_rps)
        assert math.isnan(res.p99_ms)
        assert math.isnan(res.mean_attempts)

    def test_all_failed_scenario_flags_no_successes(self):
        import math

        from repro.system.faults import InvocationOutcome
        from repro.system.loadgen import FaultScenarioResult
        outcomes = [InvocationOutcome(
            service="svc", ok=False, result=None, attempts=2,
            replicas_tried=["svc-0"], latency_s=0.01,
            deadline_met=False) for _ in range(3)]
        res = FaultScenarioResult(outcomes=outcomes,
                                  arrivals=[0.0, 0.1, 0.2])
        assert not res.empty and not res.has_successes
        assert res.availability == 0.0          # real zero, not nan
        assert math.isnan(res.p99_ms)           # no success latencies
        assert res.mean_attempts == pytest.approx(2.0)


class TestShapedArrivals:
    """The vectorized diurnal / bursty / heavy-tailed trace
    generators that drive the cluster chaos scenarios."""

    def test_diurnal_rate_between_base_and_peak(self):
        times = diurnal_arrivals(100.0, 300.0, 50.0, period_s=50.0,
                                 seed=0)
        rate = len(times) / 50.0
        assert 100.0 < rate < 300.0
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_diurnal_trough_at_zero(self):
        """The sinusoid starts at the trough: the first tenth of the
        period is much quieter than the middle."""
        times = np.asarray(diurnal_arrivals(50.0, 500.0, 100.0,
                                            period_s=100.0, seed=1))
        early = np.count_nonzero(times < 10.0)
        mid = np.count_nonzero((times >= 45.0) & (times < 55.0))
        assert mid > 2 * early

    def test_bursty_has_quiet_and_hot_stretches(self):
        times = np.asarray(bursty_arrivals(50.0, 2000.0, 20.0,
                                           mean_quiet_s=2.0,
                                           mean_burst_s=0.5, seed=2))
        # Per-second counts span at least the base->burst dynamic
        # range (an MMPP, not a homogeneous process).
        counts = np.histogram(times, bins=20, range=(0, 20))[0]
        assert counts.max() > 5 * max(counts.min(), 1)

    def test_heavy_tailed_count_and_tail(self):
        times = np.asarray(heavy_tailed_arrivals(1000.0, 20_000,
                                                 alpha=1.6, seed=3))
        assert times.size == 20_000
        gaps = np.diff(times)
        assert np.all(gaps >= 0) and np.all(np.isfinite(times))
        # Pareto gaps: the largest gap dwarfs the median gap.
        assert gaps.max() > 20 * np.median(gaps)

    @pytest.mark.parametrize("make", [
        lambda seed: diurnal_arrivals(10.0, 30.0, 20.0, seed=seed),
        lambda seed: bursty_arrivals(10.0, 100.0, 20.0, seed=seed),
        lambda seed: heavy_tailed_arrivals(100.0, 500, seed=seed),
    ])
    def test_deterministic_per_seed(self, make):
        assert np.array_equal(make(7), make(7))
        assert not np.array_equal(make(7), make(8))

    def test_validation(self):
        with pytest.raises(LoadError):
            diurnal_arrivals(0.0, 10.0, 1.0)
        with pytest.raises(LoadError):
            diurnal_arrivals(20.0, 10.0, 1.0)  # peak below base
        with pytest.raises(LoadError):
            bursty_arrivals(10.0, 5.0, 1.0)    # burst below base
        with pytest.raises(LoadError):
            bursty_arrivals(10.0, 20.0, 0.0)
        with pytest.raises(LoadError):
            heavy_tailed_arrivals(100.0, 10, alpha=1.0)
        with pytest.raises(LoadError):
            heavy_tailed_arrivals(0.0, 10)
