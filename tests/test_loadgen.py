"""Tests for the request-level serving simulation."""

import pytest

from repro.system.loadgen import (
    Batch1Server,
    BatchingServer,
    LoadError,
    compare_under_load,
    poisson_arrivals,
    uniform_arrivals,
)


class TestArrivals:
    def test_poisson_mean_rate(self):
        times = poisson_arrivals(100.0, 5000, seed=1)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(100.0, rel=0.1)

    def test_poisson_monotone(self):
        times = poisson_arrivals(10.0, 100, seed=2)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_uniform_spacing(self):
        times = uniform_arrivals(4.0, 4)
        assert times == [0.25, 0.5, 0.75, 1.0]

    def test_invalid_parameters(self):
        with pytest.raises(LoadError):
            poisson_arrivals(0, 10)
        with pytest.raises(LoadError):
            uniform_arrivals(5, 0)


class TestBatch1Server:
    def test_idle_server_latency_is_service_time(self):
        server = Batch1Server(0.001)
        result = server.simulate(uniform_arrivals(10.0, 20))
        assert result.p50_ms == pytest.approx(1.0)
        assert result.p99_ms == pytest.approx(1.0)

    def test_saturated_server_queues(self):
        server = Batch1Server(0.01)  # 100 req/s capacity
        result = server.simulate(uniform_arrivals(200.0, 100))
        # Every second request waits behind the previous one.
        assert result.p99_ms > 10.0
        latencies = [r.latency for r in result.requests]
        assert latencies == sorted(latencies)  # waits grow monotonically

    def test_fifo_order(self):
        server = Batch1Server(0.002)
        result = server.simulate([0.0, 0.0005, 0.001])
        starts = [r.start for r in result.requests]
        assert starts == sorted(starts)
        assert starts[1] == pytest.approx(0.002)

    def test_capacity(self):
        assert Batch1Server(0.004).capacity_rps == pytest.approx(250.0)

    def test_invalid_service_time(self):
        with pytest.raises(LoadError):
            Batch1Server(0.0)


class TestBatchingServer:
    @staticmethod
    def linear_service(base=0.01, per=0.001):
        return lambda b: base + per * b

    def test_low_load_waits_for_timeout(self):
        """A lone request waits the full forming timeout."""
        server = BatchingServer(self.linear_service(), max_batch=8,
                                timeout_s=0.05)
        result = server.simulate([0.0])
        assert result.requests[0].start == pytest.approx(0.05)

    def test_full_batch_dispatches_without_timeout(self):
        server = BatchingServer(self.linear_service(), max_batch=4,
                                timeout_s=10.0)
        arrivals = [0.0, 0.001, 0.002, 0.003]
        result = server.simulate(arrivals)
        assert result.requests[0].start == pytest.approx(0.003)

    def test_batch_size_capped(self):
        server = BatchingServer(self.linear_service(), max_batch=2,
                                timeout_s=1.0)
        result = server.simulate([0.0, 0.0, 0.0, 0.0])
        starts = sorted({r.start for r in result.requests})
        assert len(starts) == 2  # two batches of two

    def test_batchmates_share_finish_time(self):
        server = BatchingServer(self.linear_service(), max_batch=4,
                                timeout_s=0.01)
        result = server.simulate([0.0, 0.001, 0.002])
        finishes = {r.finish for r in result.requests}
        assert len(finishes) == 1

    def test_capacity_uses_full_batches(self):
        service = self.linear_service(0.01, 0.001)
        server = BatchingServer(service, max_batch=10, timeout_s=0.01)
        assert server.capacity_rps() == pytest.approx(10 / 0.02)

    def test_invalid_parameters(self):
        with pytest.raises(LoadError):
            BatchingServer(self.linear_service(), 0, 0.1)
        with pytest.raises(LoadError):
            BatchingServer(self.linear_service(), 4, -1.0)


class TestComparison:
    def test_batch1_wins_latency_under_light_load(self):
        comparisons = compare_under_load(
            bw_service_s=0.001,
            gpu_batch_service=lambda b: 0.05 + 0.002 * b,
            max_batch=16, timeout_s=0.02, rates_rps=(50,),
            requests=400, seed=3)
        comp = comparisons[0]
        assert comp.bw.p99_ms < 5.0
        assert comp.gpu.p99_ms > 10 * comp.bw.p99_ms

    def test_throughput_reported(self):
        comparisons = compare_under_load(
            bw_service_s=0.001,
            gpu_batch_service=lambda b: 0.05 + 0.002 * b,
            max_batch=16, timeout_s=0.02, rates_rps=(100,),
            requests=400, seed=4)
        assert comparisons[0].bw.throughput_rps == pytest.approx(
            100, rel=0.2)

    def test_empty_result_raises(self):
        from repro.system.loadgen import LoadResult
        with pytest.raises(LoadError):
            LoadResult([]).percentile_latency(50)
