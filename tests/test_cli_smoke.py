"""CLI smoke tests: every headline subcommand exits 0 and produces
parseable output files."""

import json
import pathlib

import pytest

from repro.cli import main

pytestmark = pytest.mark.tier1

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


def _trace_events(path):
    with open(path) as fh:
        trace = json.load(fh)
    events = trace["traceEvents"]
    assert events, "empty trace"
    return {e["name"] for e in events}


@pytest.mark.parametrize("workload", ["lstm", "gru"])
def test_trace_rnn_smoke(workload, tmp_path, capsys):
    out = tmp_path / "trace.json"
    jsonl = tmp_path / "events.jsonl"
    rc = main(["trace", workload, "--hidden", "64", "--steps", "2",
               "--out", str(out), "--jsonl", str(jsonl)])
    assert rc == 0
    names = _trace_events(out)
    assert {"run", "chain"} <= names
    assert jsonl.exists()
    for line in jsonl.read_text().splitlines():
        json.loads(line)
    stdout = capsys.readouterr().out
    assert "occupancy" in stdout
    assert "match: yes" in stdout


def test_trace_serve_faults_smoke(tmp_path, capsys):
    out = tmp_path / "serve.json"
    rc = main(["trace", "serve-faults", "--hidden", "64", "--steps", "2",
               "--requests", "60", "--rate", "600", "--out", str(out)])
    assert rc == 0
    assert _trace_events(out)
    assert "availability" in capsys.readouterr().out


def test_serve_faults_smoke(capsys):
    rc = main(["serve-faults", "--requests", "120", "--rate", "600",
               "--replicas", "2", "--seed", "3"])
    assert rc == 0
    assert "serving under faults" in capsys.readouterr().out.lower()


def test_fuzz_smoke(capsys):
    rc = main(["fuzz", "--seed", "5", "--iterations", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 failure(s)" in out
    assert "all engines agree" in out


def test_fuzz_replay_smoke(capsys):
    rc = main(["fuzz", "--replay", str(CORPUS_DIR)])
    assert rc == 0
    assert "0 failure(s)" in capsys.readouterr().out


def test_fuzz_corpus_dir_stays_empty_on_pass(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    rc = main(["fuzz", "--seed", "6", "--iterations", "3",
               "--corpus-dir", str(corpus)])
    assert rc == 0
    assert not list(corpus.glob("*.json")) if corpus.exists() else True
    capsys.readouterr()


def test_fuzz_pinned_config_and_profile(capsys):
    rc = main(["fuzz", "--seed", "1", "--iterations", "3",
               "--profile", "mvm", "--config", "fuzz8_exact",
               "--no-timing"])
    assert rc == 0
    capsys.readouterr()


def _stub_bench_payload(compiled_ms=1.0, batch16_ms=0.5,
                        goodput_ms=0.4):
    """A minimal but schema-true perf payload, so the bench CLI can be
    smoke-tested without running the (slow) real suite — that runs in
    the perf CI step via benchmarks/perf/test_bench_smoke.py."""
    from repro.harness.perf import (BenchResult, HEADLINE,
                                    batch16_headline_speedup,
                                    batching_goodput_ratio,
                                    compiled_headline_speedup,
                                    headline_speedup)
    kind, hidden, cfg = HEADLINE
    rows = [
        BenchResult(name=f"functional_{kind}_h{hidden}", config=cfg,
                    unit_ms=1.0, units=4, repeats=2, naive_unit_ms=5.0),
        BenchResult(name=f"compiled_{kind}_h{hidden}", config=cfg,
                    unit_ms=compiled_ms, units=4, repeats=3,
                    naive_unit_ms=2.0),
        BenchResult(name=f"batched_{kind}_h{hidden}_b16", config=cfg,
                    unit_ms=batch16_ms, units=64, repeats=3,
                    naive_unit_ms=2.0),
        BenchResult(name=f"batching_goodput_{kind}_h{hidden}",
                    config=cfg, unit_ms=goodput_ms, units=600,
                    repeats=1, naive_unit_ms=1.0),
    ]
    return {
        "benchmark": "perf", "quick": True,
        "headline": {"kind": kind, "hidden": hidden, "config": cfg,
                     "speedup": headline_speedup(rows),
                     "compiled_speedup": compiled_headline_speedup(rows),
                     "batch16_speedup": batch16_headline_speedup(rows),
                     "batching_goodput_ratio":
                         batching_goodput_ratio(rows)},
        "results": [r.to_json() for r in rows],
    }


def test_bench_cli_table_and_output(monkeypatch, tmp_path, capsys):
    import repro.harness.perf as perf
    monkeypatch.setattr(perf, "run_suite",
                        lambda quick: _stub_bench_payload())
    out = tmp_path / "bench.json"
    rc = main(["bench", "quick", "--output", str(out)])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "compiled over vectorized" in stdout
    assert "floor" in stdout
    payload = json.loads(out.read_text())
    assert payload["headline"]["compiled_speedup"] == 2.0
    assert payload["headline"]["batch16_speedup"] == 4.0


def test_bench_cli_json_mode(monkeypatch, capsys):
    import repro.harness.perf as perf
    monkeypatch.setattr(perf, "run_suite",
                        lambda quick: _stub_bench_payload())
    rc = main(["bench", "quick", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["benchmark"] == "perf"
    names = {r["name"] for r in payload["results"]}
    assert any(n.startswith("batched_") for n in names)


def test_bench_cli_gate_failure_exits_nonzero(monkeypatch, capsys):
    import repro.harness.perf as perf
    # Compiled replay slower than the vectorized baseline: gate trips.
    monkeypatch.setattr(
        perf, "run_suite",
        lambda quick: _stub_bench_payload(compiled_ms=4.0))
    rc = main(["bench", "quick"])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().err


def test_monitor_smoke(tmp_path, capsys):
    html = tmp_path / "dash.html"
    prom = tmp_path / "metrics.prom"
    rc = main(["monitor", "rack_loss", "--requests", "8000",
               "--seed", "0", "--html", str(html),
               "--prom", str(prom)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "detection scorecard" in out
    assert "availability" in out
    text = html.read_text()
    assert text.startswith("<!DOCTYPE html>") or "<html" in text
    assert "availability" in text
    lines = prom.read_text().splitlines()
    assert any(l.startswith("# TYPE repro_cluster_requests_total "
               "counter") for l in lines)
    assert any(l.startswith("repro_cluster_latency_ms_bucket")
               for l in lines)


def test_monitor_gate_violation_exits_nonzero(capsys):
    rc = main(["monitor", "rack_loss", "--requests", "8000",
               "--seed", "0", "--min-precision", "1.1"])
    assert rc == 1
    assert "GATE VIOLATED" in capsys.readouterr().out


def test_monitor_all_writes_per_scenario_files(tmp_path, capsys):
    prom = tmp_path / "m.prom"
    rc = main(["monitor", "all", "--requests", "4000", "--seed", "0",
               "--prom", str(prom)])
    assert rc == 0
    capsys.readouterr()
    for name in ("overload", "partition", "rack_loss",
                 "rolling_slow"):
        assert (tmp_path / f"m-{name}.prom").exists()


def test_serve_batch_smoke(tmp_path, capsys):
    """End-to-end quick sweep: calibrate a real curve from batched
    replay, sweep goodput, clear a modest floor, write artifacts."""
    out = tmp_path / "sweep.json"
    prom = tmp_path / "serving.prom"
    rc = main(["serve-batch", "--quick", "--hidden", "64",
               "--min-goodput-ratio", "1.1",
               "--output", str(out), "--prom", str(prom)])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "peak goodput" in stdout
    payload = json.loads(out.read_text())
    assert payload["goodput_ratio"] >= 1.1
    assert payload["workload"]["kind"] == "lstm"
    assert payload["curve"]["batches"][0] == 1
    text = prom.read_text()
    assert "repro_serving_batch_occupancy" in text
    assert "repro_serving_dispatches_total" in text


def test_serve_batch_gate_violation_exits_nonzero(monkeypatch, capsys):
    import repro.system.batching as batching
    # A perfectly serial curve: batching buys nothing, so any floor
    # above ~1x trips the gate without a slow calibration pass.
    serial = batching.ServiceTimeCurve((1, 2), (1e-3, 2e-3))
    monkeypatch.setattr(batching, "calibrate_batch_curve",
                        lambda *a, **k: serial)
    rc = main(["serve-batch", "--quick", "--hidden", "64",
               "--min-goodput-ratio", "2.0"])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().err
