"""Property-based encode/decode round-trip tests (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError, IsaError
from repro.isa.encoding import (MAX_OPERAND, decode, decode_stream, encode,
                                encode_stream)
from repro.isa.instructions import Instruction
from repro.isa.memspace import (MATRIX_READ_SOURCES, MATRIX_WRITE_TARGETS,
                                VECTOR_READ_SOURCES, VECTOR_WRITE_TARGETS,
                                MemId, ScalarReg)
from repro.isa.opcodes import Opcode, OperandKind, info

pytestmark = pytest.mark.tier1

#: Boundary-heavy index distribution: hypothesis draws the edges often,
#: but make 0 and MAX_OPERAND explicit so every run covers them.
indexes = st.one_of(st.sampled_from([0, 1, MAX_OPERAND - 1, MAX_OPERAND]),
                    st.integers(0, MAX_OPERAND))

_MEM_CHOICES = {
    Opcode.V_RD: sorted(VECTOR_READ_SOURCES),
    Opcode.V_WR: sorted(VECTOR_WRITE_TARGETS),
    Opcode.M_RD: sorted(MATRIX_READ_SOURCES),
    Opcode.M_WR: sorted(MATRIX_WRITE_TARGETS),
}


@st.composite
def instructions(draw):
    """Any well-formed instruction, covering every Table II opcode."""
    opcode = draw(st.sampled_from(sorted(Opcode)))
    meta = info(opcode)

    operand1 = None
    if meta.operand1 is OperandKind.MEM_ID:
        operand1 = draw(st.sampled_from(_MEM_CHOICES[opcode]))
    elif meta.operand1 is OperandKind.SCALAR_REG:
        operand1 = draw(st.sampled_from(sorted(ScalarReg)))
    elif meta.operand1 is not OperandKind.NONE:
        operand1 = draw(indexes)

    operand2 = None
    if meta.operand2 is OperandKind.MEM_INDEX:
        # NetQ accesses carry no index; everything else requires one.
        if operand1 is not MemId.NetQ:
            operand2 = draw(indexes)
    elif meta.operand2 is not OperandKind.NONE:
        operand2 = draw(indexes)

    return Instruction(opcode, operand1, operand2)


@given(instructions())
@settings(max_examples=300, deadline=None)
def test_decode_encode_roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    assert decode(word) == instr


@given(st.lists(instructions(), max_size=40))
@settings(max_examples=100, deadline=None)
def test_stream_roundtrip(stream):
    data = encode_stream(stream)
    assert len(data) == 12 + 4 * len(stream)
    assert decode_stream(data) == stream


@given(instructions())
@settings(max_examples=100, deadline=None)
def test_encoding_is_canonical(instr):
    """One word per instruction: re-encoding the decode is identical."""
    word = encode(instr)
    assert encode(decode(word)) == word


def test_boundary_operand_values():
    cases = [
        Instruction(Opcode.MV_MUL, 0),
        Instruction(Opcode.MV_MUL, MAX_OPERAND),
        Instruction(Opcode.S_WR, ScalarReg.Iterations, 0),
        Instruction(Opcode.S_WR, ScalarReg.Iterations, MAX_OPERAND),
        Instruction(Opcode.V_RD, MemId.Dram, MAX_OPERAND),
        Instruction(Opcode.V_RD, MemId.NetQ),
    ]
    for instr in cases:
        assert decode(encode(instr)) == instr


def test_out_of_range_operand_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.MV_MUL, MAX_OPERAND + 1))
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.S_WR, ScalarReg.Rows, MAX_OPERAND + 1))


@given(st.integers(0, (1 << 32) - 1))
@settings(max_examples=200, deadline=None)
def test_decode_never_crashes(word):
    """Arbitrary words either decode or raise IsaError — nothing else
    (the stream decoder's foreign-data guarantee). EncodingError covers
    bad fields; plain IsaError covers structurally invalid operand
    combinations (e.g. a non-NetQ access with the index flag clear)."""
    try:
        instr = decode(word)
    except IsaError:
        return
    assert isinstance(instr, Instruction)
