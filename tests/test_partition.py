"""Tests for multi-FPGA partitioning."""

import pytest

from repro.compiler.partition import (
    WeightBlock,
    accelerators_needed,
    bidirectional_split,
    capacity_elements,
    partition_blocks,
    rnn_weight_blocks,
)
from repro.config import BW_S10, NpuConfig
from repro.errors import PartitionError


@pytest.fixture
def cfg():
    # Capacity: 64 tiles x 16x16 = 16384 elements.
    return NpuConfig(name="t", tile_engines=2, lanes=4, native_dim=16,
                     mrf_size=64, mantissa_bits=0)


class TestPartitioning:
    def test_small_model_single_accelerator(self, cfg):
        blocks = rnn_weight_blocks("gru", 32)
        parts = partition_blocks(blocks, cfg)
        assert len(parts) == 1
        assert parts[0].elements == 6 * 32 * 32

    def test_stacked_layers_split_across_accelerators(self, cfg):
        # One layer of LSTM-40: 8 * 1600 = 12800 elements; two layers
        # exceed the 16384 capacity, so they split 1+1.
        blocks = rnn_weight_blocks("lstm", 40, layers=2)
        parts = partition_blocks(blocks, cfg)
        assert len(parts) == 2
        assert parts[0].stages == (0,)
        assert parts[1].stages == (1,)

    def test_stage_atomicity(self, cfg):
        """Blocks of one stage never split across accelerators."""
        blocks = rnn_weight_blocks("gru", 40, layers=3)
        parts = partition_blocks(blocks, cfg)
        seen = {}
        for part in parts:
            for block in part.blocks:
                assert seen.setdefault(block.stage,
                                       part.accelerator) \
                    == part.accelerator

    def test_oversized_stage_rejected(self, cfg):
        blocks = [WeightBlock("big", 200, 200, stage=0)]
        with pytest.raises(PartitionError, match="stage 0"):
            partition_blocks(blocks, cfg)

    def test_accelerator_limit(self, cfg):
        blocks = rnn_weight_blocks("lstm", 40, layers=4)
        with pytest.raises(PartitionError):
            partition_blocks(blocks, cfg, max_accelerators=2)

    def test_accelerators_needed(self, cfg):
        assert accelerators_needed(rnn_weight_blocks("gru", 32), cfg) == 1
        assert accelerators_needed(
            rnn_weight_blocks("lstm", 40, layers=3), cfg) == 3

    def test_capacity_matches_config(self, cfg):
        assert capacity_elements(cfg) == cfg.mrf_capacity_elements

    def test_bw_s10_scale_partitioning(self):
        """Production scale: one 2048-dim LSTM layer (33.5M weights)
        fits a Stratix 10; a three-layer stack needs three."""
        assert accelerators_needed(
            rnn_weight_blocks("lstm", 2048, layers=1), BW_S10) == 1
        assert accelerators_needed(
            rnn_weight_blocks("lstm", 2048, layers=3), BW_S10) == 3

    def test_oversized_single_layer_rejected_at_scale(self):
        """A 4096-dim LSTM layer (134M weights) exceeds one BW_S10's
        packed MRF and must be split below the layer level."""
        with pytest.raises(PartitionError):
            partition_blocks(rnn_weight_blocks("lstm", 4096), BW_S10)

    def test_unknown_kind(self):
        with pytest.raises(PartitionError):
            rnn_weight_blocks("rnn", 16)


class TestBidirectionalSplit:
    def test_split_produces_independent_halves(self):
        fwd, bwd = bidirectional_split("lstm", 64)
        assert len(fwd) == len(bwd) == 8
        assert all(b.name.startswith("bwd.") for b in bwd)

    def test_halves_have_equal_footprint(self):
        fwd, bwd = bidirectional_split("gru", 48)
        assert sum(b.elements for b in fwd) == \
            sum(b.elements for b in bwd)
