"""Cluster simulator: failure domains, detection, degradation.

Covers topology/policy validation, the phi-accrual failure detector's
suspect -> evict -> readmit lifecycle, domain-aware routing, admission
control, brownout, deadline shedding, client-timeout semantics, and
bit-determinism under a fixed seed.
"""

import math

import numpy as np
import pytest

from repro.errors import ReproError
from repro.system.batching import ServiceTimeCurve
from repro.system.cluster import (
    BROWNOUT,
    FAILED,
    SERVED,
    SHED_ADMISSION,
    SHED_DEADLINE,
    TIMEOUT,
    AutoscalePolicy,
    BrownoutPolicy,
    ClusterError,
    ClusterEvent,
    ClusterSimulator,
    ClusterSpec,
    NodeBatching,
    PhiAccrualDetector,
    TokenBucket,
)

_LN10 = math.log(10.0)


def _spec(**kw):
    defaults = dict(racks=2, nodes_per_rack=2)
    defaults.update(kw)
    return ClusterSpec(**defaults)


def _sparse_arrivals(n=40, gap=0.01):
    """Arrivals far enough apart that queues never build up."""
    return np.arange(n) * gap


class TestClusterSpec:
    def test_defaults(self):
        spec = ClusterSpec()
        assert spec.num_nodes == 24
        assert spec.capacity_rps == pytest.approx(24_000.0)

    def test_rack_mapping(self):
        spec = _spec(racks=3, nodes_per_rack=4)
        assert spec.rack_of(0) == 0
        assert spec.rack_of(11) == 2
        assert list(spec.nodes_in_rack(1)) == [4, 5, 6, 7]

    def test_rack_bounds_checked(self):
        spec = _spec()
        with pytest.raises(ClusterError):
            spec.rack_of(spec.num_nodes)
        with pytest.raises(ClusterError):
            spec.nodes_in_rack(-1)

    @pytest.mark.parametrize("kw", [
        dict(racks=0), dict(nodes_per_rack=0),
        dict(service_time_s=0.0), dict(queue_depth=0),
        dict(deadline_s=0.0), dict(heartbeat_interval_s=-1.0),
        dict(payload_bytes=-1.0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ClusterError):
            _spec(**kw)

    def test_cluster_error_is_repro_error(self):
        assert issubclass(ClusterError, ReproError)


class TestPolicies:
    def test_token_bucket_validation(self):
        with pytest.raises(ClusterError):
            TokenBucket(rate_rps=0.0)
        with pytest.raises(ClusterError):
            TokenBucket(rate_rps=100.0, burst=0.5)

    def test_brownout_validation(self):
        with pytest.raises(ClusterError):
            BrownoutPolicy(cpu_latency_s=0.0)
        with pytest.raises(ClusterError):
            BrownoutPolicy(max_concurrent=0)

    def test_event_validation(self):
        with pytest.raises(ClusterError):
            ClusterEvent(0.0, "explode", 0)
        with pytest.raises(ClusterError):
            ClusterEvent(-1.0, "crash", 0)
        with pytest.raises(ClusterError):
            ClusterEvent(0.0, "slow", 0, value=0.5)


class TestPhiAccrualDetector:
    """The suspect -> evict -> readmit lifecycle (control plane)."""

    def _detector(self, threshold=2.0):
        spec = _spec(heartbeat_interval_s=0.01)
        return PhiAccrualDetector(spec, threshold=threshold)

    def test_threshold_validation(self):
        with pytest.raises(ClusterError):
            self._detector(threshold=0.0)

    def test_phi_grows_with_silence(self):
        det = self._detector()
        assert det.phi(0, 0.05) == pytest.approx(0.0)
        # 5 ms past the last heartbeat: half an interval of silence.
        assert det.phi(0, 0.055) == pytest.approx(0.5 / _LN10)

    def test_suspect_time_closed_form(self):
        det = self._detector(threshold=2.0)
        # Silenced at 53 ms => last heartbeat 50 ms; phi crosses 2
        # exactly 2 * interval * ln10 later.
        assert det.suspect_time(0.053) == pytest.approx(
            0.05 + 2.0 * 0.01 * _LN10)

    def test_silence_evict_readmit_lifecycle(self):
        det = self._detector()
        evict_at = det.silence(0, 0.053)
        assert evict_at == pytest.approx(det.suspect_time(0.053))
        # Double silence is a no-op (keeps the first timeline).
        assert det.silence(0, 0.06) is None
        assert det.evict(0, evict_at)
        assert 0 in det.evicted
        readmit_at = det.resume(0, 0.123)
        # Readmission happens at the first heartbeat after recovery.
        assert readmit_at == pytest.approx(0.13)
        assert det.readmit(0, readmit_at)
        assert 0 not in det.evicted
        assert [(kind, node) for _, kind, node in det.transitions] \
            == [("evict", 0), ("readmit", 0)]

    def test_resume_before_eviction_cancels_it(self):
        """A node that recovers inside the detection window is never
        evicted: the scheduled evict edge becomes a no-op."""
        det = self._detector()
        evict_at = det.silence(0, 0.05)
        det.resume(0, evict_at - 0.01)
        assert not det.evict(0, evict_at)
        assert det.transitions == []

    def test_readmit_without_eviction_is_noop(self):
        det = self._detector()
        assert not det.readmit(0, 1.0)


class TestSimulatorValidation:
    def test_unknown_router(self):
        with pytest.raises(ClusterError):
            ClusterSimulator(_spec(), router="round_robin")

    def test_negative_retries(self):
        with pytest.raises(ClusterError):
            ClusterSimulator(_spec(), retries=-1)

    def test_unsorted_arrivals(self):
        sim = ClusterSimulator(_spec())
        with pytest.raises(ClusterError):
            sim.run([0.0, 0.2, 0.1])


class TestEmptyRun:
    def test_nan_with_flag_semantics(self):
        res = ClusterSimulator(_spec()).run([])
        assert res.empty and res.total == 0
        assert math.isnan(res.availability)
        assert math.isnan(res.goodput_rps)
        assert not res.has_latencies
        assert math.isnan(res.p99_ms)


class TestHappyPath:
    @pytest.mark.parametrize("router", ["p2c", "least_loaded",
                                        "random"])
    def test_sparse_load_all_served(self, router):
        sim = ClusterSimulator(_spec(), router=router, seed=3)
        res = sim.run(_sparse_arrivals())
        assert res.availability == 1.0
        assert res.count(SERVED) == res.total
        assert res.has_latencies
        assert res.p50_ms >= 1.0  # at least one service time

    def test_least_loaded_balances(self):
        spec = _spec()
        sim = ClusterSimulator(spec, router="least_loaded",
                               admission=None, seed=0)
        # Burst of simultaneous-ish arrivals: exactly one per node
        # fits with zero wait before queueing starts.
        res = sim.run(np.full(spec.num_nodes, 0.0))
        assert res.availability == 1.0
        # All four nodes took exactly one request => identical latency.
        assert np.allclose(res.latency_s, res.latency_s[0])


class TestFailureDomains:
    def test_crash_without_detector_fails_requests(self):
        spec = _spec()
        sim = ClusterSimulator(spec, router="random",
                               detector_threshold=None, retries=0,
                               seed=1)
        events = [ClusterEvent(0.0, "rack_down", 0)]
        res = sim.run(_sparse_arrivals(200), events)
        # Half the fleet is dead and invisible: ~half the requests
        # land on it and fail.
        assert res.failed > 0.3 * res.total

    def test_detector_closes_the_gap(self):
        spec = _spec(heartbeat_interval_s=1e-3)
        sim = ClusterSimulator(spec, router="random",
                               detector_threshold=2.0, retries=0,
                               seed=1)
        events = [ClusterEvent(0.0, "rack_down", 0)]
        res = sim.run(_sparse_arrivals(200), events)
        evicts = [t for t in res.detector_transitions
                  if t[1] == "evict"]
        assert len(evicts) == spec.nodes_per_rack
        detect_by = max(t[0] for t in evicts)
        late = res.arrivals > detect_by
        # After eviction the router never sends to the dead rack.
        assert np.all(res.status[late] == SERVED)
        assert res.failed < 0.3 * res.total

    def test_repair_readmits(self):
        spec = _spec(heartbeat_interval_s=1e-3)
        sim = ClusterSimulator(spec, router="p2c",
                               detector_threshold=2.0, seed=0)
        events = [ClusterEvent(0.05, "crash", 0),
                  ClusterEvent(0.25, "repair", 0)]
        res = sim.run(_sparse_arrivals(60), events)
        kinds = [(kind, node) for _, kind, node
                 in res.detector_transitions]
        assert ("evict", 0) in kinds and ("readmit", 0) in kinds
        assert res.availability == 1.0  # failover hid the crash

    def test_partition_and_heal(self):
        spec = _spec(heartbeat_interval_s=1e-3)
        sim = ClusterSimulator(spec, router="p2c",
                               detector_threshold=2.0, seed=0)
        events = [ClusterEvent(0.1, "partition", 1),
                  ClusterEvent(0.3, "heal", 1)]
        res = sim.run(_sparse_arrivals(60), events)
        nodes = {node for _, kind, node in res.detector_transitions
                 if kind == "evict"}
        assert nodes == set(spec.nodes_in_rack(1))
        assert ("heal", 1) in [(a, t) for _, a, t in res.event_log]

    def test_slow_events_stretch_latency(self):
        spec = _spec(racks=1, nodes_per_rack=1)
        sim = ClusterSimulator(spec, shed_on_deadline=False, seed=0)
        base = sim.run(_sparse_arrivals(10))
        slow = ClusterSimulator(spec, shed_on_deadline=False, seed=0)
        res = slow.run(_sparse_arrivals(10),
                       [ClusterEvent(0.0, "slow", 0, value=5.0)])
        assert np.nanmedian(res.latency_s) > \
            4 * np.nanmedian(base.latency_s)


class TestGracefulDegradation:
    def test_admission_sheds_over_rate(self):
        spec = _spec()
        sim = ClusterSimulator(
            spec, admission=TokenBucket(rate_rps=50.0, burst=1.0),
            brownout=None, seed=0)
        res = sim.run(np.arange(200) * 1e-3)  # 1000 rps offered
        assert res.count(SHED_ADMISSION) > 0.8 * res.total

    def test_brownout_absorbs_admission_rejects(self):
        spec = _spec()
        sim = ClusterSimulator(
            spec, admission=TokenBucket(rate_rps=50.0, burst=1.0),
            brownout=BrownoutPolicy(max_concurrent=256), seed=0)
        res = sim.run(np.arange(200) * 1e-3)
        assert res.count(BROWNOUT) > 0
        assert res.count(SHED_ADMISSION) < res.total
        # Brownout latencies are honest: at least the CPU latency,
        # never past the deadline.
        lat = res.latency_s[res.status == BROWNOUT]
        assert np.all(lat >= BrownoutPolicy().cpu_latency_s - 1e-12)
        assert np.all(lat <= spec.deadline_s + 1e-12)

    def test_deadline_shedding_vs_client_timeouts(self):
        """The same overload either becomes explicit sheds (mitigated)
        or client timeouts from unbounded queues (ablated)."""
        spec = _spec(racks=1, nodes_per_rack=1)
        overload = np.arange(400) * 0.5e-3  # 2x one node's capacity
        shed = ClusterSimulator(spec, shed_on_deadline=True,
                                brownout=None, seed=0).run(overload)
        assert shed.count(SHED_DEADLINE) > 0
        assert shed.deadline_violations == 0
        ablated = ClusterSimulator(spec, shed_on_deadline=False,
                                   brownout=None, seed=0).run(overload)
        assert ablated.count(TIMEOUT) > 0
        assert ablated.availability < shed.availability

    def test_all_dead_brownout_or_fail(self):
        spec = _spec()
        events = [ClusterEvent(0.0, "rack_down", 0),
                  ClusterEvent(0.0, "rack_down", 1)]
        res = ClusterSimulator(spec, brownout=None, seed=0).run(
            _sparse_arrivals(20), events)
        assert np.all(res.status == FAILED)
        assert res.failed == res.total
        res = ClusterSimulator(
            spec, brownout=BrownoutPolicy(max_concurrent=64),
            seed=0).run(_sparse_arrivals(20), events)
        assert res.count(BROWNOUT) == res.total


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        spec = _spec()
        events = [ClusterEvent(0.05, "rack_down", 0),
                  ClusterEvent(0.2, "rack_up", 0)]
        runs = []
        for _ in range(2):
            sim = ClusterSimulator(
                spec, admission=TokenBucket(rate_rps=3000.0),
                brownout=BrownoutPolicy(), seed=42)
            runs.append(sim.run(np.arange(500) * 4e-4, list(events)))
        a, b = runs
        assert np.array_equal(a.status, b.status)
        assert np.array_equal(a.latency_s, b.latency_s,
                              equal_nan=True)
        assert a.event_log == b.event_log

    def test_different_seed_differs(self):
        spec = _spec()
        arr = np.arange(2000) * 1e-4
        events = [ClusterEvent(0.02, "rack_down", 0)]
        a = ClusterSimulator(spec, router="random", retries=0,
                             detector_threshold=None,
                             seed=0).run(arr, list(events))
        b = ClusterSimulator(spec, router="random", retries=0,
                             detector_threshold=None,
                             seed=1).run(arr, list(events))
        assert not np.array_equal(a.status, b.status)


class TestResultRendering:
    def test_render_smoke(self):
        res = ClusterSimulator(_spec(), seed=0).run(
            _sparse_arrivals(20))
        text = res.render()
        assert "availability: 100.000%" in text
        assert "served=20" in text

    def test_render_empty(self):
        text = ClusterSimulator(_spec(), seed=0).run([]).render()
        assert "n/a" in text

    def test_counts_cover_all_statuses(self):
        res = ClusterSimulator(_spec(), seed=0).run(
            _sparse_arrivals(5))
        counts = res.counts()
        assert set(counts) == {"served", "brownout", "shed_admission",
                               "shed_deadline", "failed", "timeout"}
        assert sum(counts.values()) == res.total


# A strongly sublinear measured shape for batched-node tests.
_BCURVE = ServiceTimeCurve((1, 2, 4, 8, 16),
                           (1e-3, 1.1e-3, 1.3e-3, 1.7e-3, 2.5e-3))


def _batching(**kw):
    defaults = dict(curve=_BCURVE, max_batch=16, timeout_s=1e-3)
    defaults.update(kw)
    return NodeBatching(**defaults)


class TestBatchedClusterValidation:
    @pytest.mark.parametrize("kw", [
        dict(curve=3.0),
        dict(max_batch=0),
        dict(timeout_s=-1e-3),
        dict(curve=lambda b: 0.0),
    ])
    def test_node_batching_validation(self, kw):
        with pytest.raises(ClusterError):
            _batching(**kw)

    @pytest.mark.parametrize("kw", [
        dict(min_nodes=0),
        dict(min_nodes=4, max_nodes=2),
        dict(target_utilization=0.0),
        dict(target_utilization=1.5),
        dict(interval_s=0.0),
    ])
    def test_autoscale_policy_validation(self, kw):
        with pytest.raises(ClusterError):
            AutoscalePolicy(**kw)

    def test_autoscaler_requires_batching(self):
        with pytest.raises(ClusterError):
            ClusterSimulator(_spec(), autoscaler=AutoscalePolicy())

    @pytest.mark.parametrize("kw", [
        dict(admission=TokenBucket(rate_rps=100.0)),
        dict(brownout=BrownoutPolicy()),
    ])
    def test_batching_rejects_unbatched_mitigations(self, kw):
        with pytest.raises(ClusterError):
            ClusterSimulator(_spec(), batching=_batching(), **kw)


class TestBatchedCluster:
    def test_sparse_load_all_served_batch1(self):
        """With no queueing pressure every dispatch is a singleton and
        the batched plane reduces to the unbatched one."""
        sim = ClusterSimulator(_spec(), batching=_batching(), seed=3)
        res = sim.run(_sparse_arrivals())
        assert res.availability == 1.0
        assert res.count(SERVED) == res.total
        assert res.batch_log is not None
        assert all(b == 1 for _, b in res.batch_log)
        assert res.mean_batch == 1.0

    def test_overload_coalesces_into_batches(self):
        """Arrivals faster than per-node batch-1 capacity force real
        batch formation; the measured curve keeps the cluster serving
        what a serial plane would drop."""
        spec = _spec(deadline_s=0.1)
        rate = 8000.0  # 2x the 4-node batch-1 capacity
        arrivals = np.arange(4000) / rate
        sim = ClusterSimulator(spec, batching=_batching(), seed=0)
        res = sim.run(arrivals)
        assert res.mean_batch > 2.0
        assert sum(b for _, b in res.batch_log) == res.count(SERVED) \
            + res.count(TIMEOUT)
        assert res.availability > 0.9
        assert "batching:" in res.render()

    def test_batched_run_is_seed_deterministic(self):
        runs = []
        for _ in range(2):
            sim = ClusterSimulator(_spec(), batching=_batching(),
                                   seed=11)
            runs.append(sim.run(np.arange(3000) * 2e-4))
        a, b = runs
        assert np.array_equal(a.status, b.status)
        assert np.array_equal(a.latency_s, b.latency_s,
                              equal_nan=True)
        assert a.batch_log == b.batch_log

    def test_crash_fails_queued_and_inflight_work(self):
        sim = ClusterSimulator(_spec(), batching=_batching(),
                               detector_threshold=None, retries=0,
                               router="random", seed=1)
        events = [ClusterEvent(0.0, "rack_down", 0)]
        res = sim.run(_sparse_arrivals(200), events)
        assert res.failed > 0.3 * res.total

    def test_autoscaler_tracks_load(self):
        """One node handles the warmup trickle; the burst pulls the
        active set up, and the trace records every resize."""
        spec = _spec(racks=2, nodes_per_rack=4, deadline_s=0.2)
        burst = np.concatenate([np.arange(100) * 2e-3,          # 500/s
                                0.2 + np.arange(4000) / 2e4])   # 20k/s
        sim = ClusterSimulator(
            spec, batching=_batching(),
            autoscaler=AutoscalePolicy(min_nodes=1, interval_s=0.1),
            seed=0)
        res = sim.run(burst)
        assert res.active_nodes_trace is not None
        assert res.active_nodes_trace[0][1] == 1
        assert max(n for _, n in res.active_nodes_trace) > 1
        assert "autoscaler:" in res.render()

    def test_unbatched_result_has_no_batch_fields(self):
        res = ClusterSimulator(_spec(), seed=0).run(
            _sparse_arrivals(10))
        assert res.batch_log is None
        assert res.active_nodes_trace is None
        assert math.isnan(res.mean_batch)
