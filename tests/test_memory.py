"""Tests for register files, DRAM, and the network queues."""

import numpy as np
import pytest

from repro.errors import MemoryError_, NetworkQueueEmptyError
from repro.memory import (
    Dram,
    MatrixRegisterFile,
    NetworkQueues,
    VectorRegisterFile,
)


class TestVectorRegisterFile:
    def test_read_after_write(self):
        vrf = VectorRegisterFile("v", depth=8, native_dim=4)
        vec = np.arange(4, dtype=np.float32)
        vrf.write(3, vec)
        assert np.array_equal(vrf.read(3)[0], vec)

    def test_multi_entry_write_and_read(self):
        vrf = VectorRegisterFile("v", depth=8, native_dim=4)
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        vrf.write(2, data)
        assert np.array_equal(vrf.read(2, 3), data)

    def test_out_of_bounds(self):
        vrf = VectorRegisterFile("v", depth=4, native_dim=4)
        with pytest.raises(MemoryError_):
            vrf.read(4)
        with pytest.raises(MemoryError_):
            vrf.read(2, 3)
        with pytest.raises(MemoryError_):
            vrf.write(-1, np.zeros(4))

    def test_wrong_vector_length(self):
        vrf = VectorRegisterFile("v", depth=4, native_dim=4)
        with pytest.raises(MemoryError_):
            vrf.write(0, np.zeros(5))

    def test_reads_return_copies(self):
        vrf = VectorRegisterFile("v", depth=4, native_dim=4)
        vrf.write(0, np.ones(4))
        out = vrf.read(0)
        out[:] = 7
        assert np.all(vrf.read(0) == 1)

    def test_access_counters(self):
        vrf = VectorRegisterFile("v", depth=4, native_dim=4)
        vrf.write(0, np.zeros((2, 4)))
        vrf.read(0, 2)
        assert vrf.writes == 2 and vrf.reads == 2

    def test_zero_initialized_and_clear(self):
        vrf = VectorRegisterFile("v", depth=4, native_dim=4)
        assert np.all(vrf.read(0, 4) == 0)
        vrf.write(1, np.ones(4))
        vrf.clear()
        assert np.all(vrf.read(1) == 0)

    def test_invalid_geometry(self):
        with pytest.raises(MemoryError_):
            VectorRegisterFile("v", depth=0, native_dim=4)


class TestMatrixRegisterFile:
    def make(self):
        return MatrixRegisterFile("m", capacity=12, native_dim=4,
                                  tile_engines=3)

    def test_tile_roundtrip(self):
        mrf = self.make()
        tile = np.arange(16, dtype=np.float32).reshape(4, 4)
        mrf.write_tile(5, tile)
        assert np.array_equal(mrf.read_tile(5), tile)

    def test_group_roundtrip(self):
        mrf = self.make()
        tiles = np.arange(32, dtype=np.float32).reshape(2, 4, 4)
        mrf.write_tiles(4, tiles)
        assert np.array_equal(mrf.read_tiles(4, 2), tiles)

    def test_bad_tile_shape(self):
        with pytest.raises(MemoryError_):
            self.make().write_tile(0, np.zeros((3, 4)))

    def test_out_of_bounds(self):
        mrf = self.make()
        with pytest.raises(MemoryError_):
            mrf.read_tile(12)
        with pytest.raises(MemoryError_):
            mrf.write_tiles(11, np.zeros((2, 4, 4)))

    def test_round_robin_banking(self):
        """Tiles round-robin over tile engines (Section V-A)."""
        mrf = self.make()
        assert [mrf.bank_of(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_row_subbanking(self):
        """Row r of every tile lives in sub-bank r: it feeds
        dot-product engine r."""
        mrf = self.make()
        assert mrf.subbank_of(0, 2) == 2
        assert mrf.subbank_of(7, 2) == 2
        with pytest.raises(MemoryError_):
            mrf.subbank_of(0, 4)

    def test_one_read_port_per_multiplier(self):
        """Section V-A: 'each input to every single dot product unit
        requires a dedicated memory port'."""
        mrf = self.make()
        assert mrf.read_ports(lanes=4) == 3 * 4 * 4


class TestDram:
    def test_vector_roundtrip(self):
        dram = Dram(native_dim=4)
        dram.write_vectors(10, np.ones((2, 4)))
        assert np.all(dram.read_vectors(10, 2) == 1)

    def test_tile_roundtrip(self):
        dram = Dram(native_dim=4)
        dram.write_tiles(3, np.full((4, 4), 2.0))
        assert np.all(dram.read_tiles(3) == 2.0)

    def test_unwritten_read_raises(self):
        dram = Dram(native_dim=4)
        with pytest.raises(MemoryError_):
            dram.read_vectors(0)
        with pytest.raises(MemoryError_):
            dram.read_tiles(0)

    def test_traffic_accounting(self):
        dram = Dram(native_dim=4)
        dram.write_vectors(0, np.zeros((3, 4)))
        dram.read_vectors(0, 3)
        assert dram.bytes_written == 3 * 4 * 4
        assert dram.bytes_read == 3 * 4 * 4

    def test_capacity_enforced(self):
        dram = Dram(native_dim=4, capacity_bytes=64)
        dram.write_vectors(0, np.zeros((4, 4)))
        with pytest.raises(MemoryError_):
            dram.write_vectors(4, np.zeros((4, 4)))

    def test_transfer_time(self):
        dram = Dram(native_dim=4, bandwidth_gbps=10.0)
        assert dram.transfer_seconds(10e9) == pytest.approx(1.0)


class TestNetworkQueues:
    def test_fifo_order(self):
        q = NetworkQueues(native_dim=4)
        q.push_input(np.array([1, 0, 0, 0], dtype=np.float32))
        q.push_input(np.array([2, 0, 0, 0], dtype=np.float32))
        out = q.pop_input(2)
        assert out[0][0] == 1 and out[1][0] == 2

    def test_underflow_raises(self):
        q = NetworkQueues(native_dim=4)
        with pytest.raises(NetworkQueueEmptyError):
            q.pop_input()

    def test_tile_queue(self):
        q = NetworkQueues(native_dim=4)
        q.push_input_tiles(np.ones((2, 4, 4)))
        assert q.pop_input_tiles(2).shape == (2, 4, 4)
        with pytest.raises(NetworkQueueEmptyError):
            q.pop_input_tiles(1)

    def test_output_drain(self):
        q = NetworkQueues(native_dim=4)
        q.push_output(np.ones((2, 4)))
        assert q.pending_outputs == 2
        outs = q.pop_outputs()
        assert len(outs) == 2
        assert q.pending_outputs == 0

    def test_wrong_width_rejected(self):
        q = NetworkQueues(native_dim=4)
        with pytest.raises(MemoryError_):
            q.push_input(np.zeros(5))
        with pytest.raises(MemoryError_):
            q.push_output(np.zeros((1, 3)))

    def test_counters(self):
        q = NetworkQueues(native_dim=4)
        q.push_input(np.zeros(4))
        q.pop_input()
        q.push_output(np.zeros(4))
        assert q.vectors_received == 1
        assert q.vectors_sent == 1
