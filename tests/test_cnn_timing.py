"""Tests for the CNN timing path (Table I CNN rows, Table VI)."""

import pytest

from repro.config import BW_CNN_A10, BW_S10
from repro.models.cnn import TABLE1_CNN_1X1, TABLE1_CNN_3X3, ConvSpec
from repro.models.resnet import resnet50_featurizer, total_ops, \
    total_parameters
from repro.timing.cnn import (
    block_packed_conv_cycles,
    conv_layer_compute_cycles,
    conv_layer_stream_cycles,
    network_timing,
    variant_bound_cycles,
)


class TestResNetInventory:
    def test_layer_count(self):
        assert len(resnet50_featurizer()) == 53

    def test_total_ops_near_published(self):
        """ResNet-50 forward pass ~8.2 GOPs (4.1 GMACs)."""
        assert total_ops(resnet50_featurizer()) == pytest.approx(
            8.2e9, rel=0.05)

    def test_total_parameters_near_23m(self):
        assert total_parameters(resnet50_featurizer()) == pytest.approx(
            23.5e6, rel=0.05)

    def test_spatial_dimensions_telescope(self):
        layers = {l.name: l.spec for l in resnet50_featurizer()}
        assert layers["conv1"].out_height == 112
        assert layers["layer1.0.conv1"].in_height == 56
        assert layers["layer4.2.conv3"].out_height == 7


class TestBlockPackedMapping:
    def test_table1_3x3_layer_matches_paper(self):
        """The structural mapping lands at 1,320 cycles vs the paper's
        measured 1,326."""
        assert block_packed_conv_cycles(TABLE1_CNN_3X3, BW_S10) == \
            pytest.approx(1326, rel=0.01)

    def test_pixel_packing_requires_small_kernels(self):
        """K > N prevents row packing; throughput drops accordingly."""
        small_k = ConvSpec(28, 28, 128, kernels=128, kernel_h=3,
                           kernel_w=3)
        big_k = ConvSpec(28, 28, 128, kernels=512, kernel_h=3,
                         kernel_w=3)
        per_op_small = block_packed_conv_cycles(small_k, BW_S10) \
            / small_k.matmul_ops
        per_op_big = block_packed_conv_cycles(big_k, BW_S10) \
            / big_k.matmul_ops
        assert per_op_small < per_op_big * 1.5

    def test_variant_bound_tracks_sdm(self):
        cycles = variant_bound_cycles(TABLE1_CNN_1X1, BW_S10)
        macs = TABLE1_CNN_1X1.matmul_ops / 2
        assert cycles > macs / BW_S10.total_macs

    def test_compute_model_takes_better_mapping(self):
        c = conv_layer_compute_cycles(TABLE1_CNN_1X1, BW_S10)
        assert c <= block_packed_conv_cycles(TABLE1_CNN_1X1, BW_S10)

    def test_table1_cnn_rows_within_6pct(self):
        assert conv_layer_compute_cycles(TABLE1_CNN_3X3, BW_S10) == \
            pytest.approx(1326, rel=0.06)
        assert conv_layer_compute_cycles(TABLE1_CNN_1X1, BW_S10) == \
            pytest.approx(646, rel=0.06)


class TestNetworkTiming:
    def test_table6_anchor(self):
        """BW_CNN_A10 serves the featurizer at ~559 IPS / 1.8 ms."""
        t = network_timing(BW_CNN_A10)
        assert t.ips == pytest.approx(559, rel=0.08)
        assert t.latency_ms == pytest.approx(1.8, rel=0.08)

    def test_bw_beats_p40_at_batch_1(self):
        from repro.baselines import P40, GpuCnnModel
        bw = network_timing(BW_CNN_A10)
        gpu = GpuCnnModel(P40).run(total_ops(resnet50_featurizer()),
                                   batch=1)
        assert bw.ips > gpu.ips
        assert bw.latency_ms < gpu.latency_ms

    def test_streaming_overlap(self):
        """Per-layer time is max(compute, stream), not the sum."""
        t = network_timing(BW_CNN_A10)
        for layer in t.layers:
            assert layer.cycles == max(layer.compute_cycles,
                                       layer.stream_cycles)

    def test_some_layers_stream_bound(self):
        """Deep layers with big kernels are DRAM-bound on an A10."""
        t = network_timing(BW_CNN_A10)
        assert 0 < t.stream_bound_layers < len(t.layers)

    def test_more_bandwidth_reduces_latency(self):
        slow = network_timing(BW_CNN_A10, dram_gbps=8.0)
        fast = network_timing(BW_CNN_A10, dram_gbps=32.0)
        assert fast.latency_ms < slow.latency_ms

    def test_stream_cycles_scale_with_precision(self):
        spec = TABLE1_CNN_3X3
        narrow = conv_layer_stream_cycles(spec, BW_CNN_A10, 14.0)
        wide = conv_layer_stream_cycles(
            spec, BW_CNN_A10.replace(mantissa_bits=8), 14.0)
        assert wide > narrow

    def test_effective_tflops_positive(self):
        t = network_timing(BW_CNN_A10)
        assert 0 < t.effective_tflops < BW_CNN_A10.peak_tflops
