"""Tests for the cycle-level timing model: latency algebra, scheduler
behaviors, and the calibrated Table V reproduction."""

import pytest

from repro.baselines.deepbench import SUITE, published_row
from repro.compiler.lowering import compile_rnn_shape
from repro.config import BW_S10
from repro.errors import ExecutionError
from repro.isa import InstructionChain, MemId, ProgramBuilder, \
    mv_mul, v_rd, v_relu, v_sigm, v_tanh, v_wr, vv_add, vv_mul
from repro.timing import (
    LatencyConstants,
    LatencyModel,
    TimingSimulator,
    steady_state_cycles_per_step,
)


@pytest.fixture
def model():
    return LatencyModel(BW_S10)


def chain_of(*body):
    return InstructionChain([v_rd(MemId.InitialVrf, 0), *body,
                             v_wr(MemId.InitialVrf, 64)])


class TestLatencyModel:
    def test_mvm_issue_single_tile(self, model):
        """One native tile streams in N/lanes = 10 cycles on BW_S10."""
        assert model.mvm_issue_cycles(1, 1) == 10

    def test_mvm_issue_gru2816(self, model):
        """8x8 tiles over 6 engines: ceil(64/6) * 10 = 110 cycles —
        6 such mv_muls give the 660-cycle GRU-2816 step (Table V)."""
        assert model.mvm_issue_cycles(8, 8) == 110

    def test_mvm_issue_scales_with_engines(self):
        more = LatencyModel(BW_S10.replace(tile_engines=12))
        assert more.mvm_issue_cycles(8, 8) == 60

    def test_pointwise_issue(self, model):
        assert model.pointwise_issue_cycles(4) == 40

    def test_chain_latency_components(self, model):
        lat = model.chain_latency(chain_of(mv_mul(0), vv_add(1),
                                           v_sigm()), rows=2, cols=2)
        assert lat.issue == 10  # ceil(4/6) = 1 pass
        assert lat.depth_first > 0
        assert lat.completion == lat.depth_first + lat.issue
        assert len(lat.operand_offsets) == 2

    def test_deeper_chains_have_larger_depth(self, model):
        short = model.chain_latency(chain_of(v_relu()), 1, 1)
        long = model.chain_latency(
            chain_of(vv_add(0), v_tanh(), vv_mul(1)), 1, 1)
        assert long.depth_first > short.depth_first

    def test_operand_offsets_monotonic(self, model):
        lat = model.chain_latency(
            chain_of(mv_mul(0), vv_add(0), v_tanh(), vv_mul(0)), 2, 2)
        assert list(lat.operand_offsets) == sorted(lat.operand_offsets)

    def test_matrix_chain_cycles_proportional_to_bytes(self, model):
        one = model.matrix_chain_cycles(1, 1.0)
        four = model.matrix_chain_cycles(4, 1.0)
        assert four == pytest.approx(4 * one)

    def test_dispatch_cycles(self, model):
        assert model.dispatch_cycles(10) == 40


class TestSchedulerBehaviors:
    def test_large_gru_is_mvm_bound(self):
        """GRU-2816 steady state ~= 6 x 110 = 660 cycles/step plus the
        forwarding residue; paper measures 662."""
        per = steady_state_cycles_per_step(
            BW_S10, lambda: compile_rnn_shape("gru", 2816, BW_S10),
            steps_a=6, steps_b=16)
        assert 650 <= per <= 720

    def test_small_models_hit_setup_floor(self):
        """Dimension-independent floor (Section VII-B2): GRU-1024 and
        GRU-2048 land within a few cycles of each other."""
        per = {
            h: steady_state_cycles_per_step(
                BW_S10, lambda h=h: compile_rnn_shape("gru", h, BW_S10),
                steps_a=6, steps_b=16)
            for h in (1024, 2048)
        }
        assert abs(per[1024] - per[2048]) < 30

    def test_lstm_floor_above_gru_floor(self):
        """LSTM steps run ~10 chains vs GRU's 9, so the LSTM floor is
        higher — as the paper measures (740 vs 632 cycles)."""
        lstm = steady_state_cycles_per_step(
            BW_S10, lambda: compile_rnn_shape("lstm", 1024, BW_S10),
            steps_a=6, steps_b=16)
        gru = steady_state_cycles_per_step(
            BW_S10, lambda: compile_rnn_shape("gru", 1024, BW_S10),
            steps_a=6, steps_b=16)
        assert lstm > gru

    def test_invocation_overhead_included_once(self):
        compiled = compile_rnn_shape("gru", 512, BW_S10)
        sim = TimingSimulator(BW_S10)
        with_ovh = sim.run(compiled.program, bindings={"steps": 1})
        without = TimingSimulator(BW_S10).run(
            compiled.program, bindings={"steps": 1},
            include_invocation_overhead=False)
        constants = LatencyConstants()
        assert with_ovh.total_cycles - without.total_cycles == \
            pytest.approx(constants.invocation_overhead)

    def test_dependency_ordering_respected(self):
        """A consumer chain never starts before its producer."""
        b = ProgramBuilder("p")
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.AddSubVrf, 0)
        b.v_rd(MemId.InitialVrf, 0)
        b.vv_add(0)
        b.v_wr(MemId.NetQ)
        sim = TimingSimulator(BW_S10, record_chains=True)
        report = sim.run(b.build(), include_invocation_overhead=False)
        producer, consumer = report.records
        assert consumer.start >= producer.start

    def test_mvm_serializes_mv_mul_chains(self):
        b = ProgramBuilder("p")
        for i in range(4):
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(0)
            b.v_wr(MemId.InitialVrf, 10 + i)
        sim = TimingSimulator(BW_S10, record_chains=True)
        report = sim.run(b.build(), include_invocation_overhead=False)
        starts = [r.start for r in report.records]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        constants = LatencyConstants()
        assert all(g >= constants.chain_setup_cycles for g in gaps)

    def test_replay_loops_reduces_repeat_cost(self):
        """A configuration-caching scheduler pays only dispatch on
        repeated chains (the CNN variant / batch-interleaving basis)."""
        compiled = compile_rnn_shape("gru", 512, BW_S10)
        plain = TimingSimulator(BW_S10).run(
            compiled.program, bindings={"steps": 50},
            include_invocation_overhead=False).total_cycles
        replay = TimingSimulator(BW_S10, replay_loops=True).run(
            compiled.program, bindings={"steps": 50},
            include_invocation_overhead=False).total_cycles
        assert replay < 0.6 * plain

    def test_weight_streaming_overlaps_compute(self):
        """Matrix chains occupy the transfer resource: an mv_mul on
        already-resident tiles is not delayed by a concurrent
        transfer, but one reading in-flight tiles waits."""
        b = ProgramBuilder("p")
        b.set_rows(4)
        b.set_columns(4)
        b.m_rd(MemId.Dram if False else MemId.NetQ)
        b.m_wr(MemId.MatrixRf, 100)
        b.set_rows(1)
        b.set_columns(1)
        b.v_rd(MemId.InitialVrf, 0)
        b.mv_mul(0)          # resident tile: no wait
        b.v_wr(MemId.InitialVrf, 1)
        b.v_rd(MemId.InitialVrf, 0)
        b.mv_mul(100)        # in-flight tile: waits for the transfer
        b.v_wr(MemId.InitialVrf, 2)
        sim = TimingSimulator(BW_S10, record_chains=True)
        report = sim.run(b.build(), include_invocation_overhead=False)
        resident, streamed = report.records
        assert streamed.start > resident.start

    def test_steady_state_helper_validates_args(self):
        with pytest.raises(ExecutionError):
            steady_state_cycles_per_step(
                BW_S10, lambda: compile_rnn_shape("gru", 512, BW_S10),
                steps_a=10, steps_b=10)


class TestReport:
    def test_effective_tflops_and_utilization(self):
        compiled = compile_rnn_shape("gru", 2816, BW_S10)
        report = TimingSimulator(BW_S10).run(
            compiled.program, bindings={"steps": 50},
            nominal_ops=50 * compiled.ops_per_step)
        assert 0 < report.utilization < 1
        assert report.effective_tflops == pytest.approx(
            report.utilization * BW_S10.peak_tflops)

    def test_latency_unit_conversion(self):
        compiled = compile_rnn_shape("gru", 512, BW_S10)
        report = TimingSimulator(BW_S10).run(
            compiled.program, bindings={"steps": 1})
        assert report.latency_ms == pytest.approx(
            report.total_cycles / 250e3)

    def test_mvm_occupancy_below_one(self):
        compiled = compile_rnn_shape("lstm", 1024, BW_S10)
        report = TimingSimulator(BW_S10).run(
            compiled.program, bindings={"steps": 20})
        assert 0 < report.mvm_occupancy < 1

    def test_summary_string(self):
        compiled = compile_rnn_shape("gru", 512, BW_S10)
        report = TimingSimulator(BW_S10).run(
            compiled.program, bindings={"steps": 1}, nominal_ops=1e6)
        assert "BW_S10" in report.summary()


class TestTable5Calibration:
    """The frozen constants reproduce the paper's measured per-step
    latencies within 10% for every Table V benchmark."""

    @pytest.mark.parametrize("bench", [b for b in SUITE
                                       if b.time_steps > 1],
                             ids=lambda b: b.name)
    def test_per_step_cycles_within_10pct(self, bench):
        pub = published_row(bench)
        paper_cycles = (pub.bw_latency_ms * 1e-3 * 250e6
                        / bench.time_steps)
        per = steady_state_cycles_per_step(
            BW_S10,
            lambda: compile_rnn_shape(bench.kind, bench.hidden_dim,
                                      BW_S10),
            steps_a=6, steps_b=16)
        assert per == pytest.approx(paper_cycles, rel=0.10)

    def test_gru512_single_step_latency(self):
        """The t=1 entry (13 us) is dominated by invocation overhead."""
        bench = next(b for b in SUITE if b.time_steps == 1)
        compiled = compile_rnn_shape(bench.kind, bench.hidden_dim,
                                     BW_S10)
        report = TimingSimulator(BW_S10).run(compiled.program,
                                             bindings={"steps": 1})
        assert report.latency_ms == pytest.approx(0.013, rel=0.15)
