"""Golden-vector conformance: committed JSON vectors per format.

Each file under ``tests/golden/numerics/`` pins the exact quantized
values, integer mantissas, and shared exponents for one format-family
member on a fixed workload (seeded rows plus E8M0 boundary-exponent and
max-mantissa saturation edges). Regenerate with
``scripts/gen_numerics_golden.py`` after an intentional change.

The replay asserts three independent implementations against the
committed truth: the scalar oracle (:func:`quantize_reference`), the
vectorized quantizer (:func:`quantize`), and the executor's operand
split (:func:`decompose` + :func:`scales_of` reconstruction).
"""

import json
import pathlib

import numpy as np
import pytest

from repro.numerics.bfp import (FORMAT_FAMILY, BfpFormat, decompose,
                                quantize, quantize_reference, scales_of)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "numerics"

_FILES = sorted(GOLDEN_DIR.glob("*.json"))


def _load(path):
    with open(path) as fh:
        return json.load(fh)


def test_every_family_member_has_a_golden_file():
    assert {p.stem for p in _FILES} == set(FORMAT_FAMILY)


@pytest.mark.parametrize("path", _FILES, ids=lambda p: p.stem)
def test_golden_vectors_replay(path):
    payload = _load(path)
    spec = payload["format"]
    fmt = BfpFormat(mantissa_bits=spec["mantissa_bits"],
                    exponent_bits=spec["exponent_bits"],
                    block_size=spec["block_size"],
                    scale_granularity=spec["scale_granularity"],
                    scale_encoding=spec["scale_encoding"])
    assert fmt == FORMAT_FAMILY[spec["key"]]
    assert fmt.name == spec["label"]

    x = np.asarray(payload["input"], dtype=np.float32)
    want_values = np.asarray(payload["values"], dtype=np.float32)
    want_mant = np.asarray(payload["mantissas"], dtype=np.int64)
    want_exps = np.asarray(payload["exponents"], dtype=np.int64)

    assert np.array_equal(quantize_reference(x, fmt), want_values)
    assert np.array_equal(quantize(x, fmt), want_values)
    mant, exps = decompose(x, fmt)
    assert np.array_equal(mant.astype(np.int64), want_mant)
    assert np.array_equal(np.asarray(exps, dtype=np.int64), want_exps)
    # The operand split reconstructs the committed values exactly.
    nb = x.shape[-1] // fmt.block_size
    rebuilt = (mant.astype(np.float64)
               .reshape(x.shape[0], nb, fmt.block_size)
               * scales_of(exps, fmt)[..., np.newaxis]).reshape(x.shape)
    assert np.array_equal(rebuilt.astype(np.float32), want_values)


@pytest.mark.parametrize("path", _FILES, ids=lambda p: p.stem)
def test_golden_edges_cover_boundaries(path):
    """The committed workloads really do exercise the boundaries: both
    exponent clamps are hit and some mantissa saturates."""
    payload = _load(path)
    fmt = FORMAT_FAMILY[payload["format"]["key"]]
    exps = np.asarray(payload["exponents"])
    mant = np.abs(np.asarray(payload["mantissas"]))
    assert exps.max() == fmt.max_exponent
    assert exps.min() == fmt.min_exponent
    assert mant.max() == fmt.max_mantissa
