"""Tests for the hierarchical decode and dispatch model (Fig. 6)."""

import pytest

from repro.config import BW_S5, BW_S10, NpuConfig
from repro.timing.hdd import build_hdd_tree


@pytest.fixture
def tree():
    return build_hdd_tree(BW_S10)


class TestTreeShape:
    def test_bw_s10_counts_match_section5c(self, tree):
        """'The top-level scheduler dispatches to 6 decoders and 4
        second-level schedulers, which in turn dispatch to an
        additional 41 decoders.'"""
        assert len(tree.top_level_decoders) == 6
        assert len(tree.second_level_schedulers) == 4
        assert len(tree.third_level_decoders) == 41

    def test_per_tile_engine_decoder_groups(self, tree):
        mvm = next(s for s in tree.second_level_schedulers
                   if s.name == "MVM scheduler")
        # 5 decoders per tile engine + 1 monolithic add-reduction.
        assert len(mvm.children) == 5 * BW_S10.tile_engines + 1

    def test_mfu_schedulers_scale_with_mfus(self):
        cfg = BW_S10.replace(mfus=4)
        tree = build_hdd_tree(cfg)
        mfu_scheds = [s for s in tree.second_level_schedulers
                      if s.name.startswith("MFU")]
        assert len(mfu_scheds) == 4

    def test_data_plane_fanout_covers_dpes(self, tree):
        """Tile-engine dispatchers drive one signal per dot-product
        engine; total fanout exceeds the DPE count."""
        assert tree.data_plane_fanout > \
            BW_S10.tile_engines * BW_S10.dot_product_engines

    def test_walk_visits_every_node(self, tree):
        assert tree.total_nodes == (
            1 + len(tree.top_level_decoders)
            + len(tree.second_level_schedulers)
            + len(tree.third_level_decoders))

    def test_smaller_instance_has_smaller_tree(self):
        assert build_hdd_tree(BW_S5).total_nodes == \
            build_hdd_tree(BW_S10).total_nodes  # same engines/MFUs
        tiny = NpuConfig(name="t", tile_engines=2, lanes=4,
                         native_dim=8, mrf_size=8)
        assert build_hdd_tree(tiny).total_nodes < \
            build_hdd_tree(BW_S10).total_nodes


class TestExpansion:
    def test_7_million_ops_from_one_instruction(self, tree):
        """Section IV-C: in the largest GRU 'a single instruction can
        be configured to dispatch over 7 million operations' — the
        useful (unpadded) work of one 8x8-tiled mv_mul at N=400."""
        padded = tree.mv_mul_primitive_ops(8, 8)
        assert padded == 8 * 8 * 400 * 400
        useful = 2816 * 2816
        assert useful > 7e6
        assert padded >= useful

    def test_dispatch_sustains_pipeline_for_rnn_chains(self, tree):
        """One compound instruction per ~4 cycles keeps the pipeline
        fed: a 6-instruction chain dispatches in 24 cycles, well under
        its 110-cycle issue occupancy on large models."""
        assert tree.dispatch_sustains(issue_cycles_per_chain=110,
                                      instructions_per_chain=6)

    def test_dispatch_limits_tiny_chains(self, tree):
        assert not tree.dispatch_sustains(issue_cycles_per_chain=10,
                                          instructions_per_chain=6)
