"""Dynamic batching serving layer: curves, policies, and the queue.

Covers the measured :class:`ServiceTimeCurve`, the deterministic
SLO-aware :class:`AdaptiveBatchPolicy`, and the :class:`DynamicBatcher`
serving loop in both discrete-event (curve) and real-execution
(service) modes — including the central serving-stack contract: every
request served through a batched dispatch produces outputs
bit-identical to invoking that request alone, with tracing and metrics
attached. The SLO sweep payload, the batch-occupancy observability
path, and the batched microservice latency model ride along.
"""

import numpy as np
import pytest

from repro.compiler import compile_lstm
from repro.models import LstmReference
from repro.obs import Metrics, Tracer, render_prometheus
from repro.obs.dashboard import (render_html_dashboard,
                                 render_text_dashboard)
from repro.obs.timeseries import TimeSeriesStore
from repro.system import (
    AdaptiveBatchPolicy,
    BatchPolicy,
    BatchingError,
    BatchingServer,
    DynamicBatcher,
    FpgaNode,
    HardwareMicroservice,
    ServiceError,
    ServiceTimeCurve,
    record_batch_series,
    render_slo_sweep,
    slo_sweep,
)

# A strongly sublinear measured shape: batch-16 costs 2.5x batch-1 in
# aggregate, i.e. 6.4x the per-request throughput.
CURVE = ServiceTimeCurve((1, 2, 4, 8, 16),
                         (1e-3, 1.1e-3, 1.3e-3, 1.7e-3, 2.5e-3))


@pytest.fixture
def compiled(small_config):
    return compile_lstm(LstmReference(16, 16, seed=0), small_config)


@pytest.fixture
def service(compiled):
    return HardwareMicroservice("svc", FpgaNode("svc-node", compiled))


def _request_inputs(compiled, count, steps, seed=5):
    """Per-request input lists with distinct power-of-two scalings
    (lossless in float32, so batching must be bit-transparent)."""
    rng = np.random.default_rng(seed)
    xs = [rng.uniform(-1, 1, compiled.input_length).astype(np.float32)
          for _ in range(steps)]
    return [[(x * 2.0 ** (-(r % 5))).astype(np.float32) for x in xs]
            for r in range(count)]


class TestServiceTimeCurve:
    def test_interpolates_between_measured_points(self):
        assert CURVE(1) == pytest.approx(1e-3)
        assert CURVE(16) == pytest.approx(2.5e-3)
        assert CURVE(3) == pytest.approx(1.2e-3)  # midpoint of 2 and 4

    def test_extrapolates_at_last_marginal_cost(self):
        slope = (2.5e-3 - 1.7e-3) / (16 - 8)
        assert CURVE(24) == pytest.approx(2.5e-3 + 8 * slope)

    def test_single_point_extrapolates_serially(self):
        c = ServiceTimeCurve((1,), (2e-3,))
        assert c(4) == pytest.approx(8e-3)

    def test_relative_anchors_at_one(self):
        assert CURVE.relative(1) == pytest.approx(1.0)
        assert CURVE.relative(16) == pytest.approx(2.5)

    def test_scaled_preserves_shape(self):
        scaled = CURVE.scaled(4e-3)
        assert scaled(1) == pytest.approx(4e-3)
        assert scaled.relative(8) == pytest.approx(CURVE.relative(8))
        with pytest.raises(BatchingError):
            CURVE.scaled(0.0)

    def test_best_batch_maximizes_throughput(self):
        assert CURVE.best_batch() == 16
        assert CURVE.best_batch(max_batch=5) == 4
        assert CURVE.throughput_rps(16) == pytest.approx(16 / 2.5e-3)

    def test_json_round_trip(self):
        assert ServiceTimeCurve.from_json(CURVE.to_json()) == CURVE

    @pytest.mark.parametrize("batches,times", [
        ((2, 4), (1e-3, 2e-3)),          # not anchored at 1
        ((1, 1), (1e-3, 2e-3)),          # not strictly increasing
        ((1, 2), (1e-3,)),               # length mismatch
        ((1, 2), (1e-3, 0.0)),           # non-positive time
        ((1, 2), (2e-3, 1e-3)),          # aggregate time decreasing
        ((), ()),                        # empty
    ])
    def test_rejects_malformed_curves(self, batches, times):
        with pytest.raises(BatchingError):
            ServiceTimeCurve(batches, times)

    def test_rejects_batch_below_one(self):
        with pytest.raises(BatchingError):
            CURVE(0)


class TestAdaptivePolicy:
    def test_doubles_with_headroom_and_backlog(self):
        pol = AdaptiveBatchPolicy(slo_s=1.0, max_batch=8)
        assert pol.target == 1
        assert pol.observe(0.1, 1, queue_depth=5,
                           latencies_s=[0.01]) == 2
        assert pol.observe(0.2, 2, queue_depth=5,
                           latencies_s=[0.01, 0.01]) == 4

    def test_does_not_grow_without_backlog(self):
        pol = AdaptiveBatchPolicy(slo_s=1.0, max_batch=8)
        assert pol.observe(0.1, 1, queue_depth=0,
                           latencies_s=[0.01]) == 1

    def test_creeps_up_under_backlog_despite_breached_window(self):
        # Queue-dominated latency must not stall growth: under backlog
        # a bigger batch is the only throughput lever.
        pol = AdaptiveBatchPolicy(slo_s=1.0, max_batch=8)
        assert pol.observe(0.1, 1, queue_depth=8,
                           latencies_s=[2.0] * 64) == 2
        assert pol.observe(0.2, 2, queue_depth=8,
                           latencies_s=[2.0] * 64) == 3

    def test_shrinks_multiplicatively_past_headroom(self):
        pol = AdaptiveBatchPolicy(slo_s=1.0, max_batch=8)
        for _ in range(3):
            pol.observe(0.1, 1, queue_depth=8, latencies_s=[0.01])
        assert pol.target == 8
        # No backlog but p99 past 0.85 * slo: the latency is
        # batch/timeout-induced, so halve.
        assert pol.observe(0.6, 8, queue_depth=0,
                           latencies_s=[2.0] * 64) == 4
        assert pol.observe(0.7, 4, queue_depth=0,
                           latencies_s=[2.0] * 64) == 2

    def test_empty_window_changes_nothing_without_backlog(self):
        pol = AdaptiveBatchPolicy(slo_s=1.0)
        assert pol.observe(0.1, 1, queue_depth=0,
                           latencies_s=[]) == 1
        assert pol.trace == [(0.1, 1)]

    def test_target_stays_bounded(self):
        pol = AdaptiveBatchPolicy(slo_s=1.0, min_batch=2, max_batch=4)
        for _ in range(10):
            pol.observe(0.1, 2, queue_depth=99, latencies_s=[0.01])
        assert pol.target == 4
        for _ in range(10):
            pol.observe(0.2, 4, queue_depth=0, latencies_s=[2.0])
        assert pol.target == 2

    @pytest.mark.parametrize("kwargs", [
        dict(slo_s=0.0),
        dict(slo_s=1.0, min_batch=0),
        dict(slo_s=1.0, min_batch=5, max_batch=4),
        dict(slo_s=1.0, window=0),
        dict(slo_s=1.0, grow_headroom=0.9, shrink_headroom=0.85),
        dict(slo_s=1.0, grow_headroom=0.0),
    ])
    def test_rejects_malformed_policies(self, kwargs):
        with pytest.raises(BatchingError):
            AdaptiveBatchPolicy(**kwargs)

    def test_batch_policy_validation(self):
        with pytest.raises(BatchingError):
            BatchPolicy(max_batch=0)
        with pytest.raises(BatchingError):
            BatchPolicy(timeout_s=-1.0)


class TestDynamicBatcherCurveMode:
    def test_full_batch_dispatches_together(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4,
                                             timeout_s=1e-2),
                                 curve=CURVE)
        res = batcher.run([0.0, 0.0, 0.0, 0.0])
        assert res.batch_sizes == [4]
        assert all(r.start == 0.0 for r in res.requests)
        assert all(r.finish == pytest.approx(CURVE(4))
                   for r in res.requests)

    def test_lone_request_waits_out_the_timeout(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4,
                                             timeout_s=5e-3),
                                 curve=CURVE)
        res = batcher.run([0.0])
        assert res.batch_sizes == [1]
        assert res.requests[0].start == pytest.approx(5e-3)
        assert res.requests[0].latency == pytest.approx(5e-3 + CURVE(1))

    def test_adaptive_target_trace_is_returned(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch=8, timeout_s=1e-3), curve=CURVE,
            adaptive=AdaptiveBatchPolicy(slo_s=0.05, max_batch=8))
        arrivals = [i * 1e-4 for i in range(64)]
        res = batcher.run(arrivals)
        assert len(res.target_trace) == len(res.batch_sizes)
        assert max(t for _, t in res.target_trace) > 1

    def test_metrics_contract(self):
        metrics = Metrics()
        batcher = DynamicBatcher(BatchPolicy(max_batch=4,
                                             timeout_s=1e-3),
                                 curve=CURVE, metrics=metrics)
        batcher.run([0.0, 0.0, 0.0, 0.0, 0.01])
        assert metrics.counters["serving.requests"].value == 5
        assert metrics.counters["serving.dispatches"].value == 2
        text = render_prometheus(metrics=metrics)
        assert "repro_serving_batch_occupancy_count 2" in text
        assert "repro_serving_queue_wait_s_count 5" in text
        assert "repro_serving_requests_total 5" in text

    def test_rejects_bad_configurations(self):
        with pytest.raises(BatchingError):
            DynamicBatcher(BatchPolicy())  # no backend
        with pytest.raises(BatchingError):
            DynamicBatcher(BatchPolicy(max_batch=4), curve=CURVE,
                           adaptive=AdaptiveBatchPolicy(slo_s=1.0,
                                                        max_batch=8))
        batcher = DynamicBatcher(BatchPolicy(), curve=CURVE)
        with pytest.raises(BatchingError):
            batcher.run([1.0, 0.5])  # unsorted
        with pytest.raises(BatchingError):
            batcher.run([0.0], inputs=[[np.zeros(16)]])  # curve mode


class TestServingStackBitEquality:
    """The tentpole contract: dispatches through the serving stack —
    queue, batcher, microservice, batched replay — return per-request
    outputs bit-identical to sequential invocation, with a tracer and
    metrics attached the whole way."""

    @pytest.mark.tier1
    def test_batched_serving_matches_sequential_invocation(
            self, compiled, service):
        steps, count = 3, 10
        inputs = _request_inputs(compiled, count, steps)
        # Arrivals force mixed batch sizes: a burst, then stragglers.
        arrivals = [0.0] * 4 + [0.01] * 3 + [0.02, 0.5, 0.9]
        tracer, metrics = Tracer(unit="s"), Metrics()
        batcher = DynamicBatcher(
            BatchPolicy(max_batch=4, timeout_s=2e-3), service=service,
            adaptive=AdaptiveBatchPolicy(slo_s=1.0, max_batch=4),
            tracer=tracer, metrics=metrics)
        res = batcher.run(arrivals, steps=steps, inputs=inputs)

        assert len(res.requests) == count
        assert sum(res.batch_sizes) == count
        assert max(res.batch_sizes) > 1  # actually coalesced
        for k in range(count):
            seq = service.invoke(steps,
                                 functional_inputs=inputs[k]).outputs
            assert len(res.outputs[k]) == len(seq)
            for got, want in zip(res.outputs[k], seq):
                assert np.array_equal(got, want), f"request {k}"
        # Observability rode along: one span per dispatch, counters.
        spans = [s for s in tracer.spans if s.track == "batching"]
        assert len(spans) == len(res.batch_sizes)
        assert metrics.counters["serving.requests"].value == count

    def test_requests_in_one_dispatch_share_lifecycle(self, service):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4,
                                             timeout_s=1e-3),
                                 service=service)
        res = batcher.run([0.0, 0.0], steps=2)
        assert res.batch_sizes == [2]
        a, b = res.requests
        assert (a.start, a.finish) == (b.start, b.finish)

    def test_service_mode_requires_steps(self, service):
        batcher = DynamicBatcher(BatchPolicy(), service=service)
        with pytest.raises(BatchingError):
            batcher.run([0.0])


class TestBatchedInvocation:
    @pytest.mark.tier1
    def test_batch_one_equals_single_invocation(self, service):
        single = service.invoke(steps=4)
        batched = service.invoke_batched(steps=4, batch=1)
        assert batched.total_s == pytest.approx(single.total_s,
                                                abs=1e-12)

    def test_uncalibrated_node_is_serial(self, service):
        node = service.node
        base = node.compute_latency_s(4)
        assert not node.batch_calibrated
        assert node.batch_compute_latency_s(4, 8) == pytest.approx(
            8 * base)

    def test_calibrated_node_follows_curve(self, service):
        node = service.node
        node.set_batch_curve(CURVE.relative)
        assert node.batch_calibrated
        base = node.compute_latency_s(4)
        assert node.batch_compute_latency_s(4, 16) == pytest.approx(
            2.5 * base)
        node.set_batch_curve(None)
        assert not node.batch_calibrated

    def test_rejects_non_relative_curve(self, service):
        with pytest.raises(ServiceError):
            service.node.set_batch_curve(CURVE)  # r(1) != 1

    def test_batch_validation(self, service):
        with pytest.raises(ServiceError):
            service.invoke_batched(steps=4)
        with pytest.raises(ServiceError):
            service.invoke_batched(steps=4, batch=0)
        with pytest.raises(ServiceError):
            service.node.batch_compute_latency_s(4, 0)


class TestSloSweep:
    def test_dynamic_batching_beats_batch1_goodput(self):
        t1 = CURVE(1)
        payload = slo_sweep(CURVE, slo_s=8 * t1,
                            rates_rps=[0.8 / t1, 2.0 / t1],
                            requests=400, max_batch=16, seed=3)
        assert payload["goodput_ratio"] > 1.5
        assert len(payload["rates"]) == 2
        for row in payload["rates"]:
            assert set(row) == {
                "rate_rps", "batch1_goodput_rps", "batch1_p99_ms",
                "dynamic_goodput_rps", "dynamic_p99_ms",
                "dynamic_mean_batch", "dynamic_slo_attainment"}
        rendered = render_slo_sweep(payload)
        assert "peak goodput" in rendered
        assert f"{payload['goodput_ratio']:.2f}x" in rendered

    def test_sweep_validation(self):
        with pytest.raises(BatchingError):
            slo_sweep(CURVE, slo_s=0.0, rates_rps=[100.0])
        with pytest.raises(BatchingError):
            slo_sweep(CURVE, slo_s=1.0, rates_rps=[])

    def test_batching_server_from_curve(self):
        server = BatchingServer.from_curve(CURVE, max_batch=16,
                                           timeout_s=1e-3)
        assert server.capacity_rps() == pytest.approx(16 / CURVE(16))
        from repro.system.loadgen import LoadError
        with pytest.raises(LoadError):
            BatchingServer.from_curve(3.0, max_batch=16,
                                      timeout_s=1e-3)


class TestBatchObservability:
    def test_record_batch_series_feeds_dashboards(self):
        store = TimeSeriesStore(interval_s=1.0, windows=8)
        log = [(0.5, 4), (0.6, 8), (3.5, 2), (7.9, 16)]
        record_batch_series(log, store)
        text = render_text_dashboard(store)
        assert "batch size" in text
        assert "peak=16.0" in text
        html = render_html_dashboard(store)
        assert "batch occupancy (requests/dispatch)" in html

    def test_unbatched_store_has_no_batch_strip(self):
        store = TimeSeriesStore(interval_s=1.0, windows=8)
        record_batch_series([], store)
        assert "batch size" not in render_text_dashboard(store)
