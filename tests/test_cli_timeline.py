"""Tests for the CLI and the timeline renderer."""

import pytest

from repro.cli import main
from repro.compiler.lowering import compile_rnn_shape
from repro.config import BW_S10
from repro.errors import ExecutionError
from repro.timing import TimingSimulator, occupancy, render_timeline


class TestCli:
    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "BW_S10" in out and "96000" in out

    def test_time(self, capsys):
        assert main(["time", "gru", "512", "10"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "TFLOPS" in out

    def test_disassemble(self, capsys):
        assert main(["disassemble", "lstm", "256"]) == 0
        out = capsys.readouterr().out
        assert "mv_mul" in out and "loop steps {" in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_serve_faults(self, capsys):
        assert main(["serve-faults", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "Serving under faults" in out
        assert "avail %" in out

    def test_specialize(self, capsys):
        assert main(["specialize", "gru", "512", "Arria 10 1150"]) == 0
        out = capsys.readouterr().out
        assert "effective TFLOPS" in out

    def test_specialize_unknown_device(self, capsys):
        assert main(["specialize", "gru", "512", "Virtex"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTimeline:
    def make_report(self):
        compiled = compile_rnn_shape("gru", 1024, BW_S10)
        sim = TimingSimulator(BW_S10, record_chains=True)
        return sim.run(compiled.program, bindings={"steps": 3},
                       include_invocation_overhead=False)

    def test_render_contains_rows_and_summary(self):
        text = render_timeline(self.make_report())
        assert "timeline:" in text
        assert "M" in text          # mv_mul chains
        assert "=" in text          # point-wise chains
        assert "MVM busy" in text

    def test_requires_records(self):
        compiled = compile_rnn_shape("gru", 512, BW_S10)
        report = TimingSimulator(BW_S10).run(compiled.program,
                                             bindings={"steps": 1})
        with pytest.raises(ExecutionError):
            render_timeline(report)

    def test_max_chains_truncation(self):
        text = render_timeline(self.make_report(), max_chains=5)
        assert "more chains not shown" in text

    def test_occupancy_summary(self):
        report = self.make_report()
        summary = occupancy(report)
        assert summary.chains == report.chains_executed
        assert 0 < summary.mvm_occupancy < 1
        assert "chains" in summary.render()

    def test_labels(self):
        report = self.make_report()
        text = render_timeline(report, max_chains=3,
                               labels=["alpha", "beta"])
        assert "alpha" in text and "beta" in text
