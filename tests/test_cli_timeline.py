"""Tests for the CLI and the timeline renderer."""

import json

import pytest

from repro.cli import main
from repro.compiler.lowering import compile_rnn_shape
from repro.config import BW_S10
from repro.errors import ExecutionError
from repro.timing import TimingSimulator, occupancy, render_timeline
from repro.timing.report import ChainRecord, TimingReport


class TestCli:
    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "BW_S10" in out and "96000" in out

    def test_time(self, capsys):
        assert main(["time", "gru", "512", "10"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "TFLOPS" in out

    def test_disassemble(self, capsys):
        assert main(["disassemble", "lstm", "256"]) == 0
        out = capsys.readouterr().out
        assert "mv_mul" in out and "loop steps {" in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_serve_faults(self, capsys):
        assert main(["serve-faults", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "Serving under faults" in out
        assert "avail %" in out

    def test_specialize(self, capsys):
        assert main(["specialize", "gru", "512", "Arria 10 1150"]) == 0
        out = capsys.readouterr().out
        assert "effective TFLOPS" in out

    def test_specialize_unknown_device(self, capsys):
        assert main(["specialize", "gru", "512", "Virtex"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTimeline:
    def make_report(self):
        compiled = compile_rnn_shape("gru", 1024, BW_S10)
        sim = TimingSimulator(BW_S10, record_chains=True)
        return sim.run(compiled.program, bindings={"steps": 3},
                       include_invocation_overhead=False)

    def test_render_contains_rows_and_summary(self):
        text = render_timeline(self.make_report())
        assert "timeline:" in text
        assert "M" in text          # mv_mul chains
        assert "=" in text          # point-wise chains
        assert "MVM busy" in text

    def test_requires_records(self):
        compiled = compile_rnn_shape("gru", 512, BW_S10)
        report = TimingSimulator(BW_S10).run(compiled.program,
                                             bindings={"steps": 1})
        with pytest.raises(ExecutionError):
            render_timeline(report)

    def test_max_chains_truncation(self):
        text = render_timeline(self.make_report(), max_chains=5)
        assert "more chains not shown" in text

    def test_occupancy_summary(self):
        report = self.make_report()
        summary = occupancy(report)
        assert summary.chains == report.chains_executed
        assert 0 < summary.mvm_occupancy < 1
        assert "chains" in summary.render()

    def test_labels(self):
        report = self.make_report()
        text = render_timeline(report, max_chains=3,
                               labels=["alpha", "beta"])
        assert "alpha" in text and "beta" in text

    def test_labels_follow_chain_index_not_row_position(self):
        # Regression: rows must be labeled by each record's chain
        # index, not its row position — records with gaps in their
        # index sequence (matrix chains interleaved, truncated views)
        # used to shift every following label up by one.
        records = [
            ChainRecord(index=0, start=0.0, issue=4.0, depth_first=2.0,
                        completion=10.0, has_mv_mul=True, rows=1, cols=1),
            ChainRecord(index=2, start=10.0, issue=4.0, depth_first=2.0,
                        completion=20.0, has_mv_mul=False, rows=1,
                        cols=1),
        ]
        report = TimingReport(config=BW_S10, total_cycles=20.0,
                              nominal_ops=0.0, mvm_busy_cycles=4.0,
                              chains_executed=3,
                              instructions_dispatched=6,
                              records=records)
        labels = ["gates", "SKIPPED", "pointwise"]
        text = render_timeline(report, labels=labels)
        rows = [line for line in text.splitlines() if "|" in line]
        assert "gates" in rows[0]
        assert "pointwise" in rows[1]
        assert "SKIPPED" not in text
        # Records beyond the label list fall back to their index.
        assert "#2" in render_timeline(report, labels=["gates"])


class TestTraceCli:
    def test_trace_lstm_writes_valid_chrome_trace(self, tmp_path,
                                                  capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert main(["trace", "lstm", "--hidden", "256", "--steps", "3",
                     "--out", str(out), "--jsonl", str(jsonl)]) == 0
        text = capsys.readouterr().out
        assert "occupancy (report):" in text
        assert "trace/report MVM occupancy match: yes" in text
        data = json.loads(out.read_text())
        events = data["traceEvents"]
        assert {e["ph"] for e in events} >= {"X", "M"}
        assert any(e["ph"] == "X" and e["name"] == "chain"
                   for e in events)
        assert any(e["ph"] == "X" and e["name"] == "run"
                   for e in events)
        for line in jsonl.read_text().splitlines():
            json.loads(line)

    def test_trace_serve_faults_nested_spans_and_breaker_events(
            self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "serve-faults", "--requests", "150",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "availability:" in text
        events = json.loads(out.read_text())["traceEvents"]
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        # request -> attempt -> replica span nesting (same trace).
        assert len(by_name["request"]) == 150
        assert by_name["attempt"] and by_name["replica"]
        # Scheduled crash/repair markers and breaker transitions.
        assert by_name["fault:crash"][0]["ph"] == "i"
        assert "fault:repair" in by_name
        assert any(e["args"].get("to_state") == "open"
                   for e in by_name.get("breaker", []))

    def test_trace_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["trace", "resnet"])
