"""Additional timing-model coverage: CNN path details, replay on
matrix chains, cross-config behaviour."""

import pytest

from repro.compiler.lowering import compile_rnn_shape
from repro.compiler.streaming import compile_lstm_streamed_shape
from repro.config import BW_A10, BW_CNN_A10, BW_S5, BW_S10
from repro.models.cnn import TABLE1_CNN_3X3, ConvSpec
from repro.timing import TimingSimulator, steady_state_cycles_per_step
from repro.timing.cnn import (
    CnnLayerTiming,
    block_packed_conv_cycles,
    conv_layer_stream_cycles,
    network_timing,
)


class TestCrossConfig:
    @pytest.mark.parametrize("config", [BW_S5, BW_A10, BW_S10],
                             ids=lambda c: c.name)
    def test_gru_runs_on_every_generation(self, config):
        """The same program model times on all three instances; bigger
        generations are never slower per step."""
        hidden = 256  # fits even the Stratix V MRF
        per = steady_state_cycles_per_step(
            config, lambda: compile_rnn_shape("gru", hidden, config),
            steps_a=6, steps_b=16)
        assert per > 0

    def test_generational_speedup_on_large_model(self):
        """A large GRU is MVM-bound, so BW_S10's wider MVM beats
        BW_A10's in wall-clock per step."""
        hidden = 2048
        times = {}
        for config in (BW_A10, BW_S10):
            cfg = config if config.mrf_capacity_elements >= \
                6 * hidden * hidden else config.replace(
                    mrf_size=config.mrf_size * 4)
            per = steady_state_cycles_per_step(
                cfg, lambda c=cfg: compile_rnn_shape("gru", hidden, c),
                steps_a=6, steps_b=16)
            times[config.name] = per * cfg.cycle_time_s
        assert times["BW_S10"] < times["BW_A10"]


class TestReplayOnStreams:
    def test_replay_does_not_change_transfer_time(self):
        """Replay caches decode, not the DRAM port: streamed weights
        stay bandwidth-bound."""
        compiled = compile_lstm_streamed_shape(1024, BW_S10)
        plain = TimingSimulator(BW_S10).run(
            compiled.program, bindings={"steps": 6},
            include_invocation_overhead=False).total_cycles
        replay = TimingSimulator(BW_S10, replay_loops=True).run(
            compiled.program, bindings={"steps": 6},
            include_invocation_overhead=False).total_cycles
        assert replay == pytest.approx(plain, rel=0.05)


class TestCnnPathDetails:
    def test_layer_timing_dataclass(self):
        layer = CnnLayerTiming(name="l", spec=TABLE1_CNN_3X3,
                               compute_cycles=100.0, stream_cycles=40.0)
        assert layer.cycles == 100.0
        assert not layer.stream_bound

    def test_block_packing_monotone_in_pixels(self):
        small = ConvSpec(14, 14, 64, kernels=64, kernel_h=3, kernel_w=3)
        large = ConvSpec(28, 28, 64, kernels=64, kernel_h=3, kernel_w=3)
        assert block_packed_conv_cycles(large, BW_S10) > \
            block_packed_conv_cycles(small, BW_S10)

    def test_stream_cycles_inverse_in_bandwidth(self):
        spec = TABLE1_CNN_3X3
        slow = conv_layer_stream_cycles(spec, BW_CNN_A10, 7.0)
        fast = conv_layer_stream_cycles(spec, BW_CNN_A10, 28.0)
        assert slow == pytest.approx(4 * fast)

    def test_network_timing_custom_layers(self):
        from repro.models.resnet import NetworkLayer
        layers = [NetworkLayer("only", TABLE1_CNN_3X3)]
        timing = network_timing(BW_CNN_A10, layers)
        assert len(timing.layers) == 1
        assert timing.total_ops == TABLE1_CNN_3X3.matmul_ops

    def test_repeated_layers_scale_cycles(self):
        from repro.models.resnet import NetworkLayer
        once = network_timing(BW_CNN_A10,
                              [NetworkLayer("l", TABLE1_CNN_3X3, 1)])
        thrice = network_timing(BW_CNN_A10,
                                [NetworkLayer("l", TABLE1_CNN_3X3, 3)])
        assert thrice.compute_cycles == pytest.approx(
            3 * once.compute_cycles)
