"""Tests for binary encoding, including a hypothesis round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa import (
    Instruction,
    MemId,
    Opcode,
    ScalarReg,
    decode,
    decode_stream,
    encode,
    encode_stream,
    end_chain,
    m_rd,
    mv_mul,
    s_wr,
    v_rd,
    v_tanh,
    v_wr,
    vv_add,
)
from repro.isa.encoding import MAX_OPERAND


class TestEncodeDecode:
    @pytest.mark.parametrize("instr", [
        v_rd(MemId.NetQ),
        v_rd(MemId.InitialVrf, 12),
        v_wr(MemId.AddSubVrf, 1023),
        m_rd(MemId.Dram, 7),
        mv_mul(305),
        vv_add(0),
        v_tanh(),
        s_wr(ScalarReg.Columns, 5),
        end_chain(),
    ])
    def test_roundtrip_examples(self, instr):
        assert decode(encode(instr)) == instr

    def test_words_are_32_bit(self):
        assert 0 <= encode(mv_mul(8191)) < (1 << 32)

    def test_operand_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode(mv_mul(MAX_OPERAND + 1))
        with pytest.raises(EncodingError):
            encode(v_rd(MemId.Dram, MAX_OPERAND + 1))

    def test_max_operand_encodes(self):
        assert decode(encode(mv_mul(MAX_OPERAND))).index == MAX_OPERAND

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(31 << 27)

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_decode_rejects_bad_memid(self):
        # V_RD opcode with operand1 = 7 (no such MemId).
        word = (int(Opcode.V_RD) << 27) | (7 << 13)
        with pytest.raises(EncodingError):
            decode(word)

    def test_netq_index_absence_roundtrips(self):
        instr = decode(encode(v_rd(MemId.NetQ)))
        assert instr.operand2 is None


# -- hypothesis: any well-formed instruction survives a round trip --------

def instruction_strategy():
    mem_reads = st.builds(
        v_rd,
        st.sampled_from([MemId.InitialVrf, MemId.AddSubVrf,
                         MemId.MultiplyVrf, MemId.Dram]),
        st.integers(0, MAX_OPERAND))
    mem_writes = st.builds(
        v_wr,
        st.sampled_from([MemId.InitialVrf, MemId.AddSubVrf,
                         MemId.MultiplyVrf, MemId.Dram]),
        st.integers(0, MAX_OPERAND))
    indexed = st.builds(
        lambda op, idx: Instruction(op, idx),
        st.sampled_from([Opcode.MV_MUL, Opcode.VV_ADD, Opcode.VV_A_SUB_B,
                         Opcode.VV_B_SUB_A, Opcode.VV_MAX, Opcode.VV_MUL]),
        st.integers(0, MAX_OPERAND))
    unary = st.sampled_from(
        [Instruction(Opcode.V_RELU), Instruction(Opcode.V_SIGM),
         Instruction(Opcode.V_TANH), Instruction(Opcode.END_CHAIN)])
    scalar = st.builds(s_wr, st.sampled_from(list(ScalarReg)),
                       st.integers(0, MAX_OPERAND))
    return st.one_of(mem_reads, mem_writes, indexed, unary, scalar)


@given(instruction_strategy())
def test_roundtrip_property(instr):
    assert decode(encode(instr)) == instr


@given(st.lists(instruction_strategy(), max_size=60))
@settings(max_examples=50)
def test_stream_roundtrip_property(instructions):
    data = encode_stream(instructions)
    assert decode_stream(data) == instructions


class TestStreams:
    def test_stream_header_magic(self):
        data = encode_stream([end_chain()])
        assert data[:4] == b"BWNP"

    def test_stream_rejects_corrupt_magic(self):
        data = bytearray(encode_stream([end_chain()]))
        data[0] ^= 0xFF
        with pytest.raises(EncodingError):
            decode_stream(bytes(data))

    def test_stream_rejects_truncation(self):
        data = encode_stream([end_chain(), v_tanh()])
        with pytest.raises(EncodingError):
            decode_stream(data[:-2])

    def test_stream_rejects_short_header(self):
        with pytest.raises(EncodingError):
            decode_stream(b"BW")

    def test_empty_stream(self):
        assert decode_stream(encode_stream([])) == []

    def test_program_stream_roundtrips(self):
        """A compiled program's dynamic stream encodes and decodes."""
        from repro.compiler.lowering import compile_rnn_shape
        from repro.config import NpuConfig
        cfg = NpuConfig(name="t", tile_engines=2, lanes=4, native_dim=16,
                        mrf_size=64)
        compiled = compile_rnn_shape("gru", 24, cfg)
        stream = list(compiled.program.instruction_stream({"steps": 2}))
        assert decode_stream(encode_stream(stream)) == stream
