"""Tests for the extension features: batch interleaving, weight
streaming, stacked LSTMs, and the text CNN."""

import numpy as np
import pytest

from repro.compiler import (
    compile_lstm_interleaved,
    compile_lstm_streamed,
    compile_lstm_streamed_shape,
    compile_rnn_shape,
    compile_stacked_lstm,
    compile_text_cnn,
    reference_stacked_run,
)
from repro.config import BW_S10, NpuConfig
from repro.errors import CompileError
from repro.models import LstmReference
from repro.models.textcnn import TextCnnReference
from repro.timing import TimingSimulator


@pytest.fixture
def cfg():
    return NpuConfig(name="x", tile_engines=2, lanes=4, native_dim=16,
                     mrf_size=512, initial_vrf_depth=256,
                     addsub_vrf_depth=256, multiply_vrf_depth=256,
                     mantissa_bits=0)


def _per_step(compiled, config, replay=False):
    a = TimingSimulator(config, replay_loops=replay).run(
        compiled.program, bindings={"steps": 4},
        include_invocation_overhead=False).total_cycles
    b = TimingSimulator(config, replay_loops=replay).run(
        compiled.program, bindings={"steps": 10},
        include_invocation_overhead=False).total_cycles
    return (b - a) / 6


class TestInterleaved:
    def test_matches_independent_references(self, cfg, rng):
        model = LstmReference(24, 24, seed=31)
        compiled = compile_lstm_interleaved(model, cfg, batch=3)
        seqs = [[rng.uniform(-1, 1, 24).astype(np.float32)
                 for _ in range(4)] for _ in range(3)]
        got = compiled.run_batch(seqs, exact=True)
        for b in range(3):
            want = model.run(seqs[b])
            assert np.allclose(got[b][-1], want[-1], atol=1e-5)

    def test_batch1_equals_plain_lowering(self, cfg, rng):
        model = LstmReference(20, 20, seed=32)
        inter = compile_lstm_interleaved(model, cfg, batch=1)
        xs = [rng.uniform(-1, 1, 20).astype(np.float32)
              for _ in range(3)]
        got = inter.run_batch([xs], exact=True)[0]
        from repro.compiler import compile_lstm
        want = compile_lstm(model, cfg).run_sequence(xs, exact=True)
        assert np.allclose(got[-1], want[-1], atol=1e-6)

    def test_chain_count_scales_with_batch(self, cfg):
        model = LstmReference(20, 20, seed=33)
        one = compile_lstm_interleaved(model, cfg, batch=1)
        three = compile_lstm_interleaved(model, cfg, batch=3)
        assert three.program.static_chain_count() == \
            3 * one.program.static_chain_count()

    def test_input_validation(self, cfg, rng):
        model = LstmReference(20, 20, seed=34)
        compiled = compile_lstm_interleaved(model, cfg, batch=2)
        xs = [rng.uniform(-1, 1, 20).astype(np.float32)]
        with pytest.raises(CompileError, match="2 sequences"):
            compiled.run_batch([xs], exact=True)
        with pytest.raises(CompileError, match="one length"):
            compiled.run_batch([xs, xs + xs], exact=True)

    def test_bad_batch_rejected(self, cfg):
        with pytest.raises(CompileError):
            compile_lstm_interleaved(LstmReference(20, 20), cfg, batch=0)

    def test_per_element_latency_flat_with_replay(self):
        """With the caching scheduler, per-element per-step latency is
        batch-independent — utilization holds across batch sizes, the
        behaviour Fig. 8 shows for BW."""
        from repro.compiler.lowering import LstmShapeOnly
        per_element = []
        for batch in (1, 2, 4):
            compiled = compile_lstm_interleaved(
                LstmShapeOnly(512, 512), BW_S10, batch=batch)
            per = _per_step(compiled, BW_S10, replay=True)
            per_element.append(per / batch)
        assert max(per_element) / min(per_element) < 1.1


class TestStreaming:
    def test_functional_matches_reference(self, cfg, rng):
        model = LstmReference(24, 24, seed=35)
        compiled = compile_lstm_streamed(model, cfg)
        xs = [rng.uniform(-1, 1, 24).astype(np.float32)
              for _ in range(4)]
        got = compiled.run_sequence(xs, exact=True)
        want = model.run(xs)
        assert np.allclose(got[-1], want[-1], atol=1e-5)

    def test_pinning_advantage_grows_with_model_size(self):
        """Streaming is bandwidth-bound: the pinned/streamed gap grows
        with weight volume — the paper's core design argument."""
        gaps = {}
        for hidden in (512, 2048):
            pinned = compile_rnn_shape("lstm", hidden, BW_S10)
            streamed = compile_lstm_streamed_shape(hidden, BW_S10)
            gaps[hidden] = (_per_step(streamed, BW_S10)
                            / _per_step(pinned, BW_S10))
        assert gaps[512] > 10
        assert gaps[2048] > 3 * gaps[512]

    def test_streamed_per_step_tracks_dram_bandwidth(self):
        """Per-step cycles ~= padded weight-tile bytes / 64 B per cycle
        (matrix chains move whole native tiles)."""
        hidden = 1024
        streamed = compile_lstm_streamed_shape(hidden, BW_S10)
        per = _per_step(streamed, BW_S10)
        tiles = 8 * BW_S10.native_tiles_for(hidden, hidden)
        tile_bytes = (BW_S10.native_dim ** 2
                      * BW_S10.weight_bits_per_element / 8)
        assert per == pytest.approx(tiles * tile_bytes / 64, rel=0.05)

    def test_shape_only_loader_raises(self):
        compiled = compile_lstm_streamed_shape(256, BW_S10)
        with pytest.raises(CompileError, match="shapes only"):
            compiled.new_simulator()


class TestStacked:
    def test_matches_reference(self, cfg, rng):
        models = [LstmReference(24, 16, seed=41),
                  LstmReference(16, 24, seed=42)]
        compiled = compile_stacked_lstm(models, cfg)
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(5)]
        got = compiled.run_sequence(xs, exact=True)
        want = reference_stacked_run(models, xs)
        assert np.allclose(got[-1], want[-1], atol=1e-5)

    def test_three_layer_stack(self, cfg, rng):
        models = [LstmReference(20, 20, seed=43),
                  LstmReference(28, 20, seed=44),
                  LstmReference(20, 28, seed=45)]
        compiled = compile_stacked_lstm(models, cfg)
        xs = [rng.uniform(-1, 1, 20).astype(np.float32)
              for _ in range(3)]
        got = compiled.run_sequence(xs, exact=True)
        want = reference_stacked_run(models, xs)
        assert np.allclose(got[-1], want[-1], atol=1e-5)

    def test_dimension_mismatch_rejected(self, cfg):
        with pytest.raises(CompileError, match="input dim"):
            compile_stacked_lstm([LstmReference(24, 16, seed=1),
                                  LstmReference(16, 20, seed=2)], cfg)

    def test_empty_stack_rejected(self, cfg):
        with pytest.raises(CompileError):
            compile_stacked_lstm([], cfg)

    def test_output_dimension_is_top_layer(self, cfg):
        models = [LstmReference(24, 16, seed=46),
                  LstmReference(32, 24, seed=47)]
        compiled = compile_stacked_lstm(models, cfg)
        assert compiled.output_length == 32
        assert compiled.input_length == 16


class TestTextCnn:
    @pytest.fixture
    def model(self):
        return TextCnnReference(vocab_size=60, embed_dim=8,
                                filter_width=3, num_filters=24,
                                num_classes=5, seed=51)

    def test_logits_match_reference(self, cfg, model, rng):
        compiled = compile_text_cnn(model, cfg)
        tokens = rng.integers(0, 60, 15)
        got = compiled.classify(tokens, exact=True)
        assert np.allclose(got, model.forward(tokens), atol=1e-5)

    def test_predictions_match_over_many_sequences(self, cfg, model,
                                                   rng):
        compiled = compile_text_cnn(model, cfg)
        for _ in range(5):
            tokens = rng.integers(0, 60, rng.integers(4, 20))
            assert compiled.predict(tokens, exact=True) == \
                model.predict(tokens)

    def test_max_pool_uses_vv_max(self, cfg, model):
        from repro.isa import Opcode
        compiled = compile_text_cnn(model, cfg)
        ops = [i.opcode
               for c in compiled.program.chains({"positions": 1})
               for i in c]
        assert Opcode.VV_MAX in ops

    def test_reference_validation(self, model):
        with pytest.raises(ValueError):
            model.embed([0, 1])       # shorter than filter width
        with pytest.raises(ValueError):
            model.embed([0, 1, 999])  # out of vocabulary

    def test_shape_metadata(self, model):
        shape = model.shape(sequence_length=15)
        assert shape.conv_positions == 13
        assert shape.patch_length == 24
        assert shape.total_ops > 0
