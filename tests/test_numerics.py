"""Tests for block floating-point numerics, including hypothesis
properties."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigError
from repro.numerics import (
    MSFP_CNN,
    MSFP_RNN,
    BfpFormat,
    bfp_dot,
    block_exponents,
    error_stats,
    expected_snr_db,
    mantissa_sweep,
    matvec_stats,
    quantization_stats,
    quantization_step,
    quantize,
    quantize_with_info,
    to_float16,
)


FMT = BfpFormat(mantissa_bits=4, exponent_bits=5, block_size=8)


class TestFormat:
    def test_paper_formats(self):
        assert MSFP_RNN.name == "1s.5e.2m"
        assert MSFP_CNN.name == "1s.5e.5m"

    def test_exponent_range_5bit(self):
        fmt = BfpFormat(2, exponent_bits=5, block_size=8)
        assert fmt.exponent_bias == 15
        assert fmt.min_exponent == -15
        assert fmt.max_exponent == 16

    def test_bits_per_element_amortizes_exponent(self):
        fmt = BfpFormat(2, exponent_bits=5, block_size=128)
        assert fmt.bits_per_element == pytest.approx(3 + 5 / 128)

    def test_invalid_formats_rejected(self):
        with pytest.raises(ConfigError):
            BfpFormat(0)
        with pytest.raises(ConfigError):
            BfpFormat(2, exponent_bits=1)
        with pytest.raises(ConfigError):
            BfpFormat(2, block_size=0)

    def test_format_bounds_rejected(self):
        with pytest.raises(ConfigError, match="mantissa_bits"):
            BfpFormat(13)
        with pytest.raises(ConfigError, match="exponent_bits"):
            BfpFormat(2, exponent_bits=11)
        with pytest.raises(ConfigError, match="block_size"):
            BfpFormat(2, block_size=4097)
        with pytest.raises(ConfigError, match="block_size"):
            BfpFormat(2, block_size=-8)

    def test_bad_granularity_and_encoding_rejected(self):
        with pytest.raises(ConfigError, match="scale_granularity"):
            BfpFormat(2, scale_granularity="row")
        with pytest.raises(ConfigError, match="scale_encoding"):
            BfpFormat(2, scale_encoding="e5m2")

    def test_e8m0_requires_8_exponent_bits(self):
        with pytest.raises(ConfigError, match="e8m0"):
            BfpFormat(2, exponent_bits=5, scale_encoding="e8m0")
        fmt = BfpFormat(2, exponent_bits=8, scale_encoding="e8m0")
        assert fmt.is_e8m0
        assert fmt.max_exponent == 127  # 0xFF is the NaN code
        assert fmt.min_exponent == -127

    def test_named_format_lookup(self):
        from repro.numerics import named_format
        assert named_format("mx_int8").block_size == 32
        with pytest.raises(ConfigError, match="unknown numeric format"):
            named_format("fp8")

    def test_tile_granularity_storage_amortizes_over_row(self):
        fmt = BfpFormat(2, exponent_bits=5, block_size=32,
                        scale_granularity="tile")
        assert fmt.storage_bits_per_element(128) == pytest.approx(
            3 + 5 / 128)
        # Without a row length the amortization falls back to the block.
        assert fmt.bits_per_element == pytest.approx(3 + 5 / 32)

    def test_max_mantissa(self):
        assert BfpFormat(3).max_mantissa == 7


class TestQuantize:
    def test_zero_block_stays_zero(self):
        x = np.zeros(8, dtype=np.float32)
        assert np.all(quantize(x, FMT) == 0)

    def test_values_on_the_quantization_grid_are_exact(self):
        # Block max 4.0 -> exponent 2 -> step 0.5 at 4 mantissa bits;
        # all multiples of 0.5 within +/-7.5 are exactly representable.
        x = np.array([4.0, 2.0, 1.0, 0.5, -4.0, -2.0, -1.0, -0.5],
                     dtype=np.float32)
        assert np.allclose(quantize(x, FMT), x)

    def test_quantization_error_bounded_by_step(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-3, 3, 64).astype(np.float32)
        q = quantize(x, FMT)
        exps = block_exponents(x, FMT)
        for b in range(8):
            step = quantization_step(FMT, int(exps[b]))
            err = np.abs(q[b * 8:(b + 1) * 8] - x[b * 8:(b + 1) * 8])
            assert np.all(err <= step / 2 + 1e-12)

    def test_block_exponent_is_floor_log2_of_max(self):
        x = np.array([0.1, 0.2, 0.3, 0.4, 5.0, 0.6, 0.7, 0.8])
        assert block_exponents(x, FMT)[0] == 2  # floor(log2 5) = 2

    def test_bad_block_length_rejected(self):
        with pytest.raises(ValueError):
            quantize(np.ones(7), FMT)

    def test_2d_quantization_blocks_along_last_axis(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, (4, 16)).astype(np.float32)
        q = quantize(x, FMT)
        assert q.shape == x.shape
        # Each row quantizes independently the same way.
        q_row = quantize(x[2], FMT)
        assert np.array_equal(q[2], q_row)

    def test_mantissas_within_range(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 10, 128).astype(np.float32)
        _, mantissas, _ = quantize_with_info(x, FMT)
        assert np.all(np.abs(mantissas) <= FMT.max_mantissa)

    def test_large_values_clamped_to_exponent_range(self):
        x = np.full(8, 1e30, dtype=np.float32)
        q = quantize(x, FMT)
        assert np.all(np.isfinite(q))

    def test_to_float16_rounds(self):
        x = np.array([1.0 + 2 ** -12], dtype=np.float32)
        assert to_float16(x)[0] == 1.0


# -- hypothesis properties ------------------------------------------------

finite_blocks = hnp.arrays(
    np.float64, (16,),
    elements=st.floats(-1e4, 1e4, allow_nan=False, width=32))


@given(finite_blocks)
@settings(max_examples=100)
def test_quantization_idempotent(x):
    """Quantizing a quantized array changes nothing."""
    fmt = BfpFormat(mantissa_bits=3, block_size=16)
    once = quantize(x, fmt)
    twice = quantize(once, fmt)
    assert np.array_equal(once, twice)


@given(finite_blocks)
@settings(max_examples=100)
def test_quantization_preserves_sign(x):
    fmt = BfpFormat(mantissa_bits=3, block_size=16)
    q = quantize(x, fmt)
    assert np.all(q * x >= 0)


@given(finite_blocks)
@settings(max_examples=100)
def test_more_mantissa_bits_never_worse(x):
    """Error is monotonically non-increasing in mantissa width."""
    errs = []
    for m in (2, 4, 6):
        fmt = BfpFormat(mantissa_bits=m, block_size=16)
        errs.append(float(np.max(np.abs(quantize(x, fmt) - x))))
    assert errs[0] >= errs[1] >= errs[2]


@given(finite_blocks, st.floats(0.25, 4.0))
@settings(max_examples=60)
def test_quantization_scale_covariant_for_pow2(x, _scale):
    """Scaling inputs by a power of two scales outputs identically.

    Holds only while the shared exponent stays inside the format's
    range: once a block's magnitude falls below ``2^min_exponent`` the
    exponent clamps and the doubled input gains mantissa resolution the
    original never had.
    """
    fmt = BfpFormat(mantissa_bits=3, block_size=16)
    amax = float(np.max(np.abs(x)))
    assume(amax == 0.0 or amax >= 2.0 ** fmt.min_exponent)
    assert np.allclose(quantize(x * 2.0, fmt), 2.0 * quantize(x, fmt),
                       rtol=1e-6, atol=1e-30)


class TestAnalysis:
    def test_error_stats_zero_error(self):
        x = np.ones(16)
        stats = error_stats(x, x)
        assert stats.snr_db == float("inf")
        assert stats.max_abs_error == 0

    def test_error_stats_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_stats(np.ones(4), np.ones(5))

    def test_snr_improves_with_mantissa(self, rng):
        x = rng.normal(0, 1, 1024)
        sweep = mantissa_sweep(x, block_size=128)
        snrs = [sweep[m].snr_db for m in (2, 3, 4, 5)]
        assert snrs == sorted(snrs)

    def test_snr_exceeds_analytic_floor(self, rng):
        """SNR should beat the (generous) analytic floor for Gaussian
        data — the Section VI claim that 2-5 mantissa bits suffice."""
        x = rng.normal(0, 1, 4096)
        for m in (2, 3, 4, 5):
            fmt = BfpFormat(mantissa_bits=m, block_size=128)
            stats = quantization_stats(x, fmt)
            assert stats.snr_db > expected_snr_db(fmt) - 3

    def test_matvec_error_small_at_5bits(self, rng):
        matrix = rng.uniform(-1, 1, (128, 128))
        vector = rng.uniform(-1, 1, 128)
        stats = matvec_stats(matrix, vector,
                             BfpFormat(mantissa_bits=5, block_size=128))
        assert stats.rel_rms_error < 0.05

    def test_bfp_dot_matches_quantized_reference(self, rng):
        fmt = BfpFormat(mantissa_bits=4, block_size=16)
        a = rng.uniform(-1, 1, 16)
        b = rng.uniform(-1, 1, 16)
        expected = np.float16(
            quantize(a, fmt).astype(np.float64)
            @ quantize(b, fmt).astype(np.float64))
        assert bfp_dot(a, b, fmt) == expected

    def test_str_rendering(self):
        stats = quantization_stats(np.linspace(-1, 1, 128), MSFP_RNN)
        assert "SNR" in str(stats)
