"""Compiled replay vs. interpreter: bit-equality across models/configs.

The compiled path (``run(compiled=True)`` / :mod:`repro.functional.replay`)
is a pure performance optimization: outputs, architectural snapshots,
execution statistics, per-memory access counters, trace spans, and
metrics counters must all be bit-identical to the vectorized
interpreter. Batched replay must likewise match per-request sequential
compiled runs exactly. These tests pin that contract for LSTM/GRU
models on narrow-mantissa (mb=2) and wide-mantissa (mb=5) formats, in
observed (traced) and unobserved modes, and across batch sizes.
"""

import numpy as np
import pytest

from repro.compiler import compile_gru, compile_lstm
from repro.config import NpuConfig
from repro.errors import UnbatchablePlanError
from repro.functional.replay import BatchedReplay
from repro.isa import MemId, ProgramBuilder, ScalarReg
from repro.models import GruReference, LstmReference
from repro.obs import Metrics, Tracer

MB2 = NpuConfig(name="replay_mb2", native_dim=128, lanes=4,
                tile_engines=2, mrf_size=256, mantissa_bits=2)
MB5 = NpuConfig(name="replay_mb5", native_dim=128, lanes=4,
                tile_engines=2, mrf_size=256, mantissa_bits=5)

_COMPILERS = {"lstm": (LstmReference, compile_lstm),
              "gru": (GruReference, compile_gru)}


def _compiled_model(kind, hidden, cfg, seed=3):
    model_cls, comp_fn = _COMPILERS[kind]
    return comp_fn(model_cls(hidden_dim=hidden, input_dim=hidden,
                             seed=seed), cfg)


def _inputs(n, steps, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-1, 1, n).astype(np.float32)
            for _ in range(steps)]


def _assert_state_equal(a, b, label):
    """Recursive bit-equality over snapshot dicts (arrays, lists,
    nested dicts, scalars)."""
    assert type(a) is type(b), (label, type(a), type(b))
    if isinstance(a, dict):
        assert a.keys() == b.keys(), (label, a.keys(), b.keys())
        for k in a:
            _assert_state_equal(a[k], b[k], f"{label}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), (label, len(a), len(b))
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_state_equal(x, y, f"{label}[{i}]")
    elif isinstance(a, np.ndarray):
        assert np.array_equal(a, b, equal_nan=True), label
    else:
        assert a == b, (label, a, b)


def _assert_run_equivalent(compiled, xs, exact=False):
    sim_i = compiled.new_simulator(exact=exact)
    out_i = compiled.run_sequence(xs, sim=sim_i)
    sim_c = compiled.new_simulator(exact=exact)
    out_c = compiled.run_sequence(xs, sim=sim_c, compiled=True)

    assert len(out_i) == len(out_c)
    for a, b in zip(out_i, out_c):
        assert np.array_equal(a, b)
    _assert_state_equal(sim_i.snapshot(), sim_c.snapshot(), "snapshot")
    assert sim_i.stats.__dict__ == sim_c.stats.__dict__
    assert sim_i.mrf.reads == sim_c.mrf.reads
    assert sim_i.mrf.writes == sim_c.mrf.writes
    for mem in sim_i.vrfs:
        assert sim_i.vrfs[mem].reads == sim_c.vrfs[mem].reads, mem
        assert sim_i.vrfs[mem].writes == sim_c.vrfs[mem].writes, mem


# -- sequential compiled vs interpreter ------------------------------------

@pytest.mark.tier1
@pytest.mark.parametrize("kind,hidden,cfg", [
    ("lstm", 300, MB2),
    ("gru", 300, MB2),
    ("lstm", 200, MB5),
], ids=["lstm-mb2", "gru-mb2", "lstm-mb5"])
def test_compiled_matches_interpreter(kind, hidden, cfg):
    compiled = _compiled_model(kind, hidden, cfg)
    xs = _inputs(hidden, 4)
    _assert_run_equivalent(compiled, xs)


@pytest.mark.tier1
def test_compiled_matches_interpreter_exact_mode():
    compiled = _compiled_model("lstm", 300, MB2)
    xs = _inputs(300, 3)
    _assert_run_equivalent(compiled, xs, exact=True)


@pytest.mark.tier1
def test_traced_compiled_matches_interpreter_spans_and_counters():
    """Observed mode: span streams (name/start/end/track/attrs) and every
    metrics counter agree between interpreter and compiled replay."""
    compiled = _compiled_model("lstm", 300, MB2)
    xs = _inputs(300, 3)

    tr_i, me_i = Tracer(), Metrics()
    sim_i = compiled.new_simulator(tracer=tr_i, metrics=me_i)
    out_i = compiled.run_sequence(xs, sim=sim_i)
    tr_c, me_c = Tracer(), Metrics()
    sim_c = compiled.new_simulator(tracer=tr_c, metrics=me_c)
    out_c = compiled.run_sequence(xs, sim=sim_c, compiled=True)

    for a, b in zip(out_i, out_c):
        assert np.array_equal(a, b)

    def key(s):
        return (s.name, s.start, s.end, s.track,
                tuple(sorted(s.attrs.items())))

    assert [key(s) for s in tr_i.spans] == [key(s) for s in tr_c.spans]
    assert {k: c.value for k, c in me_i.counters.items()} == \
           {k: c.value for k, c in me_c.counters.items()}
    assert sim_i._trace_clock == sim_c._trace_clock


# -- batched replay vs sequential compiled ---------------------------------

@pytest.mark.tier1
@pytest.mark.parametrize("batch", [1, 3, 16])
def test_batched_matches_sequential_compiled(batch):
    hidden = 200 if batch == 16 else 300
    compiled = _compiled_model("gru" if batch == 3 else "lstm",
                               hidden, MB2)
    xs = _inputs(hidden, 3)
    # Per-request inputs scaled by distinct powers of two: lossless in
    # float32, so each batched lane must reproduce its sequential twin
    # bit for bit.
    xb = [[(x * 2.0 ** (-(b % 5))).astype(np.float32) for x in xs]
          for b in range(batch)]

    outs_b = compiled.run_sequence_batched(
        xb, sim=compiled.new_simulator())
    assert len(outs_b) == batch
    for b in range(batch):
        sim = compiled.new_simulator()
        seq = compiled.run_sequence(xb[b], sim=sim, compiled=True)
        assert len(outs_b[b]) == len(seq)
        for a, c in zip(outs_b[b], seq):
            assert np.array_equal(a, c), f"request {b}"


@pytest.mark.tier1
def test_batched_exact_mode_matches_sequential():
    compiled = _compiled_model("lstm", 200, MB5)
    xs = _inputs(200, 2)
    xb = [[(x * s).astype(np.float32) for x in xs]
          for s in (1.0, -0.5, 4.0)]
    outs_b = compiled.run_sequence_batched(
        xb, sim=compiled.new_simulator(exact=True))
    for b in range(3):
        sim = compiled.new_simulator(exact=True)
        seq = compiled.run_sequence(xb[b], sim=sim, compiled=True)
        for a, c in zip(outs_b[b], seq):
            assert np.array_equal(a, c), f"request {b}"


# -- forced loopable fallbacks ---------------------------------------------

def _run_batched(compiled, xb, force_fallback=None):
    """Mirror CompiledModel.run_sequence_batched but thread an explicit
    ``force_fallback`` predicate into the BatchedReplay."""
    batch, steps = len(xb), len(xb[0])
    sim = compiled.new_simulator()
    replay = BatchedReplay(sim, compiled.program, batch,
                           bindings={compiled.steps_binding: steps},
                           force_fallback=force_fallback)
    n = compiled.config.native_dim
    entries = compiled.input_vectors_per_step
    for t in range(steps):
        padded = np.zeros((batch, entries * n), dtype=np.float32)
        for r, xs in enumerate(xb):
            x = np.asarray(xs[t], dtype=np.float32).reshape(-1)
            padded[r, :x.shape[0]] = x
        for i in range(entries):
            replay.push_input(padded[:, i * n:(i + 1) * n])
    replay.run()
    per = compiled.output_vectors_per_step
    outputs = [[np.concatenate(vecs[t * per:(t + 1) * per]
                               )[:compiled.output_length]
                for t in range(steps)]
               for vecs in replay.pop_outputs()]
    return replay, outputs


@pytest.mark.tier1
def test_forced_fallback_plan_stays_batchable():
    """Demoting valid chains to loopable interpreted steps keeps the
    plan batchable and records the offending kinds as diagnostics; the
    forced plan bypasses the per-simulator plan cache."""
    compiled = _compiled_model("lstm", 200, MB2)
    sim = compiled.new_simulator()
    bindings = {compiled.steps_binding: 2}
    forced = sim.plan_for(compiled.program, bindings,
                          force_fallback=lambda pos, e: pos % 3 == 1)
    assert forced.batchable
    assert forced.loopable_fallbacks > 0
    assert forced.fallback_steps == forced.loopable_fallbacks
    assert len(forced.fallback_step_kinds) == forced.fallback_steps
    assert all(isinstance(k, str) and k for k in forced.fallback_step_kinds)
    # The cache only ever holds fully compiled plans.
    plain = sim.plan_for(compiled.program, bindings)
    assert plain is not forced
    assert plain.fallback_steps == 0
    assert plain.fallback_step_kinds == ()


@pytest.mark.tier1
def test_forced_fallback_batched_matches_sequential_compiled():
    """Forcing is semantically the identity: a batched replay with every
    third event interpreted must still reproduce per-request sequential
    fully-compiled runs bit for bit."""
    compiled = _compiled_model("gru", 200, MB2)
    xs = _inputs(200, 3)
    scales = (1.0, -0.5, 4.0)
    xb = [[(x * s).astype(np.float32) for x in xs] for s in scales]

    replay, outs = _run_batched(compiled, xb,
                                force_fallback=lambda pos, e: pos % 3 == 1)
    assert replay.plan.loopable_fallbacks > 0
    for b in range(len(scales)):
        sim = compiled.new_simulator()
        seq = compiled.run_sequence(xb[b], sim=sim, compiled=True)
        assert len(outs[b]) == len(seq)
        for got, want in zip(outs[b], seq):
            assert np.array_equal(got, want), f"request {b}"
        _assert_state_equal(replay.snapshot(b), sim.snapshot(),
                            f"snapshot[{b}]")


@pytest.mark.tier1
def test_unbatchable_plan_rejected_with_step_kinds():
    """A broken fallback tail (everything after a definitely-raising
    event) makes the plan unbatchable; BatchedReplay must refuse it
    with a structured error naming the interpreted step kinds."""
    b = ProgramBuilder("broken")
    b.s_wr(ScalarReg.Rows, 0)  # rows < 1 definitely raises
    b.v_rd(MemId.NetQ).v_wr(MemId.InitialVrf, 0)
    program = b.build()
    compiled = _compiled_model("lstm", 200, MB2)
    sim = compiled.new_simulator()
    plan = sim.plan_for(program)
    assert not plan.batchable
    assert plan.fallback_steps > plan.loopable_fallbacks
    with pytest.raises(UnbatchablePlanError) as exc_info:
        BatchedReplay(sim, program, 2)
    exc = exc_info.value
    assert tuple(exc.step_kinds) == tuple(plan.fallback_step_kinds)
    assert "s_wr:Rows" in exc.step_kinds


# -- plan-cache lifecycle --------------------------------------------------

@pytest.mark.tier1
def test_plan_cache_invalidated_on_mrf_rewrite():
    """Regression: rewriting MRF tiles between compiled runs must not
    serve results computed from stale cached weight operands. The
    compiled path keys its per-group operand caches on the MRF
    generation counter, which every tile write bumps."""
    compiled = _compiled_model("lstm", 200, MB2)
    xs = _inputs(200, 2)
    sim_c = compiled.new_simulator()
    sim_v = compiled.new_simulator()
    out_c1 = compiled.run_sequence(xs, sim=sim_c, compiled=True)
    out_v1 = compiled.run_sequence(xs, sim=sim_v)
    for a, b in zip(out_c1, out_v1):
        assert np.array_equal(a, b)

    # Overwrite the first weight tiles on both simulators identically.
    rng = np.random.default_rng(7)
    junk = rng.uniform(-1.0, 1.0,
                       (MB2.native_dim, MB2.native_dim)).astype(np.float32)
    assert sim_c.load_matrix(0, junk) == sim_v.load_matrix(0, junk)

    out_c2 = compiled.run_sequence(xs, sim=sim_c, compiled=True)
    out_v2 = compiled.run_sequence(xs, sim=sim_v)
    for a, b in zip(out_c2, out_v2):
        assert np.array_equal(a, b)
    # The rewrite was observable: stale caches would have reproduced
    # the original trajectory instead.
    assert any(not np.array_equal(a, b)
               for a, b in zip(out_c2, out_v1))


@pytest.mark.tier1
def test_repeated_compiled_runs_reuse_plan():
    """Repeated compiled runs on one simulator hit the per-sim plan
    cache and still track the interpreter bit for bit across the
    carried recurrent state. The cache key includes the entry scalar
    registers, so the key set reaches a fixed point after the second
    run (first run: initial regs; later runs: program-final regs) and
    no further compilation happens."""
    compiled = _compiled_model("gru", 200, MB2)
    xs = _inputs(200, 2)
    sim_c = compiled.new_simulator()
    sim_v = compiled.new_simulator()
    for _ in range(2):
        compiled.run_sequence(xs, sim=sim_c, compiled=True)
        compiled.run_sequence(xs, sim=sim_v)
    plans_after_first = len(sim_c._plans)
    out_c = compiled.run_sequence(xs, sim=sim_c, compiled=True)
    out_v = compiled.run_sequence(xs, sim=sim_v)
    assert len(sim_c._plans) == plans_after_first
    for a, b in zip(out_c, out_v):
        assert np.array_equal(a, b)
    _assert_state_equal(sim_v.snapshot(), sim_c.snapshot(), "snapshot")
