"""Tests for the observability layer (repro.obs): tracer, metrics,
exporters, layer instrumentation, and trace/untraced equivalence."""

import json
import warnings

import numpy as np
import pytest

from repro.compiler import compile_lstm
from repro.compiler.lowering import compile_rnn_shape
from repro.config import BW_S10
from repro.errors import ExecutionError
from repro.models import LstmReference
from repro.obs import (
    LatencyHistogram,
    Metrics,
    NULL_METRICS,
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_events,
    percentile,
    summarize,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)
from repro.system import (
    CpuStage,
    FaultInjector,
    FaultProfile,
    FederatedRuntime,
    FpgaNode,
    FpgaStage,
    HardwareMicroservice,
    MicroserviceRegistry,
    ResilientClient,
    RetryPolicy,
)
from repro.timing import (
    TimingSimulator,
    build_hdd_tree,
    occupancy,
    occupancy_from_trace,
    records_from_trace,
    render_timeline,
    render_trace_timeline,
)


class TestTracer:
    def test_nesting_via_stack(self):
        tr = Tracer(unit="cycles")
        outer = tr.begin("outer", 0.0, track="a")
        inner = tr.span("inner", 1.0, 2.0)
        tr.end(outer, 5.0)
        after = tr.span("after", 6.0, 7.0, track="b")
        assert inner.parent == outer.id
        assert inner.track == "a"          # inherited from parent
        assert after.parent is None
        assert outer.duration == 5.0
        assert tr.children(outer) == [inner]

    def test_end_attrs_merge(self):
        tr = Tracer()
        sp = tr.begin("s", 0.0, track="t", a=1)
        tr.end(sp, 2.0, b=2)
        assert sp.attrs == {"a": 1, "b": 2}

    def test_instant_and_find(self):
        tr = Tracer(unit="s")
        tr.instant("fault", 1.5, track="faults", node="n0")
        tr.span("req", 0.0, 1.0, track="client")
        assert tr.find(name="req")[0].end == 1.0
        assert tr.find_events(name="fault")[0].attrs["node"] == "n0"
        assert tr.find(track="nope") == []

    def test_bounded_buffer_drops(self):
        tr = Tracer(max_events=3)
        with pytest.warns(RuntimeWarning, match="Tracer buffer full"):
            for i in range(10):
                tr.span("s", i, i + 1, track="t")
        assert len(tr.spans) == 3
        assert tr.dropped == 7

    def test_drop_warns_once_and_counts_in_metrics(self):
        metrics = Metrics()
        tr = Tracer(max_events=2, metrics=metrics)
        tr.span("keep", 0, 1, track="t")
        tr.instant("keep", 0, track="t")
        with pytest.warns(RuntimeWarning, match="Tracer buffer full"):
            tr.span("lost", 1, 2, track="t")
        # Later drops are counted but do not warn again.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tr.instant("lost", 2, track="t")
        assert tr.dropped == 2
        assert metrics.counter("obs.trace.dropped").value == 2

    def test_clear_rearms_drop_warning(self):
        tr = Tracer(max_events=1)
        tr.span("keep", 0, 1, track="t")
        with pytest.warns(RuntimeWarning):
            tr.span("lost", 1, 2, track="t")
        tr.clear()
        tr.span("keep", 0, 1, track="t")
        with pytest.warns(RuntimeWarning):
            tr.span("lost", 1, 2, track="t")

    def test_clear(self):
        tr = Tracer()
        tr.span("s", 0, 1, track="t")
        tr.instant("i", 0, track="t")
        tr.clear()
        assert not tr.spans and not tr.events and tr.dropped == 0

    def test_null_tracer_is_inert(self):
        tr = NullTracer()
        sp = tr.begin("s", 0.0)
        tr.end(sp, 1.0)
        tr.span("s", 0, 1)
        tr.instant("i", 0)
        assert not tr.enabled
        assert tr.spans == [] and tr.events == []
        assert NULL_TRACER.spans == []


class TestMetrics:
    def test_counter_gauge(self):
        m = Metrics()
        m.counter("c").inc()
        m.counter("c").inc(2.5)
        m.gauge("g").set(7)
        assert m.counter("c").value == 3.5
        assert m.gauge("g").value == 7

    def test_percentile_matches_numpy(self, rng):
        samples = list(rng.exponential(1.0, 500))
        for q in (50, 90, 99, 99.9):
            assert percentile(samples, q) == \
                float(np.percentile(samples, q))

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_histogram(self):
        h = LatencyHistogram("lat", bounds=[1.0, 10.0])
        for v in (0.5, 2.0, 3.0, 20.0):
            h.observe(v)
        assert h.count == 4
        assert h.bucket_counts() == [(1.0, 1), (10.0, 2),
                                     (float("inf"), 1)]
        assert h.percentile(50) == float(np.percentile(
            [0.5, 2.0, 3.0, 20.0], 50))
        assert "n=4" in h.render()

    def test_histogram_merge_matches_combined_observes(self, rng):
        bounds = [1.0, 5.0, 20.0]
        left = LatencyHistogram("lat", bounds=bounds)
        right = LatencyHistogram("lat", bounds=bounds)
        whole = LatencyHistogram("lat", bounds=bounds)
        vals = rng.exponential(4.0, 200)
        for v in vals[:120]:
            left.observe(v)
            whole.observe(v)
        for v in vals[120:]:
            right.observe(v)
            whole.observe(v)
        left.merge(right)
        assert left.count == whole.count == 200
        assert left.total == pytest.approx(whole.total)
        assert left.counts == whole.counts
        assert left.percentile(99) == whole.percentile(99)
        assert left.exact

    def test_histogram_merge_bounds_mismatch_raises(self):
        a = LatencyHistogram("a", bounds=[1.0])
        b = LatencyHistogram("b", bounds=[2.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_histogram_max_samples_bounds_memory(self):
        h = LatencyHistogram("lat", bounds=[1.0, 10.0], max_samples=5)
        for v in range(20):
            h.observe(float(v))
        assert len(h.samples) == 5
        assert h.dropped_samples == 15
        assert h.count == 20
        assert h.total == sum(range(20))
        assert not h.exact
        # Percentiles degrade to the bucket estimator, not the biased
        # retained prefix.
        assert h.percentile(99) == pytest.approx(10.0)
        assert "n=20" in h.render() and "max=19" in h.render()

    def test_histogram_merge_respects_max_samples(self):
        big = LatencyHistogram("node", bounds=[1.0, 10.0])
        for v in (0.5, 2.0, 12.0):
            big.observe(v)
        rollup = LatencyHistogram("fleet", bounds=[1.0, 10.0],
                                  max_samples=2)
        rollup.merge(big)
        assert rollup.count == 3
        assert len(rollup.samples) == 2
        assert rollup.dropped_samples == 1
        with pytest.raises(ValueError):
            LatencyHistogram("h", max_samples=-1)

    def test_registry_render(self):
        m = Metrics()
        m.counter("a.b").inc(2)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(3.0)
        text = m.render()
        assert "a.b" in text and "g" in text and "h:" in text

    def test_null_metrics_inert(self):
        NULL_METRICS.counter("x").inc(5)
        NULL_METRICS.gauge("y").set(5)
        NULL_METRICS.histogram("z").observe(5)
        assert NULL_METRICS.counter("x").value == 0
        assert NULL_METRICS.histogram("z").count == 0
        assert not NULL_METRICS.enabled


class TestExport:
    def make_tracer(self):
        tr = Tracer(unit="cycles")
        root = tr.begin("run", 0.0, track="scheduler")
        tr.span("chain", 1.0, 4.0, track="MVM", index=0)
        tr.end(root, 5.0)
        tr.instant("marker", 2.0, track="MVM", note=np.float32(1.5))
        return tr

    def test_chrome_events_structure(self):
        events = chrome_trace_events(self.make_tracer())
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(spans) == 2 and len(instants) == 1
        assert {m["name"] for m in metas} >= \
            {"process_name", "thread_name"}
        chain = next(e for e in spans if e["name"] == "chain")
        assert chain["ts"] == 1.0 and chain["dur"] == 3.0
        # numpy attr values must be JSON-serializable
        assert isinstance(instants[0]["args"]["note"], float)
        json.dumps(events)

    def test_seconds_unit_scales_to_us(self):
        tr = Tracer(unit="s")
        tr.span("req", 0.0, 2e-3, track="client")
        events = chrome_trace_events(tr)
        span = next(e for e in events if e["ph"] == "X")
        assert span["dur"] == pytest.approx(2000.0)

    def test_write_and_reload(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), self.make_tracer())
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
        assert data["otherData"]["units"] == ["cycles"]

    def test_multiple_tracers_get_distinct_pids(self):
        trace = to_chrome_trace(self.make_tracer(), self.make_tracer())
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {0, 1}

    def test_jsonl(self):
        lines = to_jsonl(self.make_tracer()).splitlines()
        parsed = [json.loads(line) for line in lines]
        assert sum(1 for p in parsed if p["kind"] == "span") == 2
        assert sum(1 for p in parsed if p["kind"] == "instant") == 1

    def test_summarize(self):
        tr = self.make_tracer()
        m = Metrics()
        m.counter("c").inc()
        text = summarize(tr, m)
        assert "MVM/chain" in text and "counters:" in text
        assert summarize(Tracer(), Metrics()) == "(nothing recorded)"


class TestExecutorTracing:
    def test_per_chain_and_instruction_spans(self, tiny_config):
        compiled = compile_lstm(LstmReference(8, 8, seed=0), tiny_config)
        tracer = Tracer(unit="instructions", max_events=500_000)
        metrics = Metrics()
        sim = compiled.new_simulator(exact=True, tracer=tracer,
                                     metrics=metrics)
        xs = [np.ones(8, dtype=np.float32)] * 2
        compiled.run_sequence(xs, sim=sim)
        chains = tracer.find(name="chain")
        assert len(chains) == sim.stats.chains_executed
        # every chain span contains per-instruction child spans
        first = chains[0]
        kids = tracer.children(first)
        assert kids and all(k.duration == 1.0 for k in kids)
        assert metrics.counter("executor.chains").value == len(chains)
        assert metrics.counter("executor.macs").value == \
            sim.stats.macs
        runs = tracer.find(name="run")
        assert runs and runs[0].attrs["chains"] == len(chains)

    def test_traced_run_matches_untraced(self, tiny_config):
        compiled = compile_lstm(LstmReference(8, 8, seed=1), tiny_config)
        xs = [np.linspace(-1, 1, 8).astype(np.float32)] * 3
        plain = compiled.run_sequence(xs, exact=True)
        sim = compiled.new_simulator(
            exact=True, tracer=Tracer(unit="instructions"),
            metrics=Metrics())
        traced = compiled.run_sequence(xs, sim=sim)
        for a, b in zip(plain, traced):
            np.testing.assert_array_equal(a, b)


class TestSchedulerTracing:
    def make_run(self, tracer=None, metrics=None, steps=3):
        compiled = compile_rnn_shape("gru", 1024, BW_S10)
        sim = TimingSimulator(BW_S10, record_chains=True,
                              tracer=tracer, metrics=metrics)
        return sim.run(compiled.program, bindings={"steps": steps})

    def test_tracing_does_not_change_cycles(self):
        untraced = self.make_run()
        traced = self.make_run(tracer=Tracer(), metrics=Metrics())
        assert traced.total_cycles == untraced.total_cycles
        assert traced.mvm_busy_cycles == untraced.mvm_busy_cycles
        assert traced.chains_executed == untraced.chains_executed

    def test_occupancy_from_trace_matches_report(self):
        tracer = Tracer()
        report = self.make_run(tracer=tracer)
        occ_report = occupancy(report)
        occ_trace = occupancy_from_trace(tracer)
        assert occ_trace.total_cycles == occ_report.total_cycles
        assert occ_trace.mvm_busy_cycles == occ_report.mvm_busy_cycles
        assert occ_trace.chains == occ_report.chains
        assert occ_trace.mvm_chains == occ_report.mvm_chains

    def test_records_from_trace_match_report_records(self):
        tracer = Tracer()
        report = self.make_run(tracer=tracer)
        from_trace = records_from_trace(tracer)
        assert from_trace == report.records

    def test_render_trace_timeline_matches_report_rendering(self):
        tracer = Tracer()
        report = self.make_run(tracer=tracer)
        assert render_trace_timeline(tracer) == render_timeline(report)

    def test_occupancy_from_trace_requires_run_span(self):
        with pytest.raises(ExecutionError, match="no 'run' span"):
            occupancy_from_trace(Tracer())

    def test_issue_drain_children_and_stall_counters(self):
        tracer, metrics = Tracer(), Metrics()
        self.make_run(tracer=tracer, metrics=metrics)
        chain = tracer.find(name="chain")[0]
        kids = {k.name for k in tracer.children(chain)}
        assert kids == {"issue", "drain"}
        assert metrics.counter("timing.mvm_busy_cycles").value > 0
        assert "timing.dispatch_stall_cycles" in metrics.counters

    def test_hdd_annotate(self):
        metrics = Metrics()
        build_hdd_tree(BW_S10).annotate(metrics, rows=4, cols=2)
        assert metrics.gauge("hdd.second_level_schedulers").value == 4
        assert metrics.gauge("hdd.third_level_decoders").value == 41
        assert metrics.counter("hdd.mv_mul_primitive_ops").value == \
            4 * 2 * BW_S10.native_dim ** 2


@pytest.fixture
def served(small_config):
    compiled = compile_lstm(LstmReference(16, 16, seed=0), small_config)
    tracer = Tracer(unit="s")
    metrics = Metrics()
    injector = FaultInjector(
        FaultProfile(transient_failure_prob=0.3), seed=3)
    registry = MicroserviceRegistry(tracer=tracer, metrics=metrics)
    for i in range(2):
        registry.publish_replica(HardwareMicroservice(
            "svc", FpgaNode(f"svc-{i}", compiled), injector=injector))
    client = ResilientClient(registry,
                             RetryPolicy(max_attempts=4,
                                         deadline_s=50e-3),
                             seed=4, tracer=tracer, metrics=metrics)
    return client, tracer, metrics


class TestServingTracing:
    def test_request_attempt_replica_nesting(self, served):
        client, tracer, metrics = served
        outcomes = [client.invoke("svc", 4, now=i * 1e-3)
                    for i in range(30)]
        requests = tracer.find(name="request")
        assert len(requests) == 30
        ok_request = next(
            r for r, o in zip(requests, outcomes) if o.ok)
        attempts = [s for s in tracer.children(ok_request)
                    if s.name == "attempt"]
        assert attempts
        success = next(a for a in attempts if a.attrs["ok"])
        replicas = [s for s in tracer.children(success)
                    if s.name == "replica"]
        assert len(replicas) == 1
        parts = [s.name for s in tracer.children(replicas[0])]
        assert parts == ["net_in", "compute", "net_out"]
        assert metrics.counter("serving.requests").value == 30
        assert metrics.counter("serving.attempts").value >= 30
        assert metrics.histogram("serving.request_latency_ms").count \
            == sum(1 for o in outcomes if o.ok)

    def test_tracing_does_not_change_outcomes(self, small_config):
        compiled = compile_lstm(LstmReference(16, 16, seed=0),
                                small_config)

        def run(tracer, metrics):
            injector = FaultInjector(
                FaultProfile(transient_failure_prob=0.25,
                             tail_spike_prob=0.1), seed=7)
            registry = MicroserviceRegistry(tracer=tracer,
                                            metrics=metrics)
            for i in range(2):
                registry.publish_replica(HardwareMicroservice(
                    "svc", FpgaNode(f"svc-{i}", compiled),
                    injector=injector))
            client = ResilientClient(
                registry, RetryPolicy(max_attempts=3),
                seed=8, tracer=tracer, metrics=metrics)
            return [client.invoke("svc", 4, now=i * 1e-3)
                    for i in range(50)]

        plain = run(None, None)
        traced = run(Tracer(unit="s"), Metrics())
        assert [(o.ok, o.latency_s, o.attempts, o.replicas_tried)
                for o in plain] == \
            [(o.ok, o.latency_s, o.attempts, o.replicas_tried)
             for o in traced]

    def test_runtime_stage_spans_and_fallback_event(self, small_config):
        compiled = compile_lstm(LstmReference(16, 16, seed=0),
                                small_config)
        tracer = Tracer(unit="s")
        injector = FaultInjector(seed=0)
        injector.crash("svc-0")
        registry = MicroserviceRegistry(tracer=tracer)
        registry.publish_replica(HardwareMicroservice(
            "svc", FpgaNode("svc-0", compiled), injector=injector))
        client = ResilientClient(registry,
                                 RetryPolicy(max_attempts=2),
                                 tracer=tracer)
        runtime = FederatedRuntime(registry, client=client,
                                   tracer=tracer)
        stages = [
            CpuStage("pre", lambda v: v),
            FpgaStage("rnn", "svc", fallback=lambda seq: seq,
                      fallback_latency_s=1e-3),
        ]
        result = runtime.execute(stages,
                                 [np.zeros(16, dtype=np.float32)] * 2)
        plan = tracer.find(name="plan")[0]
        names = [s.name for s in tracer.children(plan)]
        assert names[0] == "cpu:pre" and "fpga:rnn" in names
        assert plan.end == pytest.approx(result.total_latency_s)
        assert tracer.find_events(name="fallback")
