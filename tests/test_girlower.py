"""Tests for the generic GIR-to-NPU lowering path."""

import numpy as np
import pytest

from repro.compiler.frontend import gru_to_gir, lstm_to_gir, mlp_to_gir
from repro.compiler.gir import GirGraph
from repro.compiler.girlower import lower_gir
from repro.config import NpuConfig
from repro.errors import CompileError
from repro.models import GruReference, LstmReference, MlpReference


@pytest.fixture
def cfg():
    return NpuConfig(name="g", tile_engines=2, lanes=4, native_dim=16,
                     mrf_size=512, initial_vrf_depth=512,
                     addsub_vrf_depth=512, multiply_vrf_depth=512,
                     mantissa_bits=0)


class TestFrontendGraphs:
    def test_mlp_matches_reference(self, cfg, rng):
        model = MlpReference([20, 40, 12], seed=3)
        compiled = lower_gir(mlp_to_gir(model), cfg)
        x = rng.uniform(-1, 1, 20).astype(np.float32)
        got = compiled.run_graph([x], exact=True)[0]
        assert np.allclose(got, model.forward(x), atol=1e-5)

    def test_unrolled_gru_matches_reference(self, cfg, rng):
        model = GruReference(24, 24, seed=4)
        compiled = lower_gir(gru_to_gir(model, steps=3), cfg)
        xs = [rng.uniform(-1, 1, 24).astype(np.float32)
              for _ in range(3)]
        outs = compiled.run_graph(xs, exact=True)
        want = model.run(xs)
        for o, w in zip(outs, want):
            assert np.allclose(o, w, atol=1e-5)

    def test_unrolled_lstm_matches_reference(self, cfg, rng):
        model = LstmReference(20, 16, seed=5)
        compiled = lower_gir(lstm_to_gir(model, steps=2), cfg)
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(2)]
        outs = compiled.run_graph(xs, exact=True)
        want = model.run(xs)
        for o, w in zip(outs, want):
            assert np.allclose(o, w, atol=1e-5)

    def test_gir_path_agrees_with_hand_lowering(self, cfg, rng):
        """Both compiler paths produce identical results."""
        from repro.compiler import compile_gru
        model = GruReference(24, 24, seed=6)
        xs = [rng.uniform(-1, 1, 24).astype(np.float32)
              for _ in range(2)]
        via_gir = lower_gir(gru_to_gir(model, steps=2), cfg)
        via_hand = compile_gru(model, cfg)
        a = via_gir.run_graph(xs, exact=True)
        b = via_hand.run_sequence(xs, exact=True)
        for x, y in zip(a, b):
            assert np.allclose(x, y, atol=1e-5)

    def test_weight_sharing_across_steps(self, cfg):
        """Unrolled steps share MRF weights (one allocation per
        matrix, not per step)."""
        model = GruReference(24, 24, seed=7)
        one = lower_gir(gru_to_gir(model, steps=1, name="g1"), cfg)
        three = lower_gir(gru_to_gir(model, steps=3, name="g3"), cfg)
        assert three.allocator.mrf_elements_used == \
            one.allocator.mrf_elements_used


class TestHandwrittenGraphs:
    def test_sub_both_directions(self, cfg, rng):
        g = GirGraph("subs")
        g.add("x", "input", shape=(8,))
        g.add("k", "constant", shape=(8,),
              value=np.arange(8, dtype=np.float32))
        g.add("a", "sub", ["x", "k"], shape=(8,))   # x - k
        g.add("bb", "sub", ["k", "a"], shape=(8,))  # k - (x - k)
        g.add("y", "output", ["bb"], shape=(8,))
        compiled = lower_gir(g, cfg)
        x = rng.uniform(-1, 1, 8).astype(np.float32)
        k = np.arange(8, dtype=np.float32)
        got = compiled.run_graph([x], exact=True)[0]
        assert np.allclose(got, k - (x - k), atol=1e-5)

    def test_fan_out_value_feeds_matmul_and_pointwise(self, cfg, rng):
        g = GirGraph("fan")
        g.add("x", "input", shape=(8,))
        g.add("W", "constant", shape=(8, 8),
              value=np.eye(8, dtype=np.float32) * 2)
        g.add("t", "tanh", ["x"], shape=(8,))
        g.add("mm", "matmul", ["W", "t"], shape=(8,))
        g.add("both", "mul", ["mm", "t"], shape=(8,))
        g.add("y", "output", ["both"], shape=(8,))
        compiled = lower_gir(g, cfg)
        x = rng.uniform(-1, 1, 8).astype(np.float32)
        t = np.tanh(x)
        want = (2 * t) * t
        got = compiled.run_graph([x], exact=True)[0]
        assert np.allclose(got, want, atol=1e-5)

    def test_multiple_inputs_and_outputs(self, cfg, rng):
        g = GirGraph("mimo")
        g.add("a", "input", shape=(8,))
        g.add("bb", "input", shape=(8,))
        g.add("s", "add", ["a", "bb"], shape=(8,))
        g.add("m", "max", ["a", "bb"], shape=(8,))
        g.add("o1", "output", ["s"], shape=(8,))
        g.add("o2", "output", ["m"], shape=(8,))
        compiled = lower_gir(g, cfg)
        a = rng.uniform(-1, 1, 8).astype(np.float32)
        c = rng.uniform(-1, 1, 8).astype(np.float32)
        s, m = compiled.run_graph([a, c], exact=True)
        assert np.allclose(s, a + c, atol=1e-5)
        assert np.allclose(m, np.maximum(a, c), atol=1e-5)

    def test_dynamic_matrix_rejected(self, cfg):
        g = GirGraph("dyn")
        g.add("x", "input", shape=(8,))
        g.add("Wlike", "input", shape=(8,))
        # matmul with a non-constant matrix is impossible: build a graph
        # that tries and check the error (shape checks happen first, so
        # the matrix must be a legitimate 2-D node).
        g2 = GirGraph("dyn2")
        g2.add("x", "input", shape=(8,))
        g2.add("W", "identity", ["x"], shape=(8,))
        with pytest.raises(CompileError):
            g2.add("mm", "matmul", ["W", "x"], shape=(8,))
            lower_gir(g2, cfg)

    def test_missing_io_rejected(self, cfg):
        g = GirGraph("no_output")
        g.add("x", "input", shape=(8,))
        with pytest.raises(CompileError, match="input and output"):
            lower_gir(g, cfg)

    def test_unsupported_op_rejected(self, cfg):
        g = GirGraph("concat")
        g.add("a", "input", shape=(4,))
        g.add("bb", "input", shape=(4,))
        g.add("c", "concat", ["a", "bb"], shape=(8,))
        g.add("y", "output", ["c"], shape=(8,))
        with pytest.raises(CompileError, match="not supported"):
            lower_gir(g, cfg)

    def test_constant_without_value_fails_at_load(self, cfg, rng):
        g = GirGraph("noval")
        g.add("x", "input", shape=(8,))
        g.add("k", "constant", shape=(8,))
        g.add("s", "add", ["x", "k"], shape=(8,))
        g.add("y", "output", ["s"], shape=(8,))
        compiled = lower_gir(g, cfg)
        with pytest.raises(CompileError, match="value"):
            compiled.run_graph([rng.uniform(-1, 1, 8)], exact=True)

    def test_input_count_validated(self, cfg, rng):
        model = MlpReference([8, 8], seed=1)
        compiled = lower_gir(mlp_to_gir(model), cfg)
        with pytest.raises(CompileError, match="input"):
            compiled.run_graph([], exact=True)
