"""Property tests for the configurable BFP / Microscaling format family.

The format family generalizes the paper's whole-row MSFP scheme with
sub-row scale blocks, E8M0 power-of-two scales, and per-tile
granularity. These properties pin the contracts every member must
satisfy against :func:`repro.numerics.bfp.quantize_reference` — the
pure-python scalar oracle the conformance fuzzer trusts:

* batched :func:`quantize` is bit-identical to the oracle;
* quantization commutes with power-of-two scaling (until the shared
  exponent clamps);
* clamp/overflow/zero-block edges behave identically in both paths;
* ``decompose`` + ``scales_of`` reconstructs exactly what ``quantize``
  returns (the executor's operand split loses nothing).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.numerics.bfp import (
    FORMAT_FAMILY,
    MSFP_RNN_TILE,
    MX_INT4,
    MX_INT8,
    BfpFormat,
    decompose,
    quantize,
    quantize_reference,
    scales_of,
)

#: Family members plus adversarial extras: tiny blocks, narrow
#: exponents, and a sub-block tile-granularity member.
FAMILY = st.sampled_from(
    list(FORMAT_FAMILY.values()) + [
        BfpFormat(mantissa_bits=2, exponent_bits=4, block_size=4),
        BfpFormat(mantissa_bits=4, exponent_bits=8, block_size=8,
                  scale_encoding="e8m0"),
        BfpFormat(mantissa_bits=3, exponent_bits=5, block_size=4,
                  scale_granularity="tile"),
        BfpFormat(mantissa_bits=1, exponent_bits=2, block_size=1),
    ])

finite32 = st.floats(-1e6, 1e6, allow_nan=False, width=32)


def _rows(data, fmt, max_rows=3, max_blocks=3):
    """Draw a (rows, k * block_size) float32 array for the format."""
    rows = data.draw(st.integers(1, max_rows))
    blocks = data.draw(st.integers(1, max_blocks))
    width = blocks * fmt.block_size
    flat = data.draw(st.lists(finite32, min_size=rows * width,
                              max_size=rows * width))
    return np.asarray(flat, dtype=np.float32).reshape(rows, width)


@given(fmt=FAMILY, data=st.data())
@settings(max_examples=80, deadline=None)
def test_quantize_matches_oracle(fmt, data):
    """The vectorized quantizer is bit-identical to the scalar oracle
    on every family member (the fuzzer's ground-truth contract)."""
    x = _rows(data, fmt)
    assert np.array_equal(quantize(x, fmt), quantize_reference(x, fmt))


@given(fmt=FAMILY, data=st.data(), shift=st.integers(-8, 8))
@settings(max_examples=60, deadline=None)
def test_scale_covariance_power_of_two(fmt, data, shift):
    """Quantization commutes with power-of-two scaling while the shared
    exponent stays inside the clamp range: Q(x * 2^s) == Q(x) * 2^s."""
    x = _rows(data, fmt, max_rows=2, max_blocks=2)
    _, exps = decompose(x, fmt)
    # Keep every block's exponent strictly inside the representable
    # range both before and after the shift, so neither quantization
    # engages the clamp (a clamped exponent breaks the commutation).
    inside = ((exps > fmt.min_exponent) & (exps < fmt.max_exponent)
              & (exps + shift > fmt.min_exponent)
              & (exps + shift < fmt.max_exponent))
    assume(bool(np.all(inside)))
    scaled = np.ldexp(x.astype(np.float64), shift)
    lhs = quantize(scaled, fmt).astype(np.float64)
    rhs = np.ldexp(quantize(x, fmt).astype(np.float64), shift)
    assert np.array_equal(lhs, rhs)


@given(fmt=FAMILY, data=st.data())
@settings(max_examples=60, deadline=None)
def test_decompose_scales_reconstruction(fmt, data):
    """mantissas * scales_of(exponents) rebuilds quantize() exactly —
    the identity the executor's operand decomposition relies on."""
    x = _rows(data, fmt, max_rows=2)
    mant, exps = decompose(x, fmt)
    scale = scales_of(exps, fmt)
    nb = x.shape[-1] // fmt.block_size
    rebuilt = (mant.astype(np.float64)
               .reshape(x.shape[0], nb, fmt.block_size)
               * scale[..., np.newaxis]).reshape(x.shape)
    assert np.array_equal(rebuilt.astype(np.float32), quantize(x, fmt))


@given(fmt=FAMILY)
@settings(max_examples=30, deadline=None)
def test_zero_blocks_use_min_exponent(fmt):
    x = np.zeros((2, 2 * fmt.block_size), dtype=np.float32)
    mant, exps = decompose(x, fmt)
    assert np.all(exps == fmt.min_exponent)
    assert np.all(mant == 0)
    assert np.array_equal(quantize_reference(x, fmt), x)


@given(fmt=FAMILY)
@settings(max_examples=30, deadline=None)
def test_overflow_clamps_to_max_exponent_and_mantissa(fmt):
    """Values beyond the representable range clamp the shared exponent
    and saturate the mantissa, identically in both implementations."""
    huge = math_ldexp_array(fmt.max_exponent + 10, (fmt.block_size,))
    q = quantize(huge, fmt)
    ref = quantize_reference(huge, fmt)
    assert np.array_equal(q, ref)
    _, exps = decompose(huge, fmt)
    assert np.all(exps == fmt.max_exponent)
    top = np.float32(fmt.max_mantissa
                     * 2.0 ** (fmt.max_exponent - fmt.mantissa_bits + 1))
    assert np.all(q == top)


def math_ldexp_array(exponent, shape):
    return np.full(shape, np.ldexp(np.float64(1.0), exponent),
                   dtype=np.float64)


@given(fmt=FAMILY)
@settings(max_examples=30, deadline=None)
def test_underflow_clamps_to_min_exponent(fmt):
    tiny = math_ldexp_array(fmt.min_exponent - 20, (fmt.block_size,))
    assert np.array_equal(quantize(tiny, fmt),
                          quantize_reference(tiny, fmt))
    _, exps = decompose(tiny, fmt)
    assert np.all(exps == fmt.min_exponent)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_tile_granularity_shares_one_exponent_per_row(data):
    fmt = BfpFormat(mantissa_bits=3, exponent_bits=6, block_size=4,
                    scale_granularity="tile")
    x = _rows(data, fmt, max_rows=3, max_blocks=3)
    _, exps = decompose(x, fmt)
    # Every block of a row carries the row-wide exponent.
    assert np.all(exps == exps[:, :1])
    assert np.array_equal(quantize(x, fmt), quantize_reference(x, fmt))


def test_e8m0_loses_top_exponent():
    """The all-ones E8M0 code is NaN, so exponent 128 is unreachable:
    an e8m0 format clamps one step below its shared-encoding twin."""
    shared = BfpFormat(mantissa_bits=7, exponent_bits=8, block_size=32)
    assert MX_INT8.max_exponent == 127
    assert shared.max_exponent == 128
    assert MX_INT8.min_exponent == shared.min_exponent == -127
    huge = math_ldexp_array(200, (32,))
    _, exps = decompose(huge, MX_INT8)
    assert np.all(exps == 127)
    _, exps = decompose(huge, shared)
    assert np.all(exps == 128)


def test_family_members_are_distinct_and_labelled():
    labels = {fmt.name for fmt in FORMAT_FAMILY.values()}
    assert len(labels) == len(FORMAT_FAMILY)
    assert MX_INT4.name == "1s.e8m0.3m.b32"
    assert MSFP_RNN_TILE.name == "1s.5e.2m.tile"


@pytest.mark.parametrize("fmt", FORMAT_FAMILY.values(),
                         ids=list(FORMAT_FAMILY))
def test_quantize_is_idempotent(fmt):
    rng = np.random.default_rng(7)
    x = rng.standard_normal((4, 2 * fmt.block_size)).astype(np.float32)
    q = quantize(x, fmt)
    assert np.array_equal(quantize(q, fmt), q)
