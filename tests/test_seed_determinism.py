"""Seed-determinism audit: same seed, byte-identical results.

Every stochastic entry point in the repo takes an explicit seed and
builds its own ``numpy.random.default_rng`` / ``random.Random``; nothing
may draw from the global numpy or stdlib generators, or reruns and CI
become unreproducible. The source scan at the bottom enforces that
convention going forward.
"""

import pathlib
import re

import numpy as np
import pytest

from repro.isa.assembler import format_program
from repro.verify import case_to_json, generate_case, run_fuzz

pytestmark = pytest.mark.tier1

SRC = pathlib.Path(__file__).parent.parent / "src"


def test_generate_case_is_seed_deterministic():
    a, b = generate_case(42), generate_case(42)
    assert format_program(a.program) == format_program(b.program)
    assert a.config == b.config
    for mem in a.vrf_init:
        assert a.vrf_init[mem].tobytes() == b.vrf_init[mem].tobytes()
    for field in ("dram_vectors", "dram_tiles", "netq_vectors",
                  "netq_tiles"):
        assert getattr(a, field).tobytes() == getattr(b, field).tobytes()
    # Different seeds diverge (sanity check the seed is actually used).
    c = generate_case(43)
    assert (format_program(a.program) != format_program(c.program)
            or a.dram_vectors.tobytes() != c.dram_vectors.tobytes())


def test_case_serialization_is_deterministic():
    import json
    one = json.dumps(case_to_json(generate_case(17)), sort_keys=True)
    two = json.dumps(case_to_json(generate_case(17)), sort_keys=True)
    assert one == two


def test_fuzz_campaign_is_seed_deterministic():
    r1 = run_fuzz(seed=11, iterations=5, check_timing=False)
    r2 = run_fuzz(seed=11, iterations=5, check_timing=False)
    assert r1.render() == r2.render()
    assert r1.cases_run == r2.cases_run == 5


def test_load_generator_is_seed_deterministic():
    from repro.system import poisson_arrivals
    a = poisson_arrivals(500.0, 200, seed=9)
    b = poisson_arrivals(500.0, 200, seed=9)
    assert np.array_equal(np.asarray(a), np.asarray(b))


def test_fault_injection_is_seed_deterministic():
    from repro.harness.experiments import slo_under_faults
    one = slo_under_faults(requests=150, rate_rps=500.0,
                           transient_prob=0.05, replicas=2, seed=4)
    two = slo_under_faults(requests=150, rate_rps=500.0,
                           transient_prob=0.05, replicas=2, seed=4)
    assert one.render() == two.render()


def test_no_global_numpy_random_in_src():
    """`np.random.<draw>` without an explicit Generator is forbidden;
    `default_rng(seed)` / `Generator` type hints are the allowed uses."""
    offenders = []
    pattern = re.compile(r"np\.random\.(?!default_rng|Generator)\w+")
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, "\n".join(offenders)


def test_no_global_stdlib_random_in_src():
    """Module-level `random.<draw>()` calls are forbidden; seeded
    `random.Random(seed)` instances are the allowed idiom."""
    offenders = []
    pattern = re.compile(
        r"(?<![\w.])random\.(random|randint|choice|shuffle|uniform|"
        r"gauss|sample|randrange)\(")
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, "\n".join(offenders)
