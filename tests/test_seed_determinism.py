"""Seed-determinism audit: same seed, byte-identical results.

Every stochastic entry point in the repo takes an explicit seed and
builds its own ``numpy.random.default_rng`` / ``random.Random``; nothing
may draw from the global numpy or stdlib generators, or reruns and CI
become unreproducible. The source scan at the bottom enforces that
convention going forward.
"""

import pathlib
import re

import numpy as np
import pytest

from repro.isa.assembler import format_program
from repro.verify import case_to_json, generate_case, run_fuzz

pytestmark = pytest.mark.tier1

SRC = pathlib.Path(__file__).parent.parent / "src"


def test_generate_case_is_seed_deterministic():
    a, b = generate_case(42), generate_case(42)
    assert format_program(a.program) == format_program(b.program)
    assert a.config == b.config
    for mem in a.vrf_init:
        assert a.vrf_init[mem].tobytes() == b.vrf_init[mem].tobytes()
    for field in ("dram_vectors", "dram_tiles", "netq_vectors",
                  "netq_tiles"):
        assert getattr(a, field).tobytes() == getattr(b, field).tobytes()
    # Different seeds diverge (sanity check the seed is actually used).
    c = generate_case(43)
    assert (format_program(a.program) != format_program(c.program)
            or a.dram_vectors.tobytes() != c.dram_vectors.tobytes())


def test_case_serialization_is_deterministic():
    import json
    one = json.dumps(case_to_json(generate_case(17)), sort_keys=True)
    two = json.dumps(case_to_json(generate_case(17)), sort_keys=True)
    assert one == two


def test_fuzz_campaign_is_seed_deterministic():
    r1 = run_fuzz(seed=11, iterations=5, check_timing=False)
    r2 = run_fuzz(seed=11, iterations=5, check_timing=False)
    assert r1.render() == r2.render()
    assert r1.cases_run == r2.cases_run == 5


def test_load_generator_is_seed_deterministic():
    from repro.system import poisson_arrivals
    a = poisson_arrivals(500.0, 200, seed=9)
    b = poisson_arrivals(500.0, 200, seed=9)
    assert np.array_equal(np.asarray(a), np.asarray(b))


def test_fault_injection_is_seed_deterministic():
    from repro.harness.experiments import slo_under_faults
    one = slo_under_faults(requests=150, rate_rps=500.0,
                           transient_prob=0.05, replicas=2, seed=4)
    two = slo_under_faults(requests=150, rate_rps=500.0,
                           transient_prob=0.05, replicas=2, seed=4)
    assert one.render() == two.render()


def test_shaped_arrival_traces_are_seed_deterministic():
    from repro.system import (bursty_arrivals, diurnal_arrivals,
                              heavy_tailed_arrivals)
    for make in (lambda s: diurnal_arrivals(50.0, 150.0, 5.0, seed=s),
                 lambda s: bursty_arrivals(50.0, 500.0, 5.0, seed=s),
                 lambda s: heavy_tailed_arrivals(200.0, 400, seed=s)):
        assert np.array_equal(np.asarray(make(6)),
                              np.asarray(make(6)))
        assert not np.array_equal(np.asarray(make(6)),
                                  np.asarray(make(7)))


def test_cluster_simulator_is_seed_deterministic():
    """The cluster's routing RNG stream: same seed, identical
    per-request statuses and latencies, bit for bit."""
    from repro.system import (ClusterEvent, ClusterSimulator,
                              ClusterSpec, TokenBucket)
    spec = ClusterSpec(racks=2, nodes_per_rack=2)
    arrivals = np.arange(800) * 3e-4
    events = [ClusterEvent(0.05, "rack_down", 0),
              ClusterEvent(0.15, "rack_up", 0)]

    def run(seed):
        sim = ClusterSimulator(
            spec, admission=TokenBucket(rate_rps=3500.0), seed=seed)
        return sim.run(arrivals, list(events))

    a, b = run(13), run(13)
    assert np.array_equal(a.status, b.status)
    assert np.array_equal(a.latency_s, b.latency_s, equal_nan=True)
    assert a.event_log == b.event_log
    assert a.detector_transitions == b.detector_transitions


def test_correlated_fault_injector_is_seed_deterministic():
    """The chaos layer's private fault-RNG stream is independent of
    the per-invocation stream and reproducible per seed."""
    from repro.system import ClusterSpec, CorrelatedFaultInjector
    spec = ClusterSpec(racks=2, nodes_per_rack=3)

    def events(seed):
        inj = CorrelatedFaultInjector(spec, seed=seed)
        return (inj.rack_outage(0, 1.0)
                + inj.node_crashes(600.0, 30.0)
                + inj.rolling_slowdown(4.0, 0.0, 1.0))

    assert events(21) == events(21)
    assert events(21) != events(22)
    # Drawing cluster events does not perturb the inherited
    # per-invocation fault sampling (separate streams).
    plain = CorrelatedFaultInjector(spec, seed=21)
    drawn = CorrelatedFaultInjector(spec, seed=21)
    drawn.node_crashes(600.0, 30.0)
    assert [plain.sample("n0") for _ in range(20)] == \
        [drawn.sample("n0") for _ in range(20)]


def test_chaos_suite_is_seed_deterministic():
    from repro.system import chaos_suite
    one = chaos_suite(requests=3000, seed=5)
    two = chaos_suite(requests=3000, seed=5)
    assert one.render() == two.render()


def test_plan_compilation_is_deterministic():
    """Two fresh simulators compile byte-identical replay plans for the
    same program: same step-kind sequence, same outputs, same final
    architectural state. Plan compilation draws from no RNG and no
    iteration-order-unstable container."""
    from repro.compiler import compile_lstm
    from repro.config import NpuConfig
    from repro.models import LstmReference

    cfg = NpuConfig(name="det_rnn", native_dim=128, lanes=4,
                    tile_engines=2, mrf_size=256, mantissa_bits=2)
    model = compile_lstm(
        LstmReference(hidden_dim=200, input_dim=200, seed=5), cfg)
    rng = np.random.default_rng(8)
    xs = [rng.uniform(-1, 1, 200).astype(np.float32) for _ in range(2)]

    def run():
        sim = model.new_simulator()
        outs = model.run_sequence(xs, sim=sim, compiled=True)
        plan = next(iter(sim._plans.values()))
        kinds = [type(step).__name__ for step in plan.steps]
        return outs, kinds, sim.snapshot()

    def state_bytes(obj):
        if isinstance(obj, dict):
            return tuple((k, state_bytes(v)) for k, v in obj.items())
        if isinstance(obj, (list, tuple)):
            return tuple(state_bytes(v) for v in obj)
        if isinstance(obj, np.ndarray):
            return obj.tobytes()
        return obj

    out_a, kinds_a, snap_a = run()
    out_b, kinds_b, snap_b = run()
    assert kinds_a == kinds_b
    assert len(kinds_a) > 0
    for x, y in zip(out_a, out_b):
        assert x.tobytes() == y.tobytes()
    assert state_bytes(snap_a) == state_bytes(snap_b)


def test_no_global_numpy_random_in_src():
    """`np.random.<draw>` without an explicit Generator is forbidden;
    `default_rng(seed)` / `Generator` type hints are the allowed uses."""
    offenders = []
    pattern = re.compile(r"np\.random\.(?!default_rng|Generator)\w+")
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, "\n".join(offenders)


def test_no_global_stdlib_random_in_src():
    """Module-level `random.<draw>()` calls are forbidden; seeded
    `random.Random(seed)` instances are the allowed idiom."""
    offenders = []
    pattern = re.compile(
        r"(?<![\w.])random\.(random|randint|choice|shuffle|uniform|"
        r"gauss|sample|randrange)\(")
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, "\n".join(offenders)


def test_monitoring_plane_is_seed_deterministic():
    """Repeated seeded monitored runs produce byte-identical stores,
    incident lists, and scorecards — the monitoring plane draws from
    no RNG stream of its own."""
    from repro.system.monitor import run_monitored_scenario

    def run():
        return run_monitored_scenario("rack_loss", requests=6000,
                                      seed=3)

    a, b = run(), run()
    assert a.store.render() == b.store.render()
    assert a.alerts == b.alerts
    assert a.incidents == b.incidents
    assert a.faults == b.faults
    assert a.scorecard.render() == b.scorecard.render()


def test_monitoring_does_not_perturb_outcomes():
    """A monitored run's request outcomes are bit-identical to the
    unmonitored run on the same seed (the monitor is an observer, not
    a participant)."""
    import numpy as np

    from repro.system import (ClusterSimulator, ClusterSpec,
                              TokenBucket)
    from repro.system.chaos import SCENARIOS
    from repro.system.monitor import FleetMonitor

    spec = ClusterSpec(racks=2, nodes_per_rack=3)
    scenario = SCENARIOS["rolling_slow"](spec, 2, 4000)

    def run(monitor):
        sim = ClusterSimulator(
            spec, admission=TokenBucket(rate_rps=spec.capacity_rps),
            seed=5, monitor=monitor)
        return sim.run(scenario.arrivals, list(scenario.events))

    plain = run(None)
    watched = run(FleetMonitor(windows=64))
    assert np.array_equal(plain.status, watched.status)
    assert np.array_equal(plain.latency_s, watched.latency_s,
                          equal_nan=True)
    assert plain.event_log == watched.event_log


def test_adaptive_batching_is_deterministic():
    """The SLO-aware batching layer is RNG-free: a fixed arrival trace
    reproduces the adaptive target trajectory, the dispatch shapes, and
    every request lifecycle bit for bit."""
    from repro.system import (AdaptiveBatchPolicy, BatchPolicy,
                              DynamicBatcher, ServiceTimeCurve,
                              poisson_arrivals)
    curve = ServiceTimeCurve((1, 2, 4, 8, 16),
                             (1e-3, 1.1e-3, 1.3e-3, 1.7e-3, 2.5e-3))
    arrivals = poisson_arrivals(3000.0, 1500, seed=9)

    def run():
        batcher = DynamicBatcher(
            BatchPolicy(max_batch=16, timeout_s=1e-3), curve=curve,
            adaptive=AdaptiveBatchPolicy(slo_s=8e-3, max_batch=16))
        return batcher.run(arrivals)

    a, b = run(), run()
    assert a.target_trace == b.target_trace
    assert a.batch_sizes == b.batch_sizes
    assert [(r.arrival, r.start, r.finish) for r in a.requests] == \
        [(r.arrival, r.start, r.finish) for r in b.requests]


def test_slo_sweep_is_seed_deterministic():
    """The goodput sweep draws all randomness from its seed: two runs
    produce byte-identical payloads, and a different seed does not."""
    from repro.system import ServiceTimeCurve, slo_sweep
    curve = ServiceTimeCurve((1, 2, 4, 8, 16),
                             (1e-3, 1.1e-3, 1.3e-3, 1.7e-3, 2.5e-3))

    def sweep(seed):
        return slo_sweep(curve, slo_s=8e-3,
                         rates_rps=[800.0, 2000.0], requests=400,
                         seed=seed)

    assert sweep(4) == sweep(4)
    assert sweep(4) != sweep(5)
