"""Tests for the FPGA device library, resource model, and specializer."""

import pytest

from repro.config import BW_A10, BW_S5, BW_S10
from repro.errors import SynthesisError
from repro.synthesis import (
    ARRIA_10_1150,
    DEVICES,
    STRATIX_10_280,
    STRATIX_V_D5,
    ModelRequirements,
    best_config,
    check_fits,
    device_by_name,
    estimate,
    exponent_groups_per_row,
    format_pareto,
    mrf_m20ks,
    rnn_requirements,
    specialize,
    weight_storage_bits,
)


class TestDevices:
    def test_catalogue(self):
        assert set(DEVICES) == {"Stratix V D5", "Arria 10 1150",
                                "Stratix 10 280"}

    def test_lookup(self):
        assert device_by_name("Stratix 10 280") is STRATIX_10_280
        with pytest.raises(KeyError):
            device_by_name("Virtex")

    def test_m20k_geometry(self):
        assert STRATIX_10_280.m20k_depth == 512

    def test_generational_scaling(self):
        assert STRATIX_V_D5.alms < ARRIA_10_1150.alms < \
            STRATIX_10_280.alms


class TestResourceModel:
    """The calibrated model reproduces Table III essentially exactly."""

    PAPER = {
        "BW_S5": (149641, 1192, 1047),
        "BW_A10": (216602, 2171, 1518),
        "BW_S10": (845719, 8192, 5245),
    }

    @pytest.mark.parametrize("config", [BW_S5, BW_A10, BW_S10],
                             ids=lambda c: c.name)
    def test_matches_table3_within_1pct(self, config):
        est = estimate(config)
        alms, m20ks, dsps = self.PAPER[config.name]
        assert est.alms == pytest.approx(alms, rel=0.01)
        assert est.m20ks == pytest.approx(m20ks, rel=0.01)
        assert est.dsps == pytest.approx(dsps, rel=0.01)

    @pytest.mark.parametrize("config", [BW_S5, BW_A10, BW_S10],
                             ids=lambda c: c.name)
    def test_all_instances_fit_their_devices(self, config):
        assert check_fits(config).fits

    def test_limiting_resources(self):
        assert estimate(BW_A10).limiting_resource == "DSPs"
        assert estimate(BW_S5).limiting_resource == "ALMs"

    def test_scaling_up_tiles_eventually_overflows(self):
        big = BW_S10.replace(tile_engines=24)
        with pytest.raises(SynthesisError):
            check_fits(big)

    def test_mrf_m20ks_structural_scaling(self):
        """Doubling lanes (wider banks) needs more width slices."""
        base = mrf_m20ks(BW_S10, STRATIX_10_280)
        wide = mrf_m20ks(BW_S10.replace(lanes=80), STRATIX_10_280)
        assert wide > base

    def test_weight_storage_bits(self):
        assert weight_storage_bits(BW_S10) == 3  # 1 sign + 2 mantissa
        assert weight_storage_bits(BW_S10.replace(mantissa_bits=5)) == 6

    def test_unknown_family_rejected(self):
        from repro.synthesis.devices import FpgaDevice
        dev = FpgaDevice(name="x", family="unknown", alms=1, m20ks=1,
                         dsps=1, clock_mhz=100)
        with pytest.raises(SynthesisError):
            estimate(BW_S10, dev)

    def test_summary_renders(self):
        assert "BW_S10" in estimate(BW_S10).summary()

    def test_exponent_groups_per_row(self):
        # Paper scheme (whole-row block) and per-tile granularity keep
        # the exponent in the fitted side structure.
        assert exponent_groups_per_row(BW_S10) == 1
        assert exponent_groups_per_row(
            BW_S10.replace(bfp_block_size=100,
                           scale_granularity="tile")) == 1
        assert exponent_groups_per_row(
            BW_S10.replace(mantissa_bits=0)) == 1
        # Microscaling sub-row blocks multiply it.
        assert exponent_groups_per_row(
            BW_A10.replace(bfp_block_size=32, exponent_bits=8,
                           mantissa_bits=7,
                           scale_encoding="e8m0")) == 4

    def test_sub_block_exponents_deepen_mrf_banks(self):
        """Sub-row scale blocks store extra exponents in the MRF banks;
        the native-row scheme is the unchanged Table III baseline."""
        wide = BW_A10.replace(exponent_bits=8, mantissa_bits=7)
        base = mrf_m20ks(wide, ARRIA_10_1150)
        mx = wide.replace(bfp_block_size=8, scale_encoding="e8m0")
        assert mrf_m20ks(mx, ARRIA_10_1150) > base
        tile = BW_A10.replace(bfp_block_size=16,
                              scale_granularity="tile")
        assert mrf_m20ks(tile, ARRIA_10_1150) == \
            mrf_m20ks(BW_A10, ARRIA_10_1150)


class TestSpecializer:
    def test_requirements_padding_efficiency(self):
        req = rnn_requirements("lstm", 2000)
        # 2000 pads to 5x5 tiles of 400: efficiency (2000/2000)^2 = 1.
        assert req.padding_efficiency(400) == pytest.approx(1.0)
        assert req.padding_efficiency(384) < 1.0

    def test_requirements_total_weights(self):
        assert rnn_requirements("gru", 100).total_weights == 6 * 100 * 100
        assert rnn_requirements("lstm", 100).total_weights == \
            8 * 100 * 100

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            rnn_requirements("cnn", 100)

    def test_best_config_fits_device(self):
        req = rnn_requirements("gru", 1536)
        cand = best_config(req, STRATIX_10_280)
        assert cand.resources.fits
        assert cand.config.mrf_capacity_elements >= req.total_weights

    def test_candidates_sorted_by_effective_tflops(self):
        req = rnn_requirements("lstm", 1024)
        cands = specialize(req, ARRIA_10_1150)
        effs = [c.effective_tflops for c in cands]
        assert effs == sorted(effs, reverse=True)

    def test_bigger_device_gives_faster_instance(self):
        req = rnn_requirements("gru", 512)
        s5 = best_config(req, STRATIX_V_D5)
        s10 = best_config(req, STRATIX_10_280)
        assert s10.effective_tflops > 2 * s5.effective_tflops

    def test_large_model_does_not_fit_stratix_v(self):
        """GRU-1536 weights (14.2M elements) exceed what a Stratix V
        D5's block RAM can pin — the multi-FPGA motivation."""
        req = rnn_requirements("gru", 1536)
        with pytest.raises(SynthesisError):
            specialize(req, STRATIX_V_D5)

    def test_alignment_preference(self):
        """For a 512-dim model, specialization prefers a native dim
        that divides 512 over one that wastes padding (Section VI)."""
        req = rnn_requirements("lstm", 512)
        cands = specialize(req, STRATIX_10_280,
                           native_dims=(256, 320))
        best = cands[0].config.native_dim
        assert best == 256

    def test_no_feasible_instance_raises(self):
        req = ModelRequirements("huge", ((10 ** 5, 10 ** 5),) * 8)
        with pytest.raises(SynthesisError):
            specialize(req, STRATIX_V_D5)

    def test_mrf_sized_to_model(self):
        req = rnn_requirements("gru", 2816)
        cand = best_config(req, STRATIX_10_280)
        needed = req.total_weights
        assert cand.config.mrf_capacity_elements >= needed
        # ... with less than 4x slack (no wild overprovisioning).
        assert cand.config.mrf_capacity_elements < 4 * needed

    def test_specialize_with_pinned_format(self):
        from repro.numerics import MX_INT8
        req = rnn_requirements("gru", 1024)
        cands = specialize(req, STRATIX_10_280, fmt=MX_INT8)
        # The pinned format round-trips through the config exactly, and
        # every candidate's native dim is a multiple of the MX block.
        assert cands[0].config.bfp_format == MX_INT8
        assert all(c.config.native_dim % 32 == 0 for c in cands)

    def test_format_pareto_trades_accuracy_for_resources(self):
        req = rnn_requirements("gru", 1024)
        fcs = format_pareto(req, STRATIX_10_280)
        assert len(fcs) >= 6
        bits = [f.bits_per_element for f in fcs]
        assert bits == sorted(bits)
        # The widest format buys the most accuracy and every candidate
        # fits its device.
        assert max(fcs, key=lambda f: f.matvec_snr_db).format_key == \
            "mx_int8"
        assert all(f.candidate.resources.fits for f in fcs)
