"""Time-series layer: ring buffers, vectorized ingest, mergeable
quantile windows, and the labeled store."""

import numpy as np
import pytest

from repro.obs.timeseries import (CounterSeries, GaugeSeries,
                                  QuantileWindow, TimeSeriesStore,
                                  label_key)

pytestmark = pytest.mark.tier1


class TestRingSemantics:
    def test_window_arithmetic(self):
        s = GaugeSeries("g", interval_s=0.5, start_s=1.0)
        assert s.window_of(1.0) == 0
        assert s.window_of(1.49) == 0
        assert s.window_of(2.0) == 2
        assert s.window_start(2) == 2.0
        with pytest.raises(ValueError):
            s.window_of(0.9)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GaugeSeries("g", interval_s=0.0)
        with pytest.raises(ValueError):
            GaugeSeries("g", interval_s=1.0, capacity=0)

    def test_wrap_evicts_oldest(self):
        s = GaugeSeries("g", interval_s=1.0, capacity=4)
        for k in range(6):
            s.record(k + 0.5, float(k))
        assert s.first_window == 2
        assert s.last_window == 5
        assert s.evicted_windows == 2
        assert np.array_equal(s.values(), [2.0, 3.0, 4.0, 5.0])
        assert np.array_equal(s.times(), [2.0, 3.0, 4.0, 5.0])

    def test_write_into_evicted_window_is_dropped(self):
        s = GaugeSeries("g", interval_s=1.0, capacity=2)
        s.record(5.5, 1.0)
        s.record(0.5, 9.0)  # long evicted
        assert s.dropped_writes == 1
        assert s.latest() == 1.0

    def test_aligned_zero_fills(self):
        s = CounterSeries("c", interval_s=1.0, capacity=8)
        s.record(2.5)
        s.record(2.6)
        s.record(5.5)
        out = s.aligned(8)
        assert np.array_equal(out, [0, 0, 2, 0, 0, 1, 0, 0])


class TestGaugeSeries:
    def test_last_write_wins(self):
        s = GaugeSeries("g", interval_s=1.0)
        s.record(0.2, 1.0)
        s.record(0.8, 2.0)
        assert s.values()[0] == 2.0

    def test_latest_skips_gap_windows(self):
        s = GaugeSeries("g", interval_s=1.0)
        s.record(0.5, 7.0)
        s.record(3.5, 9.0)
        assert s.latest() == 9.0
        vals = s.values()
        assert np.isnan(vals[1]) and np.isnan(vals[2])

    def test_empty_latest_is_nan(self):
        assert np.isnan(GaugeSeries("g", interval_s=1.0).latest())


class TestCounterSeries:
    def test_add_events_matches_loop_record(self, rng):
        times = np.sort(rng.uniform(0.0, 10.0, size=500))
        bulk = CounterSeries("c", interval_s=0.25, capacity=64)
        loop = CounterSeries("c", interval_s=0.25, capacity=64)
        bulk.add_events(times)
        for t in times:
            loop.record(t)
        assert np.array_equal(bulk.increments(), loop.increments())
        assert bulk.total() == loop.total() == 500

    def test_add_events_weights(self):
        c = CounterSeries("c", interval_s=1.0, capacity=8)
        c.add_events([0.5, 0.6, 1.5], weights=[2.0, 3.0, 4.0])
        assert np.array_equal(c.increments(), [5.0, 4.0])

    def test_add_events_before_start_raises(self):
        c = CounterSeries("c", interval_s=1.0, start_s=5.0)
        with pytest.raises(ValueError):
            c.add_events([4.0])

    def test_add_events_past_capacity_drops_old(self):
        c = CounterSeries("c", interval_s=1.0, capacity=4)
        c.add_events([0.5, 1.5, 6.5])
        assert c.dropped_writes == 2
        assert c.total() == 1

    def test_cumulative_and_rates(self):
        c = CounterSeries("c", interval_s=0.5, capacity=8)
        c.add_events([0.1, 0.2, 0.6, 1.6])
        assert np.array_equal(c.cumulative(), [2, 3, 3, 4])
        assert np.array_equal(c.rates(), [4.0, 2.0, 0.0, 2.0])


class TestQuantileWindow:
    def test_add_many_matches_scalar_add(self, rng):
        bounds = (1.0, 2.0, 5.0, 10.0)
        a = QuantileWindow("q", 1.0, 0.0, 8, bounds=bounds)
        b = QuantileWindow("q", 1.0, 0.0, 8, bounds=bounds)
        ts = rng.uniform(0.0, 8.0, size=300)
        vs = rng.uniform(0.0, 12.0, size=300)
        a.add_many(ts, vs)
        for t, v in zip(ts, vs):
            b.add(t, v)
        assert np.array_equal(a.counts, b.counts)
        assert np.allclose(a.sums, b.sums)

    def test_merge_equals_combined_ingest(self, rng):
        bounds = (1.0, 4.0, 16.0)
        whole = QuantileWindow("q", 1.0, 0.0, 4, bounds=bounds)
        left = QuantileWindow("q", 1.0, 0.0, 4, bounds=bounds)
        right = QuantileWindow("q", 1.0, 0.0, 4, bounds=bounds)
        ts = rng.uniform(0.0, 4.0, size=200)
        vs = rng.uniform(0.0, 20.0, size=200)
        whole.add_many(ts, vs)
        left.add_many(ts[:120], vs[:120])
        right.add_many(ts[120:], vs[120:])
        left.merge(right)
        assert np.array_equal(left.counts, whole.counts)
        assert left.count == whole.count == 200
        assert left.quantile(99) == whole.quantile(99)

    def test_merge_grid_mismatch_raises(self):
        a = QuantileWindow("q", 1.0, 0.0, 4)
        b = QuantileWindow("q", 2.0, 0.0, 4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_out_of_range_times_clamp(self):
        q = QuantileWindow("q", 1.0, 0.0, 4, bounds=(1.0,))
        q.add_many([-3.0, 99.0], [0.5, 0.5])
        assert q.window_counts()[0] == 1
        assert q.window_counts()[3] == 1

    def test_quantile_tracks_distribution(self, rng):
        q = QuantileWindow("q", 1.0, 0.0, 4,
                           bounds=tuple(np.linspace(0.1, 20.0, 100)))
        vs = rng.exponential(3.0, size=5000)
        q.add_many(rng.uniform(0, 4, size=5000), vs)
        est = q.quantile(50)
        assert abs(est - np.percentile(vs, 50)) < 0.5

    def test_series_rolling_window_nan_when_empty(self):
        q = QuantileWindow("q", 1.0, 0.0, 4, bounds=(1.0, 2.0))
        q.add(2.5, 1.5)
        s = q.series(99, window_len=1)
        assert np.isnan(s[0]) and np.isnan(s[3])
        assert s[2] == pytest.approx(2.0, abs=1.0)


class TestTimeSeriesStore:
    def test_get_or_create_by_label_set(self):
        store = TimeSeriesStore(interval_s=1.0, windows=16)
        a = store.counter("reqs", scope="fleet", status="served")
        b = store.counter("reqs", status="served", scope="fleet")
        assert a is b
        c = store.counter("reqs", scope="fleet", status="failed")
        assert c is not a

    def test_kind_mismatch_raises(self):
        store = TimeSeriesStore(interval_s=1.0, windows=16)
        store.counter("m", scope="fleet")
        with pytest.raises(ValueError):
            store.gauge("m", scope="fleet")
        with pytest.raises(ValueError):
            store.quantile("m", scope="fleet")

    def test_find_by_label_subset_and_label_values(self):
        store = TimeSeriesStore(interval_s=1.0, windows=16)
        store.counter("reqs", scope="fleet", status="served")
        store.counter("reqs", scope="rack0", status="served")
        store.counter("reqs", scope="rack0", status="failed")
        assert len(store.find("reqs", scope="rack0")) == 2
        assert len(store.find("reqs")) == 3
        assert store.label_values("reqs", "scope") == \
            ["fleet", "rack0"]

    def test_span_and_render(self):
        store = TimeSeriesStore(interval_s=0.5, windows=8)
        assert store.span_s == 4.0
        store.counter("reqs", scope="fleet").add_events([0.1, 0.2])
        store.gauge("up", scope="fleet").record(1.2, 3.0)
        store.quantile("lat", scope="fleet").add(0.5, 2.0)
        text = store.render()
        assert "3 series" in text
        assert "counter total=2" in text
        assert "gauge last=3" in text

    def test_label_key_order_independent(self):
        assert label_key({"a": 1, "b": "x"}) == \
            label_key({"b": "x", "a": 1})
