"""Tests for fault injection, replica failover, circuit breakers,
resilient invocation, runtime fallback, and the fault scenario runner."""

import numpy as np
import pytest

from repro.compiler import compile_lstm
from repro.errors import AllReplicasDownError, ConfigError, \
    DeadlineExceededError, FaultError
from repro.models import LstmReference
from repro.obs import Metrics, Tracer
from repro.system import (
    CpuStage,
    FaultEvent,
    FaultInjector,
    FaultProfile,
    FaultSample,
    FederatedRuntime,
    FpgaNode,
    FpgaStage,
    HardwareMicroservice,
    MicroserviceRegistry,
    ResilientClient,
    RetryPolicy,
    ServiceError,
    run_fault_scenario,
    uniform_arrivals,
)
from repro.system.loadgen import LoadError


@pytest.fixture
def compiled(small_config):
    return compile_lstm(LstmReference(16, 16, seed=0), small_config)


def make_service(compiled, name="svc", node=None, injector=None):
    node_name = node if node is not None else name + "-node"
    return HardwareMicroservice(name, FpgaNode(node_name, compiled),
                                injector=injector)


def replicated_registry(compiled, injector=None, n=2, name="svc",
                        **registry_kwargs):
    reg = MicroserviceRegistry(**registry_kwargs)
    for i in range(n):
        reg.publish_replica(make_service(compiled, name,
                                         node=f"{name}-{i}",
                                         injector=injector))
    return reg


class ScriptedInjector(FaultInjector):
    """Returns a fixed sample sequence (for hedging/retry tests)."""

    def __init__(self, samples):
        super().__init__()
        self._samples = list(samples)

    def sample(self, node_name):
        return self._samples.pop(0)


class TestFaultProfile:
    def test_probability_validated(self):
        with pytest.raises(ConfigError):
            FaultProfile(transient_failure_prob=1.5)
        with pytest.raises(ConfigError):
            FaultProfile(crash_prob=-0.1)
        with pytest.raises(ConfigError):
            FaultProfile(tail_spike_multiplier=0.5)


class TestFaultInjector:
    def test_same_seed_same_sequence(self):
        profile = FaultProfile(transient_failure_prob=0.3,
                               tail_spike_prob=0.3,
                               packet_loss_prob=0.3)
        a = FaultInjector(profile, seed=42)
        b = FaultInjector(profile, seed=42)
        samples_a = [a.sample("n") for _ in range(50)]
        samples_b = [b.sample("n") for _ in range(50)]
        assert samples_a == samples_b
        assert a.counts == b.counts

    def test_crash_and_repair(self):
        inj = FaultInjector()
        inj.crash("node-a")
        assert inj.is_down("node-a")
        assert inj.down_nodes == ["node-a"]
        assert inj.sample("node-a").fail_kind == "node_down"
        assert inj.sample("node-b").fail_kind is None
        inj.repair("node-a")
        assert not inj.is_down("node-a")
        assert inj.sample("node-a").fail_kind is None

    def test_crash_draw_is_permanent(self):
        inj = FaultInjector(FaultProfile(crash_prob=1.0))
        assert inj.sample("n").fail_kind == "crash"
        assert inj.sample("n").fail_kind == "node_down"
        assert inj.counts["crash"] == 1
        assert inj.counts["node_down"] == 1

    def test_perturbations(self):
        inj = FaultInjector(FaultProfile(
            tail_spike_prob=1.0, tail_spike_multiplier=8.0,
            packet_loss_prob=1.0, retransmit_delay_s=123e-6))
        sample = inj.sample("n")
        assert sample.fail_kind is None
        assert sample.compute_multiplier == 8.0
        assert sample.extra_network_s == 123e-6


class TestMicroserviceFaultHook:
    def test_transient_failure_raises(self, compiled):
        inj = FaultInjector(FaultProfile(transient_failure_prob=1.0))
        svc = make_service(compiled, injector=inj)
        with pytest.raises(FaultError) as exc:
            svc.invoke(steps=3)
        assert exc.value.kind == "transient"

    def test_node_down_raises_until_repair(self, compiled):
        inj = FaultInjector()
        svc = make_service(compiled, injector=inj)
        inj.crash(svc.node.name)
        with pytest.raises(FaultError) as exc:
            svc.invoke(steps=3)
        assert exc.value.kind == "node_down"
        inj.repair(svc.node.name)
        assert svc.invoke(steps=3).total_s > 0

    def test_tail_spike_multiplies_compute(self, compiled):
        clean = make_service(compiled).invoke(steps=3)
        inj = FaultInjector(FaultProfile(tail_spike_prob=1.0,
                                         tail_spike_multiplier=8.0))
        spiked = make_service(compiled, injector=inj).invoke(steps=3)
        assert spiked.compute_s == pytest.approx(8.0 * clean.compute_s)

    def test_packet_loss_adds_network_delay(self, compiled):
        clean = make_service(compiled).invoke(steps=3)
        inj = FaultInjector(FaultProfile(packet_loss_prob=1.0,
                                         retransmit_delay_s=50e-6))
        lossy = make_service(compiled, injector=inj).invoke(steps=3)
        assert lossy.network_in_s == pytest.approx(
            clean.network_in_s + 50e-6)

    def test_no_injector_unchanged(self, compiled):
        result = make_service(compiled).invoke(steps=3)
        assert result.total_s == pytest.approx(
            result.network_in_s + result.compute_s
            + result.network_out_s)


class TestFpgaNodeAddressing:
    def test_ip_addresses_unique_across_octet_boundary(self, compiled):
        nodes = [FpgaNode(f"n{i}", compiled) for i in range(300)]
        ips = {n.ip_address for n in nodes}
        assert len(ips) == 300
        for ip in ips:
            octets = [int(p) for p in ip.split(".")]
            assert len(octets) == 4
            assert all(0 <= o <= 255 for o in octets)

    def test_latency_memoized(self, compiled):
        node = FpgaNode("memo", compiled)
        first = node.compute_latency_s(4)
        assert node.compute_latency_s(4) == first
        assert 4 in node._latency_cache


class TestReplicaRegistry:
    def test_publish_replica_and_replicas(self, compiled):
        reg = replicated_registry(compiled, n=3)
        assert len(reg) == 1
        assert [s.node.name for s in reg.replicas("svc")] == \
            ["svc-0", "svc-1", "svc-2"]
        assert reg.lookup("svc") is reg.replicas("svc")[0]

    def test_publish_still_rejects_duplicate_name(self, compiled):
        reg = MicroserviceRegistry()
        reg.publish(make_service(compiled))
        with pytest.raises(ServiceError, match="publish_replica"):
            reg.publish(make_service(compiled, node="other"))

    def test_publish_replica_rejects_duplicate_node(self, compiled):
        reg = MicroserviceRegistry()
        reg.publish_replica(make_service(compiled, node="n0"))
        with pytest.raises(ServiceError, match="already serves"):
            reg.publish_replica(make_service(compiled, node="n0"))

    def test_unpublish_and_contains(self, compiled):
        reg = MicroserviceRegistry()
        reg.publish(make_service(compiled))
        assert "svc" in reg
        reg.unpublish("svc")
        assert "svc" not in reg
        assert len(reg) == 0
        with pytest.raises(ServiceError, match="not published"):
            reg.unpublish("svc")

    def test_lookup_empty_registry_message(self):
        with pytest.raises(ServiceError, match="registry is empty"):
            MicroserviceRegistry().lookup("ghost")

    def test_lookup_suggests_closest_name(self, compiled):
        reg = MicroserviceRegistry()
        reg.publish(make_service(compiled, "lstm-forward"))
        with pytest.raises(ServiceError,
                           match=r"did you mean 'lstm-forward'\?"):
            reg.lookup("lstm-froward")

    def test_lookup_no_suggestion_for_distant_name(self, compiled):
        reg = MicroserviceRegistry()
        reg.publish(make_service(compiled, "lstm-forward"))
        with pytest.raises(ServiceError) as exc:
            reg.lookup("zzz")
        assert "did you mean" not in str(exc.value)
        assert "lstm-forward" in str(exc.value)  # published list shown


class TestCircuitBreaker:
    def test_opens_after_threshold(self, compiled):
        reg = replicated_registry(compiled, n=2, failure_threshold=3,
                                  recovery_timeout_s=1.0)
        primary = reg.replicas("svc")[0]
        for _ in range(2):
            reg.record_failure("svc", primary, now=0.0)
        assert reg.breaker_state("svc", primary, now=0.0) == "closed"
        reg.record_failure("svc", primary, now=0.0)
        assert reg.breaker_state("svc", primary, now=0.0) == "open"
        assert [s.node.name for s in reg.healthy("svc", now=0.5)] == \
            ["svc-1"]

    def test_half_open_probe_listed_first(self, compiled):
        reg = replicated_registry(compiled, n=2, failure_threshold=1,
                                  recovery_timeout_s=1.0)
        primary = reg.replicas("svc")[0]
        reg.record_failure("svc", primary, now=0.0)
        assert reg.healthy("svc", now=0.5) == [reg.replicas("svc")[1]]
        assert reg.breaker_state("svc", primary, now=1.5) == "half_open"
        assert reg.healthy("svc", now=1.5)[0] is primary

    def test_lifecycle_emits_transition_events(self, compiled):
        """Full breaker lifecycle, observed through tracer events:
        closed -> open on the 3rd consecutive failure, open ->
        half_open once the 25 ms probe window passes, half_open ->
        closed on probe success."""
        tracer = Tracer(unit="s")
        metrics = Metrics()
        reg = replicated_registry(compiled, n=1, failure_threshold=3,
                                  recovery_timeout_s=25e-3,
                                  tracer=tracer, metrics=metrics)
        svc = reg.replicas("svc")[0]
        for t in (1e-3, 2e-3, 3e-3):
            reg.record_failure("svc", svc, now=t)
        # Probe window: 3 ms + 25 ms = 28 ms; past it the replica is
        # re-admitted as a half-open probe.
        assert reg.healthy("svc", now=29e-3)[0] is svc
        reg.record_success("svc", svc, now=30e-3)
        events = tracer.find_events(name="breaker")
        assert [(e.attrs["from_state"], e.attrs["to_state"])
                for e in events] == [("closed", "open"),
                                     ("open", "half_open"),
                                     ("half_open", "closed")]
        assert [e.time for e in events] == [3e-3, 29e-3, 30e-3]
        assert all(e.attrs["service"] == "svc"
                   and e.attrs["replica"] == "svc-0" for e in events)
        assert metrics.counter("breaker.to_open").value == 1
        assert metrics.counter("breaker.to_half_open").value == 1
        assert metrics.counter("breaker.to_closed").value == 1

    def test_success_closes_failed_probe_reopens(self, compiled):
        reg = replicated_registry(compiled, n=1, failure_threshold=1,
                                  recovery_timeout_s=1.0)
        svc = reg.replicas("svc")[0]
        reg.record_failure("svc", svc, now=0.0)
        # Failed half-open probe re-opens immediately (one strike).
        reg.record_failure("svc", svc, now=1.5)
        assert reg.breaker_state("svc", svc, now=2.0) == "open"
        reg.record_success("svc", svc, now=2.6)
        assert reg.breaker_state("svc", svc, now=2.6) == "closed"

    def test_record_failure_unknown_replica(self, compiled):
        reg = replicated_registry(compiled, n=1)
        stranger = make_service(compiled, "svc", node="stranger")
        with pytest.raises(ServiceError, match="not a replica"):
            reg.record_failure("svc", stranger)


class TestHalfOpenInterleavings:
    """Half-open probe behavior when multiple in-flight requests
    report back out of order — the interleavings a concurrent client
    pool would produce, replayed at simulated timestamps."""

    def _open_breaker(self, reg, svc, until_t):
        for k in range(reg.failure_threshold):
            reg.record_failure("svc", svc, now=until_t)

    def test_probe_failure_reopens_below_threshold(self, compiled):
        """A failed half-open probe re-opens on ONE strike even when
        the closed-state threshold is higher."""
        reg = replicated_registry(compiled, n=1, failure_threshold=3,
                                  recovery_timeout_s=1.0)
        svc = reg.replicas("svc")[0]
        self._open_breaker(reg, svc, 0.0)
        assert reg.breaker_state("svc", svc, now=1.5) == "half_open"
        reg.record_failure("svc", svc, now=1.5)
        assert reg.breaker_state("svc", svc, now=1.5) == "open"
        assert reg.breaker_state("svc", svc, now=2.4) == "open"

    def test_straggler_success_after_probe_failure_closes(self, compiled):
        """Two requests race against a half-open replica: the probe
        fails (re-opens) but a straggler success lands just after.
        Latest report wins — the breaker closes."""
        reg = replicated_registry(compiled, n=1, failure_threshold=1,
                                  recovery_timeout_s=1.0)
        svc = reg.replicas("svc")[0]
        reg.record_failure("svc", svc, now=0.0)
        reg.record_failure("svc", svc, now=1.5)   # failed probe
        assert reg.breaker_state("svc", svc, now=1.6) == "open"
        reg.record_success("svc", svc, now=1.6)   # straggler
        assert reg.breaker_state("svc", svc, now=1.6) == "closed"
        assert reg.healthy("svc", now=1.6) == [svc]

    def test_stale_failure_during_open_extends_window(self, compiled):
        """An in-flight request dispatched before the trip fails while
        the breaker is already open: the probe window pushes out."""
        reg = replicated_registry(compiled, n=1, failure_threshold=1,
                                  recovery_timeout_s=1.0)
        svc = reg.replicas("svc")[0]
        reg.record_failure("svc", svc, now=0.0)
        reg.record_failure("svc", svc, now=0.5)   # stale report
        assert reg.breaker_state("svc", svc, now=1.2) == "open"
        assert reg.breaker_state("svc", svc, now=1.6) == "half_open"

    def test_breakers_probe_independently(self, compiled):
        """Staggered trips on two replicas: each gets its own probe
        window, and a probe outcome on one never touches the other."""
        reg = replicated_registry(compiled, n=2, failure_threshold=1,
                                  recovery_timeout_s=1.0)
        first, second = reg.replicas("svc")
        reg.record_failure("svc", first, now=0.0)
        reg.record_failure("svc", second, now=0.4)
        assert reg.healthy("svc", now=0.5) == []
        # Only the first window has elapsed at 1.2 s.
        assert reg.healthy("svc", now=1.2) == [first]
        reg.record_success("svc", first, now=1.2)
        assert reg.breaker_state("svc", second, now=1.2) == "open"
        # Probes list ahead of closed replicas once both are back.
        assert reg.healthy("svc", now=1.5) == [second, first]

    def test_probe_emits_single_half_open_edge(self, compiled):
        """Repeated healthy() polls during the half-open window report
        the transition edge exactly once."""
        tracer = Tracer(unit="s")
        reg = replicated_registry(compiled, n=1, failure_threshold=1,
                                  recovery_timeout_s=1.0,
                                  tracer=tracer)
        svc = reg.replicas("svc")[0]
        reg.record_failure("svc", svc, now=0.0)
        for now in (1.1, 1.2, 1.3):
            assert reg.healthy("svc", now=now) == [svc]
        edges = [(e.attrs["from_state"], e.attrs["to_state"])
                 for e in tracer.find_events(name="breaker")]
        assert edges == [("closed", "open"), ("open", "half_open")]


class TestResilientClient:
    def test_failover_to_healthy_replica(self, compiled):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=2)
        inj.crash("svc-0")
        client = ResilientClient(reg, RetryPolicy(max_attempts=3))
        outcome = client.invoke("svc", steps=3)
        assert outcome.ok and outcome.attempts == 2
        assert outcome.replicas_tried == ["svc-0", "svc-1"]
        assert outcome.deadline_met
        assert outcome.latency_s > outcome.result.total_s  # backoff paid

    def test_retries_exhausted(self, compiled):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=2,
                                  failure_threshold=10)
        inj.crash("svc-0")
        inj.crash("svc-1")
        client = ResilientClient(reg, RetryPolicy(max_attempts=3))
        outcome = client.invoke("svc", steps=3)
        assert not outcome.ok and outcome.attempts == 3
        assert outcome.error_kind == "retries_exhausted"
        assert not outcome.deadline_met

    def test_all_replicas_down_via_breakers(self, compiled):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=2,
                                  failure_threshold=1,
                                  recovery_timeout_s=10.0)
        inj.crash("svc-0")
        inj.crash("svc-1")
        client = ResilientClient(reg, RetryPolicy(max_attempts=5))
        outcome = client.invoke("svc", steps=3)
        # Both breakers open after one strike each; the third attempt
        # finds nothing admissible.
        assert not outcome.ok
        assert outcome.attempts == 2
        assert outcome.error_kind == "all_replicas_down"

    def test_deadline_exceeded_during_backoff(self, compiled):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=1,
                                  failure_threshold=10)
        inj.crash("svc-0")
        client = ResilientClient(
            reg, RetryPolicy(max_attempts=5, deadline_s=100e-6,
                             base_backoff_s=200e-6))
        outcome = client.invoke("svc", steps=3)
        assert not outcome.ok and outcome.attempts == 1
        assert outcome.error_kind == "deadline_exceeded"

    def test_slow_success_misses_deadline(self, compiled):
        reg = replicated_registry(compiled, n=1)
        base = reg.lookup("svc").invoke(steps=3).total_s
        client = ResilientClient(
            reg, RetryPolicy(max_attempts=1, deadline_s=base / 2))
        outcome = client.invoke("svc", steps=3)
        assert outcome.ok and not outcome.deadline_met

    def test_hedge_improves_spiked_latency(self, compiled):
        spike = FaultSample(fail_kind=None, compute_multiplier=100.0)
        clean = FaultSample(fail_kind=None)
        inj = ScriptedInjector([spike, clean])
        reg = replicated_registry(compiled, injector=inj, n=2)
        hedge_after = 10e-6
        client = ResilientClient(
            reg, RetryPolicy(max_attempts=2, hedge_after_s=hedge_after))
        spiked_total = 100.0 * make_service(compiled).invoke(3).compute_s
        outcome = client.invoke("svc", steps=3)
        assert outcome.ok and outcome.hedged
        assert outcome.attempts == 2
        assert outcome.replicas_tried == ["svc-0", "svc-1"]
        assert outcome.latency_s < spiked_total
        assert outcome.result.compute_s < spiked_total

    def test_no_hedge_below_budget(self, compiled):
        reg = replicated_registry(compiled, n=2)
        client = ResilientClient(
            reg, RetryPolicy(max_attempts=2, hedge_after_s=10.0))
        outcome = client.invoke("svc", steps=3)
        assert outcome.ok and not outcome.hedged
        assert outcome.attempts == 1

    def test_functional_inputs_thread_through(self, compiled, rng):
        reg = replicated_registry(compiled, n=2)
        client = ResilientClient(reg, RetryPolicy())
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(4)]
        outcome = client.invoke("svc", steps=4, functional_inputs=xs)
        want = LstmReference(16, 16, seed=0).run(xs)
        assert np.allclose(outcome.result.outputs[-1], want[-1],
                           atol=1e-5)

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(deadline_s=0)

    @pytest.mark.parametrize("kw", [
        dict(base_backoff_s=-1e-6),
        dict(backoff_multiplier=0.5),
        dict(jitter_frac=-0.1),
        dict(jitter_frac=1.5),
        dict(hedge_after_s=0.0),
    ])
    def test_policy_validation_rejects_bad_fields(self, kw):
        with pytest.raises(ConfigError):
            RetryPolicy(**kw)

    def test_policy_validation_messages_name_the_field(self):
        with pytest.raises(ConfigError, match="backoff_multiplier"):
            RetryPolicy(backoff_multiplier=0.0)
        with pytest.raises(ConfigError, match="jitter_frac"):
            RetryPolicy(jitter_frac=2.0)
        with pytest.raises(ConfigError, match="hedge_after_s"):
            RetryPolicy(hedge_after_s=-1.0)


class TestRuntimeResilience:
    def test_fallback_completes_plan_when_all_down(self, compiled, rng):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=2,
                                  name="lstm", failure_threshold=1,
                                  recovery_timeout_s=10.0)
        inj.crash("lstm-0")
        inj.crash("lstm-1")
        runtime = FederatedRuntime(
            reg, client=ResilientClient(reg, RetryPolicy(max_attempts=4)))
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(3)]
        fallback_out = [np.zeros(16, dtype=np.float32)] * 3
        stage = FpgaStage("rnn", "lstm",
                          fallback=lambda seq: fallback_out,
                          fallback_latency_s=3e-3)
        result = runtime.execute([stage], xs, functional=True)
        assert result.value is fallback_out
        assert result.total_latency_s >= 3e-3  # honest CPU accounting

    def test_no_fallback_raises_all_replicas_down(self, compiled, rng):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=1,
                                  name="lstm", failure_threshold=1,
                                  recovery_timeout_s=10.0)
        inj.crash("lstm-0")
        runtime = FederatedRuntime(
            reg, client=ResilientClient(reg, RetryPolicy(max_attempts=4)))
        xs = [np.zeros(16, dtype=np.float32)] * 3
        with pytest.raises(AllReplicasDownError):
            runtime.execute([FpgaStage("rnn", "lstm")], xs)

    def test_stage_deadline_override_raises(self, compiled):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=1,
                                  name="lstm", failure_threshold=10)
        inj.crash("lstm-0")
        client = ResilientClient(
            reg, RetryPolicy(max_attempts=5, base_backoff_s=200e-6))
        runtime = FederatedRuntime(reg, client=client)
        xs = [np.zeros(16, dtype=np.float32)] * 3
        stage = FpgaStage("rnn", "lstm", deadline_s=100e-6)
        with pytest.raises(DeadlineExceededError):
            runtime.execute([stage], xs)
        # The override is transient: the client's policy is restored.
        assert client.policy.deadline_s == pytest.approx(
            RetryPolicy().deadline_s)

    def test_resilient_functional_plan_matches_reference(self, compiled,
                                                         rng):
        reg = replicated_registry(compiled, n=2, name="lstm")
        runtime = FederatedRuntime(
            reg, client=ResilientClient(reg, RetryPolicy()))
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(3)]
        scale = CpuStage("scale", lambda seq: [0.5 * x for x in seq])
        result = runtime.execute([scale, FpgaStage("rnn", "lstm")], xs,
                                 functional=True)
        want = LstmReference(16, 16, seed=0).run([0.5 * x for x in xs])
        assert np.allclose(result.value[-1], want[-1], atol=1e-5)


class TestFaultScenarioRunner:
    def test_fault_free_scenario(self, compiled):
        reg = replicated_registry(compiled, n=1)
        client = ResilientClient(reg, RetryPolicy(max_attempts=1))
        res = run_fault_scenario(client, "svc",
                                 uniform_arrivals(100.0, 50), steps=3)
        assert res.availability == 1.0
        assert res.served == res.total == 50
        assert res.p50_ms > 0
        assert res.goodput_rps > 0
        assert res.fault_counts == {}

    def test_crash_event_degrades_naive_client(self, compiled):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=1)
        client = ResilientClient(reg, RetryPolicy(max_attempts=1))
        arrivals = uniform_arrivals(100.0, 100)  # 0.01 .. 1.0 s
        events = [FaultEvent(0.5, "crash", "svc-0")]
        res = run_fault_scenario(client, "svc", arrivals, steps=3,
                                 injector=inj, events=events)
        assert res.availability == pytest.approx(0.49, abs=0.02)
        assert res.fault_counts.get("node_down", 0) > 0

    def test_crash_then_repair_with_failover(self, compiled):
        inj = FaultInjector()
        reg = replicated_registry(compiled, injector=inj, n=2,
                                  recovery_timeout_s=50e-3)
        client = ResilientClient(reg, RetryPolicy(max_attempts=4))
        arrivals = uniform_arrivals(100.0, 100)
        events = [FaultEvent(0.25, "crash", "svc-0"),
                  FaultEvent(0.50, "repair", "svc-0")]
        res = run_fault_scenario(client, "svc", arrivals, steps=3,
                                 injector=inj, events=events)
        assert res.availability == 1.0
        assert res.mean_attempts > 1.0  # failovers happened

    def test_events_require_injector(self, compiled):
        reg = replicated_registry(compiled, n=1)
        client = ResilientClient(reg)
        with pytest.raises(LoadError, match="no injector"):
            run_fault_scenario(client, "svc", [0.0], steps=3,
                               events=[FaultEvent(0.0, "crash", "x")])

    def test_bad_event_action(self):
        with pytest.raises(LoadError, match="unknown fault action"):
            FaultEvent(0.0, "reboot", "x")

    def test_deterministic_under_seed(self, compiled):
        def run():
            inj = FaultInjector(FaultProfile(
                transient_failure_prob=0.2, tail_spike_prob=0.1),
                seed=5)
            reg = replicated_registry(compiled, injector=inj, n=2)
            client = ResilientClient(reg, RetryPolicy(max_attempts=3),
                                     seed=6)
            return run_fault_scenario(client, "svc",
                                      uniform_arrivals(200.0, 60),
                                      steps=3, injector=inj)
        a, b = run(), run()
        assert a.availability == b.availability
        assert [o.latency_s for o in a.outcomes] == \
            [o.latency_s for o in b.outcomes]
        assert a.fault_counts == b.fault_counts
