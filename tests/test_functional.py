"""Tests for the functional (architectural) simulator."""

import numpy as np
import pytest

from repro.errors import (
    ExecutionError,
    MemoryError_,
    NetworkQueueEmptyError,
)
from repro.functional import FunctionalSimulator
from repro.isa import MemId, ProgramBuilder, ScalarReg


def run_chain(sim, build):
    b = ProgramBuilder("t")
    build(b)
    sim.run(b.build())
    return sim


class TestScalarState:
    def test_rows_cols_default_to_one(self, tiny_config):
        sim = FunctionalSimulator(tiny_config)
        assert sim.scalar_regs[ScalarReg.Rows] == 1
        assert sim.scalar_regs[ScalarReg.Columns] == 1

    def test_s_wr_updates_register(self, tiny_config):
        sim = FunctionalSimulator(tiny_config)
        run_chain(sim, lambda b: b.set_rows(3))
        assert sim.scalar_regs[ScalarReg.Rows] == 3

    def test_zero_rows_rejected(self, tiny_config):
        sim = FunctionalSimulator(tiny_config)
        with pytest.raises(ExecutionError):
            run_chain(sim, lambda b: b.set_rows(0))


class TestVectorChains:
    def test_copy_through_vrfs(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config, exact=True)
        vec = rng.uniform(-1, 1, 8).astype(np.float32)
        sim.load_vector(MemId.InitialVrf, 0, vec)

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            b.v_wr(MemId.AddSubVrf, 5)
        run_chain(sim, build)
        assert np.allclose(sim.read_vector(MemId.AddSubVrf, 5, 8), vec)

    def test_netq_roundtrip(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config, exact=True)
        vec = rng.uniform(-1, 1, 8).astype(np.float32)
        sim.push_input(vec)

        def build(b):
            b.v_rd(MemId.NetQ)
            b.v_wr(MemId.NetQ)
        run_chain(sim, build)
        assert np.allclose(sim.pop_outputs_flat(), vec)

    def test_netq_underflow_raises(self, tiny_config):
        sim = FunctionalSimulator(tiny_config)
        with pytest.raises(NetworkQueueEmptyError):
            run_chain(sim, lambda b: (b.v_rd(MemId.NetQ),
                                      b.v_wr(MemId.NetQ)))

    @pytest.mark.parametrize("op,fn", [
        ("v_relu", lambda x: np.maximum(x, 0)),
        ("v_sigm", lambda x: 1 / (1 + np.exp(-x.astype(np.float64)))),
        ("v_tanh", lambda x: np.tanh(x.astype(np.float64))),
    ])
    def test_unary_ops(self, tiny_config, rng, op, fn):
        sim = FunctionalSimulator(tiny_config, exact=True)
        vec = rng.uniform(-2, 2, 8).astype(np.float32)
        sim.load_vector(MemId.InitialVrf, 0, vec)

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            getattr(b, op)()
            b.v_wr(MemId.InitialVrf, 1)
        run_chain(sim, build)
        assert np.allclose(sim.read_vector(MemId.InitialVrf, 1, 8),
                           fn(vec), atol=1e-6)

    @pytest.mark.parametrize("op,fn", [
        ("vv_add", lambda a, b: a + b),
        ("vv_a_sub_b", lambda a, b: a - b),
        ("vv_b_sub_a", lambda a, b: b - a),
        ("vv_max", np.maximum),
    ])
    def test_addsub_ops(self, tiny_config, rng, op, fn):
        sim = FunctionalSimulator(tiny_config, exact=True)
        a = rng.uniform(-2, 2, 8).astype(np.float32)
        operand = rng.uniform(-2, 2, 8).astype(np.float32)
        sim.load_vector(MemId.InitialVrf, 0, a)
        sim.load_vector(MemId.AddSubVrf, 3, operand)

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            getattr(b, op)(3)
            b.v_wr(MemId.InitialVrf, 1)
        run_chain(sim, build)
        assert np.allclose(sim.read_vector(MemId.InitialVrf, 1, 8),
                           fn(a, operand), atol=1e-6)

    def test_hadamard_uses_multiply_vrf(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config, exact=True)
        a = rng.uniform(-2, 2, 8).astype(np.float32)
        m = rng.uniform(-2, 2, 8).astype(np.float32)
        sim.load_vector(MemId.InitialVrf, 0, a)
        sim.load_vector(MemId.MultiplyVrf, 2, m)

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            b.vv_mul(2)
            b.v_wr(MemId.InitialVrf, 1)
        run_chain(sim, build)
        assert np.allclose(sim.read_vector(MemId.InitialVrf, 1, 8), a * m)

    def test_multicast_write(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config, exact=True)
        vec = rng.uniform(-1, 1, 8).astype(np.float32)
        sim.load_vector(MemId.InitialVrf, 0, vec)

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            b.v_wr(MemId.AddSubVrf, 1)
            b.v_wr(MemId.MultiplyVrf, 2)
            b.v_wr(MemId.NetQ)
        run_chain(sim, build)
        assert np.allclose(sim.read_vector(MemId.AddSubVrf, 1, 8), vec)
        assert np.allclose(sim.read_vector(MemId.MultiplyVrf, 2, 8), vec)
        assert np.allclose(sim.pop_outputs_flat(), vec)

    def test_dram_vector_path(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config, exact=True)
        vec = rng.uniform(-1, 1, 8).astype(np.float32)
        sim.dram.write_vectors(4, vec.reshape(1, 8))

        def build(b):
            b.v_rd(MemId.Dram, 4)
            b.v_wr(MemId.InitialVrf, 0)
        run_chain(sim, build)
        assert np.allclose(sim.read_vector(MemId.InitialVrf, 0, 8), vec)


class TestMvMul:
    def test_single_tile(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config, exact=True)
        W = rng.uniform(-1, 1, (8, 8)).astype(np.float32)
        x = rng.uniform(-1, 1, 8).astype(np.float32)
        sim.load_matrix(0, W)
        sim.load_vector(MemId.InitialVrf, 0, x)

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(0)
            b.v_wr(MemId.InitialVrf, 1)
        run_chain(sim, build)
        assert np.allclose(sim.read_vector(MemId.InitialVrf, 1, 8),
                           W @ x, atol=1e-5)

    def test_mega_simd_tiling(self, tiny_config, rng):
        """rows=2, cols=3: 6 consecutive MRF tiles act as a 16x24
        matrix (Section IV-C mega-SIMD)."""
        sim = FunctionalSimulator(tiny_config, exact=True)
        W = rng.uniform(-1, 1, (16, 24)).astype(np.float32)
        x = rng.uniform(-1, 1, 24).astype(np.float32)
        sim.load_matrix(0, W)
        sim.load_vector(MemId.InitialVrf, 0, x)

        def build(b):
            b.set_rows(2)
            b.set_columns(3)
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(0)
            b.v_wr(MemId.InitialVrf, 4)
        run_chain(sim, build)
        assert np.allclose(sim.read_vector(MemId.InitialVrf, 4, 16),
                           W @ x, atol=1e-4)

    def test_mega_simd_scales_reads_and_writes(self, tiny_config, rng):
        """The v_rd feeding mv_mul reads `cols` entries; the v_wr
        writes `rows` entries (Section IV-C)."""
        sim = FunctionalSimulator(tiny_config, exact=True)
        W = rng.uniform(-1, 1, (16, 8)).astype(np.float32)
        x = rng.uniform(-1, 1, 8).astype(np.float32)
        sim.load_matrix(0, W)
        sim.push_input(x)

        def build(b):
            b.set_rows(2)
            b.set_columns(1)
            b.v_rd(MemId.NetQ)
            b.mv_mul(0)
            b.v_wr(MemId.NetQ)
        run_chain(sim, build)
        out = sim.pop_outputs_flat()
        assert out.shape == (16,)
        assert np.allclose(out, W @ x, atol=1e-4)

    def test_padding_zeros_are_harmless(self, tiny_config, rng):
        """A 5x5 matrix padded into an 8x8 tile computes the same
        product on the unpadded lanes."""
        sim = FunctionalSimulator(tiny_config, exact=True)
        W = rng.uniform(-1, 1, (5, 5)).astype(np.float32)
        x = rng.uniform(-1, 1, 5).astype(np.float32)
        sim.load_matrix(0, W)
        sim.load_vector(MemId.InitialVrf, 0, x)

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(0)
            b.v_wr(MemId.InitialVrf, 1)
        run_chain(sim, build)
        out = sim.read_vector(MemId.InitialVrf, 1, 8)
        assert np.allclose(out[:5], W @ x, atol=1e-5)
        assert np.all(out[5:] == 0)

    def test_mv_mul_out_of_mrf_bounds(self, tiny_config):
        sim = FunctionalSimulator(tiny_config, exact=True)
        sim.load_vector(MemId.InitialVrf, 0, np.ones(8))

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(tiny_config.mrf_address_space)
            b.v_wr(MemId.InitialVrf, 1)
        with pytest.raises(MemoryError_):
            run_chain(sim, build)

    def test_bfp_quantization_changes_result(self, bfp_config, rng):
        """With BFP enabled the product differs from exact float32 but
        stays within the format's error bound."""
        exact_sim = FunctionalSimulator(bfp_config, exact=True)
        bfp_sim = FunctionalSimulator(bfp_config, exact=False)
        W = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
        x = rng.uniform(-1, 1, 16).astype(np.float32)
        for sim in (exact_sim, bfp_sim):
            sim.load_matrix(0, W)
            sim.load_vector(MemId.InitialVrf, 0, x)

            def build(b):
                b.v_rd(MemId.InitialVrf, 0)
                b.mv_mul(0)
                b.v_wr(MemId.InitialVrf, 1)
            run_chain(sim, build)
        exact = exact_sim.read_vector(MemId.InitialVrf, 1, 16)
        approx = bfp_sim.read_vector(MemId.InitialVrf, 1, 16)
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert 0 < rel < 0.1

    def test_stats_track_macs(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config, exact=True)
        sim.load_matrix(0, rng.uniform(-1, 1, (8, 8)).astype(np.float32))
        sim.load_vector(MemId.InitialVrf, 0, np.ones(8))

        def build(b):
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(0)
            b.v_relu()
            b.v_wr(MemId.InitialVrf, 1)
        run_chain(sim, build)
        assert sim.stats.mv_mul_count == 1
        assert sim.stats.macs == 64
        assert sim.stats.pointwise_flops == 8
        assert sim.stats.total_flops == 2 * 64 + 8


class TestMatrixChains:
    def test_netq_to_mrf(self, tiny_config, rng):
        """MRF initialization over the network (Section IV-C)."""
        sim = FunctionalSimulator(tiny_config, exact=True)
        tiles = rng.uniform(-1, 1, (4, 8, 8)).astype(np.float32)
        sim.netq.push_input_tiles(tiles)

        def build(b):
            b.set_rows(2)
            b.set_columns(2)
            b.m_rd(MemId.NetQ)
            b.m_wr(MemId.MatrixRf, 0)
        run_chain(sim, build)
        assert np.allclose(sim.mrf.read_tiles(0, 4), tiles)

    def test_dram_to_mrf_and_back(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config, exact=True)
        tiles = rng.uniform(-1, 1, (2, 8, 8)).astype(np.float32)
        sim.dram.write_tiles(0, tiles)

        def build(b):
            b.set_rows(1)
            b.set_columns(2)
            b.m_rd(MemId.Dram, 0)
            b.m_wr(MemId.MatrixRf, 3)
            b.m_rd(MemId.Dram, 0)
            b.m_wr(MemId.Dram, 10)
        run_chain(sim, build)
        assert np.allclose(sim.mrf.read_tiles(3, 2), tiles)
        assert np.allclose(sim.dram.read_tiles(10, 2), tiles)

    def test_isa_init_equivalent_to_load_matrix(self, bfp_config, rng):
        """Loading via m_rd/m_wr chains quantizes identically to the
        host-side load_matrix utility."""
        W = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
        a = FunctionalSimulator(bfp_config)
        a.load_matrix(0, W)
        b_sim = FunctionalSimulator(bfp_config)
        tiles = FunctionalSimulator(
            bfp_config.replace(mantissa_bits=0), exact=True)._tiles_of(W)
        b_sim.netq.push_input_tiles(tiles)

        def build(b):
            b.set_rows(1)
            b.set_columns(1)
            b.m_rd(MemId.NetQ)
            b.m_wr(MemId.MatrixRf, 0)
        bld = ProgramBuilder("init")
        bld.set_rows(1)
        bld.set_columns(1)
        bld.m_rd(MemId.NetQ)
        bld.m_wr(MemId.MatrixRf, 0)
        b_sim.run(bld.build())
        assert np.array_equal(a.mrf.read_tile(0), b_sim.mrf.read_tile(0))


class TestHostUtilities:
    def test_load_vector_pads(self, tiny_config):
        sim = FunctionalSimulator(tiny_config)
        count = sim.load_vector(MemId.InitialVrf, 0, np.ones(10))
        assert count == 2
        out = sim.read_vector(MemId.InitialVrf, 0, 16)
        assert np.all(out[:10] == 1) and np.all(out[10:] == 0)

    def test_load_matrix_returns_tile_count(self, tiny_config, rng):
        sim = FunctionalSimulator(tiny_config)
        count = sim.load_matrix(0, rng.uniform(-1, 1, (9, 17)))
        assert count == 2 * 3

    def test_load_matrix_rejects_1d(self, tiny_config):
        sim = FunctionalSimulator(tiny_config)
        with pytest.raises(ExecutionError):
            sim.load_matrix(0, np.ones(8))

    def test_push_input_splits_into_native_vectors(self, tiny_config):
        sim = FunctionalSimulator(tiny_config)
        sim.push_input(np.ones(20))
        assert sim.netq.pending_inputs == 3
