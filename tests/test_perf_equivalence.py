"""Bit-exact equivalence of the vectorized execution layer.

The vectorized ``mv_mul`` paths (row-packed float64 GEMV, mantissa-GEMV,
and the stacked float64 fallback), the MRF window cache, and the
``copy=False`` register-file reads must be indistinguishable from the
``naive=True`` reference — same outputs, same statistics, same trace,
same metric counters. These tests pin that contract (the perf harness
depends on it: a speedup number from a divergent fast path is invalid).
"""

import numpy as np
import pytest

from repro.compiler.lowering import compile_gru, compile_lstm
from repro.config import BW_CNN_A10, BW_S5, NpuConfig
from repro.functional import FunctionalSimulator
from repro.isa import MemId, ProgramBuilder
from repro.memory import MatrixRegisterFile, VectorRegisterFile
from repro.models.gru import GruReference
from repro.models.lstm import LstmReference
from repro.obs import Metrics, Tracer
from repro.timing.scheduler import ReadyTracker

# The two published BFP formats (Table IV/VI) on a lab-sized instance:
# mb=2 activates the row-packed GEMV (k >= 3 slots fit in a float64
# lane); mb=5 at n=128 overflows the packing budget and must take the
# per-column-block mantissa-GEMV path instead.
RNN_CFG = NpuConfig(name="eq_rnn", tile_engines=2, lanes=4, native_dim=128,
                    mrf_size=64, mantissa_bits=2)
CNN_CFG = NpuConfig(name="eq_cnn", tile_engines=2, lanes=4, native_dim=128,
                    mrf_size=64, mantissa_bits=5)


def _span_key(span):
    return (span.name, span.start, span.end, span.track, tuple(
        sorted(span.attrs.items())))


def _run_pair(config, rows, cols, *, exact, seed=0, calls=3):
    """Run the same mv_mul program on naive and vectorized simulators."""
    n = config.native_dim
    rng = np.random.default_rng(seed)
    W = rng.uniform(-1, 1, (rows * n, cols * n)).astype(np.float32)
    xs = [rng.uniform(-2, 2, cols * n).astype(np.float32)
          for _ in range(calls)]
    outs = {}
    sims = {}
    for naive in (False, True):
        tracer = Tracer(unit="instructions")
        metrics = Metrics()
        sim = FunctionalSimulator(config, exact=exact, tracer=tracer,
                                  metrics=metrics, naive=naive)
        sim.load_matrix(0, W)
        results = []
        for x in xs:
            sim.load_vector(MemId.InitialVrf, 0, x)
            b = ProgramBuilder("mvm")
            b.set_rows(rows)
            b.set_columns(cols)
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(0)
            b.v_wr(MemId.InitialVrf, cols)
            sim.run(b.build())
            results.append(sim.read_vector(MemId.InitialVrf, cols, rows * n))
        outs[naive] = (results, sim.stats, tracer, metrics)
        sims[naive] = sim
    return outs, sims


@pytest.mark.parametrize("config", [RNN_CFG, CNN_CFG],
                         ids=lambda c: c.name)
@pytest.mark.parametrize("rows,cols", [(1, 1), (1, 3), (3, 1), (2, 2),
                                       (4, 3), (5, 5)])
@pytest.mark.parametrize("exact", [False, True],
                         ids=["quantized", "exact"])
def test_mv_mul_sweep_bit_identical(config, rows, cols, exact):
    """Every (rows, cols) window shape matches the naive path exactly —
    outputs, statistics, trace spans, and metric counters."""
    outs, sims = _run_pair(config, rows, cols, exact=exact)
    fast_results, fast_stats, fast_tracer, fast_metrics = outs[False]
    ref_results, ref_stats, ref_tracer, ref_metrics = outs[True]
    for got, want in zip(fast_results, ref_results):
        assert np.array_equal(got, want)
    assert fast_stats == ref_stats
    assert sims[False].mrf.reads == sims[True].mrf.reads
    assert ([_span_key(s) for s in fast_tracer.spans]
            == [_span_key(s) for s in ref_tracer.spans])
    assert ({k: c.value for k, c in fast_metrics.counters.items()}
            == {k: c.value for k, c in ref_metrics.counters.items()})


def test_packed_gemv_active_only_for_narrow_formats():
    """mb=2 packs k>=3 mantissa rows per float64 lane; mb=5 at n=128
    exceeds the slot budget and falls back to mantissa-GEMV; exact mode
    uses neither."""
    rnn = FunctionalSimulator(RNN_CFG)
    cnn = FunctionalSimulator(CNN_CFG)
    ex = FunctionalSimulator(RNN_CFG, exact=True)
    assert rnn._pack_slots >= 3 and rnn._mantissa_gemv
    assert cnn._pack_slots == 0 and cnn._mantissa_gemv
    assert ex._pack_slots == 0 and not ex._mantissa_gemv


def test_mrf_rewrite_invalidates_window_cache():
    """Writing a tile between mv_muls must change the vectorized result
    exactly as it changes the naive one (generation invalidation)."""
    n = RNN_CFG.native_dim
    rng = np.random.default_rng(5)
    W1 = rng.uniform(-1, 1, (2 * n, 2 * n)).astype(np.float32)
    W2 = rng.uniform(-1, 1, (2 * n, 2 * n)).astype(np.float32)
    x = rng.uniform(-1, 1, 2 * n).astype(np.float32)

    def run(naive):
        sim = FunctionalSimulator(RNN_CFG, naive=naive)
        outs = []
        for W in (W1, W2):
            sim.load_matrix(0, W)
            sim.load_vector(MemId.InitialVrf, 0, x)
            b = ProgramBuilder("p")
            b.set_rows(2)
            b.set_columns(2)
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(0)
            b.v_wr(MemId.InitialVrf, 2)
            sim.run(b.build())
            outs.append(sim.read_vector(MemId.InitialVrf, 2, 2 * n))
        return outs

    fast, ref = run(False), run(True)
    assert np.array_equal(fast[0], ref[0])
    assert np.array_equal(fast[1], ref[1])
    assert not np.array_equal(ref[0], ref[1])


@pytest.mark.parametrize("kind,hidden,config", [
    ("lstm", 200, BW_S5), ("gru", 200, BW_S5),
    ("lstm", 256, BW_CNN_A10),
], ids=["lstm_s5", "gru_s5", "lstm_cnn_a10"])
@pytest.mark.parametrize("exact", [False, True],
                         ids=["quantized", "exact"])
def test_compiled_rnn_bit_identical(kind, hidden, config, exact):
    """End-to-end compiled LSTM/GRU sequences are bit-identical between
    the naive and vectorized executors, including observability output."""
    if kind == "lstm":
        model = compile_lstm(LstmReference(hidden_dim=hidden, seed=3), config)
    else:
        model = compile_gru(GruReference(hidden_dim=hidden, seed=3), config)
    rng = np.random.default_rng(9)
    xs = [rng.standard_normal(model.input_length).astype(np.float32)
          for _ in range(3)]

    runs = {}
    for naive in (False, True):
        tracer = Tracer(unit="instructions")
        metrics = Metrics()
        sim = model.new_simulator(exact=exact, tracer=tracer,
                                  metrics=metrics, naive=naive)
        outs = model.run_sequence(xs, sim=sim)
        runs[naive] = (outs, sim.stats, sim.mrf.reads, tracer, metrics)

    fast, ref = runs[False], runs[True]
    for got, want in zip(fast[0], ref[0]):
        assert np.array_equal(got, want)
    assert fast[1] == ref[1]
    assert fast[2] == ref[2]
    assert ([_span_key(s) for s in fast[3].spans]
            == [_span_key(s) for s in ref[3].spans])
    assert ({k: c.value for k, c in fast[4].counters.items()}
            == {k: c.value for k, c in ref[4].counters.items()})


# -- MRF window cache ------------------------------------------------------

class TestReadWindow:
    def test_window_matches_tile_layout(self):
        """Window tile (r, c) is MRF slot base + r*cols + c."""
        mrf = MatrixRegisterFile("mrf", capacity=12, native_dim=4)
        rng = np.random.default_rng(0)
        tiles = rng.standard_normal((6, 4, 4)).astype(np.float32)
        mrf.write_tiles(2, tiles)
        window = mrf.read_window(2, 2, 3)
        assert window.shape == (8, 12)
        for r in range(2):
            for c in range(3):
                assert np.array_equal(
                    window[r * 4:(r + 1) * 4, c * 4:(c + 1) * 4],
                    tiles[r * 3 + c])

    def test_cache_hit_counts_reads_and_write_invalidates(self):
        mrf = MatrixRegisterFile("mrf", capacity=8, native_dim=2)
        mrf.write_tiles(0, np.ones((4, 2, 2), dtype=np.float32))
        first = mrf.read_window(0, 2, 2)
        reads_after_first = mrf.reads
        again = mrf.read_window(0, 2, 2)
        assert again is first  # cached object
        assert mrf.reads == reads_after_first + 4  # stats still accrue
        mrf.write_tile(3, np.full((2, 2), 7.0, dtype=np.float32))
        refreshed = mrf.read_window(0, 2, 2)
        assert refreshed is not first
        assert refreshed[2, 2] == 7.0

    def test_clear_invalidates(self):
        mrf = MatrixRegisterFile("mrf", capacity=4, native_dim=2)
        mrf.write_tile(0, np.ones((2, 2), dtype=np.float32))
        assert mrf.read_window(0, 1, 1)[0, 0] == 1.0
        mrf.clear()
        assert np.all(mrf.read_window(0, 1, 1) == 0.0)

    def test_out_of_range_window_rejected(self):
        from repro.errors import MemoryError_
        mrf = MatrixRegisterFile("mrf", capacity=4, native_dim=2)
        with pytest.raises(MemoryError_):
            mrf.read_window(2, 1, 3)


class TestCopyFalseReads:
    def test_vrf_view_aliases_storage(self):
        vrf = VectorRegisterFile("vrf", depth=4, native_dim=3)
        vrf.write(1, np.arange(6, dtype=np.float32).reshape(2, 3))
        view = vrf.read(1, 2, copy=False)
        copied = vrf.read(1, 2)
        assert np.shares_memory(view, vrf._data)
        assert not np.shares_memory(copied, vrf._data)
        assert np.array_equal(view, copied)

    def test_mrf_tiles_view_aliases_storage(self):
        mrf = MatrixRegisterFile("mrf", capacity=4, native_dim=2)
        mrf.write_tile(1, np.ones((2, 2), dtype=np.float32))
        view = mrf.read_tiles(0, 2, copy=False)
        assert np.shares_memory(view, mrf._tiles)
        assert not np.shares_memory(mrf.read_tiles(0, 2), mrf._tiles)


# -- _tiles_of layout regression ------------------------------------------

def test_tiles_of_row_major_tile_layout():
    """Tile (r, c) of a padded matrix lands at slot r*cols + c, with
    zero padding beyond the matrix edge (the vectorized reshape must
    reproduce the historical per-tile slicing exactly)."""
    cfg = NpuConfig(name="tiles", tile_engines=1, lanes=2, native_dim=4,
                    mrf_size=32, mantissa_bits=0)
    sim = FunctionalSimulator(cfg, exact=True)
    rng = np.random.default_rng(2)
    M = rng.standard_normal((10, 7)).astype(np.float32)  # pads to 12 x 8
    tiles = sim._tiles_of(M)
    assert tiles.shape == (6, 4, 4)
    padded = np.zeros((12, 8), dtype=np.float32)
    padded[:10, :7] = M
    for r in range(3):
        for c in range(2):
            assert np.array_equal(
                tiles[r * 2 + c],
                padded[r * 4:(r + 1) * 4, c * 4:(c + 1) * 4])


# -- ReadyTracker ----------------------------------------------------------

class TestReadyTracker:
    def test_unwritten_ranges_are_time_zero(self):
        t = ReadyTracker()
        assert t.range_max(MemId.InitialVrf, 0, 100) == 0.0
        t.mark(MemId.InitialVrf, 5, 2, 10.0)
        assert t.range_max(MemId.AddSubVrf, 0, 10) == 0.0
        assert t.range_max(MemId.InitialVrf, 0, 5) == 0.0
        assert t.range_max(MemId.InitialVrf, 7, 3) == 0.0

    def test_range_max_over_marks(self):
        t = ReadyTracker()
        t.mark(MemId.MatrixRf, 0, 4, 3.0)
        t.mark(MemId.MatrixRf, 2, 2, 9.0)
        assert t.range_max(MemId.MatrixRf, 0, 1) == 3.0
        assert t.range_max(MemId.MatrixRf, 0, 4) == 9.0
        assert t.range_max(MemId.MatrixRf, 3, 1) == 9.0

    def test_growth_preserves_times(self):
        t = ReadyTracker()
        t.mark(MemId.InitialVrf, 0, 1, 2.5)
        t.mark(MemId.InitialVrf, 500, 8, 7.5)  # forces a regrow
        assert t.range_max(MemId.InitialVrf, 0, 1) == 2.5
        assert t.range_max(MemId.InitialVrf, 500, 8) == 7.5
        assert t.range_max(MemId.InitialVrf, 0, 508) == 7.5

    def test_clipped_range_beyond_array(self):
        t = ReadyTracker()
        t.mark(MemId.InitialVrf, 0, 2, 4.0)
        # Range extends past the backing array; clip, don't fault.
        assert t.range_max(MemId.InitialVrf, 1, 10_000) == 4.0
        assert t.range_max(MemId.InitialVrf, 10_000, 4) == 0.0
