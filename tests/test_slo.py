"""SLO monitor: burn-rate math, alert rules, incident merging."""

import numpy as np
import pytest

from repro.obs.slo import (Alert, BacklogRule, BurnRateRule,
                           CapacityRule, LatencyRule, SloMonitor,
                           availability_series, default_burn_rules,
                           error_budget_remaining, merge_alerts,
                           rolling_sum)
from repro.obs.timeseries import TimeSeriesStore

pytestmark = pytest.mark.tier1


def _store(windows=100, interval=1.0):
    return TimeSeriesStore(interval_s=interval, windows=windows)


def _fill_requests(store, scope, good_per_window, bad_per_window):
    """Write constant per-window good/bad request counts."""
    w = store.windows
    times = np.repeat(np.arange(w) + 0.5, 1)
    good = store.counter("cluster.requests", scope=scope,
                         status="served")
    bad = store.counter("cluster.requests", scope=scope,
                        status="failed")
    good.add_events(np.repeat(times, good_per_window))
    if bad_per_window:
        bad.add_events(np.repeat(times, bad_per_window))


class TestPrimitives:
    def test_rolling_sum_matches_naive(self, rng):
        x = rng.integers(0, 10, size=50).astype(float)
        for w in (1, 3, 7, 50, 80):
            got = rolling_sum(x, w)
            want = np.array([x[max(0, i - w + 1):i + 1].sum()
                             for i in range(x.size)])
            assert np.allclose(got, want), w

    def test_rolling_sum_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_sum(np.zeros(4), 0)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule("r", long_s=1.0, short_s=2.0, factor=8.0)
        with pytest.raises(ValueError):
            BurnRateRule("r", long_s=2.0, short_s=1.0, factor=0.0)
        with pytest.raises(ValueError):
            BurnRateRule("r", long_s=2.0, short_s=1.0, factor=8.0,
                         severity="sms")
        with pytest.raises(ValueError):
            LatencyRule("r", window_s=0.0, threshold_ms=1.0)
        with pytest.raises(ValueError):
            LatencyRule("r", window_s=1.0, threshold_ms=1.0, q=100.0)
        with pytest.raises(ValueError):
            BacklogRule(abs_floor_s=0.0)
        with pytest.raises(ValueError):
            CapacityRule(min_fraction=1.5)
        with pytest.raises(ValueError):
            SloMonitor(availability_target=1.0)
        with pytest.raises(ValueError):
            default_burn_rules(0.0)

    def test_default_rules_scale_with_span(self):
        fast, slow = default_burn_rules(100.0)
        assert fast.long_s == 4.0 and fast.short_s == 1.0
        assert slow.long_s == 12.0 and slow.short_s == 3.0
        assert fast.factor > slow.factor


class TestAvailability:
    def test_availability_series(self):
        store = _store(windows=4)
        good = store.counter("cluster.requests", scope="fleet",
                             status="served")
        bad = store.counter("cluster.requests", scope="fleet",
                            status="failed")
        good.add_events([0.5, 0.5, 1.5])
        bad.add_events([1.5])
        avail = availability_series(store)
        assert avail[0] == 1.0
        assert avail[1] == 0.5
        assert np.isnan(avail[2])

    def test_brownout_counts_as_good(self):
        store = _store(windows=2)
        store.counter("cluster.requests", scope="fleet",
                      status="brownout").add_events([0.5])
        assert availability_series(store)[0] == 1.0

    def test_error_budget_remaining(self):
        store = _store(windows=10)
        _fill_requests(store, "fleet", good_per_window=99,
                       bad_per_window=1)
        # 1% errors against a 2% budget: half the budget left.
        left = error_budget_remaining(store, target=0.98)
        assert left == pytest.approx(0.5)
        assert error_budget_remaining(_store(), 0.99) == 1.0


class TestBurnRateAlerts:
    def test_clean_run_no_alerts(self):
        store = _store()
        _fill_requests(store, "fleet", 50, 0)
        assert SloMonitor(0.999).evaluate(store) == []

    def test_error_burst_fires_and_clears(self):
        store = _store(windows=100)
        good = store.counter("cluster.requests", scope="fleet",
                             status="served")
        bad = store.counter("cluster.requests", scope="fleet",
                            status="failed")
        for w in range(100):
            t = w + 0.5
            if 40 <= w < 50:
                bad.add_events(np.full(50, t))
            else:
                good.add_events(np.full(50, t))
        alerts = SloMonitor(0.999).evaluate(store)
        assert alerts, "burst must fire"
        first = alerts[0]
        assert first.scope == "fleet"
        assert first.start_s <= 45.0
        # Clears within the longest trailing window after the burst.
        assert max(a.end_s for a in alerts) <= 50.0 + 12.0 + 1.0

    def test_short_blip_rejected_by_long_window(self):
        store = _store(windows=200)
        good = store.counter("cluster.requests", scope="fleet",
                             status="served")
        bad = store.counter("cluster.requests", scope="fleet",
                            status="failed")
        for w in range(200):
            t = w + 0.5
            # One window at 1% errors: the short view spikes but the
            # 8-window long view dilutes it below the strict factor.
            if w == 100:
                bad.add_events(np.full(1, t))
                good.add_events(np.full(99, t))
            else:
                good.add_events(np.full(100, t))
        rules = [BurnRateRule("strict", long_s=8.0, short_s=2.0,
                              factor=1000.0)]
        assert SloMonitor(0.999, burn_rules=rules).evaluate(store) == []

    def test_per_scope_breakdown(self):
        store = _store(windows=100)
        _fill_requests(store, "fleet", 50, 0)
        bad = store.counter("cluster.requests", scope="rack1",
                            status="failed")
        bad.add_events(np.repeat(np.arange(40, 50) + 0.5, 30))
        scopes = {a.scope for a in SloMonitor(0.999).evaluate(store)}
        assert scopes == {"rack1"}


class TestLatencyAlerts:
    def test_latency_rule_fires_on_tail_spike(self):
        store = _store(windows=64)
        qw = store.quantile("cluster.latency_ms", scope="fleet",
                            bounds=tuple(np.geomspace(0.1, 100, 60)))
        for w in range(64):
            t = w + 0.5
            ms = 50.0 if 30 <= w < 40 else 1.0
            qw.add_many(np.full(20, t), np.full(20, ms))
        mon = SloMonitor(0.999, burn_rules=[],
                         latency_rules=[LatencyRule(
                             "p99", window_s=2.0, threshold_ms=10.0)])
        alerts = mon.evaluate(store)
        assert alerts
        assert alerts[0].rule == "p99"
        assert 29.0 <= alerts[0].start_s <= 31.0
        assert all(a.peak > 10.0 for a in alerts)


class TestBacklogAlerts:
    def test_single_node_outlier_fires(self):
        store = _store(windows=32)
        for node in range(8):
            g = store.gauge("cluster.backlog_s", scope="rack0",
                            node=str(node))
            for w in range(32):
                val = 0.5 if node == 3 and 10 <= w < 20 else 0.001
                g.record(w + 0.5, val)
        mon = SloMonitor(0.999, burn_rules=[],
                         backlog_rules=[BacklogRule(
                             abs_floor_s=0.01, rel_factor=6.0,
                             min_windows=2)])
        alerts = mon.evaluate(store)
        assert len(alerts) == 1
        assert alerts[0].rule == "node_backlog"
        assert 9.0 <= alerts[0].start_s <= 11.0

    def test_uniform_saturation_does_not_fire(self):
        store = _store(windows=32)
        for node in range(8):
            g = store.gauge("cluster.backlog_s", scope="rack0",
                            node=str(node))
            for w in range(32):
                g.record(w + 0.5, 0.5)  # everyone equally backed up
        mon = SloMonitor(0.999, burn_rules=[],
                         backlog_rules=[BacklogRule(
                             abs_floor_s=0.01, rel_factor=6.0)])
        assert mon.evaluate(store) == []


class TestCapacityAlerts:
    def test_live_node_drop_fires(self):
        store = _store(windows=32)
        g = store.gauge("cluster.nodes_live", scope="fleet")
        for w in range(32):
            g.record(w + 0.5, 18.0 if 12 <= w < 20 else 24.0)
        mon = SloMonitor(0.999, burn_rules=[],
                         capacity_rules=[CapacityRule()])
        alerts = mon.evaluate(store)
        assert len(alerts) == 1
        assert alerts[0].rule == "fleet_capacity"
        assert alerts[0].peak == 6.0
        assert 11.0 <= alerts[0].start_s <= 13.0

    def test_full_fleet_never_fires(self):
        store = _store(windows=8)
        g = store.gauge("cluster.nodes_live", scope="fleet")
        for w in range(8):
            g.record(w + 0.5, 24.0)
        mon = SloMonitor(0.999, burn_rules=[],
                         capacity_rules=[CapacityRule()])
        assert mon.evaluate(store) == []


class TestIncidents:
    def test_merge_overlapping_same_scope(self):
        alerts = [Alert("a", "ticket", "fleet", 1.0, 3.0, 5.0),
                  Alert("b", "page", "fleet", 2.0, 4.0, 9.0),
                  Alert("a", "ticket", "rack0", 1.5, 2.0, 2.0)]
        incidents = merge_alerts(alerts)
        assert len(incidents) == 2
        fleet = [i for i in incidents if i.scope == "fleet"][0]
        assert fleet.rule == "a+b"
        assert (fleet.start_s, fleet.end_s) == (1.0, 4.0)
        assert fleet.severity == "page"
        assert fleet.peak == 9.0

    def test_join_gap_bridges_nearby(self):
        alerts = [Alert("a", "page", "fleet", 1.0, 2.0, 1.0),
                  Alert("a", "page", "fleet", 2.5, 3.0, 1.0)]
        assert len(merge_alerts(alerts)) == 2
        assert len(merge_alerts(alerts, join_gap_s=1.0)) == 1

    def test_grace_includes_longest_window(self):
        mon = SloMonitor(0.999)
        assert mon.grace_s(100.0) == pytest.approx(12.0)
        mon = SloMonitor(0.999, latency_threshold_ms=5.0)
        assert mon.grace_s(1000.0) == pytest.approx(120.0)
