"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.config import NpuConfig


@pytest.fixture
def tiny_config():
    """A minimal configuration for fast functional tests.

    native_dim=8, 2 tile engines, 4 lanes, exact numerics disabled via
    mantissa_bits=0 unless a test overrides.
    """
    return NpuConfig(name="tiny", tile_engines=2, lanes=4, native_dim=8,
                     mrf_size=64, mfus=2, initial_vrf_depth=64,
                     addsub_vrf_depth=64, multiply_vrf_depth=64,
                     mantissa_bits=0)


@pytest.fixture
def small_config():
    """A mid-size configuration exercising mega-SIMD tiling."""
    return NpuConfig(name="small", tile_engines=2, lanes=4, native_dim=16,
                     mrf_size=256, mfus=2, initial_vrf_depth=128,
                     addsub_vrf_depth=128, multiply_vrf_depth=128,
                     mantissa_bits=0)


@pytest.fixture
def bfp_config():
    """A small configuration with BFP quantization enabled (5-bit
    mantissa keeps errors tight enough for tolerance checks)."""
    return NpuConfig(name="bfp", tile_engines=2, lanes=4, native_dim=16,
                     mrf_size=256, mfus=2, initial_vrf_depth=128,
                     addsub_vrf_depth=128, multiply_vrf_depth=128,
                     mantissa_bits=5)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
