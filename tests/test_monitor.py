"""Fleet monitoring plane: scraping, ground truth, detection scoring."""

import numpy as np
import pytest

from repro.obs.scorecard import (FaultInterval, score_detection)
from repro.obs.slo import Alert
from repro.system import ClusterSpec
from repro.system.chaos import SCENARIOS
from repro.system.cluster import (ClusterError, ClusterEvent,
                                  ClusterSimulator, TokenBucket)
from repro.system.monitor import (FleetMonitor, default_slo,
                                  run_monitored_scenario,
                                  scenario_fault_intervals)

pytestmark = pytest.mark.tier1


# Small but fault-rich: the committed-seed acceptance checks run at
# this size (the benchmark suite re-checks at 50k+).
REQUESTS = 20_000


@pytest.fixture(scope="module")
def rack_loss_run():
    return run_monitored_scenario("rack_loss", requests=REQUESTS,
                                  seed=0)


class TestFleetMonitor:
    def test_validation(self):
        with pytest.raises(ClusterError):
            FleetMonitor(windows=4)
        with pytest.raises(ClusterError):
            FleetMonitor(interval_s=0.0)

    def test_scrapes_cover_the_grid(self, rack_loss_run):
        store = rack_loss_run.store
        up = store.find("cluster.nodes_up", scope="fleet")[0]
        # Every window got a gauge sample (scrapes land mid-window).
        assert up.first_window == 0
        assert up.last_window == store.windows - 1
        assert np.isfinite(up.values()).all()
        assert up.dropped_writes == 0

    def test_store_holds_fleet_and_rack_scopes(self, rack_loss_run):
        store = rack_loss_run.store
        scopes = store.label_values("cluster.requests", "scope")
        assert "fleet" in scopes
        assert any(s.startswith("rack") for s in scopes)
        assert store.find("cluster.latency_ms", scope="fleet")
        # Per-node backlog gauges for the backlog outlier rule.
        nodes = {g.labels["node"]
                 for g in store.find("cluster.backlog_s")
                 if "node" in g.labels}
        assert len(nodes) == ClusterSpec().num_nodes

    def test_fleet_counters_match_result(self, rack_loss_run):
        """Scraped counters reconcile exactly with the authoritative
        per-request result arrays."""
        result = rack_loss_run.result
        store = rack_loss_run.store
        total = sum(
            s.total() for s in store.find("cluster.requests",
                                          scope="fleet"))
        assert total == result.status.size
        q = store.find("cluster.latency_ms", scope="fleet")[0]
        assert q.count == int(np.isfinite(result.latency_s).sum())

    def test_pow2_buckets_match_searchsorted(self, rng):
        """The exponent-bit fast path bins exactly like searchsorted —
        including on edges, subnormals, and infinities."""
        from repro.system.monitor import (POW2_LATENCY_BOUNDS_MS,
                                          _pow2_buckets,
                                          _pow2_exponent)
        bounds = POW2_LATENCY_BOUNDS_MS
        e0 = _pow2_exponent(bounds)
        assert e0 == -4
        nb = len(bounds) + 1
        values = np.concatenate([
            rng.exponential(5.0, 10_000),
            np.asarray(bounds),                    # exact edges
            np.asarray(bounds) * (1 + 1e-12),      # just past edges
            [5e-324, 1e-310, 1e-30, np.inf]])      # degenerate tails
        got = _pow2_buckets(values.copy(), e0, nb)
        assert np.array_equal(got, np.searchsorted(bounds, values))
        # Non-pow2 ladders must refuse the fast path.
        assert _pow2_exponent((0.001, 0.0025, 0.005)) is None
        assert _pow2_exponent((1.0, 2.0, 8.0)) is None

    def test_monitored_run_is_bit_identical(self):
        """Attaching the monitor must not change a single outcome."""
        spec = ClusterSpec(racks=2, nodes_per_rack=2)
        arrivals = np.arange(2000) * 2e-4
        events = [ClusterEvent(0.1, "rack_down", 0),
                  ClusterEvent(0.25, "rack_up", 0)]

        def run(monitor):
            sim = ClusterSimulator(
                spec, admission=TokenBucket(rate_rps=4000.0), seed=7,
                monitor=monitor)
            return sim.run(arrivals, list(events))

        plain = run(None)
        monitored = run(FleetMonitor(windows=64))
        assert np.array_equal(plain.status, monitored.status)
        assert np.array_equal(plain.latency_s, monitored.latency_s,
                              equal_nan=True)
        assert plain.event_log == monitored.event_log
        assert plain.detector_transitions == \
            monitored.detector_transitions


class TestGroundTruth:
    def test_paired_events_become_intervals(self):
        spec = ClusterSpec()
        scenario = SCENARIOS["rack_loss"](spec, 0, REQUESTS)
        faults = scenario_fault_intervals(scenario)
        outages = [f for f in faults if f.kind == "rack_outage"]
        assert len(outages) == 1
        assert outages[0].scope.startswith("rack")
        assert outages[0].end_s > outages[0].start_s

    def test_rolling_slow_coalesces_to_one_interval(self):
        spec = ClusterSpec()
        scenario = SCENARIOS["rolling_slow"](spec, 0, REQUESTS)
        slows = [f for f in scenario_fault_intervals(scenario)
                 if f.kind == "rolling_slow"]
        assert len(slows) == 1
        assert slows[0].scope == "fleet"

    def test_overload_found_from_arrival_trace(self):
        spec = ClusterSpec()
        scenario = SCENARIOS["overload"](spec, 0, REQUESTS)
        over = [f for f in scenario_fault_intervals(scenario)
                if f.kind == "overload"]
        assert over, "sustained overload must appear in ground truth"
        for f in over:
            assert f.duration_s > 0


class TestScorecardMath:
    def test_synthetic_join(self):
        faults = [FaultInterval("outage", "rack0", 10.0, 20.0),
                  FaultInterval("overload", "fleet", 40.0, 50.0)]
        incidents = [
            Alert("burn", "page", "fleet", 12.0, 22.0, 9.0),  # hit 1
            Alert("burn", "page", "fleet", 70.0, 72.0, 9.0),  # false
        ]
        card = score_detection(incidents, faults, span_s=120.0,
                               grace_s=1.0)
        assert card.faults == 2
        assert card.detected == 1
        assert card.recall == 0.5
        assert card.precision == 0.5
        assert card.false_alarms == 1
        assert card.false_alarm_rate_per_min == pytest.approx(0.5)
        assert card.mttd_s == pytest.approx(2.0)
        assert "MISSED" in card.render()
        assert "false alarm" in card.render()

    def test_alert_firing_before_fault_detects_instantly(self):
        faults = [FaultInterval("outage", "rack0", 10.0, 20.0)]
        incidents = [Alert("burn", "page", "fleet", 8.0, 15.0, 2.0)]
        card = score_detection(incidents, faults, span_s=30.0)
        assert card.mttd_s == 0.0

    def test_empty_cases(self):
        card = score_detection([], [], span_s=10.0)
        assert card.precision == 1.0
        assert card.recall == 1.0
        assert card.mttd_s != card.mttd_s  # nan


class TestAcceptance:
    """The ISSUE acceptance bar at committed seeds: every scenario's
    mitigated run detects its faults with precision and recall."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_mitigated_detection(self, name):
        run = run_monitored_scenario(name, requests=REQUESTS, seed=0)
        card = run.scorecard
        assert card.faults > 0, "scenario must inject faults"
        assert card.precision >= 0.8, card.render()
        assert card.recall >= 0.8, card.render()
        assert card.mttd_s < 0.25 * run.store.span_s, card.render()

    def test_default_slo_shape(self):
        slo = default_slo(ClusterSpec())
        assert slo.availability_target == 0.999
        assert slo.latency_threshold_ms is not None
        assert slo.backlog_rules and slo.capacity_rules

    def test_unknown_scenario_raises(self):
        with pytest.raises(ClusterError):
            run_monitored_scenario("nope")
        with pytest.raises(ClusterError):
            run_monitored_scenario("rack_loss", requests=0)
