"""Differential fuzzer: campaigns, corpus replay, shrinking."""

import dataclasses
import json
import pathlib

import numpy as np
import pytest

import repro.functional.ops as ops
from repro.errors import ReproError
from repro.isa import InstructionChain, MemId, v_rd, v_wr
from repro.isa.assembler import format_program
from repro.isa.opcodes import Opcode
from repro.isa.program import NpuProgram
from repro.verify import (CaseInvalid, PROFILES, generate_case,
                          load_corpus_case, replay_corpus,
                          run_differential, run_fuzz, save_case,
                          shrink_case)

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


# -- tier-1: small campaigns and corpus replay ----------------------------

@pytest.mark.tier1
@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_small_campaign_per_profile(profile):
    report = run_fuzz(seed=100, iterations=8, profile=PROFILES[profile])
    assert report.ok, report.render()
    assert report.invalid == 0
    assert report.cases_run == 8


@pytest.mark.tier1
def test_committed_corpus_replays_clean():
    report = replay_corpus(CORPUS_DIR)
    assert report.cases_run >= 6
    assert report.ok, report.render()


@pytest.mark.tier1
def test_replay_missing_directory_is_an_error(tmp_path):
    with pytest.raises(ReproError, match="corpus directory not found"):
        replay_corpus(tmp_path / "no-such-dir")
    # An existing empty directory, by contrast, replays cleanly.
    empty = tmp_path / "empty"
    empty.mkdir()
    report = replay_corpus(empty)
    assert report.ok and report.cases_run == 0


@pytest.mark.tier1
def test_corpus_roundtrip_bit_exact(tmp_path):
    case = generate_case(21)
    path = save_case(case, tmp_path)
    back = load_corpus_case(path)
    assert back.config == case.config
    assert format_program(back.program) == format_program(case.program)
    for mem in case.vrf_init:
        assert np.array_equal(case.vrf_init[mem], back.vrf_init[mem])
    for field in ("dram_vectors", "dram_tiles", "netq_vectors",
                  "netq_tiles"):
        assert np.array_equal(getattr(case, field), getattr(back, field))
    # Serialization is deterministic: same case, same bytes.
    assert path.read_text() == save_case(back, tmp_path / "b.json") \
        .read_text()


@pytest.mark.tier1
def test_corpus_rejects_unknown_format(tmp_path):
    from repro.errors import ReproError
    from repro.verify import case_from_json, case_to_json
    data = case_to_json(generate_case(5))
    data["format"] = 99
    with pytest.raises(ReproError):
        case_from_json(data)
    path = tmp_path / "x.json"
    path.write_text(json.dumps(case_to_json(generate_case(5))))
    assert load_corpus_case(path).program is not None


@pytest.mark.tier1
def test_case_invalid_when_all_engines_agree_on_error():
    case = generate_case(2)
    broken = NpuProgram((InstructionChain(
        [v_rd(MemId.Dram, 4000), v_wr(MemId.NetQ)]),), name="broken")
    case = dataclasses.replace(case, program=broken)
    with pytest.raises(CaseInvalid):
        run_differential(case)


# -- tier-1: the injected-bug demo ----------------------------------------

@pytest.mark.tier1
def test_injected_executor_bug_is_caught_and_shrunk(monkeypatch):
    """Acceptance demo: a deliberate off-by-constant in the executor's
    vv_add kernel is detected by the differential runner and shrunk to a
    <= 3-instruction reproducer."""
    orig = ops.BINARY_KERNELS[Opcode.VV_ADD]

    def buggy(a, b, exact=False):
        return orig(a, b, exact=exact) + np.float32(0.25)

    monkeypatch.setitem(ops.BINARY_KERNELS, Opcode.VV_ADD, buggy)
    report = run_fuzz(seed=0, iterations=25, check_timing=False)
    assert not report.ok, "injected bug went undetected"
    failure = report.failures[0]
    assert failure.case.instruction_count() <= 3, \
        format_program(failure.case.program)
    assert any("vv_add" in line
               for line in format_program(failure.case.program)
               .splitlines())


@pytest.mark.tier1
def test_injected_bug_archived_to_corpus(monkeypatch, tmp_path):
    orig = ops.BINARY_KERNELS[Opcode.VV_MUL]

    def buggy(a, b, exact=False):
        return orig(a, b, exact=exact) * np.float32(1.0000001)

    monkeypatch.setitem(ops.BINARY_KERNELS, Opcode.VV_MUL, buggy)
    report = run_fuzz(seed=0, iterations=40, check_timing=False,
                      corpus_dir=str(tmp_path),
                      profile=PROFILES["pointwise"])
    assert not report.ok
    archived = sorted(tmp_path.glob("*.json"))
    assert archived, "failing case was not archived"
    # The archive replays to the same failure while the bug is in place.
    replayed = run_differential(load_corpus_case(archived[0]),
                                check_timing=False)
    assert not replayed.ok


@pytest.mark.tier1
def test_injected_compiled_path_bug_is_caught_and_shrunk(monkeypatch):
    """A bug confined to the compiled replay path — the interpreter and
    both sequential simulator paths are untouched — is detected by the
    four-way differential and shrunk to a small reproducer."""
    import repro.functional.replay as replay
    orig = replay.to_float16

    def buggy(x):
        return orig(x) + np.float32(0.125)

    monkeypatch.setattr(replay, "to_float16", buggy)
    report = run_fuzz(seed=0, iterations=25, check_timing=False)
    assert not report.ok, "compiled-path bug went undetected"
    failure = report.failures[0]
    assert any("compiled" in m or "batched" in m
               for m in failure.mismatches), failure.mismatches
    assert failure.case.instruction_count() <= 4, \
        format_program(failure.case.program)


@pytest.mark.tier1
def test_shrink_keeps_failure_and_reduces_size():
    case = generate_case(9)
    baseline = case.instruction_count()

    def pretend_failing(candidate):
        # "Fails" iff the program still contains a vector chain; the
        # shrinker must keep one while deleting everything else.
        return any(not c.is_matrix_chain for c in candidate.program
                   .chains())

    shrunk = shrink_case(case, pretend_failing)
    assert pretend_failing(shrunk)
    assert shrunk.instruction_count() < baseline
    assert shrunk.instruction_count() <= 4


# -- opt-in: the bounded CI fuzz gate -------------------------------------

@pytest.mark.fuzz
@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_fuzz_gate(profile):
    """Bounded fixed-seed campaign per profile (the CI fuzz step)."""
    report = run_fuzz(seed=0, iterations=60, profile=PROFILES[profile])
    assert report.ok, report.render()


@pytest.mark.fuzz
def test_fuzz_gate_pinned_configs():
    from repro.verify import FUZZ_CONFIGS
    for name in sorted(FUZZ_CONFIGS):
        report = run_fuzz(seed=7, iterations=25,
                          config=FUZZ_CONFIGS[name])
        assert report.ok, f"{name}: {report.render()}"
