"""Tests for NpuConfig: validation, derived quantities, standard
instances."""

import dataclasses

import pytest

from repro.config import (
    BW_A10,
    BW_CNN_A10,
    BW_S5,
    BW_S10,
    STANDARD_CONFIGS,
    NpuConfig,
)
from repro.errors import ConfigError


def make(**overrides):
    base = dict(name="c", tile_engines=2, lanes=4, native_dim=8,
                mrf_size=16)
    base.update(overrides)
    return NpuConfig(**base)


class TestValidation:
    def test_valid_config_builds(self):
        assert make().name == "c"

    @pytest.mark.parametrize("field", ["tile_engines", "lanes",
                                       "native_dim", "mrf_size", "mfus"])
    def test_nonpositive_rejected(self, field):
        with pytest.raises(ConfigError):
            make(**{field: 0})

    def test_lanes_must_divide_native_dim(self):
        with pytest.raises(ConfigError):
            make(native_dim=10, lanes=4)

    def test_mantissa_bits_range(self):
        with pytest.raises(ConfigError):
            make(mantissa_bits=11)
        assert make(mantissa_bits=0).mantissa_bits == 0

    def test_exponent_bits_range(self):
        with pytest.raises(ConfigError):
            make(exponent_bits=1)
        with pytest.raises(ConfigError):
            make(exponent_bits=9)

    def test_clock_must_be_positive(self):
        with pytest.raises(ConfigError):
            make(clock_mhz=0)

    def test_bfp_block_size_must_divide_native_dim(self):
        with pytest.raises(ConfigError):
            make(bfp_block_size=3)
        with pytest.raises(ConfigError):
            make(bfp_block_size=-4)
        assert make(bfp_block_size=4).effective_block_size == 4
        assert make(bfp_block_size=0).effective_block_size == 8

    def test_scale_granularity_and_encoding_validated(self):
        with pytest.raises(ConfigError):
            make(scale_granularity="row")
        with pytest.raises(ConfigError):
            make(scale_encoding="fp8")
        with pytest.raises(ConfigError):
            make(scale_encoding="e8m0", exponent_bits=5)
        cfg = make(scale_encoding="e8m0", exponent_bits=8,
                   bfp_block_size=4)
        assert cfg.bfp_format.is_e8m0

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            make().name = "other"


class TestDerived:
    def test_total_macs(self):
        assert make().total_macs == 2 * 8 * 4

    def test_flops_per_cycle_is_twice_macs(self):
        cfg = make()
        assert cfg.flops_per_cycle == 2 * cfg.total_macs

    def test_peak_tflops(self):
        cfg = make(clock_mhz=250.0)
        expected = 2 * cfg.total_macs * 250e6 / 1e12
        assert cfg.peak_tflops == pytest.approx(expected)

    def test_cycles_per_native_row(self):
        assert make(native_dim=8, lanes=4).cycles_per_native_row == 2

    def test_mrf_capacity_elements(self):
        cfg = make()
        assert cfg.mrf_capacity_elements == 16 * 64

    def test_mrf_address_space_exceeds_physical_slots(self):
        cfg = make()
        assert cfg.mrf_address_space > cfg.mrf_size

    def test_weight_bits_exact_mode(self):
        assert make(mantissa_bits=0).weight_bits_per_element == 32.0

    def test_weight_bits_bfp(self):
        cfg = make(mantissa_bits=2, exponent_bits=5)
        assert cfg.weight_bits_per_element == pytest.approx(
            1 + 2 + 5 / 8)

    def test_precision_name(self):
        assert make(mantissa_bits=2).precision_name == "BFP (1s.5e.2m)"
        assert "exact" in make(mantissa_bits=0).precision_name

    def test_precision_name_shows_mx_block(self):
        cfg = make(mantissa_bits=7, exponent_bits=8, bfp_block_size=4,
                   scale_encoding="e8m0")
        assert cfg.precision_name == "BFP (1s.e8m0.7m.b4)"

    def test_bfp_format_single_authority(self):
        cfg = make(mantissa_bits=3, bfp_block_size=4,
                   scale_granularity="tile")
        fmt = cfg.bfp_format
        assert fmt.block_size == 4
        assert fmt.scale_granularity == "tile"
        assert make(mantissa_bits=0).bfp_format is None

    def test_weight_bits_tile_granularity_amortizes_over_row(self):
        cfg = make(mantissa_bits=2, exponent_bits=5, bfp_block_size=4,
                   scale_granularity="tile")
        assert cfg.weight_bits_per_element == pytest.approx(3 + 5 / 8)

    def test_weight_bits_sub_block(self):
        cfg = make(mantissa_bits=2, exponent_bits=5, bfp_block_size=4)
        assert cfg.weight_bits_per_element == pytest.approx(3 + 5 / 4)

    def test_native_tiles_for(self):
        cfg = make(native_dim=8)
        assert cfg.native_tiles_for(8, 8) == 1
        assert cfg.native_tiles_for(9, 8) == 2
        assert cfg.native_tiles_for(17, 17) == 9

    def test_cycles_to_ms(self):
        cfg = make(clock_mhz=100.0)
        assert cfg.cycles_to_ms(100e3) == pytest.approx(1.0)

    def test_replace(self):
        cfg = make().replace(lanes=8)
        assert cfg.lanes == 8
        assert cfg.native_dim == 8


class TestStandardConfigs:
    """The three Table III instances must match the published
    parameters."""

    def test_bw_s5_macs(self):
        assert BW_S5.total_macs == 6000

    def test_bw_a10_macs(self):
        assert BW_A10.total_macs == 16384

    def test_bw_s10_macs(self):
        """The headline figure: 96,000 MACs on Stratix 10 280."""
        assert BW_S10.total_macs == 96000

    @pytest.mark.parametrize("config,expected", [
        (BW_S5, 2.4), (BW_A10, 9.8), (BW_S10, 48.0)])
    def test_peak_tflops_match_table3(self, config, expected):
        assert config.peak_tflops == pytest.approx(expected, rel=0.02)

    def test_bw_s10_parameters(self):
        assert BW_S10.tile_engines == 6
        assert BW_S10.lanes == 40
        assert BW_S10.native_dim == 400
        assert BW_S10.mrf_size == 306
        assert BW_S10.mfus == 2
        assert BW_S10.clock_mhz == 250.0

    def test_cnn_variant_uses_5bit_mantissa(self):
        assert BW_CNN_A10.mantissa_bits == 5

    def test_registry_complete(self):
        assert set(STANDARD_CONFIGS) == {"BW_S5", "BW_A10", "BW_S10",
                                         "BW_CNN_A10"}

    def test_bw_s10_mrf_holds_largest_deepbench_gru(self):
        """47.6M GRU-2816 weights must fit the packed MRF capacity."""
        weights = 6 * 2816 * 2816
        assert weights <= BW_S10.mrf_capacity_elements

    def test_bw_s10_mrf_capacity_in_bytes_fits_m20k_budget(self):
        """On-chip weight bytes must be storable in the device's
        M20K capacity (20 MB on Stratix 10 280)."""
        assert BW_S10.mrf_capacity_bytes < 20e6
