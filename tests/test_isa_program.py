"""Tests for NpuProgram and ProgramBuilder (loops, bindings, macros)."""

import pytest

from repro.errors import ChainError, IsaError
from repro.isa import InstructionChain, Loop, MemId, Opcode, ProgramBuilder, ScalarReg, \
    SetScalar


def simple_chain_program(steps=3):
    b = ProgramBuilder("p")
    with b.loop(steps):
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.NetQ)
    return b.build()


class TestBuilder:
    def test_implicit_chain_finalization_on_new_read(self):
        b = ProgramBuilder("p")
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.InitialVrf, 0)
        b.v_rd(MemId.InitialVrf, 0)
        b.v_relu()
        b.v_wr(MemId.NetQ)
        program = b.build()
        chains = list(program.chains())
        assert len(chains) == 2

    def test_multicast_does_not_split_chain(self):
        b = ProgramBuilder("p")
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.InitialVrf, 0)
        b.v_wr(MemId.NetQ)
        program = b.build()
        assert program.static_chain_count() == 1

    def test_s_wr_flushes_pending_chain(self):
        b = ProgramBuilder("p")
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.NetQ)
        b.s_wr(ScalarReg.Rows, 2)
        program = b.build()
        items = program.items
        assert isinstance(items[0], InstructionChain)
        assert isinstance(items[1], SetScalar)

    def test_set_rows_columns_sugar(self):
        b = ProgramBuilder("p")
        b.set_rows(4).set_columns(5)
        program = b.build()
        assert program.items[0] == SetScalar(ScalarReg.Rows, 4)
        assert program.items[1] == SetScalar(ScalarReg.Columns, 5)

    def test_invalid_chain_reported_with_program_name(self):
        b = ProgramBuilder("myprog")
        b.v_rd(MemId.NetQ)
        b.v_relu()
        with pytest.raises(ChainError, match="myprog"):
            b.build()

    def test_nested_loops(self):
        b = ProgramBuilder("p")
        with b.loop(2):
            with b.loop(3):
                b.v_rd(MemId.NetQ)
                b.v_wr(MemId.NetQ)
        program = b.build()
        assert len(list(program.chains())) == 6

    def test_negative_loop_count_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(IsaError):
            with b.loop(-1):
                pass

    def test_method_chaining_style(self):
        b = ProgramBuilder("p")
        b.v_rd(MemId.InitialVrf, 0).mv_mul(0).vv_add(0).v_sigm() \
            .v_wr(MemId.MultiplyVrf, 0)
        assert b.build().static_chain_count() == 1

    def test_add_prebuilt_chain(self):
        from repro.isa import v_rd, v_wr
        chain = InstructionChain([v_rd(MemId.NetQ), v_wr(MemId.NetQ)])
        program = ProgramBuilder("p").add_chain(chain).build()
        assert list(program.chains()) == [chain]


class TestProgram:
    def test_loop_unrolls_in_events(self):
        program = simple_chain_program(steps=4)
        assert len(list(program.chains())) == 4

    def test_runtime_binding(self):
        b = ProgramBuilder("p")
        with b.loop("steps"):
            b.v_rd(MemId.NetQ)
            b.v_wr(MemId.NetQ)
        program = b.build()
        assert len(list(program.chains({"steps": 7}))) == 7
        assert len(list(program.chains({"steps": 0}))) == 0

    def test_missing_binding_raises(self):
        b = ProgramBuilder("p")
        with b.loop("steps"):
            b.v_rd(MemId.NetQ)
            b.v_wr(MemId.NetQ)
        program = b.build()
        with pytest.raises(IsaError):
            list(program.chains())

    def test_bad_binding_value_raises(self):
        b = ProgramBuilder("p")
        with b.loop("n"):
            b.v_rd(MemId.NetQ)
            b.v_wr(MemId.NetQ)
        program = b.build()
        with pytest.raises(IsaError):
            list(program.chains({"n": -3}))

    def test_static_vs_dynamic_instruction_count(self):
        program = simple_chain_program(steps=5)
        # one chain = v_rd + v_wr + end_chain = 3 instructions
        assert program.static_instruction_count() == 3
        assert program.dynamic_instruction_count() == 15

    def test_instruction_stream_has_end_chain_markers(self):
        program = simple_chain_program(steps=2)
        stream = list(program.instruction_stream())
        assert [i.opcode for i in stream] == [
            Opcode.V_RD, Opcode.V_WR, Opcode.END_CHAIN,
            Opcode.V_RD, Opcode.V_WR, Opcode.END_CHAIN]

    def test_instruction_stream_includes_s_wr(self):
        b = ProgramBuilder("p")
        b.set_rows(2)
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.NetQ)
        stream = list(b.build().instruction_stream())
        assert stream[0].opcode is Opcode.S_WR

    def test_loop_resolve_count(self):
        loop = Loop(5, ())
        assert loop.resolve_count() == 5
        loop = Loop("t", ())
        assert loop.resolve_count({"t": 9}) == 9

    def test_repr(self):
        program = simple_chain_program(steps=2)
        assert "p" in repr(program)


class TestPaperLstmListing:
    """The Section IV-C LSTM listing builds as a legal program."""

    def build(self):
        b = ProgramBuilder("lstm_listing")
        with b.loop("steps"):
            b.v_rd(MemId.NetQ)
            b.v_wr(MemId.InitialVrf, 0)       # ivrf_xt
            # xWf = xt * Wf + bf
            b.v_rd(MemId.InitialVrf, 0)
            b.mv_mul(0)                        # mrf_Wf
            b.vv_add(0)                        # asvrf_bf
            b.v_wr(MemId.AddSubVrf, 4)         # asvrf_xWf
            # f gate -> multiply by c_prev
            b.v_rd(MemId.InitialVrf, 1)        # ivrf_h_prev
            b.mv_mul(25)                       # mrf_Uf
            b.vv_add(4)                        # asvrf_xWf
            b.v_sigm()
            b.vv_mul(0)                        # mulvrf_c_prev
            b.v_wr(MemId.AddSubVrf, 8)         # asvrf_ft_mod
            # c gate -> store ct and c_prev
            b.v_rd(MemId.InitialVrf, 1)
            b.mv_mul(50)                       # mrf_Uc
            b.vv_add(5)                        # asvrf_xWc
            b.v_tanh()
            b.vv_mul(1)                        # mulvrf_it
            b.vv_add(8)                        # asvrf_ft_mod
            b.v_wr(MemId.MultiplyVrf, 0)       # mulvrf_c_prev
            b.v_wr(MemId.InitialVrf, 2)        # ivrf_ct
            # produce ht, store and send to network
            b.v_rd(MemId.InitialVrf, 2)
            b.v_tanh()
            b.vv_mul(2)                        # mulvrf_ot
            b.v_wr(MemId.InitialVrf, 1)        # ivrf_h_prev
            b.v_wr(MemId.NetQ)
        return b.build()

    def test_builds_and_counts(self):
        program = self.build()
        assert program.static_chain_count() == 5

    def test_every_chain_fits_two_mfus(self):
        for chain in self.build().chains({"steps": 1}):
            assert chain.mfus_required() <= 2
