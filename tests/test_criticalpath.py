"""Tests for the UDM/SDM critical-path methodology (Section III)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.criticalpath import Dfg, analytic, conv_layer_dfg, dot_depth, gru_step_dfg, lstm_step_dfg, mlp_dfg, recurrent_cycle_depth, sdm_analyze_recurrent, sdm_cycles_bound, sdm_cycles_scheduled, udm_analyze_recurrent, \
    udm_cycles
from repro.models.cnn import TABLE1_CNN_1X1, TABLE1_CNN_3X3


class TestDfg:
    def test_dot_depth(self):
        assert dot_depth(1) == 1
        assert dot_depth(2) == 2
        assert dot_depth(2000) == 12  # 1 + ceil(log2 2000)

    def test_duplicate_node_rejected(self):
        g = Dfg()
        g.add_input("x")
        with pytest.raises(ValueError):
            g.add_input("x")

    def test_unknown_dependency_rejected(self):
        g = Dfg()
        with pytest.raises(ValueError):
            g.add_pointwise("y", "add", 4, deps=["ghost"])

    def test_critical_path_linear_chain(self):
        g = Dfg()
        g.add_input("x")
        g.add_pointwise("a", "add", 4, deps=["x"])
        g.add_pointwise("b", "mul", 4, deps=["a"])
        assert g.critical_path() == 2

    def test_critical_path_takes_longest_branch(self):
        g = Dfg()
        g.add_input("x")
        g.add_dot("deep", 1024, 1, deps=["x"])       # depth 11
        g.add_pointwise("shallow", "add", 4, deps=["x"])
        g.add_pointwise("join", "add", 4, deps=["deep", "shallow"])
        assert g.critical_path() == 12

    def test_sources_restriction(self):
        g = Dfg()
        g.add_input("x")
        g.add_input("h")
        g.add_dot("xw", 64, 8, deps=["x"])
        g.add_pointwise("y", "add", 8, deps=["xw", "h"])
        # From h only: the dot product is off-path.
        assert g.critical_path(sinks=["y"], sources=["h"]) == 1

    def test_work_accounting(self):
        g = Dfg()
        g.add_input("x")
        g.add_dot("d", 8, 4, deps=["x"])
        g.add_pointwise("p", "add", 4, deps=["d"])
        assert g.total_macs == 32
        assert g.total_pointwise_ops == 4
        assert g.total_ops == 68


class TestTable1Values:
    def test_lstm2000_udm_is_19(self):
        """Table I: the 2000-dim LSTM evaluates in 19 UDM cycles."""
        g = lstm_step_dfg(2000)
        assert g.critical_path() == 19

    def test_lstm2000_ops(self):
        assert lstm_step_dfg(2000).total_ops == pytest.approx(64e6,
                                                              rel=0.01)

    def test_lstm2000_sdm_is_352(self):
        """Table I: 352 cycles on 96,000 MACs."""
        g = lstm_step_dfg(2000)
        assert sdm_analyze_recurrent(g, 1, 96000).cycles == 352

    def test_gru2800_udm_near_31(self):
        """Table I reports 31; the graph analysis gives 34 (it counts
        the final interpolation ops the paper appears to exclude)."""
        assert 31 <= udm_cycles(gru_step_dfg(2800)) <= 34

    def test_gru2800_sdm_near_520(self):
        g = gru_step_dfg(2800)
        assert sdm_analyze_recurrent(g, 1, 96000).cycles == \
            pytest.approx(520, abs=5)

    def test_cnn_3x3_sdm_near_1204(self):
        g = conv_layer_dfg(TABLE1_CNN_3X3)
        assert sdm_cycles_bound(g, 96000) == pytest.approx(1204, rel=0.02)

    def test_cnn_3x3_udm_is_13(self):
        assert udm_cycles(conv_layer_dfg(TABLE1_CNN_3X3)) == 13

    def test_cnn_1x1_sdm_near_549(self):
        g = conv_layer_dfg(TABLE1_CNN_1X1)
        assert sdm_cycles_bound(g, 96000) == pytest.approx(549, rel=0.02)

    def test_lstm_18x_gap_between_sdm_and_udm(self):
        """Section III: 'The 18X gap between the SDM and UDM suggests
        further performance improvements with more resources.'"""
        g = lstm_step_dfg(2000)
        ratio = sdm_analyze_recurrent(g, 1, 96000).cycles / udm_cycles(g)
        assert 16 <= ratio <= 20


class TestRecurrentAnalysis:
    def test_udm_recurrent_scales_linearly(self):
        g = lstm_step_dfg(512)
        one = udm_analyze_recurrent(g, 1).cycles
        ten = udm_analyze_recurrent(g, 10).cycles
        per = recurrent_cycle_depth(g)
        assert ten - one == 9 * per

    def test_sdm_recurrent_matches_table5_gru2816(self):
        """SDM for GRU h=2816 t=750 is 1.581 ms (Table V)."""
        g = gru_step_dfg(2816)
        result = sdm_analyze_recurrent(g, 750, 96000)
        assert result.latency_ms(250.0) == pytest.approx(1.581, rel=0.02)

    def test_sdm_recurrent_matches_table5_lstm2048(self):
        g = lstm_step_dfg(2048)
        result = sdm_analyze_recurrent(g, 25, 96000)
        assert result.latency_ms(250.0) == pytest.approx(0.037, rel=0.03)

    def test_invalid_steps(self):
        g = lstm_step_dfg(64)
        with pytest.raises(ValueError):
            udm_analyze_recurrent(g, 0)
        with pytest.raises(ValueError):
            sdm_analyze_recurrent(g, 0, 100)

    def test_gru_variants_differ_in_depth(self):
        classic = recurrent_cycle_depth(gru_step_dfg(1024,
                                                     variant="classic"))
        cudnn = recurrent_cycle_depth(gru_step_dfg(1024,
                                                   variant="cudnn"))
        assert classic > cudnn  # reset-before-matmul serializes two dots

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            gru_step_dfg(64, variant="other")


class TestSdmProperties:
    def test_bound_at_least_udm(self):
        g = lstm_step_dfg(256)
        assert sdm_cycles_bound(g, 1000) >= udm_cycles(g)

    def test_more_macs_never_slower(self):
        g = lstm_step_dfg(512)
        cycles = [sdm_cycles_bound(g, m) for m in (1000, 10000, 100000)]
        assert cycles == sorted(cycles, reverse=True)

    def test_scheduled_between_floor_and_bound(self):
        g = mlp_dfg([64, 128, 64, 10])
        macs = 500
        scheduled = sdm_cycles_scheduled(g, macs)
        assert scheduled >= g.total_macs / macs
        assert scheduled >= udm_cycles(g)
        assert scheduled <= sdm_cycles_bound(g, macs) + udm_cycles(g)

    def test_invalid_mac_count(self):
        g = mlp_dfg([8, 8])
        with pytest.raises(ValueError):
            sdm_cycles_bound(g, 0)
        with pytest.raises(ValueError):
            sdm_cycles_scheduled(g, -1)


@given(st.integers(2, 4096), st.integers(100, 200000))
@settings(max_examples=40)
def test_sdm_bound_dominates_schedule_property(dim, macs):
    """Graham bound >= greedy schedule >= work/units for MLP graphs."""
    g = mlp_dfg([dim, max(2, dim // 2)])
    bound = sdm_cycles_bound(g, macs)
    scheduled = sdm_cycles_scheduled(g, macs)
    assert scheduled <= bound + 1e-9
    assert scheduled >= g.total_macs / macs - 1e-9


class TestAnalytic:
    def test_lstm_udm_matches_graph(self):
        for n in (256, 1024, 2000, 4096):
            assert analytic.lstm_udm_cycles_per_step(n) == \
                udm_cycles(lstm_step_dfg(n))

    def test_lstm_sdm_matches_graph(self):
        for n in (512, 2000):
            graph = sdm_analyze_recurrent(lstm_step_dfg(n), 1,
                                          96000).cycles
            assert analytic.lstm_sdm_cycles_per_step(n, 96000) == \
                pytest.approx(graph, abs=2)

    def test_gru_udm_31_at_2800(self):
        assert analytic.gru_udm_cycles_per_step(2800) == 31

    def test_ops_formulas_match_model_shapes(self):
        from repro.models import GruShape, LstmShape
        assert analytic.lstm_ops_per_step(1024) == \
            LstmShape(1024, 1024).ops_per_step
        assert analytic.gru_ops_per_step(1024) == \
            GruShape(1024, 1024).ops_per_step

    def test_fig2_trends(self):
        """Ops grow ~4x per dimension doubling; UDM grows by ~1."""
        ops_ratio = (analytic.lstm_ops_per_step(2048)
                     / analytic.lstm_ops_per_step(1024))
        assert 3.8 < ops_ratio < 4.2
        assert (analytic.lstm_udm_cycles_per_step(2048)
                - analytic.lstm_udm_cycles_per_step(1024)) == 1

    def test_dimension_bounds(self):
        with pytest.raises(ValueError):
            analytic.lstm_udm_cycles_per_step(1)
