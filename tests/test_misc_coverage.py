"""Edge-case and cross-cutting coverage tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BW_S10, NpuConfig
from repro.functional import FunctionalSimulator
from repro.harness.tables import fmt, fmt_ratio
from repro.isa import MemId, ProgramBuilder
from repro.numerics import BfpFormat, error_stats
from repro.timing import LatencyConstants, TimingSimulator


class TestTableFormatting:
    def test_fmt_ranges(self):
        assert fmt(0) == "0"
        assert fmt(0.1234) == "0.12"
        assert fmt(123.4) == "123"
        assert fmt(12345.6) == "12,346"

    def test_fmt_ratio(self):
        assert fmt_ratio(2.0, 1.0) == "2.00x"
        assert fmt_ratio(1.0, 0.0) == "-"


class TestNumericsEdges:
    def test_error_stats_zero_signal(self):
        stats = error_stats(np.zeros(8), np.ones(8))
        assert stats.snr_db == float("-inf")
        assert stats.rel_rms_error == float("inf")

    def test_format_str(self):
        # Non-native block sizes are called out in the name; the default
        # 128-element block keeps the paper's bare Table IV notation.
        assert str(BfpFormat(3, block_size=64)) == "1s.5e.3m.b64"
        assert str(BfpFormat(3)) == "1s.5e.3m"
        assert BfpFormat(3, block_size=64).label(native_block=64) == "1s.5e.3m"


class TestChainRecord:
    def test_first_output(self):
        from repro.timing.report import ChainRecord
        rec = ChainRecord(index=0, start=10.0, issue=5.0,
                          depth_first=20.0, completion=35.0,
                          has_mv_mul=True, rows=1, cols=1)
        assert rec.first_output == 30.0


class TestExecutorEdges:
    def test_run_empty_program(self, tiny_config):
        sim = FunctionalSimulator(tiny_config)
        from repro.isa import NpuProgram
        stats = sim.run(NpuProgram((), name="empty"))
        assert stats.chains_executed == 0

    def test_exact_flag_forced_by_zero_mantissa(self):
        cfg = NpuConfig(name="z", tile_engines=1, lanes=2, native_dim=4,
                        mrf_size=4, mantissa_bits=0)
        sim = FunctionalSimulator(cfg, exact=False)
        assert sim.exact  # mantissa_bits=0 means exact regardless

    def test_chain_over_mfu_budget_raises_at_execution(self, tiny_config):
        from repro.errors import ChainCapacityError
        cfg = tiny_config.replace(mfus=1)
        sim = FunctionalSimulator(cfg, exact=True)
        sim.load_vector(MemId.InitialVrf, 0, np.ones(8))
        sim.load_vector(MemId.AddSubVrf, 0, np.ones(8))
        sim.load_vector(MemId.AddSubVrf, 1, np.ones(8))
        b = ProgramBuilder("too_long")
        b.v_rd(MemId.InitialVrf, 0)
        b.vv_add(0)
        b.vv_add(1)
        b.v_wr(MemId.InitialVrf, 1)
        with pytest.raises(ChainCapacityError):
            sim.run(b.build())


class TestMegaSimdProperty:
    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=16, deadline=None)
    def test_mv_mul_matches_numpy_for_any_tiling(self, rows, cols):
        cfg = NpuConfig(name="p", tile_engines=2, lanes=4, native_dim=8,
                        mrf_size=64, mantissa_bits=0)
        rng = np.random.default_rng(rows * 10 + cols)
        W = rng.uniform(-1, 1, (rows * 8, cols * 8)).astype(np.float32)
        x = rng.uniform(-1, 1, cols * 8).astype(np.float32)
        sim = FunctionalSimulator(cfg, exact=True)
        sim.load_matrix(0, W)
        sim.load_vector(MemId.InitialVrf, 0, x)
        b = ProgramBuilder("p")
        b.set_rows(rows)
        b.set_columns(cols)
        b.v_rd(MemId.InitialVrf, 0)
        b.mv_mul(0)
        b.v_wr(MemId.InitialVrf, 8)
        sim.run(b.build())
        got = sim.read_vector(MemId.InitialVrf, 8, rows * 8)
        assert np.allclose(got, W @ x, atol=1e-4)


class TestTimingEdges:
    def test_constants_are_frozen_dataclass(self):
        import dataclasses
        with pytest.raises(dataclasses.FrozenInstanceError):
            LatencyConstants().arb_depth = 1.0

    def test_empty_program_times_to_overhead_only(self):
        from repro.isa import NpuProgram
        report = TimingSimulator(BW_S10).run(NpuProgram((), name="e"))
        assert report.total_cycles == pytest.approx(
            LatencyConstants().invocation_overhead)

    def test_s_wr_only_program(self):
        b = ProgramBuilder("ctl")
        b.set_rows(4)
        b.set_columns(4)
        report = TimingSimulator(BW_S10).run(
            b.build(), include_invocation_overhead=False)
        assert report.instructions_dispatched == 2
        assert report.chains_executed == 0

    def test_utilization_zero_without_nominal_ops(self):
        from repro.compiler.lowering import compile_rnn_shape
        compiled = compile_rnn_shape("gru", 512, BW_S10)
        report = TimingSimulator(BW_S10).run(compiled.program,
                                             bindings={"steps": 1})
        assert report.utilization == 0.0
