"""Reference-interpreter semantics: hand cases vs the executor."""

import numpy as np
import pytest

from repro.errors import (ExecutionError, MemoryError_,
                          NetworkQueueEmptyError)
from repro.isa import (InstructionChain, MemId, ScalarReg, m_rd, m_wr,
                       mv_mul, v_rd, v_sigm, v_tanh, v_wr, vv_add, vv_mul)
from repro.isa.program import NpuProgram, SetScalar
from repro.numerics.bfp import BfpFormat, quantize, quantize_reference
from repro.verify import FUZZ_CONFIGS, ReferenceInterpreter
from repro.verify.differential import load_reference, load_simulator
from repro.verify.generator import generate_case

pytestmark = pytest.mark.tier1


# -- BFP oracle -----------------------------------------------------------

@pytest.mark.parametrize("mantissa_bits", [2, 3, 5])
def test_quantize_reference_matches_vectorized(mantissa_bits):
    rng = np.random.default_rng(99 + mantissa_bits)
    fmt = BfpFormat(mantissa_bits=mantissa_bits, exponent_bits=5,
                    block_size=8)
    x = (rng.standard_normal((16, 8))
         * np.exp2(rng.integers(-6, 7, size=(16, 8)))).astype(np.float32)
    assert np.array_equal(quantize_reference(x, fmt), quantize(x, fmt))


def test_quantize_reference_zero_block():
    fmt = BfpFormat(mantissa_bits=3, exponent_bits=5, block_size=4)
    zero = np.zeros((2, 4), dtype=np.float32)
    assert np.array_equal(quantize_reference(zero, fmt), zero)


# -- hand-written program equivalence -------------------------------------

def _both(config):
    """A reference interpreter and an executor with identical state."""
    case = generate_case(0, config=config)
    return case, load_reference(case), load_simulator(case, naive=False)


@pytest.mark.parametrize("config_name", sorted(FUZZ_CONFIGS))
def test_mvm_chain_matches_executor(config_name):
    config = FUZZ_CONFIGS[config_name]
    program = NpuProgram((
        SetScalar(ScalarReg.Rows, 2),
        SetScalar(ScalarReg.Columns, 2),
        InstructionChain([m_rd(MemId.Dram, 0), m_wr(MemId.MatrixRf, 0)]),
        InstructionChain([v_rd(MemId.InitialVrf, 0), mv_mul(0),
                          vv_add(0), v_wr(MemId.NetQ)]),
    ), name="hand-mvm")
    case, ref, sim = _both(config)
    ref.run(program)
    sim.run(program)
    assert len(ref.outputs) == 2
    outs = sim.pop_outputs_flat().reshape(2, -1)
    for got, want in zip(ref.outputs, outs):
        assert np.array_equal(got, want, equal_nan=True)
    assert np.array_equal(ref.snapshot()["mrf"], sim.snapshot()["mrf"])


def test_width_in_semantics_without_mv_mul():
    """A chain without mv_mul reads/writes `rows` entries."""
    config = FUZZ_CONFIGS["fuzz8_exact"]
    program = NpuProgram((
        SetScalar(ScalarReg.Rows, 3),
        InstructionChain([v_rd(MemId.InitialVrf, 4), vv_mul(1),
                          v_wr(MemId.AddSubVrf, 2)]),
    ))
    case, ref, sim = _both(config)
    ref.run(program)
    sim.run(program)
    want = (case.vrf_init[MemId.InitialVrf][4:7]
            * case.vrf_init[MemId.MultiplyVrf][1:4])
    assert np.array_equal(ref.vrfs[MemId.AddSubVrf][2:5], want)
    assert np.array_equal(sim.vrfs[MemId.AddSubVrf].read(2, 3), want)


def test_activations_match_executor_bitwise():
    config = FUZZ_CONFIGS["fuzz8_m2"]
    program = NpuProgram((
        InstructionChain([v_rd(MemId.InitialVrf, 0), v_sigm(),
                          v_wr(MemId.NetQ)]),
        InstructionChain([v_rd(MemId.InitialVrf, 1), v_tanh(),
                          v_wr(MemId.NetQ)]),
    ))
    _, ref, sim = _both(config)
    ref.run(program)
    sim.run(program)
    got = np.concatenate(ref.outputs)
    assert np.array_equal(got, sim.pop_outputs_flat(), equal_nan=True)


def test_stats_and_op_counts():
    config = FUZZ_CONFIGS["fuzz8_exact"]
    program = NpuProgram((
        SetScalar(ScalarReg.Rows, 1),
        InstructionChain([v_rd(MemId.InitialVrf, 0), vv_add(0),
                          v_wr(MemId.AddSubVrf, 1)]),
    ))
    _, ref, sim = _both(config)
    ref.run(program)
    stats = sim.run(program)
    assert ref.stats_dict() == {
        "chains_executed": stats.chains_executed,
        "instructions_executed": stats.instructions_executed,
        "mv_mul_count": stats.mv_mul_count,
        "macs": stats.macs,
        "pointwise_flops": stats.pointwise_flops,
    }
    assert ref.op_counts["v_rd"] == 1
    assert ref.op_counts["vv_add"] == 1
    assert ref.op_counts["end_chain"] == 1
    assert ref.op_counts["set_scalar"] == 1


# -- error semantics ------------------------------------------------------

def test_reference_rejects_invalid_scalar():
    ref = ReferenceInterpreter(FUZZ_CONFIGS["fuzz8_m2"])
    with pytest.raises(ExecutionError):
        ref.run(NpuProgram((SetScalar(ScalarReg.Rows, 0),)))


def test_reference_rejects_empty_netq():
    ref = ReferenceInterpreter(FUZZ_CONFIGS["fuzz8_m2"])
    program = NpuProgram((
        InstructionChain([v_rd(MemId.NetQ), v_wr(MemId.InitialVrf, 0)]),))
    with pytest.raises(NetworkQueueEmptyError):
        ref.run(program)


def test_reference_rejects_unwritten_dram():
    ref = ReferenceInterpreter(FUZZ_CONFIGS["fuzz8_m2"])
    program = NpuProgram((
        InstructionChain([v_rd(MemId.Dram, 500),
                          v_wr(MemId.InitialVrf, 0)]),))
    with pytest.raises(MemoryError_):
        ref.run(program)


def test_reference_enforces_mfu_capacity():
    config = FUZZ_CONFIGS["fuzz8_m2"]  # mfus=2
    ref = ReferenceInterpreter(config)
    # Three add/sub-category ops need three MFUs; only two exist.
    program = NpuProgram((
        InstructionChain([v_rd(MemId.InitialVrf, 0), vv_add(0), vv_add(1),
                          vv_add(2), v_wr(MemId.NetQ)]),))
    with pytest.raises(ExecutionError):
        ref.run(program)


def test_snapshot_schemas_agree():
    case = generate_case(3)
    ref = load_reference(case)
    sim = load_simulator(case, naive=True)
    ref_snap, sim_snap = ref.snapshot(), sim.snapshot()
    assert set(ref_snap) == set(sim_snap)
    assert set(ref_snap["vrf"]) == set(sim_snap["vrf"])
    for name in ref_snap["vrf"]:
        assert ref_snap["vrf"][name].shape == sim_snap["vrf"][name].shape
    assert ref_snap["mrf"].shape == sim_snap["mrf"].shape
