"""Correlated fault injection and the chaos scenario catalog."""

import math

import numpy as np
import pytest

from repro.system.chaos import (
    SCENARIOS,
    ChaosScenario,
    CorrelatedFaultInjector,
    RepairDistribution,
    run_chaos_scenario,
)
from repro.system.cluster import ClusterError, ClusterSpec
from repro.system.faults import FaultInjector


SPEC = ClusterSpec(racks=2, nodes_per_rack=3)


class TestRepairDistribution:
    def test_validation(self):
        with pytest.raises(ClusterError):
            RepairDistribution(kind="weibull")
        with pytest.raises(ClusterError):
            RepairDistribution(mean_s=0.0)
        with pytest.raises(ClusterError):
            RepairDistribution(sigma=0.0)

    def test_fixed_is_exact(self):
        rng = np.random.default_rng(0)
        dist = RepairDistribution("fixed", mean_s=12.0)
        assert dist.draw(rng) == 12.0

    @pytest.mark.parametrize("kind", ["fixed", "exponential",
                                      "lognormal"])
    def test_draw_positive_and_deterministic(self, kind):
        dist = RepairDistribution(kind, mean_s=30.0)
        a = dist.draw(np.random.default_rng(7))
        b = dist.draw(np.random.default_rng(7))
        assert a == b and a > 0

    @pytest.mark.parametrize("kind", ["exponential", "lognormal"])
    def test_mean_roughly_respected(self, kind):
        rng = np.random.default_rng(1)
        dist = RepairDistribution(kind, mean_s=30.0, sigma=0.5)
        draws = [dist.draw(rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(30.0, rel=0.15)

    def test_one_uniform_per_draw(self):
        """Every kind consumes exactly one draw, so swapping the
        repair model never shifts later events in the stream."""
        after = {}
        for kind in ("fixed", "exponential", "lognormal"):
            rng = np.random.default_rng(3)
            RepairDistribution(kind).draw(rng)
            after[kind] = rng.random()
        assert len(set(after.values())) == 1


class TestCorrelatedFaultInjector:
    def _injector(self, **kw):
        kw.setdefault("repair", RepairDistribution("fixed", mean_s=5.0))
        return CorrelatedFaultInjector(SPEC, seed=0, **kw)

    def test_is_a_fault_injector(self):
        assert isinstance(self._injector(), FaultInjector)

    def test_rack_outage_pairs_down_and_up(self):
        events = self._injector().rack_outage(1, at_s=10.0)
        assert [e.action for e in events] == ["rack_down", "rack_up"]
        assert events[0].target == events[1].target == 1
        assert events[1].time_s == pytest.approx(15.0)

    def test_rack_outage_validates_rack(self):
        with pytest.raises(ClusterError):
            self._injector().rack_outage(SPEC.racks, at_s=0.0)

    def test_tor_partition(self):
        events = self._injector().tor_partition(0, at_s=1.0,
                                                duration_s=2.0)
        assert [e.action for e in events] == ["partition", "heal"]
        assert events[1].time_s == pytest.approx(3.0)
        with pytest.raises(ClusterError):
            self._injector().tor_partition(0, at_s=1.0,
                                           duration_s=0.0)

    def test_node_crashes_poisson(self):
        events = self._injector().node_crashes(
            duration_s=3600.0, crashes_per_hour=20.0)
        crashes = [e for e in events if e.action == "crash"]
        repairs = [e for e in events if e.action == "repair"]
        assert len(crashes) == len(repairs) > 0
        assert all(0 <= e.target < SPEC.num_nodes for e in crashes)
        assert all(r.time_s > c.time_s
                   for c, r in zip(crashes, repairs))

    def test_node_crashes_zero_rate(self):
        assert self._injector().node_crashes(10.0, 0.0) == []
        with pytest.raises(ClusterError):
            self._injector().node_crashes(0.0, 1.0)

    def test_rolling_slowdown(self):
        events = self._injector().rolling_slowdown(
            4.0, start_s=1.0, dwell_s=0.5)
        slows = [e for e in events if e.action == "slow"]
        assert len(slows) == SPEC.num_nodes
        assert [e.target for e in slows] == list(range(SPEC.num_nodes))
        assert slows[1].time_s - slows[0].time_s == pytest.approx(0.5)
        with pytest.raises(ClusterError):
            self._injector().rolling_slowdown(0.5, 0.0, 1.0)
        with pytest.raises(ClusterError):
            self._injector().rolling_slowdown(2.0, 0.0, 0.0)

    def test_deterministic_event_streams(self):
        a = CorrelatedFaultInjector(SPEC, seed=5).node_crashes(
            3600.0, 10.0)
        b = CorrelatedFaultInjector(SPEC, seed=5).node_crashes(
            3600.0, 10.0)
        assert a == b
        c = CorrelatedFaultInjector(SPEC, seed=6).node_crashes(
            3600.0, 10.0)
        assert a != c


class TestScenarioCatalog:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_builders_produce_scenarios(self, name):
        scenario = SCENARIOS[name](SPEC, 0, 2000)
        assert isinstance(scenario, ChaosScenario)
        assert scenario.name == name
        assert scenario.description
        arr = np.asarray(scenario.arrivals)
        assert arr.size > 0 and np.all(np.diff(arr) >= 0)
        for ev in scenario.events:
            assert ev.time_s >= 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ClusterError):
            run_chaos_scenario("meteor_strike")
        with pytest.raises(ClusterError):
            run_chaos_scenario("overload", requests=0)

    def test_scenarios_deterministic(self):
        a = run_chaos_scenario("rack_loss", spec=SPEC,
                               requests=5000, seed=9)
        b = run_chaos_scenario("rack_loss", spec=SPEC,
                               requests=5000, seed=9)
        assert np.array_equal(a.status, b.status)
        assert np.array_equal(a.latency_s, b.latency_s,
                              equal_nan=True)

    def test_mitigations_beat_ablation_on_rack_loss(self):
        mit = run_chaos_scenario("rack_loss", spec=SPEC,
                                 requests=20_000, seed=0)
        abl = run_chaos_scenario("rack_loss", spec=SPEC,
                                 requests=20_000, seed=0,
                                 mitigated=False)
        assert not math.isnan(mit.availability)
        assert mit.availability > abl.availability

    def test_overload_mitigation_sheds_instead_of_timing_out(self):
        mit = run_chaos_scenario("overload", spec=SPEC,
                                 requests=20_000, seed=0)
        abl = run_chaos_scenario("overload", spec=SPEC,
                                 requests=20_000, seed=0,
                                 mitigated=False)
        assert mit.availability > abl.availability
        assert mit.shed > 0 and mit.deadline_violations == 0
        assert abl.deadline_violations > 0
