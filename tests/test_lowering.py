"""Tests for model lowering: program structure and functional
correctness against the numpy references."""

import numpy as np
import pytest

from repro.compiler import (
    compile_conv,
    compile_gru,
    compile_lstm,
    compile_mlp,
)
from repro.compiler.lowering import compile_rnn_shape
from repro.config import NpuConfig
from repro.errors import CapacityError, CompileError
from repro.isa import Opcode
from repro.models import (
    ConvSpec,
    GruReference,
    LstmReference,
    MlpReference,
    conv2d_reference,
    random_conv_weights,
)


def seq(rng, n, dim):
    return [rng.uniform(-1, 1, dim).astype(np.float32) for _ in range(n)]


class TestLstmLowering:
    def test_matches_reference_exact(self, small_config, rng):
        model = LstmReference(hidden_dim=30, input_dim=20, seed=7)
        compiled = compile_lstm(model, small_config)
        xs = seq(rng, 6, 20)
        got = compiled.run_sequence(xs, exact=True)
        want = model.run(xs)
        for g, w in zip(got, want):
            assert np.allclose(g, w, atol=1e-5)

    def test_matches_reference_under_bfp(self, bfp_config, rng):
        """With 5-bit mantissas the NPU output tracks the float32
        reference within a few percent (Section VI)."""
        model = LstmReference(hidden_dim=24, input_dim=24, seed=8,
                              scale=0.1)
        compiled = compile_lstm(model, bfp_config)
        xs = seq(rng, 4, 24)
        got = compiled.run_sequence(xs, exact=False)
        want = model.run(xs)
        for g, w in zip(got, want):
            assert np.linalg.norm(g - w) / (np.linalg.norm(w) + 1e-9) \
                < 0.08

    def test_chains_per_step(self, small_config):
        """Ten chains per timestep: xt load, 4 xW, f, i, o, c, h."""
        model = compile_rnn_shape("lstm", 30, small_config, input_dim=30)
        chains = list(model.program.chains({"steps": 1}))
        assert len(chains) == 10

    def test_eight_mv_muls_per_step(self, small_config):
        model = compile_rnn_shape("lstm", 30, small_config)
        chains = list(model.program.chains({"steps": 1}))
        assert sum(1 for c in chains if c.has_mv_mul) == 8

    def test_every_chain_fits_config_mfus(self, small_config):
        model = compile_rnn_shape("lstm", 30, small_config)
        for chain in model.program.chains({"steps": 1}):
            assert chain.mfus_required() <= small_config.mfus

    def test_state_persists_across_invocations(self, small_config, rng):
        """h/c live in the VRFs: a second run_sequence on the same
        simulator continues the recurrence."""
        model = LstmReference(hidden_dim=16, input_dim=16, seed=9)
        compiled = compile_lstm(model, small_config)
        xs = seq(rng, 6, 16)
        sim = compiled.new_simulator(exact=True)
        compiled.run_sequence(xs[:3], exact=True, sim=sim)
        second = compiled.run_sequence(xs[3:], exact=True, sim=sim)
        want = model.run(xs)
        assert np.allclose(second[-1], want[-1], atol=1e-5)

    def test_rectangular_input_dim(self, small_config, rng):
        """input_dim != hidden_dim exercises the Cx != C path."""
        model = LstmReference(hidden_dim=32, input_dim=8, seed=10)
        compiled = compile_lstm(model, small_config)
        xs = seq(rng, 3, 8)
        got = compiled.run_sequence(xs, exact=True)
        want = model.run(xs)
        assert np.allclose(got[-1], want[-1], atol=1e-5)

    def test_capacity_error_for_oversized_model(self):
        cfg = NpuConfig(name="t", tile_engines=1, lanes=2, native_dim=4,
                        mrf_size=4, mantissa_bits=0)
        model = compile_rnn_shape
        with pytest.raises(CapacityError):
            model("lstm", 64, cfg)


class TestGruLowering:
    def test_matches_reference_exact(self, small_config, rng):
        model = GruReference(hidden_dim=24, input_dim=24, seed=3)
        compiled = compile_gru(model, small_config)
        xs = seq(rng, 6, 24)
        got = compiled.run_sequence(xs, exact=True)
        want = model.run(xs)
        for g, w in zip(got, want):
            assert np.allclose(g, w, atol=1e-5)

    def test_chains_per_step(self, small_config):
        """Nine chains: xt, 3 xW, r, z, zbar, zh, fused h."""
        model = compile_rnn_shape("gru", 24, small_config)
        assert len(list(model.program.chains({"steps": 1}))) == 9

    def test_six_mv_muls_per_step(self, small_config):
        model = compile_rnn_shape("gru", 24, small_config)
        chains = list(model.program.chains({"steps": 1}))
        assert sum(1 for c in chains if c.has_mv_mul) == 6

    def test_uses_vv_b_sub_a_for_one_minus_z(self, small_config):
        model = compile_rnn_shape("gru", 24, small_config)
        ops = [i.opcode for c in model.program.chains({"steps": 1})
               for i in c]
        assert Opcode.VV_B_SUB_A in ops

    def test_shape_only_cannot_run_functionally(self, small_config):
        model = compile_rnn_shape("gru", 24, small_config)
        with pytest.raises(CompileError, match="shapes only"):
            model.new_simulator()

    def test_unknown_kind_rejected(self, small_config):
        with pytest.raises(CompileError):
            compile_rnn_shape("rnn", 24, small_config)


class TestMlpLowering:
    def test_matches_reference(self, small_config, rng):
        model = MlpReference([20, 48, 32, 12], seed=4)
        compiled = compile_mlp(model, small_config)
        x = rng.uniform(-1, 1, 20).astype(np.float32)
        assert np.allclose(compiled.run_single(x, exact=True),
                           model.forward(x), atol=1e-5)

    @pytest.mark.parametrize("activation", ["relu", "sigmoid", "tanh"])
    def test_activations(self, small_config, rng, activation):
        model = MlpReference([16, 16, 16], activation=activation, seed=5)
        compiled = compile_mlp(model, small_config)
        x = rng.uniform(-1, 1, 16).astype(np.float32)
        assert np.allclose(compiled.run_single(x, exact=True),
                           model.forward(x), atol=1e-5)

    def test_one_chain_per_layer(self, small_config):
        model = MlpReference([16, 16, 16, 16], seed=6)
        compiled = compile_mlp(model, small_config)
        assert len(list(compiled.program.chains({"steps": 1}))) == 3

    def test_run_sequence_rejected_for_feedforward(self, small_config,
                                                   rng):
        model = MlpReference([16, 16], seed=6)
        compiled = compile_mlp(model, small_config)
        with pytest.raises(CompileError):
            compiled.run_sequence([rng.uniform(-1, 1, 16)])

    def test_sigmoid_padding_lanes_do_not_corrupt(self, small_config,
                                                  rng):
        """sigmoid(0)=0.5 on padded lanes must not leak into the next
        layer (its weight columns are zero-padded)."""
        model = MlpReference([20, 20, 20], activation="sigmoid", seed=7)
        compiled = compile_mlp(model, small_config)
        x = rng.uniform(-1, 1, 20).astype(np.float32)
        assert np.allclose(compiled.run_single(x, exact=True),
                           model.forward(x), atol=1e-5)


class TestConvLowering:
    def test_matches_reference(self, small_config, rng):
        spec = ConvSpec(in_height=5, in_width=5, in_channels=3,
                        kernels=7, kernel_h=3, kernel_w=3)
        w = random_conv_weights(spec, seed=11)
        compiled = compile_conv(spec, w, small_config)
        act = rng.uniform(-1, 1, (5, 5, 3)).astype(np.float32)
        got = compiled.run_image(act, exact=True)
        assert np.allclose(got, conv2d_reference(act, w, spec),
                           atol=1e-5)

    def test_bias_and_relu(self, small_config, rng):
        spec = ConvSpec(in_height=4, in_width=4, in_channels=2,
                        kernels=5, kernel_h=1, kernel_w=1, padding=0)
        w = random_conv_weights(spec, seed=12)
        bias = rng.uniform(-0.5, 0.5, 5).astype(np.float32)
        compiled = compile_conv(spec, w, small_config, bias=bias,
                                relu=True)
        act = rng.uniform(-1, 1, (4, 4, 2)).astype(np.float32)
        want = np.maximum(conv2d_reference(act, w, spec) + bias, 0)
        assert np.allclose(compiled.run_image(act, exact=True), want,
                           atol=1e-5)

    def test_strided_conv(self, small_config, rng):
        spec = ConvSpec(in_height=6, in_width=6, in_channels=2,
                        kernels=4, kernel_h=3, kernel_w=3, stride=2,
                        padding=1)
        w = random_conv_weights(spec, seed=13)
        compiled = compile_conv(spec, w, small_config)
        act = rng.uniform(-1, 1, (6, 6, 2)).astype(np.float32)
        got = compiled.run_image(act, exact=True)
        assert got.shape == (3, 3, 4)
        assert np.allclose(got, conv2d_reference(act, w, spec),
                           atol=1e-5)


class TestCompiledModelApi:
    def test_input_length_validation(self, small_config, rng):
        model = LstmReference(hidden_dim=16, input_dim=16, seed=1)
        compiled = compile_lstm(model, small_config)
        with pytest.raises(CompileError, match="input length"):
            compiled.run_sequence([rng.uniform(-1, 1, 15)])

    def test_mrf_usage_reported(self, small_config):
        compiled = compile_rnn_shape("lstm", 32, small_config)
        assert compiled.mrf_tiles_used == 8 * 4  # 8 matrices, 2x2 tiles

    def test_ops_per_step_metadata(self, small_config):
        compiled = compile_rnn_shape("gru", 24, small_config)
        assert compiled.ops_per_step == \
            GruReference(24, 24).shape(1).ops_per_step


class TestPaperCompactness:
    def test_lstm_program_is_under_100_lines(self):
        """Section IV-C: 'A fully parameterized and performance-tuned
        LSTM ... can be expressed in just under 100 lines of code.'"""
        from repro.config import BW_S10
        from repro.isa import format_program
        compiled = compile_rnn_shape("lstm", 2000, BW_S10)
        lines = [l for l in format_program(compiled.program).splitlines()
                 if l.strip()]
        assert len(lines) < 100

    def test_single_instruction_dispatches_millions_of_ops(self):
        """Section IV-C: the largest GRU's mv_mul dispatches over 7M
        operations from one instruction."""
        from repro.config import BW_S10
        compiled = compile_rnn_shape("gru", 2816, BW_S10)
        chains = list(compiled.program.chains({"steps": 1}))
        n = BW_S10.native_dim
        biggest = max(
            8 * 8 * n * n  # rows x cols tiles at native dim
            for c in chains if c.has_mv_mul)
        assert biggest > 7e6
