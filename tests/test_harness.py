"""Tests for the experiment harness — including the reproduction's
acceptance criteria: the qualitative shape of every headline result."""

import pytest

from repro.baselines.deepbench import SUITE, published_row
from repro.config import BW_S10
from repro.harness import (
    ALL_EXPERIMENTS,
    ExperimentTable,
    bw_rnn_report,
    fig2,
    fig7,
    fig8,
    power_efficiency,
    sdm_gap,
    sdm_latency_ms,
    table1,
    table3,
    table4,
    table5,
    table6,
)
from repro.harness.experiments import gpu_rnn_result


class TestTableRendering:
    def test_render_aligns_columns(self):
        table = ExperimentTable("T", ["a", "bb"], [["1", "2"],
                                                   ["333", "4"]])
        lines = table.render().splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:5]}) == 1

    def test_row_width_mismatch_caught(self):
        table = ExperimentTable("T", ["a"], [["1", "2"]])
        with pytest.raises(ValueError):
            table.render()

    def test_markdown_output(self):
        table = ExperimentTable("T", ["a"], [["1"]], notes=["n"])
        md = table.to_markdown()
        assert "| a |" in md and "*n*" in md

    def test_column_extraction(self):
        table = ExperimentTable("T", ["a", "b"], [["1", "2"]])
        assert table.column("b") == ["2"]


class TestAllDriversRun:
    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_driver_produces_table(self, name):
        table = ALL_EXPERIMENTS[name]()
        assert isinstance(table, ExperimentTable)
        assert table.rows
        assert table.render()


class TestHeadlineShapes:
    """The acceptance criteria from DESIGN.md Section 5."""

    @pytest.fixture(scope="class")
    def reports(self):
        return {b.name: bw_rnn_report(b) for b in SUITE}

    def test_order_of_magnitude_latency_advantage(self, reports):
        """'For the larger models, the latencies are 10-90X lower than
        the GPGPU' (Section IX)."""
        for bench in SUITE:
            if bench.hidden_dim < 1024 or bench.time_steps < 2:
                continue
            bw = reports[bench.name].latency_ms
            gpu = gpu_rnn_result(bench).latency_ms
            assert 10 <= gpu / bw <= 120, bench.name

    def test_peak_throughput_above_30_tflops(self, reports):
        """Abstract: up to 35.9 effective TFLOPS with no batching."""
        best = max(r.effective_tflops for r in reports.values())
        assert best > 30

    def test_all_layers_under_4ms(self, reports):
        """'The BW NPU can run all DeepBench layers at under 4ms at
        batch 1.'"""
        assert all(r.latency_ms < 4.0 for r in reports.values())

    def test_utilization_band_for_large_rnns(self, reports):
        """23%-75% of peak for dimensions > 1500 (Section VII-B1)."""
        for bench in SUITE:
            if bench.hidden_dim <= 1500 or bench.time_steps < 2:
                continue
            util = reports[bench.name].utilization
            assert 0.20 <= util <= 0.80, bench.name

    def test_utilization_advantage_4_to_23x(self, reports):
        """'A 4-23x improvement over Titan Xp's utilization' for
        medium-to-large layers."""
        for bench in SUITE:
            if bench.hidden_dim <= 1500 or bench.time_steps < 2:
                continue
            bw = reports[bench.name].utilization
            gpu = gpu_rnn_result(bench).utilization
            assert 3.5 <= bw / gpu <= 30, bench.name

    def test_sdm_gap_within_2_2x_for_large_models(self, reports):
        """Section VII-B2: within 2.17x of the SDM for dims > 2000."""
        for bench in SUITE:
            if bench.hidden_dim <= 2000 or bench.time_steps < 2:
                continue
            gap = (reports[bench.name].latency_ms
                   / sdm_latency_ms(bench))
            assert gap <= 2.4, bench.name

    def test_sdm_gap_grows_for_small_models(self, reports):
        small = next(b for b in SUITE if b.hidden_dim == 256)
        gap = reports[small.name].latency_ms / sdm_latency_ms(small)
        assert gap > 10

    def test_per_step_latency_band(self, reports):
        """Steady-state per-step latency is nearly constant across
        model sizes (2.5-3.4 us on our model)."""
        per_step = [reports[b.name].latency_ms * 1e3 / b.time_steps
                    for b in SUITE if b.time_steps > 10]
        assert max(per_step) / min(per_step) < 1.45

    def test_bw_latency_matches_paper_within_15pct(self, reports):
        for bench in SUITE:
            pub = published_row(bench)
            got = reports[bench.name].latency_ms
            assert got == pytest.approx(pub.bw_latency_ms, rel=0.15), \
                bench.name

    def test_power_efficiency_near_287_gflops_per_w(self):
        table = power_efficiency()
        gflops_w = float(table.rows[0][3])
        assert gflops_w == pytest.approx(287, rel=0.1)


class TestFig8Shape:
    def test_bw_flat_gpu_rising(self):
        table = fig8(batches=(1, 4, 32))
        by_bench = {}
        for row in table.rows:
            by_bench.setdefault(row[0], []).append(
                (int(row[1]), float(row[2]), float(row[3])))
        for bench, series in by_bench.items():
            series.sort()
            bw_utils = [s[1] for s in series]
            gpu_utils = [s[2] for s in series]
            assert max(bw_utils) - min(bw_utils) < 0.5, bench
            assert gpu_utils[-1] > 3 * gpu_utils[0], bench

    def test_bw_ahead_until_batch_32(self):
        """'Effective utilization is higher than the GPU for all
        benchmarks until a batch size of 32 is applied.'"""
        table = fig8(batches=(1, 2, 4))
        for row in table.rows:
            assert float(row[2]) > float(row[3]), row[0]


class TestTableContents:
    def test_table1_has_four_workloads(self):
        assert len(table1().rows) == 4

    def test_table3_reports_three_instances(self):
        rows = table3().rows
        assert [r[0] for r in rows] == ["BW_S5", "BW_A10", "BW_S10"]

    def test_table4_static_specs(self):
        table = table4()
        assert table.column("BW_S10")[1] == "48.0"

    def test_table5_rows_per_benchmark(self):
        assert len(table5().rows) == 3 * len(SUITE)

    def test_fig2_ops_grow_quadratically(self):
        table = fig2(dims=(1024, 2048))
        ops = [float(r[1].rstrip("M")) for r in table.rows]
        assert ops[1] / ops[0] == pytest.approx(4.0, rel=0.05)

    def test_fig7_reports_advantage(self):
        table = fig7()
        assert "BW advantage" in table.headers

    def test_table6_bw_column_near_paper(self):
        table = table6()
        ips_row = next(r for r in table.rows if r[0] == "IPS (batch 1)")
        assert float(ips_row[2]) == pytest.approx(559, rel=0.1)

    def test_sdm_gap_table_excludes_single_step(self):
        rows = sdm_gap().rows
        assert all("t=1 " not in r[0] for r in rows)
