"""Tests for instruction chains: structure, validation, MFU routing."""

import pytest

from repro.errors import ChainCapacityError, ChainError
from repro.isa import (
    FuCategory,
    InstructionChain,
    MemId,
    chains_from_instructions,
    end_chain,
    m_rd,
    m_wr,
    mv_mul,
    s_wr,
    ScalarReg,
    v_rd,
    v_relu,
    v_sigm,
    v_tanh,
    v_wr,
    vv_add,
    vv_mul,
)


def vec_chain(*body):
    return InstructionChain([v_rd(MemId.InitialVrf, 0), *body,
                             v_wr(MemId.InitialVrf, 1)])


class TestStructure:
    def test_minimal_vector_chain(self):
        chain = InstructionChain([v_rd(MemId.NetQ),
                                  v_wr(MemId.InitialVrf, 0)])
        assert not chain.is_matrix_chain
        assert not chain.has_mv_mul

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainError):
            InstructionChain([])

    def test_chain_must_start_with_read(self):
        with pytest.raises(ChainError):
            InstructionChain([mv_mul(0), v_wr(MemId.InitialVrf, 0)])

    def test_chain_must_end_with_write(self):
        with pytest.raises(ChainError):
            InstructionChain([v_rd(MemId.NetQ), v_relu()])

    def test_mv_mul_must_follow_read(self):
        """The MVM sits at the pipeline head (Fig. 3)."""
        with pytest.raises(ChainError):
            vec_chain(v_relu(), mv_mul(0))

    def test_single_mv_mul_chain_valid(self):
        chain = vec_chain(mv_mul(0))
        assert chain.has_mv_mul
        assert chain.mv_mul_index == 0

    def test_v_rd_only_at_start(self):
        with pytest.raises(ChainError):
            InstructionChain([v_rd(MemId.NetQ), v_rd(MemId.NetQ),
                              v_wr(MemId.InitialVrf, 0)])

    def test_control_instructions_rejected_in_chain(self):
        with pytest.raises(ChainError):
            InstructionChain([v_rd(MemId.NetQ), end_chain()])
        with pytest.raises(ChainError):
            InstructionChain([v_rd(MemId.NetQ), s_wr(ScalarReg.Rows, 2),
                              v_wr(MemId.InitialVrf, 0)])

    def test_multicast_writes_allowed(self):
        """A chain may end with multiple v_wr (Section IV-C)."""
        chain = InstructionChain([
            v_rd(MemId.InitialVrf, 0), v_tanh(),
            v_wr(MemId.MultiplyVrf, 1), v_wr(MemId.InitialVrf, 2),
            v_wr(MemId.NetQ)])
        assert len(chain.writes) == 3

    def test_op_after_write_rejected(self):
        with pytest.raises(ChainError):
            InstructionChain([v_rd(MemId.NetQ),
                              v_wr(MemId.InitialVrf, 0), v_relu(),
                              v_wr(MemId.InitialVrf, 1)])

    def test_matrix_chain_exactly_two(self):
        InstructionChain([m_rd(MemId.NetQ), m_wr(MemId.MatrixRf, 0)])
        with pytest.raises(ChainError):
            InstructionChain([m_rd(MemId.NetQ)])
        with pytest.raises(ChainError):
            InstructionChain([m_rd(MemId.NetQ), m_wr(MemId.MatrixRf, 0),
                              m_wr(MemId.Dram, 0)])

    def test_matrix_op_in_vector_chain_rejected(self):
        with pytest.raises(ChainError):
            InstructionChain([v_rd(MemId.NetQ), m_wr(MemId.MatrixRf, 0)])

    def test_paper_lstm_c_gate_chain(self):
        """The c-gate chain from the Section IV-C listing is legal."""
        chain = InstructionChain([
            v_rd(MemId.InitialVrf, 0), mv_mul(10), vv_add(1), v_tanh(),
            vv_mul(2), vv_add(3), v_wr(MemId.MultiplyVrf, 4),
            v_wr(MemId.InitialVrf, 5)])
        assert chain.mfus_required() == 2


class TestQueries:
    def test_pointwise_ops_in_order(self):
        chain = vec_chain(mv_mul(0), vv_add(1), v_sigm(), vv_mul(2))
        ops = [i.opcode.name for i in chain.pointwise_ops]
        assert ops == ["VV_ADD", "V_SIGM", "VV_MUL"]

    def test_operand_reads_include_secondary_vrfs(self):
        chain = vec_chain(mv_mul(3), vv_add(1), vv_mul(2))
        reads = chain.operand_reads()
        assert (MemId.InitialVrf, 0) in reads
        assert (MemId.MatrixRf, 3) in reads
        assert (MemId.AddSubVrf, 1) in reads
        assert (MemId.MultiplyVrf, 2) in reads

    def test_operand_writes(self):
        chain = InstructionChain([
            v_rd(MemId.NetQ), v_wr(MemId.AddSubVrf, 7), v_wr(MemId.NetQ)])
        assert chain.operand_writes() == [(MemId.AddSubVrf, 7)]

    def test_equality_and_hash(self):
        a = vec_chain(v_relu())
        b = vec_chain(v_relu())
        c = vec_chain(v_tanh())
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestFuAssignment:
    def test_single_mfu_all_three_categories(self):
        chain = vec_chain(vv_add(0), v_sigm(), vv_mul(1))
        slots = chain.assign_function_units(1)
        assert all(s.mfu_index == 0 for s in slots)
        assert {s.category for s in slots} == {
            FuCategory.ADD_SUB, FuCategory.ACTIVATION,
            FuCategory.MULTIPLY}

    def test_repeat_category_advances_mfu(self):
        chain = vec_chain(vv_add(0), vv_add(1))
        slots = chain.assign_function_units(2)
        assert [s.mfu_index for s in slots] == [0, 1]

    def test_capacity_error_when_out_of_mfus(self):
        chain = vec_chain(vv_add(0), vv_add(1), vv_add(2))
        with pytest.raises(ChainCapacityError):
            chain.assign_function_units(2)

    def test_mfus_required(self):
        assert vec_chain().mfus_required() == 0
        assert vec_chain(v_relu()).mfus_required() == 1
        assert vec_chain(vv_add(0), v_tanh(), vv_mul(1),
                         vv_add(2)).mfus_required() == 2

    def test_two_mfus_support_paper_chains(self):
        """The paper: 'two MFUs are sufficient to support most
        instruction chains' — all chains in the LSTM listing fit."""
        gru_htilde = vec_chain(mv_mul(0), vv_mul(0), vv_add(1), v_tanh(),
                               vv_mul(2), vv_add(3))
        assert gru_htilde.mfus_required() == 2


class TestChainsFromInstructions:
    def test_split_on_end_chain(self):
        stream = [v_rd(MemId.NetQ), v_wr(MemId.InitialVrf, 0),
                  end_chain(), v_rd(MemId.NetQ),
                  v_wr(MemId.InitialVrf, 1), end_chain()]
        chains = chains_from_instructions(stream)
        assert len(chains) == 2

    def test_split_on_new_read(self):
        stream = [v_rd(MemId.NetQ), v_wr(MemId.InitialVrf, 0),
                  v_rd(MemId.NetQ), v_wr(MemId.InitialVrf, 1)]
        assert len(chains_from_instructions(stream)) == 2

    def test_mixed_vector_and_matrix(self):
        stream = [m_rd(MemId.NetQ), m_wr(MemId.MatrixRf, 0),
                  v_rd(MemId.InitialVrf, 0), mv_mul(0),
                  v_wr(MemId.NetQ)]
        chains = chains_from_instructions(stream)
        assert len(chains) == 2
        assert chains[0].is_matrix_chain
        assert chains[1].has_mv_mul

    def test_trailing_chain_without_end_marker(self):
        stream = [v_rd(MemId.NetQ), v_wr(MemId.NetQ)]
        assert len(chains_from_instructions(stream)) == 1

    def test_invalid_fragment_raises(self):
        with pytest.raises(ChainError):
            chains_from_instructions([v_rd(MemId.NetQ), end_chain()])
