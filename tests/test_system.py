"""Tests for the datacenter serving layer: network, microservices,
federated runtime, and the bidirectional-RNN split."""

import numpy as np
import pytest

from repro.compiler import compile_lstm
from repro.models import LstmReference
from repro.system import (
    BidirectionalRnnService,
    CpuStage,
    FederatedRuntime,
    FpgaNode,
    FpgaStage,
    HardwareMicroservice,
    Locality,
    MicroserviceRegistry,
    NetworkModel,
    ServiceError,
)


@pytest.fixture
def compiled(small_config):
    return compile_lstm(LstmReference(16, 16, seed=0), small_config)


def make_service(compiled, name="svc"):
    return HardwareMicroservice(name, FpgaNode(name + "-node", compiled))


class TestNetworkModel:
    def test_locality_ordering(self):
        net = NetworkModel()
        lat = [net.propagation_us(loc) for loc in
               (Locality.SAME_NODE, Locality.SAME_RACK,
                Locality.SAME_POD, Locality.SAME_DATACENTER)]
        assert lat == sorted(lat)

    def test_serialization_time(self):
        net = NetworkModel(line_rate_gbps=40.0)
        # 5000 bytes at 40 Gb/s = 1 us.
        assert net.serialization_us(5000) == pytest.approx(1.0)

    def test_transfer_combines_terms(self):
        net = NetworkModel()
        assert net.transfer_us(5000) == pytest.approx(
            net.propagation_us(Locality.SAME_RACK)
            + net.serialization_us(5000))

    def test_round_trip(self):
        net = NetworkModel()
        assert net.round_trip_us(1000, 1000) == pytest.approx(
            2 * net.transfer_us(1000))

    def test_same_datacenter_single_digit_tens_of_us(self):
        """Point-to-point latency stays in the LTL regime."""
        net = NetworkModel()
        assert net.transfer_us(1600, Locality.SAME_DATACENTER) < 25


class TestMicroservice:
    def test_registry_publish_and_lookup(self, compiled):
        reg = MicroserviceRegistry()
        svc = make_service(compiled)
        address = reg.publish(svc)
        assert reg.lookup("svc") is svc
        assert address.startswith("10.")
        assert len(reg) == 1

    def test_duplicate_publish_rejected(self, compiled):
        reg = MicroserviceRegistry()
        reg.publish(make_service(compiled))
        with pytest.raises(ServiceError):
            reg.publish(make_service(compiled))

    def test_unknown_lookup(self):
        with pytest.raises(ServiceError):
            MicroserviceRegistry().lookup("ghost")

    def test_invocation_latency_breakdown(self, compiled):
        svc = make_service(compiled)
        result = svc.invoke(steps=5)
        assert result.network_in_s > 0
        assert result.compute_s > 0
        assert result.total_s == pytest.approx(
            result.network_in_s + result.compute_s
            + result.network_out_s)

    def test_compute_dominates_network(self, compiled):
        """For RNN serving the NPU compute dwarfs the network hops."""
        result = make_service(compiled).invoke(steps=50)
        assert result.compute_s > 5 * (result.network_in_s
                                       + result.network_out_s)

    def test_functional_invocation_matches_reference(self, compiled,
                                                     rng):
        model = LstmReference(16, 16, seed=0)
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(4)]
        result = make_service(compiled).invoke(
            steps=4, functional_inputs=xs)
        want = model.run(xs)
        assert np.allclose(result.outputs[-1], want[-1], atol=1e-5)

    def test_functional_input_count_checked(self, compiled, rng):
        svc = make_service(compiled)
        with pytest.raises(ServiceError):
            svc.invoke(steps=3,
                       functional_inputs=[rng.uniform(-1, 1, 16)])


class TestFederatedRuntime:
    def test_cpu_fpga_plan(self, compiled, rng):
        reg = MicroserviceRegistry()
        reg.publish(make_service(compiled, "lstm"))
        runtime = FederatedRuntime(reg)
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(3)]
        scale = CpuStage("scale", lambda seq: [0.5 * x for x in seq])
        plan = [scale, FpgaStage("rnn", "lstm")]
        result = runtime.execute(plan, xs, functional=True)
        model = LstmReference(16, 16, seed=0)
        want = model.run([0.5 * x for x in xs])
        assert np.allclose(result.value[-1], want[-1], atol=1e-5)
        assert len(result.stage_latencies) == 2
        assert result.total_latency_s == pytest.approx(
            sum(result.stage_latencies))

    def test_functional_value_threads_mixed_stages(self, small_config,
                                                   rng):
        """functional=True threads real values through CPU and FPGA
        stages alternately: CPU -> FPGA -> CPU -> FPGA."""
        model_a = LstmReference(16, 16, seed=5)
        model_b = LstmReference(16, 16, seed=6)
        reg = MicroserviceRegistry()
        reg.publish(make_service(compile_lstm(model_a, small_config),
                                 "lstm-a"))
        reg.publish(make_service(compile_lstm(model_b, small_config),
                                 "lstm-b"))
        runtime = FederatedRuntime(reg)
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(3)]
        plan = [
            CpuStage("scale", lambda seq: [0.5 * x for x in seq]),
            FpgaStage("rnn-a", "lstm-a"),
            CpuStage("negate", lambda seq: [-x for x in seq]),
            FpgaStage("rnn-b", "lstm-b"),
        ]
        result = runtime.execute(plan, xs, functional=True)
        mid = model_a.run([0.5 * x for x in xs])
        want = model_b.run([-h for h in mid])
        assert np.allclose(result.value[-1], want[-1], atol=1e-4)
        assert len(result.stage_latencies) == 4
        assert result.total_latency_s == pytest.approx(
            sum(result.stage_latencies))

    def test_latency_only_mode(self, compiled, rng):
        reg = MicroserviceRegistry()
        reg.publish(make_service(compiled, "lstm"))
        runtime = FederatedRuntime(reg)
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(3)]
        result = runtime.execute([FpgaStage("rnn", "lstm")], xs,
                                 functional=False)
        assert result.total_latency_s > 0


class TestBidirectionalRnn:
    def test_concat_of_forward_and_reversed_backward(self, small_config,
                                                     rng):
        """Section II-A: forward and backward halves on two FPGAs,
        outputs concatenated per timestep."""
        fwd_model = LstmReference(16, 16, seed=1)
        bwd_model = LstmReference(16, 16, seed=2)
        reg = MicroserviceRegistry()
        reg.publish(make_service(compile_lstm(fwd_model, small_config),
                                 "fwd"))
        reg.publish(make_service(compile_lstm(bwd_model, small_config),
                                 "bwd"))
        service = BidirectionalRnnService(reg, "fwd", "bwd")
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(4)]
        result = service.invoke(xs, functional=True)
        fwd_want = fwd_model.run(xs)
        bwd_want = bwd_model.run(list(reversed(xs)))
        for t in range(4):
            want = np.concatenate([fwd_want[t], bwd_want[3 - t]])
            assert np.allclose(result.value[t], want, atol=1e-5)

    def test_asymmetric_half_latencies(self, small_config, rng):
        """Functional concat ordering survives asymmetric per-half
        latencies (backward half across the datacenter fabric)."""
        fwd_model = LstmReference(16, 16, seed=3)
        bwd_model = LstmReference(16, 16, seed=4)
        reg = MicroserviceRegistry()
        reg.publish(HardwareMicroservice(
            "fwd", FpgaNode("fwd-node",
                            compile_lstm(fwd_model, small_config),
                            locality=Locality.SAME_RACK)))
        reg.publish(HardwareMicroservice(
            "bwd", FpgaNode("bwd-node",
                            compile_lstm(bwd_model, small_config),
                            locality=Locality.SAME_DATACENTER)))
        service = BidirectionalRnnService(reg, "fwd", "bwd")
        xs = [rng.uniform(-1, 1, 16).astype(np.float32)
              for _ in range(5)]
        result = service.invoke(xs, functional=True)
        fwd_lat, bwd_lat, concat = result.stage_latencies
        assert bwd_lat > fwd_lat  # datacenter hops cost more
        assert result.total_latency_s == pytest.approx(
            max(fwd_lat, bwd_lat) + concat)
        fwd_want = fwd_model.run(xs)
        bwd_want = bwd_model.run(list(reversed(xs)))
        for t in range(5):
            want = np.concatenate([fwd_want[t], bwd_want[4 - t]])
            assert np.allclose(result.value[t], want, atol=1e-5)

    def test_latency_is_max_of_halves(self, compiled):
        reg = MicroserviceRegistry()
        reg.publish(make_service(compiled, "fwd"))
        reg.publish(make_service(compiled, "bwd"))
        service = BidirectionalRnnService(reg, "fwd", "bwd")
        result = service.invoke([np.zeros(16, dtype=np.float32)] * 3)
        fwd_lat, bwd_lat, concat = result.stage_latencies
        assert result.total_latency_s == pytest.approx(
            max(fwd_lat, bwd_lat) + concat)
