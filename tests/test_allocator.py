"""Tests for the register allocator."""

import pytest

from repro.compiler.allocator import RegisterAllocator
from repro.errors import CapacityError
from repro.isa import MemId


@pytest.fixture
def alloc(small_config):
    return RegisterAllocator(small_config)


class TestBasicAllocation:
    def test_sequential_bases(self, alloc):
        a = alloc.alloc(MemId.InitialVrf, 4, "a")
        b = alloc.alloc(MemId.InitialVrf, 2, "b")
        assert (a.base, a.count) == (0, 4)
        assert (b.base, b.count) == (4, 2)

    def test_independent_memories(self, alloc):
        alloc.alloc(MemId.InitialVrf, 4, "a")
        b = alloc.alloc(MemId.AddSubVrf, 4, "b")
        assert b.base == 0

    def test_duplicate_name_rejected(self, alloc):
        alloc.alloc(MemId.InitialVrf, 1, "x")
        with pytest.raises(CapacityError):
            alloc.alloc(MemId.AddSubVrf, 1, "x")

    def test_capacity_exhaustion(self, small_config):
        alloc = RegisterAllocator(small_config)
        alloc.alloc(MemId.AddSubVrf, small_config.addsub_vrf_depth, "big")
        with pytest.raises(CapacityError, match="AddSubVrf"):
            alloc.alloc(MemId.AddSubVrf, 1, "one_more")

    def test_error_mentions_existing_slots(self, small_config):
        alloc = RegisterAllocator(small_config)
        alloc.alloc(MemId.AddSubVrf, small_config.addsub_vrf_depth,
                    "hog")
        with pytest.raises(CapacityError, match="hog"):
            alloc.alloc(MemId.AddSubVrf, 1, "z")

    def test_zero_count_rejected(self, alloc):
        with pytest.raises(CapacityError):
            alloc.alloc(MemId.InitialVrf, 0, "nothing")

    def test_lookup_and_contains(self, alloc):
        alloc.alloc(MemId.InitialVrf, 2, "state")
        assert "state" in alloc
        assert alloc.slot("state").count == 2
        with pytest.raises(KeyError):
            alloc.slot("missing")

    def test_usage_tracking(self, alloc, small_config):
        alloc.alloc(MemId.InitialVrf, 8, "a")
        assert alloc.used(MemId.InitialVrf) == 8
        assert alloc.utilization(MemId.InitialVrf) == pytest.approx(
            8 / small_config.initial_vrf_depth)


class TestVectorAndMatrixHelpers:
    def test_alloc_vector_rounds_up(self, alloc, small_config):
        slot = alloc.alloc_vector(MemId.InitialVrf, 20, "v")
        assert slot.count == 2  # 20 elements over native 16

    def test_alloc_matrix_row_major_layout(self, alloc):
        slot = alloc.alloc_matrix(30, 40, "W")  # 2x3 tile grid at N=16
        assert slot.count == 6

    def test_matrix_physical_capacity_packed(self, small_config):
        """Physical accounting uses real elements, not padded tiles:
        the paper's GRU-2816 fits BW_S10's 306-slot MRF only packed."""
        alloc = RegisterAllocator(small_config)
        capacity = small_config.mrf_capacity_elements
        # A matrix with massive padding waste: 17x17 pads to 32x32.
        n_fit = capacity // (17 * 17)
        for i in range(min(n_fit, 12)):
            alloc.alloc_matrix(17, 17, f"W{i}")
        assert alloc.mrf_elements_used == min(n_fit, 12) * 289

    def test_matrix_over_physical_capacity(self, small_config):
        alloc = RegisterAllocator(small_config)
        side = small_config.native_dim * small_config.mrf_size
        with pytest.raises(CapacityError, match="physical"):
            alloc.alloc_matrix(side, side, "huge")

    def test_bw_s10_fits_largest_deepbench_gru(self):
        from repro.config import BW_S10
        alloc = RegisterAllocator(BW_S10)
        for gate in ("r", "z", "h"):
            alloc.alloc_matrix(2816, 2816, f"W_{gate}")
            alloc.alloc_matrix(2816, 2816, f"U_{gate}")
        assert alloc.mrf_elements_used == 6 * 2816 * 2816

    def test_slots_snapshot(self, alloc):
        alloc.alloc(MemId.InitialVrf, 1, "a")
        snapshot = alloc.slots
        snapshot.clear()
        assert "a" in alloc
