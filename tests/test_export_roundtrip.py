"""Exporter round trips: Chrome-trace validity, JSONL parse-back
equality, and Prometheus golden output."""

import json

import pytest

from repro.obs import (Metrics, Tracer, chrome_trace_events,
                       from_jsonl, render_prometheus, to_chrome_trace,
                       to_jsonl)
from repro.obs.prom import sanitize_name
from repro.obs.timeseries import TimeSeriesStore

pytestmark = pytest.mark.tier1


def _sample_tracer():
    tracer = Tracer(unit="s")
    run = tracer.begin("run", 0.0, track="sched")
    tracer.span("chain", 0.1, 0.4, track="sched", idx=0)
    tracer.instant("stall", 0.2, track="sched", port="dram")
    tracer.span("chain", 0.3, 0.9, track="net", idx=1)
    tracer.end(run, 1.0)
    tracer.instant("done", 1.0, track="sched", n=2)
    return tracer


class TestChromeTrace:
    def test_document_is_valid_json_and_loadable(self):
        doc = to_chrome_trace(_sample_tracer())
        text = json.dumps(doc)
        back = json.loads(text)
        assert isinstance(back["traceEvents"], list)
        assert back["displayTimeUnit"] == "ms"
        assert back["otherData"]["dropped_events"] == 0

    def test_event_schema(self):
        events = chrome_trace_events(_sample_tracer(), pid=3)
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        for e in events:
            assert isinstance(e["name"], str)
            assert isinstance(e["pid"], int) and e["pid"] == 3
            assert isinstance(e["tid"], int)
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
            if e["ph"] == "i":
                assert e["s"] == "t"
        # Seconds scale to microseconds.
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["ts"] == pytest.approx(s.start * 1e6)
                   for e, s in zip(spans, _sample_tracer().spans))

    def test_tracks_become_named_threads(self):
        events = chrome_trace_events(_sample_tracer())
        names = {e["args"]["name"] for e in events
                 if e["name"] == "thread_name"}
        assert names == {"sched", "net"}


class TestJsonlRoundTrip:
    def test_parse_back_equality(self):
        tracer = _sample_tracer()
        text = to_jsonl(tracer)
        back = from_jsonl(text)
        assert back.unit == tracer.unit
        assert back.spans == tracer.spans
        assert back.events == tracer.events
        # And the round trip is a fixed point.
        assert to_jsonl(back) == text

    def test_rebuilt_tracer_continues_id_sequence(self):
        back = from_jsonl(to_jsonl(_sample_tracer()))
        ids = {s.id for s in back.spans}
        span = back.begin("next", 2.0, track="sched")
        assert span.id not in ids
        back.end(span, 3.0)

    def test_empty_and_blank_lines(self):
        back = from_jsonl("\n\n")
        assert back.spans == [] and back.events == []

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            from_jsonl('{"kind": "mystery"}')


class TestPrometheus:
    def test_golden_metrics_document(self):
        metrics = Metrics()
        metrics.counter("requests.total").inc(3)
        metrics.gauge("queue.depth").set(2.5)
        hist = metrics.histogram("lat.ms", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        got = render_prometheus(metrics=metrics)
        assert got == (
            "# HELP repro_lat_ms Histogram lat.ms\n"
            "# TYPE repro_lat_ms histogram\n"
            'repro_lat_ms_bucket{le="1"} 1\n'
            'repro_lat_ms_bucket{le="10"} 2\n'
            'repro_lat_ms_bucket{le="+Inf"} 3\n'
            "repro_lat_ms_sum 55.5\n"
            "repro_lat_ms_count 3\n"
            "# HELP repro_queue_depth Gauge queue.depth\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 2.5\n"
            "# HELP repro_requests_total_total Counter requests.total\n"
            "# TYPE repro_requests_total_total counter\n"
            "repro_requests_total_total 3\n")

    def test_golden_store_document(self):
        store = TimeSeriesStore(interval_s=1.0, windows=4)
        store.counter("cluster.requests", scope="fleet",
                      status="served").add_events([0.5, 1.5, 1.6])
        store.gauge("cluster.nodes_up", scope="fleet").record(0.5, 24)
        store.quantile("cluster.latency_ms", bounds=(1.0, 8.0),
                       scope="fleet").add_many([0.5, 2.5], [0.4, 9.0])
        got = render_prometheus(store=store)
        assert got == (
            "# HELP repro_cluster_latency_ms Histogram "
            "cluster.latency_ms\n"
            "# TYPE repro_cluster_latency_ms histogram\n"
            'repro_cluster_latency_ms_bucket{le="1",scope="fleet"} 1\n'
            'repro_cluster_latency_ms_bucket{le="8",scope="fleet"} 1\n'
            'repro_cluster_latency_ms_bucket{le="+Inf",scope="fleet"}'
            " 2\n"
            'repro_cluster_latency_ms_sum{scope="fleet"} 9.4\n'
            'repro_cluster_latency_ms_count{scope="fleet"} 2\n'
            "# HELP repro_cluster_nodes_up Gauge cluster.nodes_up\n"
            "# TYPE repro_cluster_nodes_up gauge\n"
            'repro_cluster_nodes_up{scope="fleet"} 24\n'
            "# HELP repro_cluster_requests_total Counter "
            "cluster.requests\n"
            "# TYPE repro_cluster_requests_total counter\n"
            'repro_cluster_requests_total{scope="fleet",'
            'status="served"} 3\n')

    def test_deterministic_and_sorted(self):
        store = TimeSeriesStore(interval_s=1.0, windows=4)
        store.counter("b", scope="rack1").add_events([0.5])
        store.counter("b", scope="rack0").add_events([0.5])
        store.counter("a", scope="fleet").add_events([0.5])
        one = render_prometheus(store=store)
        two = render_prometheus(store=store)
        assert one == two
        assert one.index("repro_a") < one.index("repro_b")
        assert one.index('scope="rack0"') < one.index('scope="rack1"')

    def test_sanitize_name(self):
        assert sanitize_name("cluster.latency-ms") == \
            "cluster_latency_ms"
        assert sanitize_name("9lives") == "_9lives"

    def test_empty_inputs_render_empty(self):
        assert render_prometheus() == ""
        assert render_prometheus(metrics=Metrics()) == ""
