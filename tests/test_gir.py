"""Tests for the graph IR, frontends, and compiler passes."""

import pytest

from repro.compiler.frontend import gru_to_gir, lstm_to_gir, mlp_to_gir
from repro.compiler.gir import GirGraph
from repro.compiler.passes import (
    annotate_padding,
    cpu_fallback_nodes,
    fuse_chains,
    pin_constants,
    validate_for_npu,
)
from repro.config import NpuConfig
from repro.errors import CompileError
from repro.models import GruReference, LstmReference, MlpReference


@pytest.fixture
def cfg():
    return NpuConfig(name="t", tile_engines=2, lanes=4, native_dim=16,
                     mrf_size=64, mantissa_bits=0)


class TestGirGraph:
    def test_build_and_validate(self):
        g = GirGraph("g")
        g.add("W", "constant", shape=(8, 4))
        g.add("x", "input", shape=(4,))
        g.add("y", "matmul", ["W", "x"], shape=(8,))
        g.add("out", "output", ["y"], shape=(8,))
        g.validate()
        assert len(g) == 4

    def test_unknown_op_rejected(self):
        with pytest.raises(CompileError):
            GirGraph("g").add("n", "convolve")

    def test_duplicate_node_rejected(self):
        g = GirGraph("g")
        g.add("x", "input", shape=(4,))
        with pytest.raises(CompileError):
            g.add("x", "input", shape=(4,))

    def test_unknown_input_rejected(self):
        g = GirGraph("g")
        with pytest.raises(CompileError):
            g.add("y", "identity", ["ghost"], shape=(4,))

    def test_arity_checked(self):
        g = GirGraph("g")
        g.add("a", "input", shape=(4,))
        with pytest.raises(CompileError):
            g.add("b", "add", ["a"], shape=(4,))

    def test_matmul_shape_mismatch_caught(self):
        g = GirGraph("g")
        g.add("W", "constant", shape=(8, 5))
        g.add("x", "input", shape=(4,))
        g.add("y", "matmul", ["W", "x"], shape=(8,))
        with pytest.raises(CompileError, match="mismatch"):
            g.validate()

    def test_binary_shape_mismatch_caught(self):
        g = GirGraph("g")
        g.add("a", "input", shape=(4,))
        g.add("b", "input", shape=(5,))
        g.add("c", "add", ["a", "b"], shape=(4,))
        with pytest.raises(CompileError):
            g.validate()

    def test_weight_accounting(self):
        g = GirGraph("g")
        g.add("W", "constant", shape=(8, 4))
        g.add("b", "constant", shape=(8,))  # vectors are not weights
        assert g.weight_elements == 32
        assert len(g.weight_nodes()) == 1

    def test_consumers(self):
        g = GirGraph("g")
        g.add("x", "input", shape=(4,))
        g.add("a", "identity", ["x"], shape=(4,))
        g.add("b", "relu", ["x"], shape=(4,))
        assert {n.name for n in g.consumers("x")} == {"a", "b"}


class TestFrontends:
    def test_lstm_export_validates(self):
        g = lstm_to_gir(LstmReference(12, 8, seed=0), steps=3)
        assert len(g.by_op("matmul")) == 8 * 3
        assert g.weight_elements == 4 * (12 * 8 + 12 * 12)

    def test_gru_export_validates(self):
        g = gru_to_gir(GruReference(12, 12, seed=0), steps=2)
        assert len(g.by_op("matmul")) == 6 * 2
        assert len(g.by_op("output")) == 2

    def test_mlp_export_validates(self):
        g = mlp_to_gir(MlpReference([8, 16, 4], seed=0))
        assert len(g.by_op("matmul")) == 2
        assert g.weight_elements == 8 * 16 + 16 * 4


class TestPasses:
    def test_padding_efficiency_perfect_when_aligned(self, cfg):
        g = mlp_to_gir(MlpReference([16, 32, 16], seed=0))
        assert annotate_padding(g, cfg) == pytest.approx(1.0)

    def test_padding_efficiency_below_one_when_misaligned(self, cfg):
        g = mlp_to_gir(MlpReference([17, 17, 17], seed=0))
        eff = annotate_padding(g, cfg)
        assert eff == pytest.approx((17 * 17) / (32 * 32))

    def test_padding_annotations_written(self, cfg):
        g = mlp_to_gir(MlpReference([20, 40], seed=0))
        annotate_padding(g, cfg)
        node = g.by_op("matmul")[0]
        assert node.attrs["tile_grid"] == (3, 2)

    def test_pin_constants_all_fit(self, cfg):
        g = mlp_to_gir(MlpReference([16, 16], seed=0))
        pinned, streamed = pin_constants(g, cfg)
        assert pinned == 256 and streamed == 0
        assert g.node("W0").attrs["placement"] == "mrf"

    def test_pin_constants_spills_to_dram(self):
        small = NpuConfig(name="s", tile_engines=1, lanes=2,
                          native_dim=4, mrf_size=2, mantissa_bits=0)
        g = mlp_to_gir(MlpReference([8, 8, 8], seed=0))
        pinned, streamed = pin_constants(g, small)
        assert streamed > 0
        placements = [n.attrs["placement"] for n in g.weight_nodes()]
        assert "dram" in placements

    def test_fuse_chains_mlp_layer_fuses_fully(self, cfg):
        g = mlp_to_gir(MlpReference([16, 16, 16], seed=0))
        chains = fuse_chains(g, cfg)
        with_mm = [c for c in chains if c.has_matmul]
        assert len(with_mm) == 2
        # Hidden layer fuses matmul + bias + relu; the output layer is
        # linear (identity is not an MFU op) so it fuses matmul + bias.
        assert sorted(len(c.nodes) for c in with_mm) == [2, 3]

    def test_fuse_chains_respects_mfu_budget(self, cfg):
        one_mfu = cfg.replace(mfus=1)
        g = GirGraph("g")
        g.add("W", "constant", shape=(16, 16))
        g.add("x", "input", shape=(16,))
        g.add("b1", "constant", shape=(16,))
        g.add("b2", "constant", shape=(16,))
        g.add("mm", "matmul", ["W", "x"], shape=(16,))
        g.add("a1", "add", ["mm", "b1"], shape=(16,))
        g.add("a2", "add", ["a1", "b2"], shape=(16,))
        chains = fuse_chains(g, one_mfu)
        first = next(c for c in chains if c.has_matmul)
        # Two adds need two add/sub units = two MFUs; the second add
        # cannot fuse into the same chain on a 1-MFU config.
        assert len(first.nodes) == 2

    def test_validate_for_npu_passes_for_rnn(self, cfg):
        g = gru_to_gir(GruReference(12, 12, seed=0), steps=1)
        validate_for_npu(g, cfg)

    def test_cpu_fallback_detection(self, cfg):
        g = GirGraph("g")
        g.add("a", "input", shape=(4,))
        g.add("b", "input", shape=(4,))
        g.add("c", "concat", ["a", "b"], shape=(8,))
        assert [n.name for n in cpu_fallback_nodes(g)] == ["c"]
