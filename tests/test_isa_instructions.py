"""Tests for opcodes, operands, and instruction construction (Table II)."""

import pytest

from repro.errors import IsaError
from repro.isa import ChainType, FuCategory, Instruction, MemId, Opcode, ScalarReg, end_chain, info, m_rd, m_wr, mv_mul, s_wr, v_rd, v_relu, v_sigm, v_tanh, v_wr, vv_a_sub_b, vv_add, vv_b_sub_a, vv_max, \
    vv_mul


class TestOpcodeMetadata:
    def test_all_fifteen_opcodes_present(self):
        """Table II lists 15 instructions."""
        assert len(list(Opcode)) == 15

    def test_every_opcode_has_info(self):
        for op in Opcode:
            meta = info(op)
            assert meta.opcode is op
            assert meta.mnemonic

    def test_chain_io_types_match_table2(self):
        assert info(Opcode.V_RD).chain_in is ChainType.NONE
        assert info(Opcode.V_RD).chain_out is ChainType.VECTOR
        assert info(Opcode.V_WR).chain_in is ChainType.VECTOR
        assert info(Opcode.V_WR).chain_out is ChainType.NONE
        assert info(Opcode.M_RD).chain_out is ChainType.MATRIX
        assert info(Opcode.M_WR).chain_in is ChainType.MATRIX
        assert info(Opcode.MV_MUL).chain_in is ChainType.VECTOR
        assert info(Opcode.MV_MUL).chain_out is ChainType.VECTOR
        assert info(Opcode.S_WR).chain_in is ChainType.NONE
        assert info(Opcode.END_CHAIN).chain_out is ChainType.NONE

    def test_pointwise_categories(self):
        assert info(Opcode.VV_ADD).fu_category is FuCategory.ADD_SUB
        assert info(Opcode.VV_A_SUB_B).fu_category is FuCategory.ADD_SUB
        assert info(Opcode.VV_B_SUB_A).fu_category is FuCategory.ADD_SUB
        assert info(Opcode.VV_MAX).fu_category is FuCategory.ADD_SUB
        assert info(Opcode.VV_MUL).fu_category is FuCategory.MULTIPLY
        for op in (Opcode.V_RELU, Opcode.V_SIGM, Opcode.V_TANH):
            assert info(op).fu_category is FuCategory.ACTIVATION

    def test_mv_mul_is_not_pointwise(self):
        assert not info(Opcode.MV_MUL).is_pointwise

    def test_operand_counts(self):
        assert info(Opcode.V_RD).num_operands == 2
        assert info(Opcode.MV_MUL).num_operands == 1
        assert info(Opcode.V_TANH).num_operands == 0
        assert info(Opcode.END_CHAIN).num_operands == 0


class TestConstruction:
    def test_v_rd_requires_memid(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.V_RD, 99, 0)

    def test_v_rd_netq_index_optional(self):
        assert v_rd(MemId.NetQ).index is None

    def test_v_rd_vrf_requires_index(self):
        with pytest.raises(IsaError):
            v_rd(MemId.InitialVrf)

    def test_matrix_read_sources_restricted(self):
        """Table II: m_rd from NetQ or DRAM only."""
        m_rd(MemId.NetQ)
        m_rd(MemId.Dram, 0)
        with pytest.raises(IsaError):
            m_rd(MemId.MatrixRf, 0)
        with pytest.raises(IsaError):
            m_rd(MemId.InitialVrf, 0)

    def test_matrix_write_targets_restricted(self):
        """Table II: m_wr to MatrixRf or DRAM only."""
        m_wr(MemId.MatrixRf, 0)
        m_wr(MemId.Dram, 3)
        with pytest.raises(IsaError):
            m_wr(MemId.NetQ)
        with pytest.raises(IsaError):
            m_wr(MemId.AddSubVrf, 0)

    def test_v_rd_cannot_read_matrixrf(self):
        with pytest.raises(IsaError):
            v_rd(MemId.MatrixRf, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(IsaError):
            mv_mul(-1)
        with pytest.raises(IsaError):
            v_rd(MemId.InitialVrf, -2)

    def test_unary_ops_take_no_operands(self):
        for ctor in (v_relu, v_sigm, v_tanh):
            instr = ctor()
            assert instr.operand1 is None
            assert instr.operand2 is None

    def test_s_wr_operands(self):
        instr = s_wr(ScalarReg.Rows, 4)
        assert instr.operand1 is ScalarReg.Rows
        assert instr.operand2 == 4

    def test_s_wr_rejects_bad_register(self):
        with pytest.raises((IsaError, ValueError)):
            s_wr(17, 4)

    def test_mem_id_property(self):
        assert v_wr(MemId.AddSubVrf, 3).mem_id is MemId.AddSubVrf
        assert mv_mul(5).mem_id is None

    def test_index_property(self):
        assert v_wr(MemId.AddSubVrf, 3).index == 3
        assert mv_mul(5).index == 5
        assert vv_add(7).index == 7
        assert v_rd(MemId.NetQ).index is None

    def test_instructions_hashable_and_equal(self):
        assert mv_mul(3) == mv_mul(3)
        assert mv_mul(3) != mv_mul(4)
        assert len({mv_mul(3), mv_mul(3), mv_mul(4)}) == 2

    def test_bool_not_accepted_as_index(self):
        with pytest.raises(IsaError):
            mv_mul(True)


class TestFormatting:
    def test_str_with_mem_and_index(self):
        assert str(v_rd(MemId.InitialVrf, 4)) == "v_rd InitialVrf, 4"

    def test_str_netq_omits_index(self):
        assert str(v_rd(MemId.NetQ)) == "v_rd NetQ"

    def test_str_unary(self):
        assert str(v_tanh()) == "v_tanh"

    def test_str_scalar(self):
        assert str(s_wr(ScalarReg.Columns, 5)) == "s_wr Columns, 5"

    def test_str_end_chain(self):
        assert str(end_chain()) == "end_chain"

    @pytest.mark.parametrize("ctor,arg", [
        (vv_add, 1), (vv_a_sub_b, 2), (vv_b_sub_a, 3), (vv_max, 4),
        (vv_mul, 5)])
    def test_str_binary_pointwise(self, ctor, arg):
        instr = ctor(arg)
        assert str(instr).endswith(str(arg))
