"""Tests for the GPU roofline baselines and the DeepBench suite."""

import pytest

from repro.baselines import (
    BATCH_SCALING_SUBSET,
    FIG8_BATCH_SIZES,
    P40,
    PUBLISHED_TABLE5,
    SUITE,
    TITAN_XP,
    GpuCnnModel,
    GpuRnnModel,
    RnnBenchmark,
    published_row,
)


class TestSuiteDefinitions:
    def test_eleven_benchmarks(self):
        assert len(SUITE) == 11

    def test_six_grus_five_lstms(self):
        kinds = [b.kind for b in SUITE]
        assert kinds.count("gru") == 6
        assert kinds.count("lstm") == 5

    def test_published_rows_complete(self):
        assert len(PUBLISHED_TABLE5) == 11
        for bench in SUITE:
            assert published_row(bench) is not None

    def test_published_row_miss(self):
        assert published_row(RnnBenchmark("gru", 999, 1)) is None

    def test_ops_per_step_match_paper_table1(self):
        gru = RnnBenchmark("gru", 2800, 1)
        assert gru.ops_per_step == pytest.approx(94e6, rel=0.01)

    def test_weight_bytes(self):
        bench = RnnBenchmark("gru", 2816, 750)
        assert bench.weight_bytes(4.0) == pytest.approx(
            (6 * 2816 * 2816 + 3 * 2816) * 4)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            RnnBenchmark("rnn", 128, 1)

    def test_fig8_config(self):
        assert FIG8_BATCH_SIZES == (1, 2, 4, 32)
        assert all(b in SUITE for b in BATCH_SCALING_SUBSET)


class TestGpuRnnModel:
    @pytest.fixture
    def model(self):
        return GpuRnnModel(TITAN_XP)

    @pytest.fixture
    def big(self):
        return next(b for b in SUITE if b.hidden_dim == 2816)

    def test_batch1_is_bandwidth_bound(self, model, big):
        """At batch 1 the weight stream dominates: step time ~=
        weights / effective bandwidth."""
        wb = big.weight_bytes(4.0)
        step = model.step_time_s(wb, big.ops_per_step, batch=1)
        bw_bound = wb / (TITAN_XP.achieved_bandwidth_gbps * 1e9)
        assert step == pytest.approx(
            bw_bound + TITAN_XP.step_overhead_s)

    def test_batch1_utilization_under_4pct(self, model, big):
        """The paper: TPU-class batching architectures and GPUs sit
        under 4% utilization on batch-1 RNNs."""
        res = model.run(big.weight_bytes(4.0), big.ops_per_step,
                        big.time_steps, batch=1)
        assert res.utilization < 0.04

    def test_utilization_grows_with_batch(self, model, big):
        utils = [model.run(big.weight_bytes(4.0), big.ops_per_step,
                           big.time_steps, batch=b).utilization
                 for b in (1, 2, 4, 32)]
        assert utils == sorted(utils)
        assert utils[-1] > 5 * utils[0]

    def test_latency_matches_published_within_20pct(self, model):
        for row in PUBLISHED_TABLE5:
            bench = row.benchmark
            if bench.hidden_dim < 1024:
                continue  # tiny kernels are overhead-noise dominated
            res = model.run(bench.weight_bytes(4.0), bench.ops_per_step,
                            bench.time_steps)
            assert res.latency_ms == pytest.approx(row.gpu_latency_ms,
                                                   rel=0.35)

    def test_per_request_tflops_independent_of_batch(self, model, big):
        """Per-request effective TFLOPS stays flat while batch TFLOPS
        grows (requests share the weight stream)."""
        r1 = model.run(big.weight_bytes(4.0), big.ops_per_step,
                       big.time_steps, batch=1)
        r4 = model.run(big.weight_bytes(4.0), big.ops_per_step,
                       big.time_steps, batch=4)
        assert r4.batch_tflops > 3 * r1.batch_tflops

    def test_invalid_args(self, model):
        with pytest.raises(ValueError):
            model.step_time_s(1e6, 1e6, batch=0)
        with pytest.raises(ValueError):
            model.run(1e6, 1e6, steps=0)


class TestGpuCnnModel:
    @pytest.fixture
    def model(self):
        return GpuCnnModel(P40)

    def test_batch1_anchor(self, model):
        """P40 at batch 1: ~461 IPS / 2.17 ms (Table VI)."""
        res = model.run(8.2e9, batch=1)
        assert res.ips == pytest.approx(461, rel=0.25)

    def test_batch16_anchor(self, model):
        res = model.run(8.2e9, batch=16)
        assert res.ips == pytest.approx(2270, rel=0.15)
        assert res.latency_ms == pytest.approx(7.0, rel=0.15)

    def test_utilization_saturates(self, model):
        u = [model.utilization(b) for b in (1, 4, 16, 64, 256)]
        assert u == sorted(u)
        assert u[-1] < model.u_max

    def test_invalid_batch(self, model):
        with pytest.raises(ValueError):
            model.utilization(0)

    def test_specs(self):
        assert TITAN_XP.peak_tflops == 12.1
        assert TITAN_XP.tdp_w == 250.0
        assert P40.numerical_type == "INT8"
