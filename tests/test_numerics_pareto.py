"""Pareto sweep of the format family, and the committed artifact.

``BENCH_numerics.json`` (regenerate with ``python -m repro
numerics-sweep --output BENCH_numerics.json``) records the
accuracy-vs-storage trade across the family on the standard seeded
workload. The tests pin its structure — at least six formats, an E8M0
member, a non-trivial Pareto front — and check the committed numbers
against a fresh sweep within a small tolerance, so the artifact cannot
drift silently away from the code.
"""

import json
import pathlib

import pytest

from repro.errors import ConfigError
from repro.numerics import (FORMAT_FAMILY, ParetoPoint, named_format,
                            pareto_front, render_pareto_table,
                            sweep_formats)

BENCH_PATH = pathlib.Path(__file__).parents[1] / "BENCH_numerics.json"


@pytest.fixture(scope="module")
def committed():
    with open(BENCH_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def fresh(committed):
    wl = committed["workload"]
    return sweep_formats(rows=wl["rows"], width=wl["width"],
                         seed=wl["seed"])


class TestSweep:
    def test_sweep_is_deterministic(self):
        one = sweep_formats(rows=8, width=128, seed=3)
        two = sweep_formats(rows=8, width=128, seed=3)
        assert one == two

    def test_sweep_sorted_by_storage_cost(self, fresh):
        bits = [p.bits_per_element for p in fresh]
        assert bits == sorted(bits)

    def test_more_mantissa_bits_raise_snr(self):
        points = {p.key: p for p in sweep_formats(
            {k: named_format(k) for k in ("mx_int4", "mx_int6",
                                          "mx_int8")},
            rows=16, width=64, seed=1)}
        assert (points["mx_int4"].matvec_snr_db
                < points["mx_int6"].matvec_snr_db
                < points["mx_int8"].matvec_snr_db)

    def test_width_must_fit_every_block(self):
        with pytest.raises(ConfigError, match="not a multiple"):
            sweep_formats(rows=8, width=100, seed=0)

    def test_render_table_marks_front(self, fresh):
        table = render_pareto_table(fresh)
        assert "bits/elem" in table
        assert "*" in table
        for p in fresh:
            assert p.format_name in table


class TestParetoFront:
    def test_front_is_non_dominated(self, fresh):
        front = pareto_front(fresh)
        assert front  # never empty
        for f in front:
            for p in fresh:
                dominates = (p.bits_per_element <= f.bits_per_element
                             and p.matvec_snr_db > f.matvec_snr_db)
                assert not dominates

    def test_dominated_point_excluded(self):
        a = ParetoPoint(key="a", format_name="a", bits_per_element=3.0,
                        quantize_snr_db=5.0, quantize_rel_rms=0.5,
                        matvec_snr_db=5.0, matvec_rel_rms=0.5)
        b = ParetoPoint(key="b", format_name="b", bits_per_element=4.0,
                        quantize_snr_db=4.0, quantize_rel_rms=0.6,
                        matvec_snr_db=4.0, matvec_rel_rms=0.6)
        assert pareto_front([a, b]) == [a]


class TestCommittedArtifact:
    def test_covers_the_family(self, committed):
        keys = {p["key"] for p in committed["points"]}
        assert keys == set(FORMAT_FAMILY)
        assert len(keys) >= 6
        # At least one MX E8M0 configuration is swept.
        assert any(named_format(k).is_e8m0 for k in keys)

    def test_front_recorded(self, committed):
        assert committed["pareto_front"]
        keys = {p["key"] for p in committed["points"]}
        assert set(committed["pareto_front"]) <= keys

    def test_numbers_match_fresh_sweep(self, committed, fresh):
        by_key = {p.key: p for p in fresh}
        for rec in committed["points"]:
            point = by_key[rec["key"]]
            assert rec["format_name"] == point.format_name
            assert rec["bits_per_element"] == pytest.approx(
                point.bits_per_element)
            for field in ("quantize_snr_db", "matvec_snr_db",
                          "quantize_rel_rms", "matvec_rel_rms"):
                assert rec[field] == pytest.approx(
                    getattr(point, field), rel=1e-6), rec["key"]

    def test_front_matches_fresh_sweep(self, committed, fresh):
        assert committed["pareto_front"] == [
            p.key for p in pareto_front(fresh)]
