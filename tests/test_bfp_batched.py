"""Property tests for batched BFP quantization (hypothesis).

The vectorized executor relies on two numerics contracts: quantizing a
batch of vectors in one call is element-wise identical to quantizing
each vector alone (blocks are independent), and :func:`decompose`
produces exactly the mantissas/exponents of :func:`quantize_with_info`
without materializing values. A final property drives the whole stack:
naive and vectorized ``mv_mul`` agree bit for bit on random windows in
both Table IV formats.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NpuConfig
from repro.functional import FunctionalSimulator
from repro.isa import MemId, ProgramBuilder
from repro.numerics.bfp import (
    MSFP_CNN,
    MSFP_RNN,
    MX_INT4,
    MX_INT8,
    BfpFormat,
    decompose,
    quantize,
    quantize_with_info,
)

formats = st.sampled_from([
    MSFP_RNN, MSFP_CNN, MX_INT8, MX_INT4,
    BfpFormat(mantissa_bits=3, exponent_bits=5, block_size=16),
    BfpFormat(mantissa_bits=2, exponent_bits=5, block_size=16,
              scale_granularity="tile"),
])

finite32 = st.floats(-1e4, 1e4, allow_nan=False, width=32)


def _batch(draw_rows, fmt):
    return np.asarray(draw_rows, dtype=np.float32).reshape(
        len(draw_rows) // fmt.block_size, fmt.block_size)


@given(fmt=formats, data=st.data())
@settings(max_examples=60, deadline=None)
def test_batched_quantize_equals_scalar(fmt, data):
    rows = data.draw(st.integers(1, 4))
    flat = data.draw(st.lists(finite32,
                              min_size=rows * fmt.block_size,
                              max_size=rows * fmt.block_size))
    batch = _batch(flat, fmt)
    batched = quantize(batch, fmt)
    for r in range(batch.shape[0]):
        alone = quantize(batch[r], fmt)
        assert np.array_equal(batched[r], alone)


@given(fmt=formats, data=st.data())
@settings(max_examples=60, deadline=None)
def test_decompose_matches_quantize_with_info(fmt, data):
    rows = data.draw(st.integers(1, 4))
    flat = data.draw(st.lists(finite32,
                              min_size=rows * fmt.block_size,
                              max_size=rows * fmt.block_size))
    batch = _batch(flat, fmt)
    values, mantissas, exponents = quantize_with_info(batch, fmt)
    d_mant, d_exp = decompose(batch, fmt)
    assert d_mant.dtype == np.float32  # working dtype preserved
    assert np.array_equal(d_mant.astype(np.int64), mantissas)
    assert np.array_equal(d_exp, exponents)
    # Reconstruction from the decomposition reproduces the values.
    scale = np.exp2((d_exp - fmt.mantissa_bits + 1).astype(np.float32))
    rebuilt = (d_mant.reshape(rows, -1, fmt.block_size)
               * scale[..., np.newaxis]).reshape(batch.shape)
    assert np.array_equal(rebuilt.astype(np.float32), values)


@given(fmt=formats, data=st.data())
@settings(max_examples=40, deadline=None)
def test_quantize_float32_and_float64_inputs_agree(fmt, data):
    flat = data.draw(st.lists(finite32, min_size=fmt.block_size,
                              max_size=fmt.block_size))
    x32 = np.asarray(flat, dtype=np.float32)
    assert np.array_equal(quantize(x32, fmt),
                          quantize(x32.astype(np.float64), fmt))


def test_all_zero_blocks_quantize_to_zero_at_min_exponent():
    fmt = BfpFormat(mantissa_bits=3, exponent_bits=5, block_size=8)
    batch = np.zeros((3, 8), dtype=np.float32)
    batch[1] = 1.0  # one live block between two dead ones
    values, mantissas, exponents = quantize_with_info(batch, fmt)
    d_mant, d_exp = decompose(batch, fmt)
    assert np.array_equal(d_exp, exponents)
    assert exponents[0] == exponents[2] == fmt.min_exponent
    assert np.all(values[0] == 0) and np.all(mantissas[0] == 0)
    assert np.all(d_mant[0] == 0)
    assert np.array_equal(values[1], np.ones(8, dtype=np.float32))


def test_exponent_clamp_edges_batched_equals_scalar():
    """Blocks straddling both exponent clamps quantize identically
    batched and alone (the clamp is per block, not per batch)."""
    fmt = BfpFormat(mantissa_bits=2, exponent_bits=4, block_size=4)
    tiny = np.full(4, 2.0 ** (fmt.min_exponent - 6), dtype=np.float32)
    huge = np.full(4, 2.0 ** (fmt.max_exponent + 6), dtype=np.float32)
    mid = np.asarray([0.5, -1.5, 2.0, 0.0], dtype=np.float32)
    batch = np.stack([tiny, mid, huge])
    batched = quantize(batch, fmt)
    for r, row in enumerate(batch):
        assert np.array_equal(batched[r], quantize(row, fmt))
    _, exps = decompose(batch, fmt)
    assert exps[0] == fmt.min_exponent
    assert exps[2] == fmt.max_exponent


# -- naive vs. vectorized mv_mul ------------------------------------------

_CFGS = {
    2: NpuConfig(name="prop_rnn", tile_engines=2, lanes=4, native_dim=128,
                 mrf_size=64, mantissa_bits=2),
    5: NpuConfig(name="prop_cnn", tile_engines=2, lanes=4, native_dim=128,
                 mrf_size=64, mantissa_bits=5),
}


def _mvm(sim, W, x, rows, cols):
    sim.load_matrix(0, W)
    sim.load_vector(MemId.InitialVrf, 0, x)
    b = ProgramBuilder("p")
    b.set_rows(rows)
    b.set_columns(cols)
    b.v_rd(MemId.InitialVrf, 0)
    b.mv_mul(0)
    b.v_wr(MemId.InitialVrf, cols)
    sim.run(b.build())
    return sim.read_vector(MemId.InitialVrf, cols,
                           rows * sim.config.native_dim)


@given(mantissa_bits=st.sampled_from([2, 5]),
       rows=st.integers(1, 4), cols=st.integers(1, 4),
       seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_mv_mul_naive_vs_vectorized_bit_exact(mantissa_bits, rows, cols,
                                              seed):
    """Random windows in both published formats: the vectorized path
    (packed GEMV for mb=2, mantissa-GEMV for mb=5 at n=128) returns the
    naive reference bit for bit."""
    cfg = _CFGS[mantissa_bits]
    n = cfg.native_dim
    rng = np.random.default_rng(seed)
    W = rng.uniform(-4, 4, (rows * n, cols * n)).astype(np.float32)
    x = rng.uniform(-4, 4, cols * n).astype(np.float32)
    fast = _mvm(FunctionalSimulator(cfg), W, x, rows, cols)
    ref = _mvm(FunctionalSimulator(cfg, naive=True), W, x, rows, cols)
    assert np.array_equal(fast, ref)
