"""Tests for the reference models and their shape metadata."""

import numpy as np
import pytest

from repro.models import (
    ConvSpec,
    GruReference,
    GruShape,
    LstmReference,
    LstmShape,
    MlpReference,
    MlpShape,
    conv2d_reference,
    im2col,
    random_conv_weights,
)


class TestLstmReference:
    def test_deterministic_given_seed(self):
        a = LstmReference(16, 16, seed=5)
        b = LstmReference(16, 16, seed=5)
        assert np.array_equal(a.W["f"], b.W["f"])

    def test_output_in_tanh_range(self, rng):
        model = LstmReference(32, 32, seed=1)
        xs = [rng.uniform(-3, 3, 32).astype(np.float32)
              for _ in range(8)]
        for h in model.run(xs):
            assert np.all(np.abs(h) <= 1.0)

    def test_zero_input_zero_state_is_small(self):
        model = LstmReference(16, 16, seed=2, scale=0.05)
        h = model.run([np.zeros(16, dtype=np.float32)])[0]
        assert np.all(np.abs(h) < 0.1)

    def test_initial_state_honored(self, rng):
        model = LstmReference(16, 16, seed=3)
        x = rng.uniform(-1, 1, 16).astype(np.float32)
        h0 = rng.uniform(-0.5, 0.5, 16).astype(np.float32)
        c0 = rng.uniform(-0.5, 0.5, 16).astype(np.float32)
        default = model.run([x])[0]
        seeded = model.run([x], h0=h0, c0=c0)[0]
        assert not np.allclose(default, seeded)

    def test_step_equals_run(self, rng):
        model = LstmReference(16, 16, seed=4)
        x = rng.uniform(-1, 1, 16).astype(np.float32)
        h, c = model.step(x, np.zeros(16, np.float32),
                          np.zeros(16, np.float32))
        assert np.allclose(model.run([x])[0], h)

    def test_shape_ops_match_paper(self):
        """Table I: 64M ops per timestep at dimension 2000."""
        assert LstmShape(2000, 2000).ops_per_step == pytest.approx(
            64e6, rel=0.01)

    def test_parameter_count(self):
        shape = LstmShape(hidden_dim=10, input_dim=6)
        assert shape.parameter_count == 4 * (10 * 6 + 10 * 10 + 10)

    def test_total_ops_scale_with_steps(self):
        assert LstmShape(64, 64, 10).total_ops == \
            10 * LstmShape(64, 64, 1).ops_per_step


class TestGruReference:
    def test_output_is_convex_mix_bounded(self, rng):
        model = GruReference(24, 24, seed=6)
        xs = [rng.uniform(-3, 3, 24).astype(np.float32)
              for _ in range(6)]
        for h in model.run(xs):
            assert np.all(np.abs(h) <= 1.0)

    def test_shape_ops_match_paper(self):
        """Table I: 94M ops per timestep at dimension 2800."""
        assert GruShape(2800, 2800).ops_per_step == pytest.approx(
            94e6, rel=0.01)

    def test_reset_gate_applied_after_matmul(self, rng):
        """cuDNN variant: h~ depends on r * (U h), not U (r * h)."""
        model = GruReference(8, 8, seed=7)
        h = rng.uniform(-1, 1, 8).astype(np.float32)
        x = rng.uniform(-1, 1, 8).astype(np.float32)
        got = model.step(x, h)
        r = 1 / (1 + np.exp(-(model.W["r"] @ x + model.U["r"] @ h
                              + model.b["r"])))
        z = 1 / (1 + np.exp(-(model.W["z"] @ x + model.U["z"] @ h
                              + model.b["z"])))
        h_tilde = np.tanh(model.W["h"] @ x + r * (model.U["h"] @ h)
                          + model.b["h"])
        want = (1 - z) * h_tilde + z * h
        assert np.allclose(got, want, atol=1e-6)


class TestMlpReference:
    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            MlpReference([4, 4], activation="swish")

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            MlpReference([4])

    def test_linear_output_layer(self, rng):
        model = MlpReference([8, 8], activation="relu",
                             output_activation="linear", seed=8)
        x = rng.uniform(-1, 1, 8).astype(np.float32)
        want = model.weights[0] @ x + model.biases[0]
        assert np.allclose(model.forward(x), want, atol=1e-6)

    def test_shape_metadata(self):
        shape = MlpShape((4, 8, 2))
        assert shape.matmul_ops == 2 * (4 * 8 + 8 * 2)
        assert shape.parameter_count == 4 * 8 + 8 + 8 * 2 + 2


class TestConv:
    def test_same_padding_preserves_spatial(self):
        spec = ConvSpec(9, 9, 3, kernels=4, kernel_h=3, kernel_w=3)
        assert (spec.out_height, spec.out_width) == (9, 9)

    def test_stride_halves(self):
        spec = ConvSpec(8, 8, 3, kernels=4, kernel_h=3, kernel_w=3,
                        stride=2, padding=1)
        assert (spec.out_height, spec.out_width) == (4, 4)

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            ConvSpec(0, 8, 3, 4, 3, 3)

    def test_im2col_shape_and_content(self, rng):
        spec = ConvSpec(4, 4, 2, kernels=1, kernel_h=3, kernel_w=3,
                        padding=0)
        act = rng.uniform(-1, 1, (4, 4, 2)).astype(np.float32)
        patches = im2col(act, spec)
        assert patches.shape == (4, 18)
        assert np.allclose(patches[0], act[0:3, 0:3, :].reshape(-1))

    def test_im2col_shape_mismatch_rejected(self):
        spec = ConvSpec(4, 4, 2, 1, 3, 3)
        with pytest.raises(ValueError):
            im2col(np.zeros((4, 4, 3)), spec)

    def test_conv_matches_naive_loop(self, rng):
        spec = ConvSpec(5, 5, 2, kernels=3, kernel_h=3, kernel_w=3,
                        padding=1)
        w = random_conv_weights(spec, seed=9)
        act = rng.uniform(-1, 1, (5, 5, 2)).astype(np.float32)
        got = conv2d_reference(act, w, spec)
        padded = np.pad(act, ((1, 1), (1, 1), (0, 0)))
        for oy in (0, 2, 4):
            for ox in (1, 3):
                for kk in range(3):
                    window = padded[oy:oy + 3, ox:ox + 3, :]
                    want = float((window * w[kk]).sum())
                    assert got[oy, ox, kk] == pytest.approx(want,
                                                            abs=1e-4)

    def test_weights_shape_checked(self, rng):
        spec = ConvSpec(5, 5, 2, 3, 3, 3)
        with pytest.raises(ValueError):
            conv2d_reference(np.zeros((5, 5, 2)), np.zeros((3, 3, 3)),
                             spec)

    def test_matmul_ops_formula(self):
        spec = ConvSpec(28, 28, 128, kernels=128, kernel_h=3,
                        kernel_w=3)
        assert spec.matmul_ops == 2 * 28 * 28 * 128 * 128 * 9

    def test_as_matrix_shape(self):
        spec = ConvSpec(28, 28, 128, 64, 3, 3)
        assert spec.as_matrix_shape() == (64, 9 * 128)

    def test_describe(self):
        spec = ConvSpec(28, 28, 128, 64, 3, 3, stride=2, padding=1)
        assert "s2" in spec.describe()
