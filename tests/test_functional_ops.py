"""Tests for the point-wise kernels: float16 pipeline semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional import ops
from repro.isa import Opcode


class TestKernelSemantics:
    def test_exact_mode_is_float32(self):
        a = np.array([1.0 + 2 ** -20], dtype=np.float32)
        b = np.array([0.0], dtype=np.float32)
        out = ops.vv_add(a, b, exact=True)
        assert out[0] == np.float32(1.0 + 2 ** -20)

    def test_pipeline_mode_rounds_to_float16(self):
        a = np.array([1.0 + 2 ** -12], dtype=np.float32)
        b = np.array([0.0], dtype=np.float32)
        out = ops.vv_add(a, b, exact=False)
        assert out[0] == 1.0  # 2^-12 is below float16 resolution at 1.0

    def test_outputs_are_float32_typed(self):
        """Pipeline values are stored as float32 words holding
        float16-rounded values."""
        out = ops.v_tanh(np.ones(4), exact=False)
        assert out.dtype == np.float32

    def test_subtraction_direction(self):
        a = np.array([5.0], dtype=np.float32)
        b = np.array([2.0], dtype=np.float32)
        assert ops.vv_a_sub_b(a, b)[0] == 3.0
        assert ops.vv_b_sub_a(a, b)[0] == -3.0

    def test_max_and_mul(self):
        a = np.array([-1.0, 2.0], dtype=np.float32)
        b = np.array([0.5, -3.0], dtype=np.float32)
        assert np.array_equal(ops.vv_max(a, b), [0.5, 2.0])
        assert np.array_equal(ops.vv_mul(a, b), [-0.5, -6.0])

    def test_sigmoid_saturation_is_finite(self):
        out = ops.v_sigm(np.array([1e4, -1e4], dtype=np.float32))
        assert out[0] == 1.0 and out[1] == 0.0

    def test_tanh_saturation(self):
        out = ops.v_tanh(np.array([50.0, -50.0], dtype=np.float32))
        assert out[0] == 1.0 and out[1] == -1.0

    def test_relu_kernel(self):
        out = ops.v_relu(np.array([-2.0, 0.0, 3.0], dtype=np.float32))
        assert np.array_equal(out, [0.0, 0.0, 3.0])

    def test_kernel_tables_cover_pointwise_opcodes(self):
        assert set(ops.BINARY_KERNELS) == {
            Opcode.VV_ADD, Opcode.VV_A_SUB_B, Opcode.VV_B_SUB_A,
            Opcode.VV_MAX, Opcode.VV_MUL}
        assert set(ops.UNARY_KERNELS) == {
            Opcode.V_RELU, Opcode.V_SIGM, Opcode.V_TANH}


values = st.lists(st.floats(-100, 100, allow_nan=False, width=16),
                  min_size=4, max_size=4)


@given(values, values)
@settings(max_examples=60)
def test_float16_inputs_add_associatively_with_rounding(a, b):
    """For float16-representable inputs, the pipeline add equals the
    float16-rounded float32 sum."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    got = ops.vv_add(a, b, exact=False)
    want = np.float16(a + b).astype(np.float32)
    assert np.array_equal(got, want)


@given(values)
@settings(max_examples=60)
def test_relu_idempotent(a):
    a = np.asarray(a, dtype=np.float32)
    once = ops.v_relu(a, exact=False)
    twice = ops.v_relu(once, exact=False)
    assert np.array_equal(once, twice)


@given(values)
@settings(max_examples=60)
def test_max_with_self_is_identity(a):
    a = np.float16(np.asarray(a, dtype=np.float32)).astype(np.float32)
    assert np.array_equal(ops.vv_max(a, a, exact=False), a)
