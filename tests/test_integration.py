"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro.compiler import compile_gru, compile_lstm
from repro.compiler.frontend import lstm_to_gir
from repro.compiler.passes import annotate_padding, pin_constants, \
    validate_for_npu
from repro.config import NpuConfig
from repro.isa import (
    decode_stream,
    encode_stream,
    format_program,
    parse_program,
)
from repro.models import GruReference, LstmReference
from repro.timing import TimingSimulator


@pytest.fixture
def cfg():
    return NpuConfig(name="it", tile_engines=2, lanes=4, native_dim=16,
                     mrf_size=256, mfus=2, initial_vrf_depth=128,
                     addsub_vrf_depth=128, multiply_vrf_depth=128,
                     mantissa_bits=0)


class TestCompileSerializeExecute:
    """Compile -> disassemble -> reassemble -> execute == reference."""

    def test_lstm_through_assembler(self, cfg, rng):
        model = LstmReference(20, 20, seed=21)
        compiled = compile_lstm(model, cfg)
        text = format_program(compiled.program)
        reparsed = parse_program(text, name="reparsed")
        sim = compiled.new_simulator(exact=True)
        xs = [rng.uniform(-1, 1, 20).astype(np.float32)
              for _ in range(3)]
        for x in xs:
            compiled._push_padded(sim, x)
        sim.run(reparsed, bindings={"steps": 3})
        outputs = compiled._collect_outputs(sim, 3)
        want = model.run(xs)
        assert np.allclose(outputs[-1], want[-1], atol=1e-5)

    def test_gru_through_binary_encoding(self, cfg, rng):
        """The dynamic instruction stream survives binary encoding and
        re-execution as raw chains."""
        from repro.isa import NpuProgram, chains_from_instructions
        from repro.isa.opcodes import Opcode
        from repro.isa.program import SetScalar

        model = GruReference(20, 20, seed=22)
        compiled = compile_gru(model, cfg)
        stream = list(compiled.program.instruction_stream({"steps": 2}))
        decoded = decode_stream(encode_stream(stream))

        # Rebuild a flat program from the decoded stream.
        items = []
        pending = []
        for instr in decoded:
            if instr.opcode is Opcode.S_WR:
                items.append(SetScalar(instr.operand1, instr.operand2))
            elif instr.opcode is Opcode.END_CHAIN:
                items.extend(chains_from_instructions(pending))
                pending = []
            else:
                pending.append(instr)
        flat = NpuProgram(items, name="decoded")

        sim = compiled.new_simulator(exact=True)
        xs = [rng.uniform(-1, 1, 20).astype(np.float32)
              for _ in range(2)]
        for x in xs:
            compiled._push_padded(sim, x)
        sim.run(flat)
        outputs = compiled._collect_outputs(sim, 2)
        want = model.run(xs)
        assert np.allclose(outputs[-1], want[-1], atol=1e-5)


class TestGirToNpuConsistency:
    def test_gir_weight_footprint_matches_allocator(self, cfg):
        model = LstmReference(20, 20, seed=23)
        graph = lstm_to_gir(model, steps=1)
        compiled = compile_lstm(model, cfg)
        assert graph.weight_elements == \
            compiled.allocator.mrf_elements_used

    def test_gir_passes_agree_with_lowering(self, cfg):
        model = LstmReference(20, 20, seed=24)
        graph = lstm_to_gir(model, steps=1)
        validate_for_npu(graph, cfg)
        pinned, streamed = pin_constants(graph, cfg)
        assert streamed == 0  # lowering pinned everything too
        efficiency = annotate_padding(graph, cfg)
        assert efficiency == pytest.approx((20 / 32) ** 2)


class TestTimingFunctionalConsistency:
    def test_same_program_drives_both_simulators(self, cfg, rng):
        model = GruReference(24, 24, seed=25)
        compiled = compile_gru(model, cfg)
        # Functional run.
        xs = [rng.uniform(-1, 1, 24).astype(np.float32)
              for _ in range(4)]
        outputs = compiled.run_sequence(xs, exact=True)
        assert len(outputs) == 4
        # Timing run of the identical program object.
        report = TimingSimulator(cfg).run(
            compiled.program, bindings={"steps": 4},
            nominal_ops=4 * compiled.ops_per_step)
        assert report.chains_executed == 4 * 9
        assert report.total_cycles > 0

    def test_functional_stats_consistent_with_shape_metadata(self, cfg,
                                                             rng):
        model = GruReference(16, 16, seed=26)
        compiled = compile_gru(model, cfg)
        sim = compiled.new_simulator(exact=True)
        compiled.run_sequence(
            [rng.uniform(-1, 1, 16).astype(np.float32)], exact=True,
            sim=sim)
        # Padded MAC work >= nominal model MACs.
        nominal_macs = model.shape(1).matmul_ops_per_step // 2
        assert sim.stats.macs >= nominal_macs


class TestBfpAccuracyAcrossStack:
    @pytest.mark.parametrize("mantissa,limit", [(2, 0.35), (5, 0.05)])
    def test_rnn_output_error_shrinks_with_mantissa(self, rng, mantissa,
                                                    limit):
        """Section VI: mantissas trimmed to 2-5 bits with bounded
        impact; error decreases with width."""
        cfg = NpuConfig(name="q", tile_engines=2, lanes=4,
                        native_dim=16, mrf_size=256,
                        initial_vrf_depth=128, addsub_vrf_depth=128,
                        multiply_vrf_depth=128, mantissa_bits=mantissa)
        model = GruReference(24, 24, seed=30, scale=0.15)
        compiled = compile_gru(model, cfg)
        xs = [rng.uniform(-1, 1, 24).astype(np.float32)
              for _ in range(3)]
        got = compiled.run_sequence(xs, exact=False)
        want = model.run(xs)
        rel = (np.linalg.norm(got[-1] - want[-1])
               / (np.linalg.norm(want[-1]) + 1e-9))
        assert rel < limit
