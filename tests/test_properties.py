"""Property-based tests on core invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.lowering import compile_rnn_shape
from repro.config import NpuConfig
from repro.errors import ChainError
from repro.functional import FunctionalSimulator
from repro.isa import (
    InstructionChain,
    MemId,
    ProgramBuilder,
    chains_from_instructions,
    mv_mul,
    v_rd,
    v_relu,
    v_sigm,
    v_tanh,
    v_wr,
    vv_add,
    vv_max,
    vv_mul,
)
from repro.timing import LatencyModel, TimingSimulator

CFG = NpuConfig(name="prop", tile_engines=2, lanes=4, native_dim=8,
                mrf_size=64, initial_vrf_depth=64, addsub_vrf_depth=64,
                multiply_vrf_depth=64, mantissa_bits=0)


# -- functional executor linearity ----------------------------------------

vectors8 = st.lists(st.floats(-4, 4, allow_nan=False, width=32),
                    min_size=8, max_size=8)


def _mv_mul_out(sim, x):
    sim.load_vector(MemId.InitialVrf, 0, np.asarray(x, np.float32))
    b = ProgramBuilder("p")
    b.v_rd(MemId.InitialVrf, 0)
    b.mv_mul(0)
    b.v_wr(MemId.InitialVrf, 1)
    sim.run(b.build())
    return sim.read_vector(MemId.InitialVrf, 1, 8)


@given(vectors8, vectors8)
@settings(max_examples=40, deadline=None)
def test_mv_mul_is_linear_in_exact_mode(x, y):
    rng = np.random.default_rng(0)
    W = rng.uniform(-1, 1, (8, 8)).astype(np.float32)
    sim = FunctionalSimulator(CFG, exact=True)
    sim.load_matrix(0, W)
    fx = _mv_mul_out(sim, x)
    fy = _mv_mul_out(sim, y)
    fxy = _mv_mul_out(sim, np.asarray(x) + np.asarray(y))
    assert np.allclose(fxy, fx + fy, atol=1e-3)


@given(vectors8)
@settings(max_examples=40, deadline=None)
def test_activation_outputs_bounded(x):
    sim = FunctionalSimulator(CFG, exact=True)
    sim.load_vector(MemId.InitialVrf, 0, np.asarray(x, np.float32))
    b = ProgramBuilder("p")
    b.v_rd(MemId.InitialVrf, 0)
    b.v_sigm()
    b.v_wr(MemId.InitialVrf, 1)
    b.v_rd(MemId.InitialVrf, 0)
    b.v_tanh()
    b.v_wr(MemId.InitialVrf, 2)
    b.v_rd(MemId.InitialVrf, 0)
    b.v_relu()
    b.v_wr(MemId.InitialVrf, 3)
    sim.run(b.build())
    sigm = sim.read_vector(MemId.InitialVrf, 1, 8)
    tanh = sim.read_vector(MemId.InitialVrf, 2, 8)
    relu = sim.read_vector(MemId.InitialVrf, 3, 8)
    assert np.all((sigm >= 0) & (sigm <= 1))
    assert np.all((tanh >= -1) & (tanh <= 1))
    assert np.all(relu >= 0)


# -- chain validation fuzz --------------------------------------------------

def random_body():
    ops = st.sampled_from([
        mv_mul(0), vv_add(0), vv_mul(0), vv_max(1), v_relu(), v_sigm(),
        v_tanh(), v_rd(MemId.NetQ), v_wr(MemId.InitialVrf, 0),
    ])
    return st.lists(ops, max_size=6)


@given(random_body())
@settings(max_examples=150)
def test_chain_validation_never_crashes(body):
    """Arbitrary instruction bodies either build a valid chain or raise
    ChainError — never anything else."""
    instrs = [v_rd(MemId.InitialVrf, 0)] + body + \
        [v_wr(MemId.InitialVrf, 1)]
    try:
        chain = InstructionChain(instrs)
    except ChainError:
        return
    assert chain.writes


@given(random_body())
@settings(max_examples=100)
def test_stream_splitting_never_crashes(body):
    try:
        chains = chains_from_instructions(body)
    except ChainError:
        return
    for chain in chains:
        assert len(chain) >= 1


# -- timing model invariants -------------------------------------------------

@given(st.integers(1, 12), st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_mvm_issue_monotone_in_tiles(rows, cols):
    model = LatencyModel(CFG)
    base = model.mvm_issue_cycles(rows, cols)
    assert model.mvm_issue_cycles(rows + 1, cols) >= base
    assert model.mvm_issue_cycles(rows, cols + 1) >= base


@given(st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_timing_total_monotone_in_steps(steps):
    compiled = compile_rnn_shape("gru", 24, CFG.replace(native_dim=16,
                                                        lanes=4,
                                                        mrf_size=256))
    sim = TimingSimulator(compiled.config)
    a = sim.run(compiled.program, bindings={"steps": steps}).total_cycles
    b = TimingSimulator(compiled.config).run(
        compiled.program, bindings={"steps": steps + 1}).total_cycles
    assert b > a


@given(st.sampled_from([1, 2, 3, 6]), st.sampled_from([1, 2, 4]))
@settings(max_examples=20, deadline=None)
def test_more_hardware_never_slower(tiles, lanes_factor):
    """Scaling tile engines or lanes never increases steady-state
    latency (the timing model is monotone in resources)."""
    base_cfg = NpuConfig(name="m", tile_engines=tiles,
                         lanes=4 * lanes_factor, native_dim=16,
                         mrf_size=256, mantissa_bits=0)
    compiled = compile_rnn_shape("gru", 48, base_cfg)
    small = TimingSimulator(base_cfg).run(
        compiled.program, bindings={"steps": 10}).total_cycles
    big_cfg = base_cfg.replace(tile_engines=tiles * 2)
    compiled_big = compile_rnn_shape("gru", 48, big_cfg)
    big = TimingSimulator(big_cfg).run(
        compiled_big.program, bindings={"steps": 10}).total_cycles
    assert big <= small + 1e-6


# -- lowering correctness over random shapes --------------------------------

@given(st.integers(4, 40), st.integers(4, 40), st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_lstm_lowering_correct_for_random_shapes(hidden, inp, steps):
    from repro.compiler import compile_lstm
    from repro.models import LstmReference
    cfg = NpuConfig(name="f", tile_engines=2, lanes=4, native_dim=16,
                    mrf_size=256, initial_vrf_depth=128,
                    addsub_vrf_depth=128, multiply_vrf_depth=128,
                    mantissa_bits=0)
    model = LstmReference(hidden, inp, seed=hidden * 41 + inp)
    compiled = compile_lstm(model, cfg)
    rng = np.random.default_rng(steps)
    xs = [rng.uniform(-1, 1, inp).astype(np.float32)
          for _ in range(steps)]
    got = compiled.run_sequence(xs, exact=True)
    want = model.run(xs)
    assert np.allclose(got[-1], want[-1], atol=1e-4)


@given(st.integers(4, 40), st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_gru_lowering_correct_for_random_shapes(hidden, steps):
    from repro.compiler import compile_gru
    from repro.models import GruReference
    cfg = NpuConfig(name="f", tile_engines=2, lanes=4, native_dim=16,
                    mrf_size=256, initial_vrf_depth=128,
                    addsub_vrf_depth=128, multiply_vrf_depth=128,
                    mantissa_bits=0)
    model = GruReference(hidden, hidden, seed=hidden * 13)
    compiled = compile_gru(model, cfg)
    rng = np.random.default_rng(steps)
    xs = [rng.uniform(-1, 1, hidden).astype(np.float32)
          for _ in range(steps)]
    got = compiled.run_sequence(xs, exact=True)
    want = model.run(xs)
    assert np.allclose(got[-1], want[-1], atol=1e-4)
