"""Tests for the textual assembler / disassembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa import (
    MemId,
    ProgramBuilder,
    ScalarReg,
    format_program,
    parse_program,
)
from repro.isa.assembler import roundtrip


SAMPLE = """
# one GRU-ish step
s_wr Rows, 2
s_wr Columns, 2
loop 3 {
    v_rd NetQ
    v_wr InitialVrf, 0
    end_chain
    v_rd InitialVrf, 0
    mv_mul 0
    vv_add 1
    v_sigm
    v_wr MultiplyVrf, 2
    end_chain
}
"""


class TestParse:
    def test_sample_parses(self):
        program = parse_program(SAMPLE)
        chains = list(program.chains())
        assert len(chains) == 6

    def test_scalar_writes_parsed(self):
        program = parse_program("s_wr Rows, 4\n")
        item = program.items[0]
        assert item.reg is ScalarReg.Rows and item.value == 4

    def test_comments_ignored(self):
        program = parse_program(
            "v_rd NetQ  // inline\n# whole line\nv_wr NetQ\n")
        assert program.static_chain_count() == 1

    def test_symbolic_loop_count(self):
        program = parse_program(
            "loop steps {\n v_rd NetQ\n v_wr NetQ\n}\n")
        assert len(list(program.chains({"steps": 5}))) == 5

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            parse_program("v_frobnicate 3\n")

    def test_unknown_memory(self):
        with pytest.raises(AssemblerError):
            parse_program("v_rd Nowhere, 3\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            parse_program("mv_mul 1, 2\n")

    def test_non_integer_index(self):
        with pytest.raises(AssemblerError):
            parse_program("mv_mul banana\n")

    def test_unclosed_loop(self):
        with pytest.raises(AssemblerError):
            parse_program("loop 3 {\n v_rd NetQ\n v_wr NetQ\n")

    def test_unmatched_close(self):
        with pytest.raises(AssemblerError):
            parse_program("}\n")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblerError, match="line 2"):
            parse_program("v_rd NetQ\nmv_mul x\nv_wr NetQ\n")


class TestFormat:
    def test_format_then_parse_is_identity(self):
        program = parse_program(SAMPLE, name="sample")
        again = roundtrip(program)
        assert format_program(again) == format_program(program)

    def test_format_contains_loop_braces(self):
        text = format_program(parse_program(SAMPLE))
        assert "loop 3 {" in text and "}" in text

    def test_builder_program_formats(self):
        b = ProgramBuilder("p")
        b.set_rows(2)
        with b.loop("steps"):
            b.v_rd(MemId.NetQ)
            b.mv_mul(0)
            b.v_wr(MemId.NetQ)
        text = format_program(b.build())
        assert "s_wr Rows, 2" in text
        assert "loop steps {" in text
        assert "mv_mul 0" in text

    def test_compiled_model_program_roundtrips(self):
        from repro.compiler.lowering import compile_rnn_shape
        from repro.config import NpuConfig
        cfg = NpuConfig(name="t", tile_engines=2, lanes=4, native_dim=16,
                        mrf_size=128)
        compiled = compile_rnn_shape("lstm", 24, cfg)
        again = roundtrip(compiled.program)
        assert (format_program(again)
                == format_program(compiled.program))


class TestAssemblerProperty:
    def test_random_programs_roundtrip(self):
        """Programs generated from random (valid) chain structures
        survive format -> parse -> format."""
        import random

        from repro.isa import MemId

        rnd = random.Random(7)
        for trial in range(25):
            b = ProgramBuilder(f"rand{trial}")
            for _ in range(rnd.randint(1, 6)):
                if rnd.random() < 0.3:
                    b.s_wr(ScalarReg.Rows, rnd.randint(1, 8))
                b.v_rd(MemId.InitialVrf, rnd.randint(0, 31))
                if rnd.random() < 0.5:
                    b.mv_mul(rnd.randint(0, 15))
                if rnd.random() < 0.5:
                    b.vv_add(rnd.randint(0, 31))
                if rnd.random() < 0.5:
                    b.v_tanh()
                if rnd.random() < 0.4:
                    b.vv_mul(rnd.randint(0, 31))
                b.v_wr(MemId.AddSubVrf, rnd.randint(0, 31))
            program = b.build()
            again = roundtrip(program)
            assert format_program(again) == format_program(program)
