"""Instruction chains (Section IV-C, "Instruction Chaining").

A chain is a sequence of dependent instructions that pass values directly
from one operation to the next without named intermediate storage. Chains
come in two shapes:

* **Vector chains** begin with ``v_rd``, optionally apply one ``mv_mul``
  (the MVM sits at the head of the pipeline, Section V) followed by any
  number of point-wise operations, and terminate with one or more ``v_wr``
  (multiple writes multicast the final value).
* **Matrix chains** consist of exactly ``m_rd`` then ``m_wr`` and serve
  only to initialize/move matrices.

Validation is split in two: :meth:`InstructionChain.validate` checks
structural ISA legality, and :meth:`InstructionChain.assign_function_units`
checks that a concrete configuration (number of MFUs, function units per
MFU) can route the chain — the paper's "length and order of operations is
constrained by the microarchitectural implementation".
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ChainCapacityError, ChainError
from .memspace import MemId
from .opcodes import ChainType, FuCategory, Opcode
from .instructions import Instruction


@dataclasses.dataclass(frozen=True)
class FuSlot:
    """Placement of one point-wise op onto a function unit."""

    mfu_index: int
    category: FuCategory
    instruction: Instruction


class InstructionChain:
    """An immutable, validated instruction chain."""

    def __init__(self, instructions: Sequence[Instruction]):
        self._instructions: Tuple[Instruction, ...] = tuple(instructions)
        self._validate()

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self):
        return iter(self._instructions)

    def __getitem__(self, i):
        return self._instructions[i]

    def __eq__(self, other) -> bool:
        if not isinstance(other, InstructionChain):
            return NotImplemented
        return self._instructions == other._instructions

    def __hash__(self) -> int:
        return hash(self._instructions)

    def __repr__(self) -> str:
        body = "; ".join(str(i) for i in self._instructions)
        return f"InstructionChain({body})"

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return self._instructions

    # -- shape queries -------------------------------------------------------

    @property
    def is_matrix_chain(self) -> bool:
        return self._instructions[0].opcode is Opcode.M_RD

    @property
    def has_mv_mul(self) -> bool:
        return any(i.opcode is Opcode.MV_MUL for i in self._instructions)

    @property
    def mv_mul_index(self) -> Optional[int]:
        """MRF base index of the chain's ``mv_mul``, if present."""
        for instr in self._instructions:
            if instr.opcode is Opcode.MV_MUL:
                return instr.index
        return None

    @property
    def pointwise_ops(self) -> List[Instruction]:
        """The point-wise (MFU) operations in chain order."""
        return [i for i in self._instructions if i.info.is_pointwise]

    @property
    def reads(self) -> List[Instruction]:
        """The head read instruction(s) (always exactly one)."""
        return [i for i in self._instructions
                if i.opcode in (Opcode.V_RD, Opcode.M_RD)]

    @property
    def writes(self) -> List[Instruction]:
        """The terminal write instruction(s)."""
        return [i for i in self._instructions
                if i.opcode in (Opcode.V_WR, Opcode.M_WR)]

    @property
    def source(self) -> Instruction:
        return self._instructions[0]

    def operand_reads(self) -> List[Tuple[MemId, int]]:
        """All (memory, index) pairs this chain reads.

        Includes the head read (when indexed) and the secondary VRF operands
        of the point-wise ops. Used for hazard tracking by the timing model.
        """
        pairs: List[Tuple[MemId, int]] = []
        head = self.source
        if head.mem_id is not None and head.index is not None:
            pairs.append((head.mem_id, head.index))
        for instr in self._instructions:
            if instr.opcode in (Opcode.VV_ADD, Opcode.VV_A_SUB_B,
                                Opcode.VV_B_SUB_A, Opcode.VV_MAX):
                pairs.append((MemId.AddSubVrf, instr.index))
            elif instr.opcode is Opcode.VV_MUL:
                pairs.append((MemId.MultiplyVrf, instr.index))
            elif instr.opcode is Opcode.MV_MUL:
                pairs.append((MemId.MatrixRf, instr.index))
        return pairs

    def operand_writes(self) -> List[Tuple[MemId, int]]:
        """All (memory, index) pairs this chain writes (indexed only)."""
        return [(w.mem_id, w.index) for w in self.writes
                if w.mem_id is not None and w.index is not None]

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        instrs = self._instructions
        if not instrs:
            raise ChainError("empty instruction chain")
        for instr in instrs:
            if instr.opcode in (Opcode.S_WR, Opcode.END_CHAIN):
                raise ChainError(
                    f"{instr.info.mnemonic} is a control instruction and "
                    "cannot appear inside a chain")
        if instrs[0].opcode is Opcode.M_RD:
            self._validate_matrix_chain()
        elif instrs[0].opcode is Opcode.V_RD:
            self._validate_vector_chain()
        else:
            raise ChainError(
                f"chains must begin with v_rd or m_rd, got "
                f"{instrs[0].info.mnemonic}")

    def _validate_matrix_chain(self) -> None:
        instrs = self._instructions
        if len(instrs) != 2 or instrs[1].opcode is not Opcode.M_WR:
            raise ChainError(
                "matrix chains consist of exactly m_rd followed by m_wr")

    def _validate_vector_chain(self) -> None:
        instrs = self._instructions
        seen_write = False
        for pos, instr in enumerate(instrs[1:], start=1):
            meta = instr.info
            if instr.opcode is Opcode.V_RD:
                raise ChainError("v_rd may only start a chain")
            if meta.chain_in is ChainType.MATRIX or \
                    meta.chain_out is ChainType.MATRIX:
                raise ChainError(
                    f"matrix instruction {meta.mnemonic} in a vector chain")
            if instr.opcode is Opcode.MV_MUL and pos != 1:
                # The MVM is at the head of the function-unit pipeline
                # (Fig. 3); a vector must enter it before any MFU op.
                raise ChainError(
                    "mv_mul must immediately follow the chain's v_rd")
            if seen_write and instr.opcode is not Opcode.V_WR:
                raise ChainError(
                    "only additional v_wr (multicast) may follow a v_wr")
            if instr.opcode is Opcode.V_WR:
                seen_write = True
        if not seen_write:
            raise ChainError("vector chains must terminate with v_wr")

    def assign_function_units(self, num_mfus: int) -> List[FuSlot]:
        """Route the chain's point-wise ops through ``num_mfus`` MFUs.

        Each MFU provides one add/subtract unit, one multiply unit, and one
        activation unit behind a non-blocking crossbar, so within a single
        MFU the ops may appear in any order but each unit is usable once.
        Ops are placed greedily in chain order, advancing to the next MFU
        when the current one has already used the needed unit.

        Raises:
            ChainCapacityError: if the chain needs more MFUs than available.
        """
        slots: List[FuSlot] = []
        mfu = 0
        used: set = set()
        for instr in self.pointwise_ops:
            category = instr.info.fu_category
            while category in used:
                mfu += 1
                used = set()
            if mfu >= num_mfus:
                raise ChainCapacityError(
                    f"chain requires more than {num_mfus} MFUs: "
                    f"{[str(i) for i in self.pointwise_ops]}")
            used.add(category)
            slots.append(FuSlot(mfu, category, instr))
        return slots

    def mfus_required(self) -> int:
        """Minimum number of MFUs needed to route this chain."""
        slots = self.assign_function_units(num_mfus=1 << 20)
        if not slots:
            return 0
        return slots[-1].mfu_index + 1


def chains_from_instructions(
        instructions: Iterable[Instruction]) -> List[InstructionChain]:
    """Split a flat instruction stream into validated chains.

    ``end_chain`` and the natural chain boundaries (a read opcode starting
    a new chain after a write) both terminate chains. ``s_wr`` is rejected
    here — streams with control instructions belong in
    :class:`repro.isa.program.NpuProgram`.
    """
    chains: List[InstructionChain] = []
    current: List[Instruction] = []
    for instr in instructions:
        if instr.opcode is Opcode.END_CHAIN:
            if current:
                chains.append(InstructionChain(current))
                current = []
            continue
        if instr.opcode in (Opcode.V_RD, Opcode.M_RD) and current:
            chains.append(InstructionChain(current))
            current = []
        current.append(instr)
    if current:
        chains.append(InstructionChain(current))
    return chains
