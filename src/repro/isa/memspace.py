"""Memory spaces addressable by the BW NPU ISA.

The ISA's read/write instructions name a memory target with their first
operand (paper Table II). Vector instructions may target the network I/O
queue, DRAM, or one of the pipeline vector register files; matrix
instructions are restricted to the network queue, DRAM, and the matrix
register file (Section IV-C: "Matrices can be read only from the network
or from DRAM, and can be written only to the matrix register file or to
DRAM").
"""

from __future__ import annotations

import enum


class MemId(enum.IntEnum):
    """Identifier of an addressable memory structure."""

    #: Network input/output queue (datacenter network attach point).
    NetQ = 0
    #: Off-chip DRAM attached to the FPGA.
    Dram = 1
    #: Matrix register file feeding the matrix-vector multiplier.
    MatrixRf = 2
    #: Vector register file at the head of the pipeline (MVM input).
    InitialVrf = 3
    #: Vector register file supplying add/subtract/max operands in the MFUs.
    AddSubVrf = 4
    #: Vector register file supplying Hadamard-product operands in the MFUs.
    MultiplyVrf = 5

    @property
    def is_vrf(self) -> bool:
        """Whether this memory is a pipeline vector register file."""
        return self in _VECTOR_REGISTER_FILES

    @property
    def holds_vectors(self) -> bool:
        """Whether vectors can be stored here (``v_rd``/``v_wr`` legality)."""
        return self is not MemId.MatrixRf


#: Memory spaces that ``v_rd`` may name as a source.
VECTOR_READ_SOURCES = frozenset(
    {MemId.NetQ, MemId.Dram, MemId.InitialVrf, MemId.AddSubVrf, MemId.MultiplyVrf}
)

#: Memory spaces that ``v_wr`` may name as a destination.
VECTOR_WRITE_TARGETS = VECTOR_READ_SOURCES

#: Memory spaces that ``m_rd`` may name as a source (Table II: NetQ or DRAM).
MATRIX_READ_SOURCES = frozenset({MemId.NetQ, MemId.Dram})

#: Memory spaces that ``m_wr`` may name as a destination (MRF or DRAM).
MATRIX_WRITE_TARGETS = frozenset({MemId.MatrixRf, MemId.Dram})

_VECTOR_REGISTER_FILES = frozenset(
    {MemId.InitialVrf, MemId.AddSubVrf, MemId.MultiplyVrf}
)


class ScalarReg(enum.IntEnum):
    """Scalar control registers written with ``s_wr`` (Section IV-C).

    ``Rows``/``Columns`` configure mega-SIMD tiling: with ``rows=R`` and
    ``columns=C`` a subsequent ``mv_mul`` treats ``R*C`` consecutive MRF
    entries as a tiled R·N x C·N matrix, consuming C input vectors and
    producing R output vectors.
    """

    Rows = 0
    Columns = 1
    #: Loop trip count consumed by the scalar control processor.
    Iterations = 2
