"""Instruction objects for the BW NPU ISA.

An :class:`Instruction` is an opcode plus up to two explicit operands
(paper Table II). The implicit chain input/output is *not* an operand; it
is the value flowing along the instruction chain.

Instructions are immutable; helper constructors (``v_rd``, ``mv_mul``, ...)
validate operand kinds at construction time so that malformed instructions
are rejected as early as possible.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Optional, Union

from ..errors import IsaError
from .memspace import (
    MATRIX_READ_SOURCES,
    MATRIX_WRITE_TARGETS,
    VECTOR_READ_SOURCES,
    VECTOR_WRITE_TARGETS,
    MemId,
    ScalarReg,
)
from .opcodes import Opcode, OpcodeInfo, OperandKind, info

Operand = Union[int, MemId, ScalarReg, None]


@dataclasses.dataclass(frozen=True)
class Instruction:
    """A single BW NPU instruction.

    Attributes:
        opcode: The operation.
        operand1: First explicit operand (meaning depends on the opcode).
        operand2: Second explicit operand, or ``None``.
    """

    opcode: Opcode
    operand1: Operand = None
    operand2: Operand = None

    def __post_init__(self) -> None:
        _validate_operands(self)

    @property
    def info(self) -> OpcodeInfo:
        return info(self.opcode)

    # Instructions are immutable, so the decoded operand views are
    # memoized (cached_property stores into __dict__, which frozen
    # dataclasses permit) — they sit on the executor's per-instruction
    # hot path.
    @functools.cached_property
    def mem_id(self) -> Optional[MemId]:
        """The memory structure named by this instruction, if any."""
        if self.info.operand1 is OperandKind.MEM_ID:
            return MemId(self.operand1)
        return None

    @functools.cached_property
    def index(self) -> Optional[int]:
        """The memory index operand, if any."""
        kind1, kind2 = self.info.operand1, self.info.operand2
        if kind2 is OperandKind.MEM_INDEX:
            return None if self.operand2 is None else int(self.operand2)
        if kind1 in (OperandKind.MRF_INDEX, OperandKind.VRF_INDEX):
            return int(self.operand1)
        return None

    def __str__(self) -> str:
        parts = [self.info.mnemonic]
        operands = []
        for value, kind in ((self.operand1, self.info.operand1),
                            (self.operand2, self.info.operand2)):
            if kind is OperandKind.NONE:
                continue
            if kind is OperandKind.MEM_ID:
                operands.append(MemId(value).name)
            elif kind is OperandKind.SCALAR_REG:
                operands.append(ScalarReg(value).name)
            elif value is None:
                continue  # NetQ accesses carry no index
            else:
                operands.append(str(int(value)))
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise IsaError(message)


def _validate_operands(instr: Instruction) -> None:
    meta = info(instr.opcode)
    for value, kind, label in (
        (instr.operand1, meta.operand1, "operand1"),
        (instr.operand2, meta.operand2, "operand2"),
    ):
        if kind is OperandKind.NONE:
            _require(value is None,
                     f"{meta.mnemonic}: {label} must be absent, got {value!r}")
        elif kind is OperandKind.MEM_ID:
            _require(isinstance(value, MemId) or value in list(MemId),
                     f"{meta.mnemonic}: {label} must be a MemId, got {value!r}")
        elif kind is OperandKind.SCALAR_REG:
            _require(isinstance(value, ScalarReg) or value in list(ScalarReg),
                     f"{meta.mnemonic}: {label} must be a ScalarReg, got {value!r}")
        elif kind is OperandKind.MEM_INDEX:
            # NetQ reads/writes carry no index (Table II: "except in the
            # case of network I/O").
            if value is not None:
                _require(isinstance(value, int) and value >= 0,
                         f"{meta.mnemonic}: {label} must be a non-negative "
                         f"index, got {value!r}")
        else:  # MRF_INDEX, VRF_INDEX, SCALAR_VAL
            _require(isinstance(value, int) and not isinstance(value, bool)
                     and value >= 0,
                     f"{meta.mnemonic}: {label} must be a non-negative "
                     f"integer, got {value!r}")

    mem = instr.mem_id
    if instr.opcode is Opcode.V_RD:
        _require(mem in VECTOR_READ_SOURCES,
                 f"v_rd cannot read from {mem.name}")
    elif instr.opcode is Opcode.V_WR:
        _require(mem in VECTOR_WRITE_TARGETS,
                 f"v_wr cannot write to {mem.name}")
    elif instr.opcode is Opcode.M_RD:
        _require(mem in MATRIX_READ_SOURCES,
                 f"m_rd may only read from NetQ or DRAM, not {mem.name}")
    elif instr.opcode is Opcode.M_WR:
        _require(mem in MATRIX_WRITE_TARGETS,
                 f"m_wr may only write to MatrixRf or DRAM, not {mem.name}")
    if instr.opcode in (Opcode.V_RD, Opcode.V_WR, Opcode.M_RD, Opcode.M_WR):
        if mem is not MemId.NetQ:
            _require(instr.operand2 is not None,
                     f"{meta.mnemonic}({mem.name}) requires a memory index")


# ---------------------------------------------------------------------------
# Convenience constructors mirroring the paper's software macros.
# ---------------------------------------------------------------------------

def v_rd(mem: MemId, index: Optional[int] = None) -> Instruction:
    """Read a vector from ``mem`` (index unused for NetQ)."""
    return Instruction(Opcode.V_RD, MemId(mem), index)


def v_wr(mem: MemId, index: Optional[int] = None) -> Instruction:
    """Write the chain vector to ``mem`` (index unused for NetQ)."""
    return Instruction(Opcode.V_WR, MemId(mem), index)


def m_rd(mem: MemId, index: Optional[int] = None) -> Instruction:
    """Read a matrix tile group from NetQ or DRAM."""
    return Instruction(Opcode.M_RD, MemId(mem), index)


def m_wr(mem: MemId, index: Optional[int] = None) -> Instruction:
    """Write the chain matrix to the MRF or DRAM."""
    return Instruction(Opcode.M_WR, MemId(mem), index)


def mv_mul(mrf_index: int) -> Instruction:
    """Multiply the chain vector by the matrix at ``mrf_index``."""
    return Instruction(Opcode.MV_MUL, mrf_index)


def vv_add(vrf_index: int) -> Instruction:
    """Point-wise add the AddSubVrf entry at ``vrf_index``."""
    return Instruction(Opcode.VV_ADD, vrf_index)


def vv_a_sub_b(vrf_index: int) -> Instruction:
    """Point-wise subtract: chain value minus AddSubVrf entry."""
    return Instruction(Opcode.VV_A_SUB_B, vrf_index)


def vv_b_sub_a(vrf_index: int) -> Instruction:
    """Point-wise subtract: AddSubVrf entry minus chain value."""
    return Instruction(Opcode.VV_B_SUB_A, vrf_index)


def vv_max(vrf_index: int) -> Instruction:
    """Point-wise max with the AddSubVrf entry at ``vrf_index``."""
    return Instruction(Opcode.VV_MAX, vrf_index)


def vv_mul(vrf_index: int) -> Instruction:
    """Hadamard product with the MultiplyVrf entry at ``vrf_index``."""
    return Instruction(Opcode.VV_MUL, vrf_index)


def v_relu() -> Instruction:
    """Point-wise ReLU of the chain vector."""
    return Instruction(Opcode.V_RELU)


def v_sigm() -> Instruction:
    """Point-wise sigmoid of the chain vector."""
    return Instruction(Opcode.V_SIGM)


def v_tanh() -> Instruction:
    """Point-wise hyperbolic tangent of the chain vector."""
    return Instruction(Opcode.V_TANH)


def s_wr(reg: ScalarReg, value: int) -> Instruction:
    """Write ``value`` into scalar control register ``reg``."""
    return Instruction(Opcode.S_WR, ScalarReg(reg), value)


def end_chain() -> Instruction:
    """Terminate the current instruction chain."""
    return Instruction(Opcode.END_CHAIN)
