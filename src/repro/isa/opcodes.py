"""Opcodes of the single-threaded BW NPU ISA (paper Table II).

Each opcode carries static metadata: the implicit chain input/output type
(vector, matrix, or none) and the shape of its explicit operands. The
metadata drives chain validation, binary encoding, and the assembler.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional


class ChainType(enum.Enum):
    """Type of the implicit value flowing along an instruction chain."""

    NONE = "-"
    VECTOR = "V"
    MATRIX = "M"


class OperandKind(enum.Enum):
    """Kind of an explicit instruction operand."""

    NONE = "none"
    MEM_ID = "mem_id"          # a MemId selecting a memory structure
    MEM_INDEX = "mem_index"    # an index into a memory structure
    MRF_INDEX = "mrf_index"    # an index into the matrix register file
    VRF_INDEX = "vrf_index"    # an index into an implicitly-named VRF
    SCALAR_REG = "scalar_reg"  # a ScalarReg identifier
    SCALAR_VAL = "scalar_val"  # an immediate scalar value


class Opcode(enum.IntEnum):
    """BW NPU instruction opcodes."""

    V_RD = 0
    V_WR = 1
    M_RD = 2
    M_WR = 3
    MV_MUL = 4
    VV_ADD = 5
    VV_A_SUB_B = 6
    VV_B_SUB_A = 7
    VV_MAX = 8
    VV_MUL = 9
    V_RELU = 10
    V_SIGM = 11
    V_TANH = 12
    S_WR = 13
    END_CHAIN = 14


class FuCategory(enum.Enum):
    """Function-unit category inside a multifunction unit (Section V-B).

    Each MFU contains one add/subtract unit (with its AddSubVrf), one
    multiply unit (with its MultiplyVrf), and one activation unit, joined
    by a non-blocking crossbar.
    """

    ADD_SUB = "add_sub"
    MULTIPLY = "multiply"
    ACTIVATION = "activation"


@dataclasses.dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata for one opcode."""

    opcode: "Opcode"
    mnemonic: str
    description: str
    chain_in: ChainType
    chain_out: ChainType
    operand1: OperandKind
    operand2: OperandKind
    #: MFU function-unit category consumed, if this is a point-wise op.
    fu_category: Optional[FuCategory] = None

    @property
    def is_pointwise(self) -> bool:
        """Whether this op executes on a multifunction unit."""
        return self.fu_category is not None

    @property
    def num_operands(self) -> int:
        return sum(
            1 for kind in (self.operand1, self.operand2) if kind is not OperandKind.NONE
        )


_INFOS = [
    OpcodeInfo(Opcode.V_RD, "v_rd", "Vector read", ChainType.NONE, ChainType.VECTOR,
               OperandKind.MEM_ID, OperandKind.MEM_INDEX),
    OpcodeInfo(Opcode.V_WR, "v_wr", "Vector write", ChainType.VECTOR, ChainType.NONE,
               OperandKind.MEM_ID, OperandKind.MEM_INDEX),
    OpcodeInfo(Opcode.M_RD, "m_rd", "Matrix read", ChainType.NONE, ChainType.MATRIX,
               OperandKind.MEM_ID, OperandKind.MEM_INDEX),
    OpcodeInfo(Opcode.M_WR, "m_wr", "Matrix write", ChainType.MATRIX, ChainType.NONE,
               OperandKind.MEM_ID, OperandKind.MEM_INDEX),
    OpcodeInfo(Opcode.MV_MUL, "mv_mul", "Matrix-vector multiply",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.MRF_INDEX, OperandKind.NONE),
    OpcodeInfo(Opcode.VV_ADD, "vv_add", "PWV addition",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.VRF_INDEX, OperandKind.NONE, FuCategory.ADD_SUB),
    OpcodeInfo(Opcode.VV_A_SUB_B, "vv_a_sub_b", "PWV subtraction, IN is minuend",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.VRF_INDEX, OperandKind.NONE, FuCategory.ADD_SUB),
    OpcodeInfo(Opcode.VV_B_SUB_A, "vv_b_sub_a", "PWV subtraction, IN is subtrahend",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.VRF_INDEX, OperandKind.NONE, FuCategory.ADD_SUB),
    OpcodeInfo(Opcode.VV_MAX, "vv_max", "PWV max",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.VRF_INDEX, OperandKind.NONE, FuCategory.ADD_SUB),
    OpcodeInfo(Opcode.VV_MUL, "vv_mul", "Hadamard product",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.VRF_INDEX, OperandKind.NONE, FuCategory.MULTIPLY),
    OpcodeInfo(Opcode.V_RELU, "v_relu", "PWV ReLU",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.NONE, OperandKind.NONE, FuCategory.ACTIVATION),
    OpcodeInfo(Opcode.V_SIGM, "v_sigm", "PWV sigmoid",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.NONE, OperandKind.NONE, FuCategory.ACTIVATION),
    OpcodeInfo(Opcode.V_TANH, "v_tanh", "PWV hyperbolic tangent",
               ChainType.VECTOR, ChainType.VECTOR,
               OperandKind.NONE, OperandKind.NONE, FuCategory.ACTIVATION),
    OpcodeInfo(Opcode.S_WR, "s_wr", "Write scalar control register",
               ChainType.NONE, ChainType.NONE,
               OperandKind.SCALAR_REG, OperandKind.SCALAR_VAL),
    OpcodeInfo(Opcode.END_CHAIN, "end_chain", "End instruction chain",
               ChainType.NONE, ChainType.NONE,
               OperandKind.NONE, OperandKind.NONE),
]

#: Opcode -> OpcodeInfo lookup.
OPCODE_INFO = {info.opcode: info for info in _INFOS}

#: Mnemonic -> OpcodeInfo lookup (used by the assembler).
MNEMONIC_INFO = {info.mnemonic: info for info in _INFOS}


def info(opcode: Opcode) -> OpcodeInfo:
    """Return the static metadata for ``opcode``."""
    return OPCODE_INFO[opcode]
