"""Binary encoding of the BW NPU ISA.

Instructions encode into one 32-bit word each:

====== ======== =====================================================
bits    width    field
====== ======== =====================================================
31..27  5        opcode
26      1        operand2-present flag (NetQ accesses carry no index)
25..13  13       operand1 (MemId, ScalarReg, or MRF/VRF index)
12..0   13       operand2 (memory index or scalar immediate)
====== ======== =====================================================

Instruction streams serialize to bytes with a small header carrying a
magic number and version so decoders can reject foreign data.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence

from ..errors import EncodingError
from .instructions import Instruction
from .memspace import MemId, ScalarReg
from .opcodes import Opcode, OperandKind, info

_OPCODE_SHIFT = 27
_FLAG_SHIFT = 26
_OP1_SHIFT = 13
_OP1_MASK = (1 << 13) - 1
_OP2_MASK = (1 << 13) - 1

#: Maximum encodable index / immediate value.
MAX_OPERAND = _OP1_MASK

#: Stream header magic ("BWNP") and format version.
STREAM_MAGIC = 0x42574E50
STREAM_VERSION = 1


def encode(instr: Instruction) -> int:
    """Encode one instruction into a 32-bit word."""
    meta = instr.info
    word = int(instr.opcode) << _OPCODE_SHIFT

    op1 = 0
    if meta.operand1 is not OperandKind.NONE:
        op1 = int(instr.operand1)
        if not 0 <= op1 <= MAX_OPERAND:
            raise EncodingError(
                f"{meta.mnemonic}: operand1 {op1} exceeds {MAX_OPERAND}")
    word |= op1 << _OP1_SHIFT

    if meta.operand2 is not OperandKind.NONE and instr.operand2 is not None:
        op2 = int(instr.operand2)
        if not 0 <= op2 <= MAX_OPERAND:
            raise EncodingError(
                f"{meta.mnemonic}: operand2 {op2} exceeds {MAX_OPERAND}")
        word |= (1 << _FLAG_SHIFT) | op2
    return word


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"word {word:#x} is not a 32-bit value")
    opcode_value = word >> _OPCODE_SHIFT
    try:
        opcode = Opcode(opcode_value)
    except ValueError as exc:
        raise EncodingError(f"unknown opcode {opcode_value}") from exc
    meta = info(opcode)

    raw1 = (word >> _OP1_SHIFT) & _OP1_MASK
    has_op2 = bool((word >> _FLAG_SHIFT) & 1)
    raw2 = word & _OP2_MASK

    operand1 = None
    if meta.operand1 is OperandKind.MEM_ID:
        try:
            operand1 = MemId(raw1)
        except ValueError as exc:
            raise EncodingError(f"invalid MemId {raw1}") from exc
    elif meta.operand1 is OperandKind.SCALAR_REG:
        try:
            operand1 = ScalarReg(raw1)
        except ValueError as exc:
            raise EncodingError(f"invalid ScalarReg {raw1}") from exc
    elif meta.operand1 is not OperandKind.NONE:
        operand1 = raw1

    operand2 = None
    if meta.operand2 is not OperandKind.NONE and has_op2:
        operand2 = raw2

    return Instruction(opcode, operand1, operand2)


def encode_stream(instructions: Iterable[Instruction]) -> bytes:
    """Serialize an instruction stream to bytes (header + words)."""
    words = [encode(i) for i in instructions]
    header = struct.pack(">III", STREAM_MAGIC, STREAM_VERSION, len(words))
    return header + struct.pack(f">{len(words)}I", *words)


def decode_stream(data: bytes) -> List[Instruction]:
    """Deserialize bytes produced by :func:`encode_stream`."""
    if len(data) < 12:
        raise EncodingError("stream too short for header")
    magic, version, count = struct.unpack(">III", data[:12])
    if magic != STREAM_MAGIC:
        raise EncodingError(f"bad magic {magic:#x}")
    if version != STREAM_VERSION:
        raise EncodingError(f"unsupported stream version {version}")
    expected = 12 + 4 * count
    if len(data) != expected:
        raise EncodingError(
            f"stream length {len(data)} does not match header "
            f"({expected} expected)")
    words: Sequence[int] = struct.unpack(f">{count}I", data[12:])
    return [decode(w) for w in words]
