"""Textual assembler / disassembler for NPU programs.

The text format mirrors Table II mnemonics plus a ``loop`` construct for
the scalar control processor::

    s_wr Rows, 2
    loop 25 {
        v_rd NetQ
        mv_mul 0
        v_sigm
        v_wr InitialVrf, 4
        end_chain
    }

Loop counts may be integers or identifiers (bound at run time). Comments
start with ``#`` or ``//``. The assembler produces an
:class:`repro.isa.program.NpuProgram`; :func:`format_program` inverts it.
"""

from __future__ import annotations

import re
from typing import List, Union

from ..errors import AssemblerError
from .chain import InstructionChain
from .memspace import MemId, ScalarReg
from .opcodes import MNEMONIC_INFO, OperandKind
from .program import Loop, NpuProgram, ProgramBuilder, SetScalar

_COMMENT_RE = re.compile(r"(#|//).*$")
_LOOP_RE = re.compile(r"^loop\s+(\w+)\s*\{$")


def parse_program(text: str, name: str = "program") -> NpuProgram:
    """Parse assembly text into a program."""
    builder = ProgramBuilder(name)
    stack: List = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _COMMENT_RE.sub("", raw).strip()
        if not line:
            continue
        try:
            _parse_line(builder, stack, line)
        except Exception as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
    if stack:
        raise AssemblerError("unclosed loop at end of input")
    return builder.build()


def _parse_line(builder: ProgramBuilder, stack: List, line: str) -> None:
    loop_match = _LOOP_RE.match(line)
    if loop_match:
        token = loop_match.group(1)
        count: Union[int, str] = int(token) if token.isdigit() else token
        ctx = builder.loop(count)
        ctx.__enter__()
        stack.append(ctx)
        return
    if line == "}":
        if not stack:
            raise AssemblerError("unmatched '}'")
        stack.pop().__exit__(None, None, None)
        return

    parts = line.split(None, 1)
    mnemonic = parts[0]
    if mnemonic not in MNEMONIC_INFO:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
    meta = MNEMONIC_INFO[mnemonic]
    operands = ([t.strip() for t in parts[1].split(",")]
                if len(parts) > 1 else [])

    args: List = []
    kinds = [k for k in (meta.operand1, meta.operand2)
             if k is not OperandKind.NONE]
    # NetQ accesses may omit the index operand.
    if len(operands) < len(kinds) and kinds and \
            kinds[-1] is OperandKind.MEM_INDEX:
        kinds = kinds[:len(operands)]
    if len(operands) != len(kinds):
        raise AssemblerError(
            f"{mnemonic} expects {len(kinds)} operand(s), "
            f"got {len(operands)}")
    for token, kind in zip(operands, kinds):
        args.append(_parse_operand(token, kind))

    method = getattr(builder, mnemonic)
    method(*args)


def _parse_operand(token: str, kind: OperandKind):
    if kind is OperandKind.MEM_ID:
        try:
            return MemId[token]
        except KeyError:
            raise AssemblerError(f"unknown memory {token!r}") from None
    if kind is OperandKind.SCALAR_REG:
        try:
            return ScalarReg[token]
        except KeyError:
            raise AssemblerError(f"unknown scalar register {token!r}") from None
    if not re.fullmatch(r"\d+", token):
        raise AssemblerError(f"expected integer, got {token!r}")
    return int(token)


def format_program(program: NpuProgram) -> str:
    """Render a program as assembly text (inverse of :func:`parse_program`)."""
    lines: List[str] = []
    _format_items(program.items, lines, indent=0)
    return "\n".join(lines) + "\n"


def _format_items(items, lines: List[str], indent: int) -> None:
    pad = "    " * indent
    for item in items:
        if isinstance(item, Loop):
            lines.append(f"{pad}loop {item.count} {{")
            _format_items(item.body, lines, indent + 1)
            lines.append(f"{pad}}}")
        elif isinstance(item, SetScalar):
            lines.append(f"{pad}{item}")
        elif isinstance(item, InstructionChain):
            for instr in item:
                lines.append(f"{pad}{instr}")
            lines.append(f"{pad}end_chain")
        else:  # pragma: no cover - defensive
            raise AssemblerError(f"unknown program item {item!r}")


def roundtrip(program: NpuProgram) -> NpuProgram:
    """Format then re-parse a program (useful for tests)."""
    return parse_program(format_program(program), name=program.name)
