"""The single-threaded SIMD instruction set of the BW NPU (paper Table II)."""

from .memspace import MemId, ScalarReg
from .opcodes import ChainType, FuCategory, Opcode, OpcodeInfo, OperandKind, info
from .instructions import (
    Instruction,
    end_chain,
    m_rd,
    m_wr,
    mv_mul,
    s_wr,
    v_rd,
    v_relu,
    v_sigm,
    v_tanh,
    v_wr,
    vv_a_sub_b,
    vv_add,
    vv_b_sub_a,
    vv_max,
    vv_mul,
)
from .chain import FuSlot, InstructionChain, chains_from_instructions
from .program import Loop, NpuProgram, ProgramBuilder, SetScalar
from .encoding import decode, decode_stream, encode, encode_stream
from .assembler import format_program, parse_program

__all__ = [
    "MemId", "ScalarReg", "ChainType", "FuCategory", "Opcode", "OpcodeInfo",
    "OperandKind", "info", "Instruction", "InstructionChain", "FuSlot",
    "chains_from_instructions", "Loop", "NpuProgram", "ProgramBuilder",
    "SetScalar", "encode", "decode", "encode_stream", "decode_stream",
    "format_program", "parse_program",
    "v_rd", "v_wr", "m_rd", "m_wr", "mv_mul", "vv_add", "vv_a_sub_b",
    "vv_b_sub_a", "vv_max", "vv_mul", "v_relu", "v_sigm", "v_tanh",
    "s_wr", "end_chain",
]
