"""NPU programs: chains plus scalar control flow.

The BW NPU datapath executes instruction chains; control flow (loops over
RNN timesteps, scalar control-register writes) lives on the scalar control
processor — a Nios II in the paper's implementation, modeled here as the
structured program tree :class:`NpuProgram`.

:class:`ProgramBuilder` is the analogue of the paper's "custom C libraries
for generating BW NPU instructions through software macros": client code
calls ``v_rd`` / ``mv_mul`` / ``vv_add`` / ... and the builder assembles
validated chains, exactly mirroring the LSTM listing in Section IV-C.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..errors import ChainError, IsaError
from .chain import InstructionChain
from .instructions import Instruction
from .memspace import MemId, ScalarReg


@dataclasses.dataclass(frozen=True)
class SetScalar:
    """A scalar control-register write (``s_wr``)."""

    reg: ScalarReg
    value: int

    def __str__(self) -> str:
        return f"s_wr {self.reg.name}, {self.value}"


@dataclasses.dataclass(frozen=True)
class Loop:
    """A counted loop executed by the scalar control processor.

    ``count`` may be an integer or a string naming a run-time binding
    (dynamic input-dependent control flow, e.g. variable-length RNN
    timesteps — Section IV-A).
    """

    count: Union[int, str]
    body: tuple

    def resolve_count(self, bindings: Optional[Dict[str, int]] = None) -> int:
        if isinstance(self.count, int):
            return self.count
        if bindings is None or self.count not in bindings:
            raise IsaError(
                f"loop count '{self.count}' requires a run-time binding")
        value = bindings[self.count]
        if not isinstance(value, int) or value < 0:
            raise IsaError(
                f"loop binding '{self.count}' must be a non-negative int, "
                f"got {value!r}")
        return value


ProgramItem = Union[SetScalar, InstructionChain, Loop]
Event = Union[SetScalar, InstructionChain]


#: Process-wide program identities for compiled-plan caching: ``id()``
#: can be recycled after garbage collection, a monotonic counter cannot.
_PROGRAM_UIDS = itertools.count()


class NpuProgram:
    """A structured NPU program: chains, scalar writes, and loops."""

    def __init__(self, items: Sequence[ProgramItem], name: str = "program"):
        self._items = tuple(items)
        self.name = name
        #: Stable identity used as the compiled replay-plan cache key
        #: (:mod:`repro.functional.replay`). Programs are immutable once
        #: built, so one uid maps to one event stream per binding set.
        self.uid = next(_PROGRAM_UIDS)

    @property
    def items(self) -> tuple:
        return self._items

    def events(self, bindings: Optional[Dict[str, int]] = None
               ) -> Iterator[Event]:
        """Yield the dynamic event stream: chains and scalar writes in
        execution order, with loops unrolled using ``bindings``."""
        yield from _walk(self._items, bindings)

    def chains(self, bindings: Optional[Dict[str, int]] = None
               ) -> Iterator[InstructionChain]:
        """Yield only the chains of the dynamic event stream."""
        for event in self.events(bindings):
            if isinstance(event, InstructionChain):
                yield event

    def static_chain_count(self) -> int:
        """Number of chains in the program text (loops not unrolled)."""
        return sum(1 for _ in _walk_static(self._items)
                   if isinstance(_, InstructionChain))

    def static_instruction_count(self) -> int:
        """ISA instructions in the program text, counting each chain's
        instructions plus one ``end_chain`` and each ``s_wr``."""
        count = 0
        for item in _walk_static(self._items):
            if isinstance(item, InstructionChain):
                count += len(item) + 1  # + end_chain
            else:
                count += 1
        return count

    def dynamic_instruction_count(
            self, bindings: Optional[Dict[str, int]] = None) -> int:
        """ISA instructions issued by the scalar core at run time."""
        count = 0
        for event in self.events(bindings):
            if isinstance(event, InstructionChain):
                count += len(event) + 1
            else:
                count += 1
        return count

    def instruction_stream(
            self, bindings: Optional[Dict[str, int]] = None
    ) -> Iterator[Instruction]:
        """Yield the flat dynamic instruction stream (with ``s_wr`` and
        ``end_chain`` markers), as dispatched to the top-level scheduler."""
        from .instructions import end_chain, s_wr
        for event in self.events(bindings):
            if isinstance(event, SetScalar):
                yield s_wr(event.reg, event.value)
            else:
                yield from event.instructions
                yield end_chain()

    def __repr__(self) -> str:
        return (f"NpuProgram({self.name!r}, "
                f"{self.static_chain_count()} chains)")


def _walk(items, bindings) -> Iterator[Event]:
    for item in items:
        if isinstance(item, Loop):
            for _ in range(item.resolve_count(bindings)):
                yield from _walk(item.body, bindings)
        else:
            yield item


def _walk_static(items):
    for item in items:
        if isinstance(item, Loop):
            yield from _walk_static(item.body)
        else:
            yield item


class ProgramBuilder:
    """Macro layer for building :class:`NpuProgram` objects.

    Mirrors the paper's C macro API: each ISA mnemonic is a method; chains
    are accumulated implicitly and finalized when a new chain begins
    (``v_rd``/``m_rd``), when a control instruction occurs, on
    :meth:`end_chain`, or at :meth:`build`.

    Example (one LSTM gate input, from the Section IV-C listing)::

        b = ProgramBuilder("lstm")
        b.v_rd(MemId.InitialVrf, ivrf_xt)
        b.mv_mul(mrf_Wf)
        b.vv_add(asvrf_bf)
        b.v_wr(MemId.AddSubVrf, asvrf_xWf)
        program = b.build()
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self._frames: List[List[ProgramItem]] = [[]]
        self._pending: List[Instruction] = []

    # -- chain-building mnemonics -------------------------------------------

    def v_rd(self, mem: MemId, index: Optional[int] = None) -> "ProgramBuilder":
        from . import instructions as ins
        self._begin_chain()
        self._pending.append(ins.v_rd(mem, index))
        return self

    def m_rd(self, mem: MemId, index: Optional[int] = None) -> "ProgramBuilder":
        from . import instructions as ins
        self._begin_chain()
        self._pending.append(ins.m_rd(mem, index))
        return self

    def v_wr(self, mem: MemId, index: Optional[int] = None) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.v_wr(mem, index))
        return self

    def m_wr(self, mem: MemId, index: Optional[int] = None) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.m_wr(mem, index))
        return self

    def mv_mul(self, mrf_index: int) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.mv_mul(mrf_index))
        return self

    def vv_add(self, index: int) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.vv_add(index))
        return self

    def vv_a_sub_b(self, index: int) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.vv_a_sub_b(index))
        return self

    def vv_b_sub_a(self, index: int) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.vv_b_sub_a(index))
        return self

    def vv_max(self, index: int) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.vv_max(index))
        return self

    def vv_mul(self, index: int) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.vv_mul(index))
        return self

    def v_relu(self) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.v_relu())
        return self

    def v_sigm(self) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.v_sigm())
        return self

    def v_tanh(self) -> "ProgramBuilder":
        from . import instructions as ins
        self._pending.append(ins.v_tanh())
        return self

    def end_chain(self) -> "ProgramBuilder":
        self._flush_chain()
        return self

    # -- control -------------------------------------------------------------

    def s_wr(self, reg: ScalarReg, value: int) -> "ProgramBuilder":
        self._flush_chain()
        self._frames[-1].append(SetScalar(ScalarReg(reg), value))
        return self

    def set_rows(self, rows: int) -> "ProgramBuilder":
        """Set the mega-SIMD row multiplier (sugar for ``s_wr(Rows, n)``)."""
        return self.s_wr(ScalarReg.Rows, rows)

    def set_columns(self, columns: int) -> "ProgramBuilder":
        """Set the mega-SIMD column multiplier."""
        return self.s_wr(ScalarReg.Columns, columns)

    @contextlib.contextmanager
    def loop(self, count: Union[int, str]):
        """Open a counted loop; the body is whatever is built inside the
        ``with`` block. ``count`` may be a run-time binding name."""
        self._flush_chain()
        if isinstance(count, int) and count < 0:
            raise IsaError("loop count must be non-negative")
        self._frames.append([])
        try:
            yield self
        finally:
            self._flush_chain()
            body = tuple(self._frames.pop())
            self._frames[-1].append(Loop(count, body))

    def add_chain(self, chain: InstructionChain) -> "ProgramBuilder":
        """Append an already-built chain."""
        self._flush_chain()
        self._frames[-1].append(chain)
        return self

    def build(self) -> NpuProgram:
        """Finalize and return the program."""
        self._flush_chain()
        if len(self._frames) != 1:
            raise IsaError("unclosed loop at build() time")
        return NpuProgram(tuple(self._frames[0]), name=self.name)

    # -- internals -----------------------------------------------------------

    def _begin_chain(self) -> None:
        if self._pending:
            self._flush_chain()

    def _flush_chain(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        try:
            chain = InstructionChain(pending)
        except ChainError as exc:
            raise ChainError(
                f"while building {self.name!r}: {exc}") from exc
        self._frames[-1].append(chain)
