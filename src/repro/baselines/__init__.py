"""Baselines: GPU roofline models and the DeepBench suite definitions."""

from .gpu import (
    P40,
    TITAN_XP,
    GpuCnnModel,
    GpuCnnResult,
    GpuRnnModel,
    GpuRnnResult,
    GpuSpec,
)
from .deepbench import (
    BATCH_SCALING_SUBSET,
    FIG8_BATCH_SIZES,
    PUBLISHED_TABLE5,
    SUITE,
    PublishedRow,
    RnnBenchmark,
    published_row,
)

__all__ = [
    "GpuSpec", "GpuRnnModel", "GpuRnnResult", "GpuCnnModel",
    "GpuCnnResult", "TITAN_XP", "P40", "RnnBenchmark", "PublishedRow",
    "SUITE", "PUBLISHED_TABLE5", "published_row",
    "BATCH_SCALING_SUBSET", "FIG8_BATCH_SIZES",
]
