"""Roofline GPU baseline models (Titan Xp and P40).

The paper compares the BW NPU against DeepBench results on an NVIDIA
Titan Xp (RNN inference, float32) and against TensorRT on a P40
(ResNet-50, INT8). We cannot run those GPUs, so this module implements a
calibrated roofline model reproducing the *mechanisms* behind the
published numbers:

* **Batch-1 RNNs are weight-bandwidth bound** — every timestep re-reads
  all weight matrices from device memory (no on-chip pinning), so
  ``t_step = weights_bytes / achieved_bandwidth + kernel_overhead``.
  ``achieved_bandwidth`` is an *effective* figure fitted to the DeepBench
  measurements (it slightly exceeds DRAM spec because cuDNN fuses gate
  GEMVs and reuses activations through L2).
* **Utilization grows with batch** — the weight traffic of a step is
  shared by the whole batch while compute scales with it, so utilization
  rises roughly linearly in batch size until the compute roof
  (Fig. 8's GPU trend). Compute never reaches peak at these kernel
  shapes; a fitted ``compute_efficiency`` caps it.
* **Per-invocation launch overhead** dominates tiny workloads
  (the paper's GRU h=512 t=1 entry).

Published reference numbers live in :mod:`repro.baselines.deepbench`;
benchmarks report model-vs-published side by side.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """A GPU device model with calibrated roofline parameters."""

    name: str
    peak_tflops: float
    tdp_w: float
    process: str
    numerical_type: str
    bytes_per_weight: float
    #: Effective streaming bandwidth for weight re-reads (GB/s), fitted.
    achieved_bandwidth_gbps: float
    #: Fraction of peak compute achievable on these kernel shapes.
    compute_efficiency: float
    #: Fixed kernel-launch / framework overhead per timestep (s).
    step_overhead_s: float
    #: Fixed per-invocation overhead (s): launch, sync, transfers.
    invocation_overhead_s: float


#: Titan Xp running DeepBench RNN inference in float32 (Table IV).
TITAN_XP = GpuSpec(
    name="Titan Xp", peak_tflops=12.1, tdp_w=250.0, process="TSMC 16nm",
    numerical_type="Float32", bytes_per_weight=4.0,
    achieved_bandwidth_gbps=800.0, compute_efficiency=0.45,
    step_overhead_s=6e-6, invocation_overhead_s=55e-6,
)

#: P40 running ResNet-50 through TensorRT in INT8 (Table VI).
P40 = GpuSpec(
    name="Nvidia P40", peak_tflops=47.0, tdp_w=250.0, process="16nm TSMC",
    numerical_type="INT8", bytes_per_weight=1.0,
    achieved_bandwidth_gbps=346.0, compute_efficiency=0.55,
    step_overhead_s=30e-6, invocation_overhead_s=450e-6,
)


@dataclasses.dataclass(frozen=True)
class GpuRnnResult:
    """GPU RNN inference estimate."""

    spec: GpuSpec
    batch: int
    steps: int
    latency_s: float
    total_ops: float

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def effective_tflops(self) -> float:
        """Per-request effective TFLOPS (ops of one request over wall
        clock), matching the paper's batch-1 reporting."""
        return self.total_ops / self.latency_s / 1e12

    @property
    def batch_tflops(self) -> float:
        """Aggregate TFLOPS across the whole batch."""
        return self.batch * self.total_ops / self.latency_s / 1e12

    @property
    def utilization(self) -> float:
        """Fraction of peak compute achieved across the batch."""
        return self.batch_tflops / self.spec.peak_tflops


class GpuRnnModel:
    """Roofline RNN inference model for one GPU."""

    def __init__(self, spec: GpuSpec = TITAN_XP):
        self.spec = spec

    def step_time_s(self, weight_bytes: float, ops_per_step: float,
                    batch: int = 1) -> float:
        """One timestep: weights stream once for the whole batch; compute
        scales with batch; launch overhead is per step."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        spec = self.spec
        bandwidth_bound = weight_bytes / (spec.achieved_bandwidth_gbps * 1e9)
        compute_bound = (batch * ops_per_step
                         / (spec.peak_tflops * 1e12 * spec.compute_efficiency))
        return max(bandwidth_bound, compute_bound) + spec.step_overhead_s

    def run(self, weight_bytes: float, ops_per_step: float, steps: int,
            batch: int = 1) -> GpuRnnResult:
        """Estimate a full RNN inference."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        latency = (steps * self.step_time_s(weight_bytes, ops_per_step,
                                            batch)
                   + self.spec.invocation_overhead_s)
        return GpuRnnResult(spec=self.spec, batch=batch, steps=steps,
                            latency_s=latency,
                            total_ops=ops_per_step * steps)


@dataclasses.dataclass(frozen=True)
class GpuCnnResult:
    """GPU CNN inference estimate."""

    spec: GpuSpec
    batch: int
    latency_s: float
    total_ops: float

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def ips(self) -> float:
        """Inferences per second at this batch size."""
        return self.batch / self.latency_s


class GpuCnnModel:
    """Saturating-utilization CNN inference model (TensorRT-style).

    Utilization follows ``u(b) = u_max * b / (b + b_half)``: small batches
    underfill the SMs; large batches saturate. Parameters fitted to the
    paper's P40 anchor points (461 IPS @ batch 1, 2270 IPS @ batch 16).
    """

    def __init__(self, spec: GpuSpec = P40, u_max: float = 0.545,
                 b_half: float = 5.82):
        self.spec = spec
        self.u_max = u_max
        self.b_half = b_half

    def utilization(self, batch: int) -> float:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return self.u_max * batch / (batch + self.b_half)

    def run(self, total_ops: float, batch: int = 1) -> GpuCnnResult:
        """Estimate latency of one batch through the network."""
        throughput = (self.spec.peak_tflops * 1e12
                      * self.utilization(batch))
        latency = (batch * total_ops / throughput
                   + self.spec.invocation_overhead_s)
        return GpuCnnResult(spec=self.spec, batch=batch, latency_s=latency,
                            total_ops=total_ops)
