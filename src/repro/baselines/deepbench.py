"""The DeepBench RNN inference suite and the paper's published results.

DeepBench [16] is Baidu's microbenchmark suite of representative DNN
layers; the paper evaluates its GRU/LSTM inference set at batch size 1
(Table V). This module defines the eleven benchmark shapes and records
the paper's published measurements — BW_S10 latency / effective TFLOPS /
utilization, the SDM reference latency, and the Titan Xp comparison — so
the reproduction harness can print model-vs-paper for every cell.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..models.gru import GruShape
from ..models.lstm import LstmShape


@dataclasses.dataclass(frozen=True)
class RnnBenchmark:
    """One DeepBench RNN inference benchmark."""

    kind: str  # "gru" or "lstm"
    hidden_dim: int
    time_steps: int

    def __post_init__(self) -> None:
        if self.kind not in ("gru", "lstm"):
            raise ValueError("kind must be 'gru' or 'lstm'")

    @property
    def name(self) -> str:
        return f"{self.kind.upper()} h={self.hidden_dim} t={self.time_steps}"

    @property
    def input_dim(self) -> int:
        """DeepBench RNN layers use input dimension == hidden dimension."""
        return self.hidden_dim

    def shape(self):
        """Shape metadata object (ops, parameters)."""
        if self.kind == "gru":
            return GruShape(self.hidden_dim, self.input_dim,
                            self.time_steps)
        return LstmShape(self.hidden_dim, self.input_dim, self.time_steps)

    @property
    def ops_per_step(self) -> int:
        return self.shape().ops_per_step

    @property
    def total_ops(self) -> int:
        return self.shape().total_ops

    def weight_bytes(self, bytes_per_weight: float) -> float:
        return self.shape().parameter_count * bytes_per_weight


@dataclasses.dataclass(frozen=True)
class PublishedRow:
    """One row of the paper's Table V (measured results)."""

    benchmark: RnnBenchmark
    sdm_latency_ms: float
    bw_latency_ms: float
    bw_tflops: float
    bw_utilization_pct: float
    gpu_latency_ms: float
    gpu_tflops: float
    gpu_utilization_pct: float


def _b(kind: str, h: int, t: int) -> RnnBenchmark:
    return RnnBenchmark(kind, h, t)


#: The eleven DeepBench RNN inference benchmarks of Table V, in order.
SUITE: List[RnnBenchmark] = [
    _b("gru", 2816, 750),
    _b("gru", 2560, 375),
    _b("gru", 2048, 375),
    _b("gru", 1536, 375),
    _b("gru", 1024, 1500),
    _b("gru", 512, 1),
    _b("lstm", 2048, 25),
    _b("lstm", 1536, 50),
    _b("lstm", 1024, 25),
    _b("lstm", 512, 25),
    _b("lstm", 256, 150),
]

#: Table V as published (SDM / BW_S10 / Titan Xp).
PUBLISHED_TABLE5: List[PublishedRow] = [
    PublishedRow(_b("gru", 2816, 750), 1.581, 1.987, 35.92, 74.8,
                 178.60, 0.40, 3.3),
    PublishedRow(_b("gru", 2560, 375), 0.661, 0.993, 29.69, 61.8,
                 74.62, 0.40, 3.3),
    PublishedRow(_b("gru", 2048, 375), 0.438, 0.954, 19.79, 41.2,
                 51.59, 0.37, 3.0),
    PublishedRow(_b("gru", 1536, 375), 0.266, 0.951, 11.17, 23.3,
                 31.73, 0.33, 2.8),
    PublishedRow(_b("gru", 1024, 1500), 0.558, 3.792, 4.98, 10.4,
                 59.51, 0.32, 2.6),
    PublishedRow(_b("gru", 512, 1), 0.00017, 0.013, 0.25, 0.5,
                 0.06, 0.05, 0.4),
    PublishedRow(_b("lstm", 2048, 25), 0.037, 0.074, 22.62, 47.1,
                 5.27, 0.32, 2.7),
    PublishedRow(_b("lstm", 1536, 50), 0.043, 0.145, 13.01, 27.1,
                 6.20, 0.30, 2.5),
    PublishedRow(_b("lstm", 1024, 25), 0.011, 0.074, 5.68, 11.8,
                 1.87, 0.22, 1.9),
    PublishedRow(_b("lstm", 512, 25), 0.0038, 0.077, 1.37, 2.8,
                 1.26, 0.08, 0.7),
    PublishedRow(_b("lstm", 256, 150), 0.0126, 0.425, 0.37, 0.8,
                 1.99, 0.08, 0.7),
]


def published_row(benchmark: RnnBenchmark) -> Optional[PublishedRow]:
    """Look up the published Table V row for a benchmark."""
    for row in PUBLISHED_TABLE5:
        if row.benchmark == benchmark:
            return row
    return None


#: Large-RNN subset used for the batch-scaling study (Fig. 8 uses the
#: bigger layers, where the GPU trend is cleanest).
BATCH_SCALING_SUBSET: List[RnnBenchmark] = [
    _b("gru", 2816, 750),
    _b("gru", 2560, 375),
    _b("lstm", 2048, 25),
    _b("lstm", 1536, 50),
]

#: Batch sizes reported in Fig. 8 (DeepBench caps inference batching at
#: 4; 32 is shown as a what-if comparison point).
FIG8_BATCH_SIZES = (1, 2, 4, 32)
