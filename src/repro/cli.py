"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``configs`` — list the published NPU instances and their derived
  parameters;
* ``experiment <id|all>`` — run an experiment driver and print its
  table (``table1``, ``table5``, ``fig8``, ...);
* ``time <kind> <hidden> <steps>`` — latency/throughput of one RNN on a
  configuration;
* ``disassemble <kind> <hidden>`` — print the generated NPU program;
* ``serve-faults`` — availability/goodput/latency of replicated
  microservice serving under injected faults;
* ``serve-batch`` — calibrate a batch service-time curve from the real
  batched replay path, then sweep goodput at a fixed p99 SLO: batch-1
  vs SLO-aware dynamic batching (docs/SERVING.md);
* ``monitor <scenario|all>`` — run a chaos scenario with the fleet
  monitoring plane attached: text/HTML dashboard, SLO burn-rate
  alerts, Prometheus export, and a detection scorecard with optional
  precision/recall/MTTD gates;
* ``trace <workload>`` — run a workload with :mod:`repro.obs` tracing
  and write a Chrome/Perfetto ``trace.json`` plus a metrics summary;
* ``fuzz`` — differential conformance fuzzing of the ISA executors
  (reference interpreter, both simulator paths, compiled replay, and
  batched replay; see docs/TESTING.md);
* ``bench`` — run the perf suite (quick or full) and gate on the
  headline speedups, optionally emitting the JSON payload;
* ``numerics-sweep`` — accuracy-vs-storage Pareto sweep across the BFP
  / Microscaling format family (docs/NUMERICS.md);
* ``specialize <kind> <hidden> <device>`` — best synthesis-specialized
  instance for a model on a device.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import STANDARD_CONFIGS
from .errors import ReproError


def _cmd_configs(_args) -> int:
    header = (f"{'name':<12} {'tiles':>5} {'lanes':>5} {'N':>5} "
              f"{'MRF':>5} {'MACs':>7} {'MHz':>5} {'TFLOPS':>7} "
              f"{'precision':<16} device")
    print(header)
    print("-" * len(header))
    for cfg in STANDARD_CONFIGS.values():
        print(f"{cfg.name:<12} {cfg.tile_engines:>5} {cfg.lanes:>5} "
              f"{cfg.native_dim:>5} {cfg.mrf_size:>5} "
              f"{cfg.total_macs:>7} {cfg.clock_mhz:>5.0f} "
              f"{cfg.peak_tflops:>7.1f} {cfg.precision_name:<16} "
              f"{cfg.device}")
    return 0


def _cmd_experiment(args) -> int:
    from .harness import ALL_EXPERIMENTS
    if args.id == "all":
        names = sorted(ALL_EXPERIMENTS)
    elif args.id in ALL_EXPERIMENTS:
        names = [args.id]
    else:
        print(f"unknown experiment {args.id!r}; available: "
              f"{', '.join(sorted(ALL_EXPERIMENTS))} or 'all'",
              file=sys.stderr)
        return 2
    for name in names:
        print(ALL_EXPERIMENTS[name]().render())
        print()
    return 0


def _resolve_config(name: str):
    if name not in STANDARD_CONFIGS:
        raise ReproError(
            f"unknown config {name!r}; available: "
            f"{', '.join(STANDARD_CONFIGS)}")
    return STANDARD_CONFIGS[name]


def _cmd_time(args) -> int:
    from .compiler.lowering import compile_rnn_shape
    from .timing import TimingSimulator
    config = _resolve_config(args.config)
    compiled = compile_rnn_shape(args.kind, args.hidden, config)
    report = TimingSimulator(config).run(
        compiled.program, bindings={"steps": args.steps},
        nominal_ops=args.steps * compiled.ops_per_step)
    print(f"{args.kind.upper()} h={args.hidden} t={args.steps} on "
          f"{config.name}:")
    print(f"  latency:    {report.latency_ms:.4f} ms "
          f"({report.total_cycles:.0f} cycles)")
    print(f"  throughput: {report.effective_tflops:.2f} effective "
          f"TFLOPS ({100 * report.utilization:.1f}% of peak)")
    print(f"  MVM busy:   {100 * report.mvm_occupancy:.1f}% of cycles")
    return 0


def _cmd_disassemble(args) -> int:
    from .compiler.lowering import compile_rnn_shape
    from .isa import format_program
    config = _resolve_config(args.config)
    compiled = compile_rnn_shape(args.kind, args.hidden, config)
    sys.stdout.write(format_program(compiled.program))
    return 0


def _cmd_serve_faults(args) -> int:
    from .harness.experiments import slo_under_faults
    table = slo_under_faults(requests=args.requests,
                             rate_rps=args.rate,
                             transient_prob=args.transient,
                             replicas=args.replicas, seed=args.seed)
    print(table.render())
    return 0


def _cmd_serve_batch(args) -> int:
    import json

    from .compiler.lowering import compile_gru, compile_lstm
    from .obs import Metrics, render_prometheus
    from .models.gru import GruReference
    from .models.lstm import LstmReference
    from .system.batching import (calibrate_batch_curve,
                                  render_slo_sweep, slo_sweep)
    config = _resolve_config(args.config)
    if args.kind == "lstm":
        model = compile_lstm(LstmReference(hidden_dim=args.hidden,
                                           seed=7), config)
    else:
        model = compile_gru(GruReference(hidden_dim=args.hidden,
                                         seed=7), config)
    if args.quick:
        batches, steps, repeats = (1, 4, 8, 16), 4, 2
        requests, fracs = 600, (0.8, 2.0, 3.0)
    else:
        batches, steps, repeats = (1, 2, 4, 8, 16), 8, 3
        requests, fracs = 2000, (0.5, 1.0, 1.8, 2.5, 3.2, 4.0)
    curve = calibrate_batch_curve(model, batches=batches, steps=steps,
                                  repeats=repeats)
    t1 = curve(1)
    metrics = Metrics()
    payload = slo_sweep(curve, slo_s=args.slo_multiple * t1,
                        rates_rps=[f / t1 for f in fracs],
                        requests=requests, max_batch=args.max_batch,
                        seed=args.seed, metrics=metrics)
    payload["workload"] = {"kind": args.kind, "hidden": args.hidden,
                           "config": config.name}
    print(f"{args.kind} h={args.hidden} on {config.name}: measured "
          f"batch-1 service {t1 * 1e3:.3f} ms")
    print(render_slo_sweep(payload))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(render_prometheus(metrics=metrics))
        print(f"wrote {args.prom}")
    if args.min_goodput_ratio is not None \
            and payload["goodput_ratio"] < args.min_goodput_ratio:
        print(f"FAIL: goodput ratio {payload['goodput_ratio']:.2f}x "
              f"below the {args.min_goodput_ratio}x floor",
              file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    from .system.chaos import SCENARIOS, chaos_suite, run_chaos_scenario
    from .system.cluster import ClusterSpec
    spec = ClusterSpec(racks=args.racks,
                       nodes_per_rack=args.nodes_per_rack)
    if args.scenario == "all":
        table = chaos_suite(requests=args.requests, seed=args.seed,
                            spec=spec)
        print(table.render())
        if args.min_availability is None:
            return 0
        ok = True
        for name in sorted(SCENARIOS):
            res = run_chaos_scenario(name, spec=spec,
                                     requests=args.requests,
                                     seed=args.seed, mitigated=True)
            if res.availability < args.min_availability:
                ok = False
                print(f"FLOOR VIOLATED: {name} availability "
                      f"{res.availability:.4f} < "
                      f"{args.min_availability}")
        return 0 if ok else 1
    ok = True
    for mitigated in ((True,) if args.no_ablation else (True, False)):
        res = run_chaos_scenario(args.scenario, spec=spec,
                                 requests=args.requests,
                                 seed=args.seed, mitigated=mitigated)
        stack = "mitigated" if mitigated else "ablated"
        print(f"--- {args.scenario} ({stack}) ---")
        print(res.render())
        if mitigated and args.min_availability is not None \
                and res.availability < args.min_availability:
            ok = False
            print(f"FLOOR VIOLATED: availability "
                  f"{res.availability:.4f} < {args.min_availability}")
    return 0 if ok else 1


def _monitor_out_path(path: str, name: str, many: bool) -> str:
    if not many:
        return path
    root, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}-{name}"
    return f"{root}-{name}.{ext}"


def _cmd_monitor(args) -> int:
    import math

    from .obs import (render_html_dashboard, render_text_dashboard,
                      write_prometheus)
    from .system.chaos import SCENARIOS
    from .system.cluster import ClusterSpec
    from .system.monitor import run_monitored_scenario
    spec = ClusterSpec(racks=args.racks,
                       nodes_per_rack=args.nodes_per_rack)
    names = sorted(SCENARIOS) if args.scenario == "all" \
        else [args.scenario]
    many = len(names) > 1
    ok = True
    for name in names:
        run = run_monitored_scenario(
            name, spec=spec, requests=args.requests, seed=args.seed,
            mitigated=not args.ablated, windows=args.windows)
        print(render_text_dashboard(
            run.store, incidents=run.incidents, faults=run.faults,
            scorecard=run.scorecard,
            title=f"{name} ({run.stack}): {args.requests} requests, "
                  f"seed {args.seed}"))
        print()
        if args.html:
            path = _monitor_out_path(args.html, name, many)
            with open(path, "w") as fh:
                fh.write(render_html_dashboard(
                    run.store, incidents=run.incidents,
                    faults=run.faults, scorecard=run.scorecard,
                    title=f"{name} ({run.stack})"))
            print(f"wrote HTML dashboard to {path}")
        if args.prom:
            path = _monitor_out_path(args.prom, name, many)
            write_prometheus(path, store=run.store)
            print(f"wrote Prometheus text exposition to {path}")
        card = run.scorecard
        if args.min_precision is not None \
                and card.precision < args.min_precision:
            ok = False
            print(f"GATE VIOLATED: {name} precision "
                  f"{card.precision:.2f} < {args.min_precision}")
        if args.min_recall is not None \
                and card.recall < args.min_recall:
            ok = False
            print(f"GATE VIOLATED: {name} recall "
                  f"{card.recall:.2f} < {args.min_recall}")
        if args.max_mttd is not None and card.faults \
                and (math.isnan(card.mttd_s)
                     or card.mttd_s > args.max_mttd):
            ok = False
            print(f"GATE VIOLATED: {name} MTTD "
                  f"{card.mttd_s:.3f} s > {args.max_mttd} s")
    return 0 if ok else 1


def _finish_trace(args, tracer, metrics) -> None:
    from .obs import summarize, to_jsonl, write_chrome_trace
    count = write_chrome_trace(args.out, tracer)
    print(f"\nwrote {count} trace events to {args.out} "
          f"(load in chrome://tracing or https://ui.perfetto.dev)")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            fh.write(to_jsonl(tracer) + "\n")
        print(f"wrote event dump to {args.jsonl}")
    print()
    print(summarize(tracer, metrics))


def _trace_rnn(args) -> int:
    from .compiler.lowering import compile_rnn_shape
    from .obs import Metrics, Tracer
    from .timing import (TimingSimulator, build_hdd_tree, occupancy,
                         occupancy_from_trace)
    config = _resolve_config(args.config)
    hidden = args.hidden if args.hidden is not None else 512
    steps = args.steps if args.steps is not None else 10
    compiled = compile_rnn_shape(args.workload, hidden, config)
    tracer = Tracer(unit="cycles")
    metrics = Metrics()
    sim = TimingSimulator(config, record_chains=True, tracer=tracer,
                          metrics=metrics)
    report = sim.run(compiled.program, bindings={"steps": steps},
                     nominal_ops=steps * compiled.ops_per_step)
    build_hdd_tree(config).annotate(metrics)
    occ_report = occupancy(report)
    occ_trace = occupancy_from_trace(tracer)
    print(f"{args.workload.upper()} h={hidden} t={steps} on "
          f"{config.name}: {report.latency_ms:.4f} ms")
    print(f"  occupancy (report): {occ_report.render()}")
    print(f"  occupancy (trace):  {occ_trace.render()}")
    match = occ_report.mvm_occupancy == occ_trace.mvm_occupancy
    print(f"  trace/report MVM occupancy match: "
          f"{'yes' if match else 'NO'}")
    _finish_trace(args, tracer, metrics)
    return 0 if match else 1


def _trace_serving(args) -> int:
    from .compiler.lowering import compile_rnn_shape
    from .obs import Metrics, Tracer
    from .system import (FaultEvent, FaultInjector, FaultProfile,
                         FpgaNode, HardwareMicroservice,
                         MicroserviceRegistry, ResilientClient,
                         RetryPolicy, poisson_arrivals,
                         run_fault_scenario)
    config = _resolve_config(args.config)
    hidden = args.hidden if args.hidden is not None else 512
    steps = args.steps if args.steps is not None else 50
    compiled = compile_rnn_shape("lstm", hidden, config)
    tracer = Tracer(unit="s")
    metrics = Metrics()
    profile = FaultProfile(
        transient_failure_prob=args.transient, tail_spike_prob=0.01,
        tail_spike_multiplier=8.0, packet_loss_prob=0.01)
    injector = FaultInjector(profile, seed=args.seed + 1)
    registry = MicroserviceRegistry(failure_threshold=3,
                                    recovery_timeout_s=25e-3,
                                    tracer=tracer, metrics=metrics)
    for i in range(args.replicas):
        registry.publish_replica(HardwareMicroservice(
            "lstm", FpgaNode(f"lstm-{i}", compiled),
            injector=injector))
    policy = RetryPolicy(max_attempts=4, deadline_s=20e-3,
                         hedge_after_s=2.5e-3)
    client = ResilientClient(registry, policy, seed=args.seed + 2,
                             tracer=tracer, metrics=metrics)
    arrivals = poisson_arrivals(args.rate, args.requests,
                                seed=args.seed)
    duration = args.requests / args.rate
    # One replica crashes a quarter into the run and is repaired at
    # the midpoint, exercising breaker open/half-open/close events.
    events = [FaultEvent(0.25 * duration, "crash", "lstm-0"),
              FaultEvent(0.50 * duration, "repair", "lstm-0")]
    result = run_fault_scenario(client, "lstm", arrivals, steps=steps,
                                injector=injector, events=events,
                                tracer=tracer, metrics=metrics)
    print(f"serve-faults: LSTM h={hidden} t={steps}, "
          f"{args.requests} requests at {args.rate:.0f}/s, "
          f"{args.replicas} replicas")
    print(f"  availability: {100 * result.availability:.3f}%  "
          f"p50 {result.p50_ms:.2f} ms  p99 {result.p99_ms:.2f} ms  "
          f"mean attempts {result.mean_attempts:.2f}  "
          f"hedges {result.hedged}")
    _finish_trace(args, tracer, metrics)
    return 0


def _cmd_trace(args) -> int:
    if args.workload == "serve-faults":
        return _trace_serving(args)
    return _trace_rnn(args)


def _cmd_fuzz(args) -> int:
    from .verify import (FUZZ_CONFIGS, PROFILES, replay_corpus, run_fuzz)
    if args.replay is not None:
        report = replay_corpus(args.replay,
                               check_timing=not args.no_timing)
        print(report.render())
        return 0 if report.ok else 1
    config = FUZZ_CONFIGS[args.config] if args.config else None
    progress = None
    if args.progress:
        def progress(done, total):
            if done % 50 == 0 or done == total:
                print(f"  {done}/{total} cases", file=sys.stderr)
    report = run_fuzz(seed=args.seed, iterations=args.iterations,
                      profile=PROFILES[args.profile], config=config,
                      corpus_dir=args.corpus_dir,
                      shrink=not args.no_shrink,
                      check_timing=not args.no_timing,
                      progress=progress)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    import json

    from .harness.perf import (headline_gates, render_table,
                               results_from_json, run_suite)
    quick = args.mode == "quick"
    payload = run_suite(quick=quick)
    results = results_from_json(payload)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_table(results))
        print()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
        if not args.json:
            print(f"wrote {args.output}")
    head = payload["headline"]
    workload = (f"headline {head['kind']} h={head['hidden']} on "
                f"{head['config']}")
    rc = 0
    for label, speedup, floor in headline_gates(results, quick):
        if speedup is None:
            print(f"{workload}: {label} missing from results",
                  file=sys.stderr)
            rc = max(rc, 2)
            continue
        if not args.json:
            print(f"{workload}: {label} is {speedup:.2f}x "
                  f"(floor {floor}x)")
        if speedup < floor:
            print(f"FAIL: {label} below the {floor}x floor",
                  file=sys.stderr)
            rc = max(rc, 1)
    return rc


def _cmd_numerics_sweep(args) -> int:
    import json

    from .numerics import (FORMAT_FAMILY, named_format, pareto_front,
                           render_pareto_table, sweep_formats)
    if args.formats:
        formats = {name: named_format(name) for name in args.formats}
    else:
        formats = dict(FORMAT_FAMILY)
    points = sweep_formats(formats, rows=args.rows, width=args.width,
                           seed=args.seed)
    payload = {
        "workload": {"rows": args.rows, "width": args.width,
                     "seed": args.seed},
        "points": [p.as_dict() for p in points],
        "pareto_front": [p.key for p in pareto_front(points)],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_pareto_table(points))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(json.dumps(payload, indent=2) + "\n")
        if not args.json:
            print(f"wrote {args.output}")
    return 0


def _cmd_specialize(args) -> int:
    from .synthesis import best_config, device_by_name, rnn_requirements
    try:
        device = device_by_name(args.device)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    req = rnn_requirements(args.kind, args.hidden)
    cand = best_config(req, device)
    cfg = cand.config
    print(f"best instance for {args.kind.upper()}-{args.hidden} on "
          f"{device.name}:")
    print(f"  native_dim={cfg.native_dim} lanes={cfg.lanes} "
          f"tiles={cfg.tile_engines} mrf={cfg.mrf_size}")
    print(f"  {cand.effective_tflops:.1f} effective TFLOPS "
          f"({100 * cand.padding_efficiency:.0f}% padding efficiency)")
    print(f"  {cand.resources.summary()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Brainwave NPU reproduction (ISCA 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("configs", help="list the published NPU instances") \
        .set_defaults(func=_cmd_configs)

    p = sub.add_parser("experiment",
                       help="run an experiment driver (or 'all')")
    p.add_argument("id")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("time", help="time an RNN on a configuration")
    p.add_argument("kind", choices=["lstm", "gru"])
    p.add_argument("hidden", type=int)
    p.add_argument("steps", type=int)
    p.add_argument("--config", default="BW_S10",
                   choices=sorted(STANDARD_CONFIGS))
    p.set_defaults(func=_cmd_time)

    p = sub.add_parser("disassemble",
                       help="print the generated NPU program")
    p.add_argument("kind", choices=["lstm", "gru"])
    p.add_argument("hidden", type=int)
    p.add_argument("--config", default="BW_S10",
                   choices=sorted(STANDARD_CONFIGS))
    p.set_defaults(func=_cmd_disassemble)

    p = sub.add_parser("serve-faults",
                       help="fault-tolerant serving scenario: replicas, "
                            "retries, hedging vs a naive client")
    p.add_argument("--requests", type=int, default=3000)
    p.add_argument("--rate", type=float, default=400.0,
                   help="Poisson arrival rate (req/s)")
    p.add_argument("--transient", type=float, default=0.02,
                   help="per-invocation transient failure probability")
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_serve_faults)

    p = sub.add_parser(
        "serve-batch",
        help="calibrate a batch service-time curve and sweep goodput "
             "at a fixed p99 SLO: batch-1 vs dynamic batching")
    p.add_argument("kind", nargs="?", default="lstm",
                   choices=["lstm", "gru"])
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument("--config", default="BW_S10",
                   choices=sorted(STANDARD_CONFIGS))
    p.add_argument("--quick", action="store_true",
                   help="smaller calibration + sweep (CI smoke)")
    p.add_argument("--slo-multiple", type=float, default=8.0,
                   help="p99 SLO as a multiple of batch-1 service time")
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--min-goodput-ratio", type=float, default=None,
                   metavar="X",
                   help="exit 1 if dynamic/batch-1 goodput falls below")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write the sweep payload as JSON")
    p.add_argument("--prom", default=None, metavar="PATH",
                   help="write a Prometheus text exposition")
    p.set_defaults(func=_cmd_serve_batch)

    p = sub.add_parser(
        "chaos",
        help="run cluster chaos scenarios (mitigated vs ablated)")
    p.add_argument("scenario",
                   choices=["all", "overload", "partition",
                            "rack_loss", "rolling_slow"])
    p.add_argument("--requests", type=int, default=50_000,
                   help="simulated requests per scenario")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--racks", type=int, default=4)
    p.add_argument("--nodes-per-rack", type=int, default=6)
    p.add_argument("--min-availability", type=float, default=None,
                   metavar="FRAC",
                   help="exit 1 if any mitigated run falls below")
    p.add_argument("--no-ablation", action="store_true",
                   help="skip the no-mitigation baseline run")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "monitor",
        help="run a chaos scenario with the fleet monitoring plane: "
             "dashboard, alerts, detection scorecard")
    p.add_argument("scenario",
                   choices=["all", "overload", "partition",
                            "rack_loss", "rolling_slow"])
    p.add_argument("--requests", type=int, default=50_000,
                   help="simulated requests per scenario")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--racks", type=int, default=4)
    p.add_argument("--nodes-per-rack", type=int, default=6)
    p.add_argument("--windows", type=int, default=256,
                   help="time-series windows spanning the run")
    p.add_argument("--ablated", action="store_true",
                   help="run without the mitigation stack")
    p.add_argument("--html", default=None, metavar="PATH",
                   help="write an HTML fleet dashboard")
    p.add_argument("--prom", default=None, metavar="PATH",
                   help="write a Prometheus text exposition")
    p.add_argument("--min-precision", type=float, default=None,
                   metavar="FRAC",
                   help="exit 1 if detection precision falls below")
    p.add_argument("--min-recall", type=float, default=None,
                   metavar="FRAC",
                   help="exit 1 if detection recall falls below")
    p.add_argument("--max-mttd", type=float, default=None,
                   metavar="SECONDS",
                   help="exit 1 if mean time-to-detect exceeds")
    p.set_defaults(func=_cmd_monitor)

    p = sub.add_parser(
        "trace",
        help="run a workload traced end-to-end and write a "
             "Chrome/Perfetto trace.json + metrics summary")
    p.add_argument("workload", choices=["lstm", "gru", "serve-faults"])
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace-event JSON output path")
    p.add_argument("--jsonl", default=None,
                   help="optional JSONL raw event dump path")
    p.add_argument("--config", default="BW_S10",
                   choices=sorted(STANDARD_CONFIGS))
    p.add_argument("--hidden", type=int, default=None,
                   help="hidden dim (default 512)")
    p.add_argument("--steps", type=int, default=None,
                   help="timesteps (default: 10 rnn, 50 serving)")
    p.add_argument("--requests", type=int, default=400)
    p.add_argument("--rate", type=float, default=400.0,
                   help="Poisson arrival rate (req/s, serve-faults)")
    p.add_argument("--transient", type=float, default=0.02,
                   help="transient failure probability (serve-faults)")
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing: random ISA programs on "
             "the reference interpreter vs both simulator paths, "
             "compiled replay, and batched replay")
    p.add_argument("--seed", type=int, default=0,
                   help="first case seed (campaign runs seed..seed+n-1)")
    p.add_argument("--iterations", type=int, default=100,
                   help="number of cases to generate and compare")
    from .verify.generator import FUZZ_CONFIGS, PROFILES
    p.add_argument("--profile", default="default",
                   choices=sorted(PROFILES),
                   help="opcode-weight profile ('formats' draws from "
                        "the Microscaling format-family pool)")
    p.add_argument("--config", default=None,
                   choices=sorted(FUZZ_CONFIGS),
                   help="pin one fuzz configuration (default: per-seed "
                        "draw from the profile's pool)")
    p.add_argument("--corpus-dir", default=None,
                   help="archive shrunk failing cases into this directory")
    p.add_argument("--replay", default=None, metavar="DIR",
                   help="replay archived corpus cases instead of fuzzing")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without minimizing them")
    p.add_argument("--no-timing", action="store_true",
                   help="skip scheduler timing invariants")
    p.add_argument("--progress", action="store_true",
                   help="print progress to stderr")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "bench",
        help="run the perf suite and gate on the headline speedups "
             "(vectorized vs naive, compiled replay, batched replay)")
    p.add_argument("mode", nargs="?", default="quick",
                   choices=["quick", "full"],
                   help="workload sizes: quick CI smoke or the full "
                        "BENCH_perf.json suite")
    p.add_argument("--json", action="store_true",
                   help="print the result payload as JSON instead of "
                        "the table")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="also write the JSON payload to this path")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "numerics-sweep",
        help="accuracy-vs-storage Pareto sweep across the BFP / "
             "Microscaling format family")
    p.add_argument("--formats", nargs="*", default=None, metavar="NAME",
                   help="format-family names to sweep (default: all; "
                        "see repro.numerics.FORMAT_FAMILY)")
    p.add_argument("--rows", type=int, default=64,
                   help="matrix rows in the synthetic workload")
    p.add_argument("--width", type=int, default=256,
                   help="matrix/vector width in the synthetic workload")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="print the payload as JSON instead of the table")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="also write the JSON payload to this path")
    p.set_defaults(func=_cmd_numerics_sweep)

    p = sub.add_parser("specialize",
                       help="pick the best instance for a model")
    p.add_argument("kind", choices=["lstm", "gru"])
    p.add_argument("hidden", type=int)
    p.add_argument("device")
    p.set_defaults(func=_cmd_specialize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
