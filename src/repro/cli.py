"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``configs`` — list the published NPU instances and their derived
  parameters;
* ``experiment <id|all>`` — run an experiment driver and print its
  table (``table1``, ``table5``, ``fig8``, ...);
* ``time <kind> <hidden> <steps>`` — latency/throughput of one RNN on a
  configuration;
* ``disassemble <kind> <hidden>`` — print the generated NPU program;
* ``serve-faults`` — availability/goodput/latency of replicated
  microservice serving under injected faults;
* ``specialize <kind> <hidden> <device>`` — best synthesis-specialized
  instance for a model on a device.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import STANDARD_CONFIGS
from .errors import ReproError


def _cmd_configs(_args) -> int:
    header = (f"{'name':<12} {'tiles':>5} {'lanes':>5} {'N':>5} "
              f"{'MRF':>5} {'MACs':>7} {'MHz':>5} {'TFLOPS':>7} "
              f"{'precision':<16} device")
    print(header)
    print("-" * len(header))
    for cfg in STANDARD_CONFIGS.values():
        print(f"{cfg.name:<12} {cfg.tile_engines:>5} {cfg.lanes:>5} "
              f"{cfg.native_dim:>5} {cfg.mrf_size:>5} "
              f"{cfg.total_macs:>7} {cfg.clock_mhz:>5.0f} "
              f"{cfg.peak_tflops:>7.1f} {cfg.precision_name:<16} "
              f"{cfg.device}")
    return 0


def _cmd_experiment(args) -> int:
    from .harness import ALL_EXPERIMENTS
    if args.id == "all":
        names = sorted(ALL_EXPERIMENTS)
    elif args.id in ALL_EXPERIMENTS:
        names = [args.id]
    else:
        print(f"unknown experiment {args.id!r}; available: "
              f"{', '.join(sorted(ALL_EXPERIMENTS))} or 'all'",
              file=sys.stderr)
        return 2
    for name in names:
        print(ALL_EXPERIMENTS[name]().render())
        print()
    return 0


def _resolve_config(name: str):
    if name not in STANDARD_CONFIGS:
        raise ReproError(
            f"unknown config {name!r}; available: "
            f"{', '.join(STANDARD_CONFIGS)}")
    return STANDARD_CONFIGS[name]


def _cmd_time(args) -> int:
    from .compiler.lowering import compile_rnn_shape
    from .timing import TimingSimulator
    config = _resolve_config(args.config)
    compiled = compile_rnn_shape(args.kind, args.hidden, config)
    report = TimingSimulator(config).run(
        compiled.program, bindings={"steps": args.steps},
        nominal_ops=args.steps * compiled.ops_per_step)
    print(f"{args.kind.upper()} h={args.hidden} t={args.steps} on "
          f"{config.name}:")
    print(f"  latency:    {report.latency_ms:.4f} ms "
          f"({report.total_cycles:.0f} cycles)")
    print(f"  throughput: {report.effective_tflops:.2f} effective "
          f"TFLOPS ({100 * report.utilization:.1f}% of peak)")
    print(f"  MVM busy:   {100 * report.mvm_occupancy:.1f}% of cycles")
    return 0


def _cmd_disassemble(args) -> int:
    from .compiler.lowering import compile_rnn_shape
    from .isa import format_program
    config = _resolve_config(args.config)
    compiled = compile_rnn_shape(args.kind, args.hidden, config)
    sys.stdout.write(format_program(compiled.program))
    return 0


def _cmd_serve_faults(args) -> int:
    from .harness.experiments import slo_under_faults
    table = slo_under_faults(requests=args.requests,
                             rate_rps=args.rate,
                             transient_prob=args.transient,
                             replicas=args.replicas, seed=args.seed)
    print(table.render())
    return 0


def _cmd_specialize(args) -> int:
    from .synthesis import best_config, device_by_name, rnn_requirements
    try:
        device = device_by_name(args.device)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    req = rnn_requirements(args.kind, args.hidden)
    cand = best_config(req, device)
    cfg = cand.config
    print(f"best instance for {args.kind.upper()}-{args.hidden} on "
          f"{device.name}:")
    print(f"  native_dim={cfg.native_dim} lanes={cfg.lanes} "
          f"tiles={cfg.tile_engines} mrf={cfg.mrf_size}")
    print(f"  {cand.effective_tflops:.1f} effective TFLOPS "
          f"({100 * cand.padding_efficiency:.0f}% padding efficiency)")
    print(f"  {cand.resources.summary()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Brainwave NPU reproduction (ISCA 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("configs", help="list the published NPU instances") \
        .set_defaults(func=_cmd_configs)

    p = sub.add_parser("experiment",
                       help="run an experiment driver (or 'all')")
    p.add_argument("id")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("time", help="time an RNN on a configuration")
    p.add_argument("kind", choices=["lstm", "gru"])
    p.add_argument("hidden", type=int)
    p.add_argument("steps", type=int)
    p.add_argument("--config", default="BW_S10",
                   choices=sorted(STANDARD_CONFIGS))
    p.set_defaults(func=_cmd_time)

    p = sub.add_parser("disassemble",
                       help="print the generated NPU program")
    p.add_argument("kind", choices=["lstm", "gru"])
    p.add_argument("hidden", type=int)
    p.add_argument("--config", default="BW_S10",
                   choices=sorted(STANDARD_CONFIGS))
    p.set_defaults(func=_cmd_disassemble)

    p = sub.add_parser("serve-faults",
                       help="fault-tolerant serving scenario: replicas, "
                            "retries, hedging vs a naive client")
    p.add_argument("--requests", type=int, default=3000)
    p.add_argument("--rate", type=float, default=400.0,
                   help="Poisson arrival rate (req/s)")
    p.add_argument("--transient", type=float, default=0.02,
                   help="per-invocation transient failure probability")
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_serve_faults)

    p = sub.add_parser("specialize",
                       help="pick the best instance for a model")
    p.add_argument("kind", choices=["lstm", "gru"])
    p.add_argument("hidden", type=int)
    p.add_argument("device")
    p.set_defaults(func=_cmd_specialize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
