"""Compiled program replay: flat execution plans over a resident model.

The functional executor interprets an :class:`~repro.isa.program.NpuProgram`
event by event — every timestep of an RNN re-decodes the same operand
indices, re-validates the same chains, and re-hashes the same weight
windows through the LRU caches. For the paper's serving model (one
resident model, a stream of low-latency requests) that per-dispatch
Python overhead dominates once the numeric kernels are vectorized.

This module compiles a program **once** into a flat :class:`ReplayPlan`:

* loops unrolled into a linear step list, scalar control flow folded to
  compile-time constants (``s_wr`` becomes a static plan entry);
* operand addresses resolved to pre-bound numpy views of the register
  files (valid forever: VRF/MRF storage is allocated once and written
  in place);
* ``mv_mul`` weight windows pre-decomposed into the executor's BFP
  operand layout, revalidated cheaply against the MRF ``generation``
  counter so ``m_wr``/``load_matrix`` between (or during) runs recompile
  nothing but rebind the weights;
* consecutive ``mv_mul`` chains reading the *same* VRF head fused into
  one stacked GEMV (:class:`_MvGroup`) — the LSTM's four gate matrices
  against one input vector become one matmul — legal only on the
  exact-integer mantissa paths, where the stacked dot products are
  bit-identical to the per-chain ones.

:class:`ReplayExecutor` then runs the plan as a tight loop with no
decode, no validation, and no cache hashing; per-run statistics and the
trace clock are applied as precomputed totals (or emitted live when a
tracer/metrics sink is attached — the observed replay produces the
*same* spans and counters as the interpreter). :class:`BatchedReplay`
runs B independent requests through one plan by stacking every piece of
architectural state along a new leading batch axis; the quantize,
GEMV, and pointwise kernels all vectorize batch-wise, and on the
exact-integer paths the batched results are bit-identical to B
sequential runs.

Bit-exactness contract (checked by the four-way differential fuzzer in
:mod:`repro.verify` and by ``tests/test_replay_equivalence.py``):
compiled output state, outputs, ``ExecutionStats``, op counters, and
trace spans equal the vectorized interpreter's exactly. Statically
invalid constructs (out-of-bounds operands, over-capacity chains)
compile into *fallback steps* that delegate to the interpreter so error
types, positions, and partial side effects match; a plan whose fallback
steps stem from such a definitely-raising event is not batchable and
:class:`BatchedReplay` rejects it with
:class:`~repro.errors.UnbatchablePlanError` naming the offending step
kinds (``ReplayPlan.fallback_step_kinds``). *Loopable* fallback steps —
statically valid chains forced to interpretation via
``compile_plan(..., force_fallback=...)`` — stay batchable: the batched
replayer swaps each request's architectural state into the base
simulator, interprets the step, and harvests the state back, still bit
identical to sequential runs. One intentional divergence: on a run
that raises, the compiled path's stats/clock/scalar registers may lag
the interpreter's (totals are applied at successful completion) —
differential comparisons only inspect state when no engine raised.
"""

from __future__ import annotations

import collections
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ChainCapacityError, ExecutionError, MemoryError_, \
    NetworkQueueEmptyError, UnbatchablePlanError
from ..isa.chain import InstructionChain
from ..isa.memspace import MemId, ScalarReg
from ..isa.opcodes import Opcode
from ..isa.program import NpuProgram, SetScalar
from ..memory.regfile import MatrixRegisterFile
from ..numerics.bfp import decompose, quantize, scales_of, to_float16
from . import ops

# Piece kinds inside a compiled vector step (dispatch tags).
_MV, _BIN, _UN, _WR_VRF, _WR_NETQ, _WR_DRAM = range(6)
# Head kinds.
_H_VRF, _H_NETQ, _H_DRAM = range(3)
# mv_mul compute modes (mirror the executor's fast-path selection).
_MODE_PACKED, _MODE_MANTISSA, _MODE_F64 = range(3)


def _unpack_slots(packed_dots: np.ndarray, k: int, w: int) -> np.ndarray:
    """Batch-shaped twin of ``FunctionalSimulator._unpack``.

    ``packed_dots`` is (..., G); returns (..., G*k) — the same prefix
    isolation and adjacent-prefix differencing as the executor, with
    arbitrary leading axes and no tail trim (callers slice per member).
    Every element-wise operation matches the executor's bit for bit.
    """
    inv = np.exp2(-w * (k - 1 - np.arange(k, dtype=np.float64)))
    prefixes = np.rint(packed_dots[..., np.newaxis, :] * inv[:, np.newaxis])
    dots = prefixes.copy()
    dots[..., 1:, :] -= prefixes[..., :-1, :] * float(np.exp2(w))
    lead = dots.shape[:-2]
    return np.swapaxes(dots, -1, -2).reshape(*lead, -1)


class _MvGroup:
    """One stacked mega-SIMD MVM shared by one or more fused chains.

    Members are consecutive ``mv_mul`` chains reading the same VRF head
    with the same column count; their weight windows are concatenated
    along the output-row axis so one GEMV per column block yields every
    member's block dots. Stacking is exact on the packed and
    mantissa-GEMV paths (integer dot products are order-insensitive),
    so member outputs are bit-identical to per-chain execution; the
    float64/exact path keeps one member per group.

    Stacked operands are cached against the MRF ``generation`` counter:
    an ``m_wr`` or :meth:`~repro.functional.FunctionalSimulator.load_matrix`
    between (or during) compiled runs rebinds the weights on the next
    compute — the plan-cache invalidation required when matrix
    registers are rewritten.
    """

    __slots__ = ("mode", "members", "cols", "segs", "seg_width", "nb", "n",
                 "tiles", "offsets", "padded_offsets", "groups_total",
                 "total_rows", "_generation", "_operands",
                 "_batched_generation", "_batched_operands", "outputs")

    def __init__(self, sim, members: List[Tuple[int, int]], cols: int):
        self.members = tuple(members)  # (mrf_base, rows) per member
        self.cols = cols
        # Segment view: a native row splits into nb scale blocks, so a
        # cols-wide window has S = cols*nb GEMV segments in the
        # executor's (c, k) reference order (nb == 1 for native-block
        # formats, where segments are exactly the column blocks).
        self.nb = sim._nb
        self.seg_width = sim._seg_width
        self.segs = cols * sim._nb
        self.n = sim.config.native_dim
        if sim._pack_slots:
            self.mode = _MODE_PACKED
        elif sim._mantissa_gemv:
            self.mode = _MODE_MANTISSA
        else:
            self.mode = _MODE_F64
        self.tiles = sum(rows * cols for _, rows in self.members)
        n = self.n
        offsets, off = [], 0
        padded_offsets, poff = [], 0
        k = sim._pack_slots or 1
        for _, rows in self.members:
            offsets.append(off)
            off += rows * n
            padded_offsets.append(poff)
            poff += -(-(rows * n) // k) * k
        self.offsets = tuple(offsets)
        self.total_rows = off
        self.padded_offsets = tuple(padded_offsets)
        self.groups_total = poff // k
        self._generation = None
        self._operands = None
        self._batched_generation = None
        self._batched_operands = None
        self.outputs = None

    # -- operand binding ---------------------------------------------------

    def _refresh(self, sim) -> tuple:
        """(Re)stack the members' decomposed weight windows.

        Uses the executor's own ``_window_operands`` per member, so
        per-window derivations, LRU accounting, and ``mrf.reads``
        attribution match the interpreter exactly.
        """
        parts = [sim._window_operands(base, rows, self.cols)
                 for base, rows in self.members]
        if self.mode == _MODE_PACKED:
            k = sim._pack_slots
            if len(parts) == 1:
                w_stack = parts[0][0]
            else:
                w_stack = np.concatenate([p[0] for p in parts], axis=1)
            # Scales live at the *unpadded* row positions of each
            # member's padded slot range; padding rows carry zero
            # mantissas and zero scales, so their terms vanish exactly.
            scales = np.zeros((self.segs, self.groups_total * k))
            for (_, rows), off, part in zip(self.members,
                                            self.padded_offsets, parts):
                scales[:, off:off + rows * self.n] = part[1]
        else:
            if len(parts) == 1:
                w_stack, scales = parts[0]
            else:
                w_stack = np.concatenate([p[0] for p in parts], axis=1)
                scales = np.concatenate([p[1] for p in parts], axis=1)
        return w_stack, scales

    def _bound_operands(self, sim) -> tuple:
        mrf = sim.mrf
        if self._generation != mrf.generation:
            self._operands = self._refresh(sim)
            self._generation = mrf.generation
        else:
            # Architectural tile reads still occur on every mv_mul; the
            # interpreter accounts them on window-cache hits too.
            mrf.reads += self.tiles
        return self._operands

    def _batched_scratch(self, w_scales: np.ndarray, batch: int, k: int
                         ) -> tuple:
        """Persistent work buffers for the batched packed epilogue.

        Unpacking k slot dots per float64 lane churns several
        (cols, B, k, groups) temporaries per call; allocating them once
        and writing through ``out=`` keeps the epilogue off the
        allocator (large numpy temporaries are mmap-backed, so fresh
        ones fault in pages every call). Rebuilt when the batch size or
        the weight scales (MRF generation) change.
        """
        key = (batch, self._generation)
        if self._batched_generation != key:
            segs = self.segs
            gp = self.groups_total
            # Scale layout matching the unpack layout: slot t of packed
            # group g is unpadded row g*k + t.
            ws_kgp = np.ascontiguousarray(
                w_scales.reshape(segs, gp, k).transpose(0, 2, 1))
            self._batched_operands = (
                ws_kgp,
                np.empty((segs, batch, gp)),        # packed GEMM out
                np.empty((segs, batch, k, gp)),     # slot prefixes
                np.empty((segs, batch, k, gp)),     # slot dots
                np.empty((batch, k, gp)),           # segment accumulator
            )
            self._batched_generation = key
        return self._batched_operands

    # -- single-request compute --------------------------------------------

    def compute(self, sim, value: np.ndarray) -> None:
        if self.mode == _MODE_F64:
            base, rows = self.members[0]
            blocks = sim._window_blocks_f64(base, rows, self.cols)
            self.outputs = (self._f64_member(sim, value, blocks, rows),)
            return
        w_stack, w_scales = self._bound_operands(sim)
        mant, exps = decompose(value, sim._bfp)
        mant = mant.reshape(self.segs, self.seg_width)
        x_scales = scales_of(exps, sim._bfp).reshape(self.segs, 1)
        if self.mode == _MODE_PACKED:
            x_mant = mant.astype(np.float64)
            packed = np.matmul(w_stack, x_mant[:, :, np.newaxis])[:, :, 0]
            dots = _unpack_slots(packed, sim._pack_slots, sim._pack_width)
            terms = dots * (w_scales * x_scales)
            acc = terms[0]
            for s in range(1, self.segs):
                acc = acc + terms[s]
            starts = self.padded_offsets
        else:
            acc = ((w_stack[0] @ mant[0]).astype(np.float64)
                   * (w_scales[0] * x_scales[0]))
            for s in range(1, self.segs):
                acc += ((w_stack[s] @ mant[s]).astype(np.float64)
                        * (w_scales[s] * x_scales[s]))
            starts = self.offsets
        out = acc.astype(np.float32)
        out = to_float16(out)
        n = self.n
        self.outputs = tuple(
            out[start:start + rows * n].reshape(rows, n)
            for (_, rows), start in zip(self.members, starts))

    def _f64_member(self, sim, value: np.ndarray, blocks: np.ndarray,
                    rows: int) -> np.ndarray:
        """Single-member float64/exact MVM (mirrors the interpreter's
        stacked-f64 fallback, including the finishing rounds)."""
        if sim.exact:
            inputs = value.astype(np.float64)
        else:
            inputs = sim._quantized_input_f64(value) \
                .reshape(self.segs, self.seg_width)
        acc = blocks[0] @ inputs[0]
        for s in range(1, self.segs):
            acc += blocks[s] @ inputs[s]
        out = acc.reshape(rows, self.n).astype(np.float32)
        return out if sim.exact else to_float16(out)

    # -- batched compute ---------------------------------------------------

    def compute_batched(self, bstate, value: np.ndarray) -> None:
        """Compute all members for a (B, cols, N) head stack.

        With the MRF still shared across requests the stacked operands
        go through one batched matmul; once the plan has rewritten
        matrix registers (per-request MRFs), operands are derived per
        request and applied one request at a time — identical math,
        identical bits, just without the batch-axis speedup.
        """
        sim = bstate.sim
        batch = bstate.batch
        if bstate._mrfs is not None:
            per_member = [[] for _ in self.members]
            for b in range(batch):
                outs = self._compute_one_request(sim, bstate._mrfs[b],
                                                 value[b])
                for i, out in enumerate(outs):
                    per_member[i].append(out)
            self.outputs = tuple(np.stack(outs) for outs in per_member)
            return
        if self.mode == _MODE_F64:
            base, rows = self.members[0]
            blocks = sim._window_blocks_f64(base, rows, self.cols)
            self.outputs = (np.stack([
                self._f64_member(sim, value[b], blocks, rows)
                for b in range(batch)]),)
            return
        w_stack, w_scales = self._bound_operands(sim)
        self.outputs = self._apply_batched(sim, value, w_stack, w_scales)

    def _apply_batched(self, sim, value: np.ndarray, w_stack: np.ndarray,
                       w_scales: np.ndarray) -> tuple:
        # The GEMMs batch requests along the GEMM's N dimension — that
        # is what amortizes the weight traffic; a (B, ...) batched
        # matmul would degrade to B separate GEMVs. Every dot product
        # is an exact integer, so the batched results equal the
        # per-request GEMVs bit for bit; scale products and the
        # segment summation keep the reference operation order.
        mant, exps = decompose(value, sim._bfp)  # (B, cols, N)
        batch = value.shape[0]
        segs = self.segs
        mant = mant.reshape(batch, segs, self.seg_width)
        x_scales = scales_of(exps, sim._bfp).reshape(batch, segs, 1)
        if self.mode == _MODE_PACKED:
            k, width = sim._pack_slots, sim._pack_width
            ws_kgp, packed, pref, dots, accb = \
                self._batched_scratch(w_scales, batch, k)
            x = mant.astype(np.float64)
            for s in range(segs):
                np.matmul(x[:, s], w_stack[s].T, out=packed[s])
            # Unpack the k slot dots per lane in (.., k, groups) layout
            # (one transposing copy at the very end instead of one per
            # column block): dots[t] = pref[t] - pref[t-1] * 2^w.
            inv = np.exp2(-width * (k - 1 - np.arange(k,
                                                      dtype=np.float64)))
            np.multiply(packed[:, :, np.newaxis, :], inv[:, np.newaxis],
                        out=pref)
            np.rint(pref, out=pref)
            two_w = float(np.exp2(width))
            dots[:, :, 0] = pref[:, :, 0]
            np.multiply(pref[:, :, :-1], two_w, out=dots[:, :, 1:])
            np.subtract(pref[:, :, 1:], dots[:, :, 1:],
                        out=dots[:, :, 1:])
            # terms = dots * (w_scales * x_scales). Both scale factors
            # are exact powers of two, so the two in-place multiplies
            # equal the reference's dots * (ws * xs) bit for bit.
            np.multiply(dots, ws_kgp[:, np.newaxis], out=dots)
            np.multiply(dots, x_scales.transpose(1, 0, 2)[..., np.newaxis],
                        out=dots)
            if segs == 1:
                acc = dots[0]
            else:
                np.add(dots[0], dots[1], out=accb)
                for s in range(2, segs):
                    np.add(accb, dots[s], out=accb)
                acc = accb
            # (B, k, groups) -> (B, groups, k) -> rows g*k + t.
            out = acc.transpose(0, 2, 1).astype(np.float32)
            out = out.reshape(batch, -1)
            starts = self.padded_offsets
        else:
            acc = (np.matmul(mant[:, 0], w_stack[0].T).astype(np.float64)
                   * (w_scales[0] * x_scales[:, 0]))
            for s in range(1, segs):
                acc += (np.matmul(mant[:, s], w_stack[s].T)
                        .astype(np.float64)
                        * (w_scales[s] * x_scales[:, s]))
            out = acc.astype(np.float32)
            starts = self.offsets
        out = to_float16(out)
        n = self.n
        return tuple(
            out[:, start:start + rows * n].reshape(batch, rows, n)
            for (_, rows), start in zip(self.members, starts))

    def _compute_one_request(self, sim, mrf: MatrixRegisterFile,
                             value: np.ndarray) -> list:
        """All member outputs for one request against a private MRF.

        Re-derives operands with the same formulas as the executor's
        ``_window_operands`` / ``_window_blocks_f64`` (windows cache
        inside the private MRF against its own generation counter).
        """
        n = self.n
        cols = self.cols
        b, nb, segs = self.seg_width, self.nb, self.segs
        outs = []
        if self.mode == _MODE_F64:
            base, rows = self.members[0]
            window = mrf.read_window(base, rows, cols)
            blocks = window.reshape(rows * n, cols, n).transpose(1, 0, 2)
            if nb > 1:
                blocks = (blocks.reshape(cols, rows * n, nb, b)
                          .transpose(0, 2, 1, 3).reshape(segs, rows * n, b))
            blocks = np.ascontiguousarray(blocks.astype(np.float64))
            return [self._f64_member(sim, value, blocks, rows)]
        mant_x, exps = decompose(value, sim._bfp)
        mant_x = mant_x.reshape(segs, b)
        x_scales = scales_of(exps, sim._bfp).reshape(segs, 1)
        for base, rows in self.members:
            window = mrf.read_window(base, rows, cols)
            blocks = np.ascontiguousarray(
                window.reshape(rows * n, cols, n).transpose(1, 0, 2))
            w_mant, w_exps = decompose(blocks.reshape(-1, n), sim._bfp)
            w_scales = np.ascontiguousarray(
                scales_of(w_exps, sim._bfp)
                .reshape(cols, rows * n, nb).transpose(0, 2, 1)
                .reshape(segs, rows * n))
            w_mant = np.ascontiguousarray(
                w_mant.reshape(cols, rows * n, nb, b)
                .transpose(0, 2, 1, 3).reshape(segs, rows * n, b))
            if self.mode == _MODE_PACKED:
                w_mant = sim._pack_rows(w_mant, segs, rows * n, b)
                x_mant = mant_x.astype(np.float64)
                packed = np.matmul(w_mant,
                                   x_mant[:, :, np.newaxis])[:, :, 0]
                dots = sim._unpack(packed, rows * n)
                terms = dots * (w_scales * x_scales)
                if segs == 1:
                    acc = terms.reshape(-1)
                else:
                    acc = terms[0] + terms[1]
                    for s in range(2, segs):
                        acc += terms[s]
            else:
                acc = ((w_mant[0] @ mant_x[0]).astype(np.float64)
                       * (w_scales[0] * x_scales[0]))
                for s in range(1, segs):
                    acc += ((w_mant[s] @ mant_x[s]).astype(np.float64)
                            * (w_scales[s] * x_scales[s]))
            out = acc.reshape(rows, n).astype(np.float32)
            outs.append(to_float16(out))
        return outs


# ---------------------------------------------------------------------------
# Compiled steps
# ---------------------------------------------------------------------------

class _ScalarStep:
    """A folded ``s_wr``: no run-time work — the final register state
    and the instruction/tick tallies are precomputed on the plan."""

    __slots__ = ("reg", "value")

    def __init__(self, reg: ScalarReg, value: int):
        self.reg = reg
        self.value = value

    def run(self, sim) -> None:
        pass

    def run_observed(self, sim) -> None:
        sim._tick("set_scalar", reg=self.reg.name, value=self.value)

    def run_batched(self, bstate) -> None:
        pass


class _MatrixStep:
    """A compiled ``m_rd`` → ``m_wr`` tile move."""

    __slots__ = ("src_netq", "src_index", "dst_mrf", "dst_index", "count",
                 "rd_tick", "wr_tick", "length")

    def __init__(self, src_netq, src_index, dst_mrf, dst_index, count,
                 rd_tick, wr_tick):
        self.src_netq = src_netq
        self.src_index = src_index
        self.dst_mrf = dst_mrf
        self.dst_index = dst_index
        self.count = count
        self.rd_tick = rd_tick
        self.wr_tick = wr_tick
        self.length = 2

    def _move(self, sim) -> None:
        if self.src_netq:
            tiles = sim.netq.pop_input_tiles(self.count)
        else:
            tiles = sim.dram.read_tiles(self.src_index, self.count)
        if self.dst_mrf:
            if not sim.exact:
                tiles = quantize(tiles, sim._bfp)
            sim.mrf.write_tiles(self.dst_index, tiles)
        else:
            sim.dram.write_tiles(self.dst_index, tiles)

    def run(self, sim) -> None:
        self._move(sim)

    def run_observed(self, sim) -> None:
        span = sim.tracer.begin("chain", float(sim._trace_clock),
                                track="executor", matrix=True,
                                instructions=3)
        if self.src_netq:
            tiles = sim.netq.pop_input_tiles(self.count)
        else:
            tiles = sim.dram.read_tiles(self.src_index, self.count)
        name, attrs = self.rd_tick
        sim._tick(name, **attrs)
        if self.dst_mrf:
            if not sim.exact:
                tiles = quantize(tiles, sim._bfp)
            sim.mrf.write_tiles(self.dst_index, tiles)
        else:
            sim.dram.write_tiles(self.dst_index, tiles)
        name, attrs = self.wr_tick
        sim._tick(name, **attrs)
        sim.metrics.counter("executor.tiles_moved").inc(self.count)
        sim._tick("end_chain")
        sim.tracer.end(span, float(sim._trace_clock))
        sim.metrics.counter("executor.chains").inc()

    def run_batched(self, bstate) -> None:
        sim = bstate.sim
        if self.src_netq:
            tiles = bstate._pop_input_tiles(self.count)  # (B, count, N, N)
        else:
            tiles = bstate._read_dram_tiles(self.src_index, self.count)
        if self.dst_mrf:
            mrfs = bstate._split_mrfs()
            for b, mrf in enumerate(mrfs):
                part = tiles[b]
                if not sim.exact:
                    part = quantize(part, sim._bfp)
                mrf.write_tiles(self.dst_index, part)
        else:
            for i in range(self.count):
                bstate._dram_tiles[self.dst_index + i] = \
                    np.ascontiguousarray(tiles[:, i])


class _VectorStep:
    """A compiled vector chain: pre-bound head, flat piece list."""

    __slots__ = ("head_kind", "head_view", "head_mem", "head_index",
                 "width_in", "pieces", "head_tick", "piece_ticks", "length")

    def __init__(self, head_kind, head_view, head_mem, head_index, width_in,
                 pieces, head_tick, piece_ticks, length):
        self.head_kind = head_kind
        self.head_view = head_view
        self.head_mem = head_mem
        self.head_index = head_index
        self.width_in = width_in
        self.pieces = pieces
        self.head_tick = head_tick
        self.piece_ticks = piece_ticks
        self.length = length

    def _head(self, sim) -> np.ndarray:
        kind = self.head_kind
        if kind == _H_VRF:
            return self.head_view
        if kind == _H_NETQ:
            return sim.netq.pop_input(self.width_in)
        return sim.dram.read_vectors(self.head_index, self.width_in)

    def run(self, sim) -> None:
        value = self._head(sim)
        exact = sim.exact
        for p in self.pieces:
            kind = p[0]
            if kind == _MV:
                group = p[1]
                if p[2] == 0:
                    group.compute(sim, value)
                value = group.outputs[p[2]]
            elif kind == _BIN:
                value = p[1](value, p[2], exact=exact)
            elif kind == _UN:
                value = p[1](value, exact=exact)
            elif kind == _WR_VRF:
                if p[5]:
                    value = value.copy()
                p[1][...] = value
            elif kind == _WR_NETQ:
                sim.netq.push_output(value)
            else:
                sim.dram.write_vectors(p[1], value)

    def run_observed(self, sim) -> None:
        span = sim.tracer.begin("chain", float(sim._trace_clock),
                                track="executor", matrix=False,
                                instructions=self.length + 1)
        value = self._head(sim)
        name, attrs = self.head_tick
        sim._tick(name, **attrs)
        exact = sim.exact
        for p, (name, attrs, counter, amount) in zip(self.pieces,
                                                     self.piece_ticks):
            kind = p[0]
            if kind == _MV:
                group = p[1]
                if p[2] == 0:
                    group.compute(sim, value)
                value = group.outputs[p[2]]
            elif kind == _BIN:
                value = p[1](value, p[2], exact=exact)
            elif kind == _UN:
                value = p[1](value, exact=exact)
            elif kind == _WR_VRF:
                if p[5]:
                    value = value.copy()
                p[1][...] = value
            elif kind == _WR_NETQ:
                sim.netq.push_output(value)
            else:
                sim.dram.write_vectors(p[1], value)
            if counter is not None:
                sim.metrics.counter(counter).inc(amount)
            sim._tick(name, **attrs)
        sim._tick("end_chain")
        sim.tracer.end(span, float(sim._trace_clock))
        sim.metrics.counter("executor.chains").inc()

    def run_batched(self, bstate) -> None:
        sim = bstate.sim
        kind = self.head_kind
        if kind == _H_VRF:
            value = bstate._vrf[self.head_mem][
                :, self.head_index:self.head_index + self.width_in]
        elif kind == _H_NETQ:
            value = bstate._pop_input(self.width_in)
        else:
            value = bstate._read_dram_vectors(self.head_index,
                                              self.width_in)
        exact = sim.exact
        for p in self.pieces:
            kind = p[0]
            if kind == _MV:
                group = p[1]
                if p[2] == 0:
                    group.compute_batched(bstate, value)
                value = group.outputs[p[2]]
            elif kind == _BIN:
                operand = bstate._vrf[p[3]][:, p[4]:p[4] + p[5]]
                value = p[1](value, operand, exact=exact)
            elif kind == _UN:
                value = p[1](value, exact=exact)
            elif kind == _WR_VRF:
                if p[5]:
                    value = value.copy()
                bstate._vrf[p[2]][:, p[3]:p[3] + p[4]] = value
            elif kind == _WR_NETQ:
                bstate._push_outputs(value)
            else:
                for i in range(value.shape[1]):
                    bstate._dram_vectors[p[1] + i] = \
                        np.ascontiguousarray(value[:, i])


def _event_kind(event) -> str:
    """Human-readable kind tag for a fallback event (diagnostics)."""
    if isinstance(event, SetScalar):
        return f"s_wr:{event.reg.name}"
    return ">".join(i.opcode.name.lower() for i in event.instructions)


class _FallbackStep:
    """Interpreted escape hatch for uncompiled events.

    Restores the compile-time scalar registers and delegates to the
    interpreter, so the raised error type, its position in the event
    stream, and any partial side effects match interpretation exactly.
    Two flavors share this class:

    * *broken* (``loopable`` False): compilation marks everything from
      the first definitely-raising event onward as fallback (it is
      unreachable on a successful run). Such plans are not batchable.
    * *loopable* (``loopable`` True): a statically valid chain forced
      to interpretation (``compile_plan(..., force_fallback=...)``).
      Scalar tracking continues past it, its register-file extents are
      folded into the plan footprints, and batched replay interprets
      it per request via :meth:`BatchedReplay._run_fallback`.
    """

    __slots__ = ("event", "rows", "cols", "loopable", "writes_mrf", "kind")

    def __init__(self, event, rows: int, cols: int,
                 loopable: bool = False, writes_mrf: bool = False):
        self.event = event
        self.rows = rows
        self.cols = cols
        self.loopable = loopable
        self.writes_mrf = writes_mrf
        self.kind = _event_kind(event)

    def run(self, sim) -> None:
        sim.scalar_regs[ScalarReg.Rows] = self.rows
        sim.scalar_regs[ScalarReg.Columns] = self.cols
        if isinstance(self.event, SetScalar):
            sim._set_scalar(self.event)
        else:
            sim.execute_chain(self.event)

    run_observed = run

    def run_batched(self, bstate) -> None:
        bstate._run_fallback(self)


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------

class ReplayPlan:
    """A flat, pre-resolved execution plan for one program binding.

    Immutable after compilation apart from the generation-checked
    operand caches inside its :class:`_MvGroup` objects. Bound to the
    simulator it was compiled for (views point into that simulator's
    register files); :meth:`FunctionalSimulator.plan_for` caches plans
    per (program uid, bindings, entry scalar registers).
    """

    __slots__ = ("program", "bindings_key", "entry_scalars",
                 "final_scalars", "steps", "batchable", "chains",
                 "instructions", "mv_muls", "macs", "pointwise_flops",
                 "ticks", "vrf_reads", "vrf_writes", "vrf_footprints",
                 "compiled_chains", "fallback_steps", "loopable_fallbacks",
                 "fallback_step_kinds", "groups", "fused_groups")

    def __init__(self, program, bindings_key, entry_scalars, final_scalars,
                 steps, batchable, chains, instructions, mv_muls, macs,
                 pointwise_flops, ticks, vrf_reads, vrf_writes,
                 vrf_footprints, compiled_chains, fallback_steps,
                 loopable_fallbacks, fallback_step_kinds, groups,
                 fused_groups):
        self.program = program
        self.bindings_key = bindings_key
        self.entry_scalars = entry_scalars
        self.final_scalars = final_scalars
        self.steps = steps
        self.batchable = batchable
        self.chains = chains
        self.instructions = instructions
        self.mv_muls = mv_muls
        self.macs = macs
        self.pointwise_flops = pointwise_flops
        self.ticks = ticks
        self.vrf_reads = vrf_reads
        self.vrf_writes = vrf_writes
        #: Per-VRF high-water mark of static accesses (MemId -> rows).
        #: Batched replay replicates only this prefix of each register
        #: file instead of the full (often mostly idle) depth.
        self.vrf_footprints = vrf_footprints
        self.compiled_chains = compiled_chains
        self.fallback_steps = fallback_steps
        #: Fallback steps that are individually interpretable mid-plan
        #: (forced via ``force_fallback``); the rest form a broken tail
        #: after the first definitely-raising event.
        self.loopable_fallbacks = loopable_fallbacks
        #: Kind tags of every fallback step, in plan order — the
        #: diagnostic payload of :class:`UnbatchablePlanError`.
        self.fallback_step_kinds = fallback_step_kinds
        self.groups = groups
        self.fused_groups = fused_groups


class _ChainTemplate:
    """Compile-time description of one vector chain at fixed (rows, cols).

    Turned into one or more `_VectorStep` objects once mv_mul grouping
    is decided (the same template may appear in several loop
    iterations, always with the same group assignment pattern)."""

    __slots__ = ("head_kind", "head_view", "head_mem", "head_index",
                 "width_in", "rows", "cols", "raw_pieces", "head_tick",
                 "piece_ticks", "length", "mv_base", "vrf_reads",
                 "vrf_writes", "vrf_extents", "flops",
                 "writes_head_overlap")

    def __init__(self):
        self.raw_pieces = []
        self.piece_ticks = []
        self.vrf_reads = []
        self.vrf_writes = []
        self.vrf_extents = []  # (MemId, index + extent) per static access
        self.flops = 0
        self.mv_base = None
        self.writes_head_overlap = False


def _compile_vector_chain(sim, chain: InstructionChain, rows: int,
                          cols: int) -> Optional[_ChainTemplate]:
    """Compile one vector chain, or return None for fallback."""
    n = sim.config.native_dim
    t = _ChainTemplate()
    t.rows, t.cols = rows, cols
    t.length = len(chain)
    width_in = cols if chain.has_mv_mul else rows
    t.width_in = width_in

    head = chain.source
    t.head_mem = head.mem_id
    t.head_index = head.index
    t.head_view = None
    if head.mem_id is MemId.NetQ:
        t.head_kind = _H_NETQ
    elif head.mem_id is MemId.Dram:
        t.head_kind = _H_DRAM
    else:
        vrf = sim.vrfs.get(head.mem_id)
        if vrf is None or not isinstance(head.index, int) \
                or head.index < 0 or head.index + width_in > vrf.depth:
            return None
        t.head_kind = _H_VRF
        t.head_view = vrf._data[head.index:head.index + width_in]
        t.vrf_reads.append((vrf, width_in))
        t.vrf_extents.append((head.mem_id, head.index + width_in))
    t.head_tick = (head.opcode.name.lower(),
                   {"mem": head.mem_id.name if head.mem_id else None,
                    "index": head.index, "vectors": width_in})

    # Alias window of the zero-copy VRF head (mem, index, width), using
    # the interpreter's exact overlap test for the copy-on-write flag.
    alias = (head.mem_id, head.index, width_in) \
        if t.head_kind == _H_VRF else None

    for instr in chain.instructions[1:]:
        op = instr.opcode
        tick = (op.name.lower(),
                {"mem": instr.mem_id.name if instr.mem_id else None,
                 "index": instr.index})
        if op is Opcode.MV_MUL:
            base = instr.index
            if not isinstance(base, int) or base < 0 \
                    or base + rows * cols > sim.config.mrf_address_space:
                return None
            t.mv_base = base
            t.raw_pieces.append((_MV, None, None))
            t.piece_ticks.append(tick + ("executor.macs",
                                         rows * cols * n * n))
            alias = None
        elif op in ops.BINARY_KERNELS:
            op_mem = MemId.MultiplyVrf if op is Opcode.VV_MUL \
                else MemId.AddSubVrf
            vrf = sim.vrfs[op_mem]
            idx = instr.index
            if not isinstance(idx, int) or idx < 0 \
                    or idx + rows > vrf.depth:
                return None
            view = vrf._data[idx:idx + rows]
            t.raw_pieces.append((_BIN, ops.BINARY_KERNELS[op], view,
                                 op_mem, idx, rows))
            t.piece_ticks.append(tick + ("executor.pointwise_flops",
                                         rows * n))
            t.vrf_reads.append((vrf, rows))
            t.vrf_extents.append((op_mem, idx + rows))
            t.flops += rows * n
            alias = None
        elif op in ops.UNARY_KERNELS:
            t.raw_pieces.append((_UN, ops.UNARY_KERNELS[op]))
            t.piece_ticks.append(tick + ("executor.pointwise_flops",
                                         rows * n))
            t.flops += rows * n
            alias = None
        elif op is Opcode.V_WR:
            mem = instr.mem_id
            if mem is MemId.NetQ:
                t.raw_pieces.append((_WR_NETQ,))
            elif mem is MemId.Dram:
                if not isinstance(instr.index, int):
                    return None
                t.raw_pieces.append((_WR_DRAM, instr.index))
            else:
                vrf = sim.vrfs.get(mem)
                idx = instr.index
                if vrf is None or not isinstance(idx, int) or idx < 0 \
                        or idx + rows > vrf.depth:
                    return None
                copy_first = False
                if (alias is not None and mem is alias[0]
                        and idx < alias[1] + alias[2]
                        and alias[1] < idx + width_in):
                    copy_first = True
                    alias = None
                view = vrf._data[idx:idx + rows]
                t.raw_pieces.append((_WR_VRF, view, mem, idx, rows,
                                     copy_first))
                t.vrf_writes.append((vrf, rows))
                t.vrf_extents.append((mem, idx + rows))
                if (t.head_kind == _H_VRF and mem is t.head_mem
                        and idx < t.head_index + width_in
                        and t.head_index < idx + rows):
                    t.writes_head_overlap = True
            t.piece_ticks.append(tick + (None, 0))
        else:  # pragma: no cover - chain validation prevents this
            return None
    return t


def compile_plan(sim, program: NpuProgram,
                 bindings: Optional[Dict[str, int]] = None,
                 force_fallback=None) -> ReplayPlan:
    """Compile ``program`` against ``sim``'s current scalar state.

    Walks the (loop-unrolled) event stream with compile-time scalar
    tracking, compiles every chain once per (rows, cols) context, fuses
    runs of same-head ``mv_mul`` chains, and precomputes the run's
    statistic/counter/clock totals.

    ``force_fallback`` — a collection of event positions (indices into
    the unrolled event stream) or a ``(position, event) -> bool``
    predicate — demotes statically *valid* chains to loopable
    interpreted fallback steps. Scalar tracking continues past them and
    the plan stays batchable; used by the differential fuzzer and the
    equivalence tests to exercise the fallback machinery on programs
    that would otherwise compile fully.
    """
    rows = sim.scalar_regs[ScalarReg.Rows]
    cols = sim.scalar_regs[ScalarReg.Columns]
    iters = sim.scalar_regs[ScalarReg.Iterations]
    entry_scalars = (rows, cols, iters)

    if force_fallback is None:
        forced = None
    elif callable(force_fallback):
        forced = force_fallback
    else:
        positions = frozenset(force_fallback)
        forced = lambda pos, event: pos in positions  # noqa: E731

    # Pass 1: unroll and compile chain templates (dedup per context).
    # records: ("scalar", event) | ("chain", template) | ("fb", event)
    #          | ("lfb", event, rows, cols, template)  [loopable]
    records = []
    template_cache: Dict[tuple, object] = {}
    broken = False
    for pos, event in enumerate(program.events(bindings)):
        if broken:
            records.append(("fb", event, rows, cols))
            continue
        if isinstance(event, SetScalar):
            if event.reg in (ScalarReg.Rows, ScalarReg.Columns) \
                    and event.value < 1:
                records.append(("fb", event, rows, cols))
                broken = True
                continue
            if event.reg is ScalarReg.Rows:
                rows = event.value
            elif event.reg is ScalarReg.Columns:
                cols = event.value
            else:
                iters = event.value
            records.append(("scalar", event, rows, cols))
            continue
        key = (id(event), rows, cols)
        if key in template_cache:
            template = template_cache[key]
        else:
            if event.is_matrix_chain:
                # Matrix chains skip MFU validation (as interpreted) and
                # have no statically checkable operands: never fallback.
                template = _compile_matrix_template(event, rows, cols)
            else:
                try:
                    event.assign_function_units(sim.config.mfus)
                except ChainCapacityError:
                    template = None
                else:
                    template = _compile_vector_chain(sim, event, rows, cols)
            template_cache[key] = template
        if template is None:
            records.append(("fb", event, rows, cols))
            broken = True
        elif forced is not None and forced(pos, event):
            # Valid chain demoted to a loopable interpreted step; the
            # template survives only for its footprint extents.
            records.append(("lfb", event, rows, cols, template))
        else:
            records.append(("chain", template, rows, cols))

    # Pass 2: group consecutive same-head mv_mul chains, emit steps,
    # and accumulate the plan's static totals.
    n = sim.config.native_dim
    steps: List[object] = []
    group_cache: Dict[tuple, _MvGroup] = {}
    step_cache: Dict[tuple, object] = {}
    groups: List[_MvGroup] = []
    chains = instructions = mv_muls = macs = flops = ticks = 0
    compiled_chains = fallback_steps = loopable_fallbacks = 0
    fallback_kinds: List[str] = []
    reads: Dict[int, list] = {}
    writes: Dict[int, list] = {}
    footprints: Dict[MemId, int] = {}

    single_member = sim._pack_slots == 0 and not sim._mantissa_gemv
    open_run: List[_ChainTemplate] = []

    def flush_run():
        nonlocal open_run
        if not open_run:
            return
        key = tuple(id(t) for t in open_run)
        group = group_cache.get(key)
        if group is None:
            group = _MvGroup(sim, [(t.mv_base, t.rows) for t in open_run],
                             open_run[0].cols)
            group_cache[key] = group
            groups.append(group)
        for member, t in enumerate(open_run):
            skey = (id(t), id(group), member)
            step = step_cache.get(skey)
            if step is None:
                pieces = tuple(
                    (_MV, group, member) if p[0] == _MV else p
                    for p in t.raw_pieces)
                step = _VectorStep(t.head_kind, t.head_view, t.head_mem,
                                   t.head_index, t.width_in, pieces,
                                   t.head_tick, tuple(t.piece_ticks),
                                   t.length)
                step_cache[skey] = step
            steps.append(step)
        open_run = []

    def add_tally(t: _ChainTemplate):
        nonlocal chains, instructions, mv_muls, macs, flops, ticks
        nonlocal compiled_chains
        chains += 1
        compiled_chains += 1
        instructions += t.length + 1
        ticks += t.length + 1
        flops += t.flops
        if t.mv_base is not None:
            mv_muls += 1
            macs += t.rows * t.cols * n * n
        for vrf, count in t.vrf_reads:
            reads.setdefault(id(vrf), [vrf, 0])[1] += count
        for vrf, count in t.vrf_writes:
            writes.setdefault(id(vrf), [vrf, 0])[1] += count
        for mem, end in t.vrf_extents:
            if end > footprints.get(mem, 0):
                footprints[mem] = end

    for record in records:
        kind = record[0]
        if kind == "chain":
            t = record[1]
            if isinstance(t, _ChainTemplate) and t.mv_base is not None:
                fusable = (t.head_kind == _H_VRF and not single_member)
                if open_run and not (
                        fusable
                        and t.head_mem is open_run[0].head_mem
                        and t.head_index == open_run[0].head_index
                        and t.cols == open_run[0].cols):
                    flush_run()
                open_run.append(t)
                add_tally(t)
                if not fusable or t.writes_head_overlap:
                    flush_run()
                continue
            flush_run()
            if isinstance(t, _MatrixTemplate):
                steps.append(t.step)
                chains += 1
                compiled_chains += 1
                instructions += 3
                ticks += 3
            else:
                step = step_cache.get(id(t))
                if step is None:
                    step = _VectorStep(t.head_kind, t.head_view, t.head_mem,
                                       t.head_index, t.width_in,
                                       tuple(t.raw_pieces), t.head_tick,
                                       tuple(t.piece_ticks), t.length)
                    step_cache[id(t)] = step
                steps.append(step)
                add_tally(t)
            continue
        flush_run()
        if kind == "scalar":
            event = record[1]
            steps.append(_ScalarStep(event.reg, event.value))
            instructions += 1
            ticks += 1
        elif kind == "lfb":
            # Loopable fallback: interpreted live (stats, counters and
            # the trace clock advance inside the interpreter), so it
            # contributes nothing to the plan totals — but its static
            # register-file extents must still widen the batched
            # footprints, which bound what `_run_fallback` swaps.
            template = record[4]
            writes_mrf = False
            if isinstance(template, _MatrixTemplate):
                writes_mrf = template.step.dst_mrf
            else:
                for mem, end in template.vrf_extents:
                    if end > footprints.get(mem, 0):
                        footprints[mem] = end
            step = _FallbackStep(record[1], record[2], record[3],
                                 loopable=True, writes_mrf=writes_mrf)
            steps.append(step)
            fallback_steps += 1
            loopable_fallbacks += 1
            fallback_kinds.append(step.kind)
        else:  # broken-tail fallback
            step = _FallbackStep(record[1], record[2], record[3])
            steps.append(step)
            fallback_steps += 1
            fallback_kinds.append(step.kind)
    flush_run()

    final_scalars = {ScalarReg.Rows: rows, ScalarReg.Columns: cols,
                     ScalarReg.Iterations: iters}
    return ReplayPlan(
        program=program,
        bindings_key=tuple(sorted((bindings or {}).items())),
        entry_scalars=entry_scalars,
        final_scalars=final_scalars,
        steps=tuple(steps),
        batchable=fallback_steps == loopable_fallbacks,
        chains=chains,
        instructions=instructions,
        mv_muls=mv_muls,
        macs=macs,
        pointwise_flops=flops,
        ticks=ticks,
        vrf_reads=tuple((v, c) for v, c in reads.values()),
        vrf_writes=tuple((v, c) for v, c in writes.values()),
        vrf_footprints=footprints,
        compiled_chains=compiled_chains,
        fallback_steps=fallback_steps,
        loopable_fallbacks=loopable_fallbacks,
        fallback_step_kinds=tuple(fallback_kinds),
        groups=tuple(groups),
        fused_groups=sum(1 for g in groups if len(g.members) > 1),
    )


class _MatrixTemplate:
    """Wrapper pairing a matrix-chain template with its single step."""

    __slots__ = ("step",)

    def __init__(self, step: _MatrixStep):
        self.step = step


def _compile_matrix_template(chain: InstructionChain, rows: int,
                             cols: int) -> Optional[_MatrixTemplate]:
    rd, wr = chain.instructions
    count = rows * cols
    src_netq = rd.mem_id is MemId.NetQ
    rd_tick = (rd.opcode.name.lower(),
               {"mem": rd.mem_id.name, "index": rd.index, "tiles": count})
    wr_tick = (wr.opcode.name.lower(),
               {"mem": wr.mem_id.name, "index": wr.index, "tiles": count})
    return _MatrixTemplate(_MatrixStep(
        src_netq, rd.index, wr.mem_id is MemId.MatrixRf, wr.index, count,
        rd_tick, wr_tick))


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

class ReplayExecutor:
    """Runs a compiled plan against its simulator.

    The fast path is a bare loop over precompiled steps; totals
    (statistics, register-file counters, the trace clock, final scalar
    registers) are applied once at successful completion. With a live
    tracer or metrics sink attached the observed path emits the same
    spans and counters as the interpreter, instruction by instruction.
    """

    __slots__ = ("sim", "plan")

    def __init__(self, sim, plan: ReplayPlan):
        self.sim = sim
        self.plan = plan

    def run(self):
        sim = self.sim
        plan = self.plan
        if sim._observing:
            for step in plan.steps:
                step.run_observed(sim)
        else:
            for step in plan.steps:
                step.run(sim)
            sim._trace_clock += plan.ticks
        stats = sim.stats
        stats.chains_executed += plan.chains
        stats.instructions_executed += plan.instructions
        stats.mv_mul_count += plan.mv_muls
        stats.macs += plan.macs
        stats.pointwise_flops += plan.pointwise_flops
        for vrf, delta in plan.vrf_reads:
            vrf.reads += delta
        for vrf, delta in plan.vrf_writes:
            vrf.writes += delta
        sim.scalar_regs.update(plan.final_scalars)
        return stats


class BatchedReplay:
    """B independent requests stepped through one compiled plan.

    All architectural state gains a leading batch axis: VRFs become
    (B, footprint, N) arrays (only the statically reachable prefix of
    each register file is replicated), DRAM entries (B, ...) arrays,
    the network input queue a stream of (B, N) stacks. The MRF stays *shared*
    (weights are per-model, not per-request) until the plan itself
    writes matrix registers, at which point it is transparently
    replicated per request. On the exact-integer mantissa paths every
    batched kernel is bit-identical to B sequential compiled runs —
    the invariant the four-way differential fuzzer asserts.

    Loopable fallback steps (statically valid chains forced to
    interpretation) are executed per request by swapping each request's
    state into the base simulator (:meth:`_run_fallback`); plans whose
    fallback steps form a broken tail after a definitely-raising event
    (``plan.batchable`` is False) are rejected with
    :class:`~repro.errors.UnbatchablePlanError` — run those
    sequentially. Per-simulator statistics and metric counters are not
    maintained for batched runs; outputs and architectural state are
    the contract (via :meth:`snapshot`).
    """

    def __init__(self, sim, program: NpuProgram, batch: int,
                 bindings: Optional[Dict[str, int]] = None,
                 force_fallback=None):
        if batch < 1:
            raise ExecutionError("batch size must be >= 1")
        self.sim = sim
        self.batch = batch
        self.plan = sim.plan_for(program, bindings,
                                 force_fallback=force_fallback)
        if not self.plan.batchable:
            kinds = self.plan.fallback_step_kinds
            broken = self.plan.fallback_steps - self.plan.loopable_fallbacks
            raise UnbatchablePlanError(
                f"plan is not batchable: {broken} interpreted fallback "
                "step(s) follow a statically invalid event (step kinds: "
                f"{', '.join(kinds)}); run requests sequentially",
                step_kinds=kinds)
        b = batch
        # Replicate only each register file's static footprint — the
        # prefix the plan can actually touch. The untouched tail stays
        # shared with the base simulator and is grafted back on in
        # :meth:`snapshot`. (Full replication of a 4K-deep VRF times
        # B=16 costs ~100 MB and dominated batched setup time.)
        fp = self.plan.vrf_footprints
        self._vrf = {
            mem: np.repeat(vrf._data[np.newaxis, :fp.get(mem, 0)], b,
                           axis=0)
            for mem, vrf in sim.vrfs.items()}
        self._dram_vectors = {k: np.repeat(v[np.newaxis], b, axis=0)
                              for k, v in sim.dram._vectors.items()}
        self._dram_tiles = {k: np.repeat(v[np.newaxis], b, axis=0)
                            for k, v in sim.dram._tiles.items()}
        self._mrfs = None  # shared with sim.mrf until the plan writes it
        self._pending_vectors = collections.deque(
            np.repeat(v[np.newaxis], b, axis=0)
            for v in sim.netq._in_vectors)
        self._pending_tiles = collections.deque(
            np.repeat(t[np.newaxis], b, axis=0)
            for t in sim.netq._in_tiles)
        self._outputs: List[np.ndarray] = [
            np.repeat(v[np.newaxis], b, axis=0)
            for v in sim.netq._out_vectors]
        self._scalars = dict(sim.scalar_regs)

    # -- request-side I/O --------------------------------------------------

    def push_input(self, vectors: np.ndarray) -> None:
        """Queue one (B, N) stack: request b's next input vector."""
        arr = np.asarray(vectors, dtype=np.float32)
        n = self.sim.config.native_dim
        if arr.shape != (self.batch, n):
            raise MemoryError_(
                f"batched input shape {arr.shape} != ({self.batch}, {n})")
        self._pending_vectors.append(arr.copy())

    def push_input_tiles(self, tiles: np.ndarray) -> None:
        """Queue one (B, N, N) stack of matrix tiles."""
        arr = np.asarray(tiles, dtype=np.float32)
        n = self.sim.config.native_dim
        if arr.shape != (self.batch, n, n):
            raise MemoryError_(
                f"batched tile shape {arr.shape} != "
                f"({self.batch}, {n}, {n})")
        self._pending_tiles.append(arr.copy())

    def pop_outputs(self) -> List[List[np.ndarray]]:
        """Drain the output queue: per-request lists of (N,) vectors."""
        outs = self._outputs
        self._outputs = []
        return [[v[b].copy() for v in outs] for b in range(self.batch)]

    # -- execution ---------------------------------------------------------

    def run(self) -> "BatchedReplay":
        for step in self.plan.steps:
            step.run_batched(self)
        self._scalars.update(self.plan.final_scalars)
        return self

    # -- plan-facing state helpers -----------------------------------------

    def _pop_input(self, count: int) -> np.ndarray:
        pending = self._pending_vectors
        if len(pending) < count:
            raise NetworkQueueEmptyError(
                f"v_rd(NetQ) needs {count} vector(s), only "
                f"{len(pending)} pending")
        return np.stack([pending.popleft() for _ in range(count)], axis=1)

    def _pop_input_tiles(self, count: int) -> np.ndarray:
        pending = self._pending_tiles
        if len(pending) < count:
            raise NetworkQueueEmptyError(
                f"m_rd(NetQ) needs {count} tile(s), only "
                f"{len(pending)} pending")
        return np.stack([pending.popleft() for _ in range(count)], axis=1)

    def _push_outputs(self, value: np.ndarray) -> None:
        for r in range(value.shape[1]):
            self._outputs.append(np.ascontiguousarray(value[:, r]))

    def _read_dram_vectors(self, index: int, count: int) -> np.ndarray:
        parts = []
        for i in range(count):
            part = self._dram_vectors.get(index + i)
            if part is None:
                raise MemoryError_(f"DRAM vector {index + i} never written")
            parts.append(part)
        return np.stack(parts, axis=1)

    def _read_dram_tiles(self, index: int, count: int) -> np.ndarray:
        parts = []
        for i in range(count):
            part = self._dram_tiles.get(index + i)
            if part is None:
                raise MemoryError_(f"DRAM tile {index + i} never written")
            parts.append(part)
        return np.stack(parts, axis=1)

    def _split_mrfs(self) -> List[MatrixRegisterFile]:
        """Replicate the shared MRF per request on first matrix write."""
        if self._mrfs is None:
            base = self.sim.mrf
            self._mrfs = []
            for _ in range(self.batch):
                mrf = MatrixRegisterFile(
                    base.name, base.capacity, self.sim.config.native_dim,
                    tile_engines=base.tile_engines)
                mrf._tiles[...] = base._tiles
                self._mrfs.append(mrf)
        return self._mrfs

    def _run_fallback(self, step) -> None:
        """Interpret one loopable fallback step per request.

        Swaps request ``b``'s architectural state into the base
        simulator, runs the interpreter, and harvests the state back
        into the batch arrays — bit-identical to the sequential
        fallback by construction, since it *is* the sequential
        fallback. The base simulator (data, counters, stats, clock,
        scalar registers) is restored afterward even on error; fallback
        scratch stats are discarded, matching the batched-run contract
        that per-simulator statistics are not maintained.
        """
        sim = self.sim
        if step.writes_mrf:
            self._split_mrfs()
        split = self._mrfs is not None
        # Base-simulator state to restore. VRF swaps are bounded by the
        # plan footprints, which compile_plan widened with this step's
        # own extents.
        saved_vrf = {}
        for mem, data in self._vrf.items():
            depth = data.shape[1]
            if depth:
                vrf = sim.vrfs[mem]
                saved_vrf[mem] = (vrf._data[:depth].copy(), vrf.reads,
                                  vrf.writes)
        saved_scalars = dict(sim.scalar_regs)
        saved_stats = sim.stats
        saved_clock = sim._trace_clock
        dram = sim.dram
        saved_dram = (dram._vectors, dram._tiles, dram.bytes_read,
                      dram.bytes_written)
        netq = sim.netq
        saved_netq = (netq._in_vectors, netq._in_tiles, netq._out_vectors,
                      netq.vectors_received, netq.vectors_sent)
        saved_mrf = sim.mrf
        saved_mrf_counts = (saved_mrf.reads, saved_mrf.writes)
        saved_windows = sim._derived_windows
        popped_v = popped_t = 0
        new_outs: List[List[np.ndarray]] = []
        try:
            sim.stats = type(saved_stats)()
            for b in range(self.batch):
                for mem, data in self._vrf.items():
                    if data.shape[1]:
                        sim.vrfs[mem]._data[:data.shape[1]] = data[b]
                dram._vectors = {k: v[b].copy()
                                 for k, v in self._dram_vectors.items()}
                dram._tiles = {k: v[b].copy()
                               for k, v in self._dram_tiles.items()}
                netq._in_vectors = collections.deque(
                    v[b].copy() for v in self._pending_vectors)
                netq._in_tiles = collections.deque(
                    t[b].copy() for t in self._pending_tiles)
                netq._out_vectors = []
                if split:
                    sim.mrf = self._mrfs[b]
                    # The derived-window cache validates entries against
                    # the *current* MRF's generation counter; private
                    # per-request MRFs can collide on generation, so
                    # each request gets a fresh (scratch) cache.
                    sim._derived_windows = collections.OrderedDict()
                step.run(sim)
                for mem, data in self._vrf.items():
                    if data.shape[1]:
                        data[b] = sim.vrfs[mem]._data[:data.shape[1]]
                for space, batched in ((dram._vectors, self._dram_vectors),
                                       (dram._tiles, self._dram_tiles)):
                    for k, arr in space.items():
                        dst = batched.get(k)
                        if dst is None or dst.shape[1:] != arr.shape:
                            dst = np.zeros((self.batch,) + arr.shape,
                                           dtype=arr.dtype)
                            batched[k] = dst
                        dst[b] = arr
                popped_v = len(self._pending_vectors) - len(netq._in_vectors)
                popped_t = len(self._pending_tiles) - len(netq._in_tiles)
                new_outs.append([np.asarray(v, dtype=np.float32)
                                 for v in netq._out_vectors])
        finally:
            for mem, (data, nreads, nwrites) in saved_vrf.items():
                vrf = sim.vrfs[mem]
                vrf._data[:data.shape[0]] = data
                vrf.reads, vrf.writes = nreads, nwrites
            sim.scalar_regs.clear()
            sim.scalar_regs.update(saved_scalars)
            sim.stats = saved_stats
            sim._trace_clock = saved_clock
            (dram._vectors, dram._tiles, dram.bytes_read,
             dram.bytes_written) = saved_dram
            (netq._in_vectors, netq._in_tiles, netq._out_vectors,
             netq.vectors_received, netq.vectors_sent) = saved_netq
            sim.mrf = saved_mrf
            sim.mrf.reads, sim.mrf.writes = saved_mrf_counts
            sim._derived_windows = saved_windows
        # Lockstep execution: every request popped/pushed identically.
        for _ in range(popped_v):
            self._pending_vectors.popleft()
        for _ in range(popped_t):
            self._pending_tiles.popleft()
        if new_outs and new_outs[0]:
            for j in range(len(new_outs[0])):
                self._outputs.append(
                    np.stack([new_outs[b][j] for b in range(self.batch)]))

    # -- inspection --------------------------------------------------------

    def snapshot(self, b: int) -> Dict[str, object]:
        """Request ``b``'s architectural state, in the same schema as
        :meth:`FunctionalSimulator.snapshot` (outputs not drained)."""
        if self._mrfs is not None:
            mrf_tiles = self._mrfs[b]._tiles.copy()
        else:
            mrf_tiles = self.sim.mrf._tiles.copy()
        vrf_state = {}
        for mem, data in self._vrf.items():
            full = self.sim.vrfs[mem]._data.copy()
            full[:data.shape[1]] = data[b]
            vrf_state[mem.name] = full
        return {
            "vrf": vrf_state,
            "mrf": mrf_tiles,
            "dram_vectors": {k: v[b].copy()
                             for k, v in self._dram_vectors.items()},
            "dram_tiles": {k: v[b].copy()
                           for k, v in self._dram_tiles.items()},
            "outputs": [v[b].copy() for v in self._outputs],
            "netq_pending_inputs": len(self._pending_vectors),
            "netq_pending_tiles": len(self._pending_tiles),
            "scalar_regs": dict(self._scalars),
        }
