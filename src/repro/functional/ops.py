"""Exact vector kernels for the point-wise (MFU) operations.

The MFU datapath executes secondary operations as float16 (Section VI);
each kernel computes in float32 and rounds the result to float16 unless
``exact`` is requested (used when verifying program structure independent
of numerics).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..isa.opcodes import Opcode
from ..numerics.bfp import to_float16


def _finish(x: np.ndarray, exact: bool) -> np.ndarray:
    result = np.asarray(x, dtype=np.float32)
    return result if exact else to_float16(result)


def vv_add(a: np.ndarray, b: np.ndarray, exact: bool = False) -> np.ndarray:
    """Point-wise addition (``vv_add``)."""
    return _finish(np.asarray(a, np.float32) + np.asarray(b, np.float32),
                   exact)


def vv_a_sub_b(a: np.ndarray, b: np.ndarray,
               exact: bool = False) -> np.ndarray:
    """Point-wise subtraction, chain value is the minuend."""
    return _finish(np.asarray(a, np.float32) - np.asarray(b, np.float32),
                   exact)


def vv_b_sub_a(a: np.ndarray, b: np.ndarray,
               exact: bool = False) -> np.ndarray:
    """Point-wise subtraction, chain value is the subtrahend."""
    return _finish(np.asarray(b, np.float32) - np.asarray(a, np.float32),
                   exact)


def vv_max(a: np.ndarray, b: np.ndarray, exact: bool = False) -> np.ndarray:
    """Point-wise maximum."""
    return _finish(np.maximum(np.asarray(a, np.float32),
                              np.asarray(b, np.float32)), exact)


def vv_mul(a: np.ndarray, b: np.ndarray, exact: bool = False) -> np.ndarray:
    """Hadamard (element-wise) product."""
    return _finish(np.asarray(a, np.float32) * np.asarray(b, np.float32),
                   exact)


def v_relu(a: np.ndarray, exact: bool = False) -> np.ndarray:
    """Point-wise rectified linear unit."""
    return _finish(np.maximum(np.asarray(a, np.float32), 0.0), exact)


def v_sigm(a: np.ndarray, exact: bool = False) -> np.ndarray:
    """Point-wise logistic sigmoid (saturates cleanly at the rails)."""
    a64 = np.asarray(a, dtype=np.float64)
    with np.errstate(over="ignore"):
        return _finish(1.0 / (1.0 + np.exp(-a64)), exact)


def v_tanh(a: np.ndarray, exact: bool = False) -> np.ndarray:
    """Point-wise hyperbolic tangent."""
    return _finish(np.tanh(np.asarray(a, dtype=np.float64)), exact)


#: Two-operand point-wise kernels indexed by opcode.
BINARY_KERNELS: Dict[Opcode, Callable] = {
    Opcode.VV_ADD: vv_add,
    Opcode.VV_A_SUB_B: vv_a_sub_b,
    Opcode.VV_B_SUB_A: vv_b_sub_a,
    Opcode.VV_MAX: vv_max,
    Opcode.VV_MUL: vv_mul,
}

#: One-operand point-wise kernels indexed by opcode.
UNARY_KERNELS: Dict[Opcode, Callable] = {
    Opcode.V_RELU: v_relu,
    Opcode.V_SIGM: v_sigm,
    Opcode.V_TANH: v_tanh,
}
