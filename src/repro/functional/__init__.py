"""Functional (architectural) simulation of the BW NPU."""

from .executor import ExecutionStats, FunctionalSimulator
from .replay import BatchedReplay, ReplayExecutor, ReplayPlan, compile_plan
from . import ops

__all__ = [
    "ExecutionStats", "FunctionalSimulator", "ops",
    "BatchedReplay", "ReplayExecutor", "ReplayPlan", "compile_plan",
]
