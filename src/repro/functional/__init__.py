"""Functional (architectural) simulation of the BW NPU."""

from .executor import ExecutionStats, FunctionalSimulator
from . import ops

__all__ = ["ExecutionStats", "FunctionalSimulator", "ops"]
