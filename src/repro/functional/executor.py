"""Functional (architectural-state) simulator of the BW NPU.

Executes :class:`repro.isa.program.NpuProgram` objects against the full
architectural state: vector register files, the matrix register file,
DRAM, the network queues, and the scalar control registers. Mega-SIMD
semantics follow Section IV-C: with ``rows=R`` and ``columns=C`` set, an
``mv_mul`` treats ``R*C`` consecutive MRF entries as a tiled R·N x C·N
matrix, the feeding ``v_rd`` reads C contiguous entries, point-wise ops
operate on R vectors, and terminal ``v_wr`` writes R contiguous entries.

Numerics model the hardware: MRF weights and MVM input vectors are
quantized to the configured BFP format with exact accumulation, and all
pipeline values are float16 — unless the simulator is built with
``exact=True``, which disables quantization for structural verification.
"""

from __future__ import annotations

import collections
import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import NpuConfig
from ..errors import ExecutionError, MemoryError_
from ..isa.chain import InstructionChain
from ..isa.instructions import Instruction
from ..isa.memspace import MemId, ScalarReg
from ..isa.opcodes import Opcode
from ..isa.program import NpuProgram, SetScalar
from ..memory.dram import Dram
from ..memory.netq import NetworkQueues
from ..memory.regfile import MatrixRegisterFile, VectorRegisterFile
from ..numerics.bfp import decompose, quantize, scales_of, to_float16
from ..obs import Metrics, Tracer, or_null, or_null_metrics
from . import ops

#: Quantized MVM input vectors memoized per unique buffer content.
_INPUT_CACHE_SLOTS = 256
#: Derived (mantissa/float64) weight windows kept per simulator.
_DERIVED_WINDOW_SLOTS = 64
#: Compiled replay plans kept per simulator (one per resident program
#: binding — the serving model holds a handful of programs at most).
_PLAN_CACHE_SLOTS = 8


@dataclasses.dataclass
class ExecutionStats:
    """Dynamic execution statistics."""

    chains_executed: int = 0
    instructions_executed: int = 0
    mv_mul_count: int = 0
    #: Multiply-accumulate operations dispatched by mv_mul instructions.
    macs: int = 0
    #: FLOPs from point-wise vector operations.
    pointwise_flops: int = 0

    @property
    def total_flops(self) -> int:
        return 2 * self.macs + self.pointwise_flops


class FunctionalSimulator:
    """Architecturally accurate executor for NPU programs."""

    def __init__(self, config: NpuConfig, exact: bool = False,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None,
                 naive: bool = False):
        """
        Args:
            config: The NPU instance to simulate.
            exact: Disable BFP/float16 quantization (float32 throughout);
                used for structural verification against references.
            tracer: Optional :class:`~repro.obs.Tracer` receiving
                per-chain and per-instruction spans. The functional
                simulator has no cycle clock, so the trace timebase is
                retired instruction count (one tick per instruction).
            metrics: Optional :class:`~repro.obs.Metrics` registry
                receiving per-opcode counters, MAC, and FLOP totals.
            naive: Execute ``mv_mul`` with the reference per-tile loop
                (one MRF tile read and one small matmul per tile,
                re-quantizing inputs on every call) instead of the
                vectorized window path. Bit-identical to the default;
                kept as the baseline for the perf benchmark harness and
                the equivalence test suite (see docs/PERFORMANCE.md).
        """
        self.config = config
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)
        self.naive = naive
        #: Fast no-observer check: when False, per-instruction spans and
        #: counters are skipped entirely (the trace clock still advances).
        self._observing = self.tracer.enabled or self.metrics.enabled
        #: Pre-resolved per-opcode counters (avoids a string format and
        #: registry lookup per retired instruction).
        self._op_counters: Dict[str, object] = {}
        #: Chains whose MFU capacity check already passed (chain objects
        #: are immutable; loop replays revisit the same objects).
        self._validated_chains: set = set()
        #: Trace timebase: instructions retired so far.
        self._trace_clock = 0
        self.exact = exact or config.mantissa_bits == 0
        # Memoized quantized MVM input vectors, keyed by the exact buffer
        # bytes (safe: quantization is a pure function of value and
        # format), and derived per-window operands for the vectorized
        # mv_mul, keyed by window plus MRF generation.
        self._input_cache: "collections.OrderedDict[bytes, tuple]" = \
            collections.OrderedDict()
        self._derived_windows: "collections.OrderedDict[Tuple[int, int, int], tuple]" = \
            collections.OrderedDict()
        #: Compiled replay plans, keyed by (program uid, bindings, entry
        #: scalar registers); see :meth:`plan_for`.
        self._plans: "collections.OrderedDict[tuple, object]" = \
            collections.OrderedDict()
        n = config.native_dim
        self.vrfs: Dict[MemId, VectorRegisterFile] = {
            MemId.InitialVrf: VectorRegisterFile(
                "InitialVrf", config.initial_vrf_depth, n),
            MemId.AddSubVrf: VectorRegisterFile(
                "AddSubVrf", config.addsub_vrf_depth, n),
            MemId.MultiplyVrf: VectorRegisterFile(
                "MultiplyVrf", config.multiply_vrf_depth, n),
        }
        self.mrf = MatrixRegisterFile("MatrixRf", config.mrf_address_space,
                                      n, tile_engines=config.tile_engines)
        self.dram = Dram(native_dim=n)
        self.netq = NetworkQueues(native_dim=n)
        self.scalar_regs: Dict[ScalarReg, int] = {
            ScalarReg.Rows: 1, ScalarReg.Columns: 1, ScalarReg.Iterations: 0,
        }
        self.stats = ExecutionStats()
        self._bfp = None if self.exact else config.bfp_format
        # MVM kernels operate on *segments*: a native row splits into
        # ``nb = N / block_size`` scale blocks, and a cols-wide window
        # becomes ``S = cols * nb`` segments of width ``block_size``,
        # ordered (c, k) lexicographic — the reference accumulation
        # order. With the paper's native-block formats nb == 1 and
        # segments coincide with column blocks.
        if self._bfp is not None:
            self._seg_width = self._bfp.block_size
            self._nb = n // self._seg_width
        else:
            self._seg_width = n
            self._nb = 1
        # The mantissa-GEMV fast path computes each scale-block dot
        # product as a float32 GEMV over integer mantissas (the hardware's
        # exact integer accumulation tree, Section V-A). It is exact —
        # hence bit-identical to the float64 reference — whenever every
        # partial sum fits float32's 24-bit integer range.
        self._mantissa_gemv = (
            not self.exact
            and self._seg_width * (self._bfp.max_mantissa ** 2)
            <= (1 << 24))
        # Narrower still: pack k mantissa rows into disjoint bit slots of
        # one float64 lane and recover the k exact integer dot products
        # from a single GEMV — halving weight traffic for the 2-3 bit
        # production formats (the hardware's narrow-precision bandwidth
        # multiplier, Section VI). Slot width w holds any block dot
        # (|dot| <= block_size*(2^mb-1)^2 <= 2^(w-1)-1) and k slots keep
        # every partial sum under float64's 53-bit exact-integer range.
        if not self.exact:
            block_dot_max = self._seg_width * (self._bfp.max_mantissa ** 2)
            self._pack_width = block_dot_max.bit_length() + 1
            k = 53 // self._pack_width
            self._pack_slots = k if k >= 3 else 0
        else:
            self._pack_width = 0
            self._pack_slots = 0

    # -- host-facing utilities ---------------------------------------------

    def load_matrix(self, base_tile: int, matrix: np.ndarray) -> int:
        """Pin ``matrix`` into the MRF starting at ``base_tile``.

        The matrix is zero-padded to native tile multiples and stored
        row-major by tile — tile ``(r, c)`` lands at ``base_tile + r*C + c``
        — matching ``mv_mul``'s mega-SIMD layout. Weights are quantized to
        the configured BFP format on write (the hardware quantizes during
        initialization from the network/DRAM). Returns the number of tile
        slots consumed.

        This is the "initialize over the network" path condensed to one
        call; the explicit ISA path (``m_rd``/``m_wr`` chains) is also
        supported and equivalent.
        """
        tiles = self._tiles_of(matrix)
        count = tiles.shape[0]
        self.mrf.write_tiles(base_tile, tiles)
        return count

    def _tiles_of(self, matrix: np.ndarray) -> np.ndarray:
        n = self.config.native_dim
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise ExecutionError("load_matrix expects a 2-D array")
        rows = math.ceil(matrix.shape[0] / n)
        cols = math.ceil(matrix.shape[1] / n)
        padded = np.zeros((rows * n, cols * n), dtype=np.float32)
        padded[:matrix.shape[0], :matrix.shape[1]] = matrix
        # Tile (r, c) lands at slot r*cols + c: one reshape/transpose.
        tiles = np.ascontiguousarray(
            padded.reshape(rows, n, cols, n)
            .transpose(0, 2, 1, 3)
            .reshape(rows * cols, n, n))
        if not self.exact:
            # Quantize per native tile row (after tiling) — the same
            # grouping as the ISA m_wr path, which matters for per-tile
            # scale granularity.
            tiles = quantize(tiles, self._bfp)
        return tiles

    def load_vector(self, mem: MemId, index: int,
                    vector: np.ndarray) -> int:
        """Write a flat vector into a VRF, padded to native multiples.

        Returns the number of VRF entries consumed.
        """
        n = self.config.native_dim
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        count = max(1, math.ceil(vector.shape[0] / n))
        padded = np.zeros(count * n, dtype=np.float32)
        padded[:vector.shape[0]] = vector
        self._vrf(mem).write(index, padded.reshape(count, n))
        return count

    def read_vector(self, mem: MemId, index: int, length: int) -> np.ndarray:
        """Read ``length`` elements starting at VRF entry ``index``."""
        n = self.config.native_dim
        count = math.ceil(length / n)
        data = self._vrf(mem).read(index, count).reshape(-1)
        return data[:length]

    def push_input(self, vector: np.ndarray) -> None:
        """Queue a flat input vector on the network, padded and split
        into native vectors."""
        n = self.config.native_dim
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        count = max(1, math.ceil(vector.shape[0] / n))
        padded = np.zeros(count * n, dtype=np.float32)
        padded[:vector.shape[0]] = vector
        for i in range(count):
            self.netq.push_input(padded[i * n:(i + 1) * n])

    def pop_outputs_flat(self) -> np.ndarray:
        """Drain the output queue into one flat array."""
        outs = self.netq.pop_outputs()
        if not outs:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate(outs)

    def snapshot(self) -> Dict[str, object]:
        """Copy of the full architectural state, for conformance checks.

        The schema matches
        :meth:`repro.verify.reference.ReferenceInterpreter.snapshot`, so
        differential runners can compare executors field by field. The
        output queue is *not* drained.
        """
        return {
            "vrf": {mem.name: vrf.read(0, vrf.depth)
                    for mem, vrf in self.vrfs.items()},
            "mrf": self.mrf.read_tiles(0, self.mrf.capacity),
            "dram_vectors": {k: v.copy()
                             for k, v in self.dram._vectors.items()},
            "dram_tiles": {k: v.copy()
                           for k, v in self.dram._tiles.items()},
            "outputs": [v.copy() for v in self.netq._out_vectors],
            "netq_pending_inputs": self.netq.pending_inputs,
            "netq_pending_tiles": len(self.netq._in_tiles),
            "scalar_regs": dict(self.scalar_regs),
        }

    # -- execution -----------------------------------------------------------

    def run(self, program: NpuProgram,
            bindings: Optional[Dict[str, int]] = None,
            compiled: bool = False) -> ExecutionStats:
        """Execute ``program`` to completion; returns dynamic stats.

        With ``compiled=True`` the program is first compiled (and cached,
        see :meth:`plan_for`) into a flat replay plan — same architectural
        results, statistics, spans, and counters, executed without
        per-event dispatch (:mod:`repro.functional.replay`). One timing
        divergence: a run that *raises* may leave stats/clock/scalar
        registers behind the interpreter's (totals apply on success), and
        a missing loop binding raises before any event executes.
        """
        span = self.tracer.begin("run", float(self._trace_clock),
                                 track="executor")
        if compiled:
            from .replay import ReplayExecutor
            ReplayExecutor(self, self.plan_for(program, bindings)).run()
        else:
            for event in program.events(bindings):
                if isinstance(event, SetScalar):
                    self._set_scalar(event)
                else:
                    self.execute_chain(event)
        self.tracer.end(span, float(self._trace_clock),
                        instructions=self.stats.instructions_executed,
                        chains=self.stats.chains_executed)
        return self.stats

    def plan_for(self, program: NpuProgram,
                 bindings: Optional[Dict[str, int]] = None,
                 force_fallback=None):
        """Compiled replay plan for ``program``, cached on this simulator.

        The cache key covers everything compilation depends on: the
        program identity, the loop bindings, and the entry scalar
        registers (compile-time control folding). Plans survive MRF
        rewrites — pre-bound weight decompositions revalidate against the
        MRF generation counter on every execution.

        ``force_fallback`` (see :func:`repro.functional.replay.compile_plan`)
        compiles fresh and bypasses the cache — forced-fallback plans
        are a verification tool, not a steady-state serving path.
        """
        from .replay import compile_plan
        if force_fallback is not None:
            return compile_plan(self, program, bindings,
                                force_fallback=force_fallback)
        key = (program.uid, tuple(sorted((bindings or {}).items())),
               self.scalar_regs[ScalarReg.Rows],
               self.scalar_regs[ScalarReg.Columns],
               self.scalar_regs[ScalarReg.Iterations])
        plan = self._plans.get(key)
        if plan is None:
            plan = compile_plan(self, program, bindings)
            self._plans[key] = plan
            while len(self._plans) > _PLAN_CACHE_SLOTS:
                self._plans.popitem(last=False)
        else:
            self._plans.move_to_end(key)
        return plan

    def _tick(self, name: str, **attrs) -> None:
        """Retire one instruction: advance the trace clock one tick and
        record the instruction span and opcode counter.

        With the null tracer and null metrics this is a single integer
        increment — no span allocation, no counter lookup.
        """
        t = self._trace_clock
        self._trace_clock = t + 1
        if not self._observing:
            return
        self.tracer.span(name, float(t), float(t) + 1.0, **attrs)
        counter = self._op_counters.get(name)
        if counter is None:
            counter = self.metrics.counter(f"executor.ops.{name}")
            self._op_counters[name] = counter
        counter.inc()

    def _set_scalar(self, event: SetScalar) -> None:
        if event.reg in (ScalarReg.Rows, ScalarReg.Columns) \
                and event.value < 1:
            raise ExecutionError(f"{event.reg.name} must be >= 1")
        self.scalar_regs[event.reg] = event.value
        self.stats.instructions_executed += 1
        self._tick("set_scalar", reg=event.reg.name, value=event.value)

    def execute_chain(self, chain: InstructionChain) -> None:
        """Execute one instruction chain against architectural state."""
        self.stats.chains_executed += 1
        self.stats.instructions_executed += len(chain) + 1  # + end_chain
        if not self._observing:
            if chain.is_matrix_chain:
                self._execute_matrix_chain(chain)
            else:
                self._execute_vector_chain(chain)
            self._trace_clock += 1  # end_chain
            return
        span = self.tracer.begin(
            "chain", float(self._trace_clock), track="executor",
            matrix=chain.is_matrix_chain, instructions=len(chain) + 1)
        if chain.is_matrix_chain:
            self._execute_matrix_chain(chain)
        else:
            self._execute_vector_chain(chain)
        self._tick("end_chain")
        self.tracer.end(span, float(self._trace_clock))
        self.metrics.counter("executor.chains").inc()

    # -- matrix chains ------------------------------------------------------

    def _execute_matrix_chain(self, chain: InstructionChain) -> None:
        rows = self.scalar_regs[ScalarReg.Rows]
        cols = self.scalar_regs[ScalarReg.Columns]
        count = rows * cols
        observing = self._observing
        rd, wr = chain.instructions
        if rd.mem_id is MemId.NetQ:
            tiles = self.netq.pop_input_tiles(count)
        else:
            tiles = self.dram.read_tiles(rd.index, count)
        if observing:
            self._tick(rd.opcode.name.lower(), mem=rd.mem_id.name,
                       index=rd.index, tiles=count)
        else:
            self._trace_clock += 1
        if wr.mem_id is MemId.MatrixRf:
            if not self.exact:
                # Weights quantize at MRF initialization, per native row.
                tiles = quantize(tiles, self._bfp)
            self.mrf.write_tiles(wr.index, tiles)
        else:
            self.dram.write_tiles(wr.index, tiles)
        if observing:
            self._tick(wr.opcode.name.lower(), mem=wr.mem_id.name,
                       index=wr.index, tiles=count)
            self.metrics.counter("executor.tiles_moved").inc(count)
        else:
            self._trace_clock += 1

    # -- vector chains ------------------------------------------------------

    def _execute_vector_chain(self, chain: InstructionChain) -> None:
        if id(chain) not in self._validated_chains:
            chain.assign_function_units(self.config.mfus)  # capacity check
            self._validated_chains.add(id(chain))
        rows = self.scalar_regs[ScalarReg.Rows]
        cols = self.scalar_regs[ScalarReg.Columns]
        width_in = cols if chain.has_mv_mul else rows
        observing = self._observing

        head = chain.source
        value = self._read_vectors(head, width_in)
        # The head read skips the defensive copy, so `value` may alias a
        # VRF until the first compute op replaces it; a v_wr overlapping
        # the aliased entries must materialize the copy first.
        view_range = (head.mem_id, head.index, width_in) \
            if head.mem_id in self.vrfs else None
        if observing:
            self._tick(head.opcode.name.lower(),
                       mem=head.mem_id.name if head.mem_id else None,
                       index=head.index, vectors=width_in)
        else:
            self._trace_clock += 1

        for instr in chain.instructions[1:]:
            if instr.opcode is Opcode.MV_MUL:
                value = self._mv_mul(instr, value, rows, cols)
                view_range = None
            elif instr.opcode in ops.BINARY_KERNELS:
                operand = self._pointwise_operand(instr, rows)
                kernel = ops.BINARY_KERNELS[instr.opcode]
                value = kernel(value, operand, exact=self.exact)
                view_range = None
                self.stats.pointwise_flops += value.size
                if observing:
                    self.metrics.counter("executor.pointwise_flops") \
                        .inc(value.size)
            elif instr.opcode in ops.UNARY_KERNELS:
                kernel = ops.UNARY_KERNELS[instr.opcode]
                value = kernel(value, exact=self.exact)
                view_range = None
                self.stats.pointwise_flops += value.size
                if observing:
                    self.metrics.counter("executor.pointwise_flops") \
                        .inc(value.size)
            elif instr.opcode is Opcode.V_WR:
                if (view_range is not None
                        and instr.mem_id is view_range[0]
                        and instr.index < view_range[1] + view_range[2]
                        and view_range[1] < instr.index + width_in):
                    value = value.copy()
                    view_range = None
                self._write_vectors(instr, value)
            else:  # pragma: no cover - chain validation prevents this
                raise ExecutionError(f"unexpected opcode {instr.opcode}")
            if observing:
                self._tick(instr.opcode.name.lower(),
                           mem=instr.mem_id.name if instr.mem_id else None,
                           index=instr.index)
            else:
                self._trace_clock += 1

    def _vrf(self, mem: MemId) -> VectorRegisterFile:
        if mem not in self.vrfs:
            raise MemoryError_(f"{mem.name} is not a vector register file")
        return self.vrfs[mem]

    def _read_vectors(self, instr: Instruction, count: int) -> np.ndarray:
        mem = instr.mem_id
        if mem is MemId.NetQ:
            return self.netq.pop_input(count)
        if mem is MemId.Dram:
            return self.dram.read_vectors(instr.index, count)
        return self._vrf(mem).read(instr.index, count, copy=False)

    def _write_vectors(self, instr: Instruction, value: np.ndarray) -> None:
        value = np.atleast_2d(value)
        mem = instr.mem_id
        if mem is MemId.NetQ:
            self.netq.push_output(value)
        elif mem is MemId.Dram:
            self.dram.write_vectors(instr.index, value)
        else:
            self._vrf(mem).write(instr.index, value)

    def _pointwise_operand(self, instr: Instruction, rows: int) -> np.ndarray:
        if instr.opcode is Opcode.VV_MUL:
            return self._vrf(MemId.MultiplyVrf).read(instr.index, rows,
                                                     copy=False)
        return self._vrf(MemId.AddSubVrf).read(instr.index, rows, copy=False)

    def _mv_mul(self, instr: Instruction, value: np.ndarray,
                rows: int, cols: int) -> np.ndarray:
        n = self.config.native_dim
        value = np.atleast_2d(value)
        if value.shape != (cols, n):
            raise ExecutionError(
                f"mv_mul expected {cols} input vector(s) of length {n}, "
                f"got shape {value.shape}")
        base = instr.index
        if base + rows * cols > self.config.mrf_address_space:
            raise MemoryError_(
                f"mv_mul tile window [{base}, {base + rows * cols}) "
                f"exceeds MRF address space "
                f"{self.config.mrf_address_space}")
        if self.naive:
            out = self._mv_mul_naive(base, value, rows, cols)
        else:
            out = self._mv_mul_vectorized(base, value, rows, cols)
        self.stats.mv_mul_count += 1
        self.stats.macs += rows * cols * n * n
        if self._observing:
            self.metrics.counter("executor.macs").inc(rows * cols * n * n)
        result = out.astype(np.float32)
        return result if self.exact else to_float16(result)

    def _mv_mul_naive(self, base: int, value: np.ndarray,
                      rows: int, cols: int) -> np.ndarray:
        """Reference mega-SIMD MVM: one tile read and one small matmul
        per (row, column) tile, accumulating segments left to right."""
        n = self.config.native_dim
        if self.exact:
            inputs = value.astype(np.float64)
        else:
            # The MVM quantizes its input vector at the scale-block level;
            # weights were quantized when written into the MRF.
            inputs = quantize(value, self._bfp).astype(np.float64)
        b, nb = self._seg_width, self._nb
        out = np.zeros((rows, n), dtype=np.float64)
        for r in range(rows):
            acc = np.zeros(n, dtype=np.float64)
            for c in range(cols):
                tile = self.mrf.read_tile(base + r * cols + c)
                if nb == 1:
                    acc += tile.astype(np.float64) @ inputs[c]
                else:
                    # Sub-native scale blocks: one GEMV per segment so
                    # the (inexact) cross-block additions happen in the
                    # reference (c, k) order. Each segment GEMV itself
                    # is exact (one shared scale per output element).
                    tile64 = tile.astype(np.float64)
                    for k in range(nb):
                        lo, hi = k * b, (k + 1) * b
                        acc += tile64[:, lo:hi] @ inputs[c, lo:hi]
            out[r] = acc
        return out

    def _mv_mul_vectorized(self, base: int, value: np.ndarray,
                           rows: int, cols: int) -> np.ndarray:
        """Vectorized mega-SIMD MVM over the assembled weight window.

        Bit-identical to :meth:`_mv_mul_naive` by construction:

        * **Quantized path** — weights and inputs are BFP values
          ``m * 2^e`` with integer mantissas ``|m| <= 2^mb - 1``. Each
          scale-block dot product is an integer dot scaled by a power of
          two, so every float64 partial sum in the reference loop is
          *exact*. The fast path computes the integer dots with one
          float32 GEMV per segment (exact while
          ``block_size * (2^mb - 1)^2 <= 2^24`` — the hardware's integer
          accumulation tree, Section V-A), rescales in float64 (exact
          products), and accumulates segments in the same (c, k) order
          as the reference loop: every partial sum matches bit for bit.
        * **Exact/wide path** — per-tile float64 matvecs batched as one
          stacked GEMV per segment, accumulated in the reference
          segment order; the per-element dot and add sequence is the
          same as the naive loop's.
        """
        n = self.config.native_dim
        segs = cols * self._nb
        if self._pack_slots:
            x_mant, x_scales = self._quantized_input(value)
            w_packed, w_scales = self._window_operands(base, rows, cols)
            # One batched GEMV per segment yields the k-packed exact
            # integer block dots; unpack all segments at once, then
            # accumulate the per-segment terms in the reference order
            # (c, k) = (0, 0), (0, 1), ...
            packed = np.matmul(w_packed, x_mant[:, :, np.newaxis])[:, :, 0]
            dots = self._unpack(packed, rows * n)
            terms = dots * (w_scales * x_scales)
            if segs == 1:
                return terms.reshape(rows, n)
            acc = terms[0] + terms[1]
            for s in range(2, segs):
                acc += terms[s]
            return acc.reshape(rows, n)
        if self._mantissa_gemv:
            x_mant, x_scales = self._quantized_input(value)
            w_mant, w_scales = self._window_operands(base, rows, cols)
            # acc accumulates the exact per-segment terms in the
            # reference order (c, k) = (0, 0), (0, 1), ...
            acc = ((w_mant[0] @ x_mant[0]).astype(np.float64)
                   * (w_scales[0] * x_scales[0]))
            for s in range(1, segs):
                acc += ((w_mant[s] @ x_mant[s]).astype(np.float64)
                        * (w_scales[s] * x_scales[s]))
            return acc.reshape(rows, n)
        if self.exact:
            inputs = value.astype(np.float64)
        else:
            inputs = self._quantized_input_f64(value) \
                .reshape(segs, self._seg_width)
        blocks = self._window_blocks_f64(base, rows, cols)
        acc = blocks[0] @ inputs[0]
        for s in range(1, segs):
            acc += blocks[s] @ inputs[s]
        return acc.reshape(rows, n)

    # -- mv_mul operand caches ----------------------------------------------

    def _quantized_input(self, value: np.ndarray) -> tuple:
        """BFP-decomposed input vectors: float32 mantissas (S, block)
        and float64 per-segment scales (S, 1), memoized on buffer
        content, with ``S = cols * nb`` segments in (c, k) order.

        Safe because quantization is a pure function of the bytes and the
        (fixed) format; weights need no such cache — they quantize once
        at MRF write time.
        """
        entry = self._input_lookup(value)
        if entry[0] is None:
            value = entry[2]
            mant, exps = decompose(value, self._bfp)
            if self._pack_slots:
                mant = mant.astype(np.float64)  # packed path runs f64 GEMVs
            segs = value.shape[0] * self._nb
            mant = mant.reshape(segs, self._seg_width)
            scales = scales_of(exps, self._bfp).reshape(segs, 1)
            entry[0] = (mant, scales)
        return entry[0]

    def _quantized_input_f64(self, value: np.ndarray) -> np.ndarray:
        """Quantized input vectors as float64 (wide-mantissa fallback)."""
        entry = self._input_lookup(value)
        if entry[1] is None:
            entry[1] = quantize(entry[2], self._bfp).astype(np.float64)
        return entry[1]

    def _input_lookup(self, value: np.ndarray) -> list:
        """LRU entry ``[mantissa_decomposition, f64_values, value_copy]``
        for the exact bytes of ``value``."""
        key = value.tobytes()
        entry = self._input_cache.get(key)
        if entry is None:
            entry = [None, None, np.array(value, dtype=np.float32)]
            self._input_cache[key] = entry
            while len(self._input_cache) > _INPUT_CACHE_SLOTS:
                self._input_cache.popitem(last=False)
        else:
            self._input_cache.move_to_end(key)
        return entry

    def _window_operands(self, base: int, rows: int, cols: int) -> tuple:
        """Mantissa-GEMV operands for a weight window.

        Plain mode: float32 mantissa segments (S, rows*N, block) and
        float64 scales (S, rows*N), with ``S = cols * nb`` segments in
        (c, k) order. Packed mode (``_pack_slots`` = k > 0): k mantissa
        rows share one float64 lane, (S, ceil(rows*N/k), block), with
        the same scales array.

        Derived from the assembled MRF window (weights are already
        BFP-quantized there, so the decomposition is exact and
        idempotent) and cached against the MRF generation.
        """
        entry = self._window_lookup(base, rows, cols)
        if entry[1] is None:
            n = self.config.native_dim
            b, nb = self._seg_width, self._nb
            segs = cols * nb
            window = entry[0]
            # Column-block layout: blocks[c] stacks tile column c of every
            # window row, (rows*N, N); splitting each native row into nb
            # scale blocks yields segment s = c*nb + k as (rows*N, block),
            # each row sharing one exponent.
            blocks = np.ascontiguousarray(
                window.reshape(rows * n, cols, n).transpose(1, 0, 2))
            mant, exps = decompose(blocks.reshape(-1, n), self._bfp)
            scales = np.ascontiguousarray(
                scales_of(exps, self._bfp)
                .reshape(cols, rows * n, nb).transpose(0, 2, 1)
                .reshape(segs, rows * n))
            mant = np.ascontiguousarray(
                mant.reshape(cols, rows * n, nb, b).transpose(0, 2, 1, 3)
                .reshape(segs, rows * n, b))
            if self._pack_slots:
                mant = self._pack_rows(mant, segs, rows * n, b)
            entry[1] = (mant, scales)
        return entry[1]

    def _pack_rows(self, mant: np.ndarray, cols: int, total_rows: int,
                   n: int) -> np.ndarray:
        """Pack k consecutive mantissa rows into one float64 lane each.

        Row ``g*k + t`` lands in bit slot ``w*(k-1-t)`` of packed row
        ``g``. Slot values stay integers below ``2^(w-1)`` through the
        GEMV, so the packed dot product is the exact sum of k disjoint
        slot dots; :meth:`_unpack` recovers them.
        """
        k, w = self._pack_slots, self._pack_width
        groups = -(-total_rows // k)
        padded = np.zeros((cols, groups * k, n), dtype=np.float64)
        padded[:, :total_rows] = mant
        slot_scale = np.exp2(
            w * (k - 1 - np.arange(k, dtype=np.float64)))
        packed = (padded.reshape(cols, groups, k, n)
                  * slot_scale[np.newaxis, np.newaxis, :, np.newaxis]
                  ).sum(axis=2)
        return np.ascontiguousarray(packed)

    def _unpack(self, packed_dots: np.ndarray, count: int) -> np.ndarray:
        """Recover the k exact integer block dots from packed dots.

        ``packed_dots`` is (cols, G); returns (cols, count). Rounding
        ``p / 2^(w*(k-1-t))`` isolates the slot-t *prefix* exactly — the
        slots below it sum to strictly less than half a unit (each |dot|
        <= 2^(w-1) - 1) — and adjacent prefixes difference to the slot
        values. Every product and difference stays in float64's exact
        integer range by the packing bound.
        """
        k, w = self._pack_slots, self._pack_width
        inv = np.exp2(-w * (k - 1 - np.arange(k, dtype=np.float64)))
        prefixes = np.rint(packed_dots[:, np.newaxis, :] *
                           inv[np.newaxis, :, np.newaxis])
        dots = prefixes
        dots[:, 1:] -= prefixes[:, :-1] * float(np.exp2(w))
        cols, _, groups = dots.shape
        return dots.transpose(0, 2, 1).reshape(cols, groups * k)[:, :count]

    def _window_blocks_f64(self, base: int, rows: int,
                           cols: int) -> np.ndarray:
        """Float64 segment stack (S, rows*N, block) of a window.

        In exact mode (nb == 1) this is the column-block stack
        (cols, rows*N, N) unchanged.
        """
        entry = self._window_lookup(base, rows, cols)
        if entry[2] is None:
            n = self.config.native_dim
            b, nb = self._seg_width, self._nb
            blocks = entry[0].reshape(rows * n, cols, n).transpose(1, 0, 2)
            if nb > 1:
                blocks = (blocks.reshape(cols, rows * n, nb, b)
                          .transpose(0, 2, 1, 3)
                          .reshape(cols * nb, rows * n, b))
            entry[2] = np.ascontiguousarray(blocks.astype(np.float64))
        return entry[2]

    def _window_lookup(self, base: int, rows: int, cols: int) -> list:
        """LRU entry ``[window, mantissa_operands, f64_blocks]`` for a
        window, invalidated by the MRF generation counter."""
        key = (base, rows, cols)
        mrf = self.mrf
        entry = self._derived_windows.get(key)
        if entry is not None and entry[3] == mrf.generation:
            # read_window's tile-read accounting must match the naive
            # path even on derived-cache hits.
            mrf.reads += rows * cols
            self._derived_windows.move_to_end(key)
            return entry
        window = mrf.read_window(base, rows, cols)
        entry = [window, None, None, mrf.generation]
        self._derived_windows[key] = entry
        self._derived_windows.move_to_end(key)
        while len(self._derived_windows) > _DERIVED_WINDOW_SLOTS:
            self._derived_windows.popitem(last=False)
        return entry
