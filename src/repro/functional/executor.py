"""Functional (architectural-state) simulator of the BW NPU.

Executes :class:`repro.isa.program.NpuProgram` objects against the full
architectural state: vector register files, the matrix register file,
DRAM, the network queues, and the scalar control registers. Mega-SIMD
semantics follow Section IV-C: with ``rows=R`` and ``columns=C`` set, an
``mv_mul`` treats ``R*C`` consecutive MRF entries as a tiled R·N x C·N
matrix, the feeding ``v_rd`` reads C contiguous entries, point-wise ops
operate on R vectors, and terminal ``v_wr`` writes R contiguous entries.

Numerics model the hardware: MRF weights and MVM input vectors are
quantized to the configured BFP format with exact accumulation, and all
pipeline values are float16 — unless the simulator is built with
``exact=True``, which disables quantization for structural verification.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

import numpy as np

from ..config import NpuConfig
from ..errors import ExecutionError, MemoryError_
from ..isa.chain import InstructionChain
from ..isa.instructions import Instruction
from ..isa.memspace import MemId, ScalarReg
from ..isa.opcodes import Opcode
from ..isa.program import NpuProgram, SetScalar
from ..memory.dram import Dram
from ..memory.netq import NetworkQueues
from ..memory.regfile import MatrixRegisterFile, VectorRegisterFile
from ..numerics.bfp import BfpFormat, quantize, to_float16
from ..obs import Metrics, Tracer, or_null, or_null_metrics
from . import ops


@dataclasses.dataclass
class ExecutionStats:
    """Dynamic execution statistics."""

    chains_executed: int = 0
    instructions_executed: int = 0
    mv_mul_count: int = 0
    #: Multiply-accumulate operations dispatched by mv_mul instructions.
    macs: int = 0
    #: FLOPs from point-wise vector operations.
    pointwise_flops: int = 0

    @property
    def total_flops(self) -> int:
        return 2 * self.macs + self.pointwise_flops


class FunctionalSimulator:
    """Architecturally accurate executor for NPU programs."""

    def __init__(self, config: NpuConfig, exact: bool = False,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None):
        """
        Args:
            config: The NPU instance to simulate.
            exact: Disable BFP/float16 quantization (float32 throughout);
                used for structural verification against references.
            tracer: Optional :class:`~repro.obs.Tracer` receiving
                per-chain and per-instruction spans. The functional
                simulator has no cycle clock, so the trace timebase is
                retired instruction count (one tick per instruction).
            metrics: Optional :class:`~repro.obs.Metrics` registry
                receiving per-opcode counters, MAC, and FLOP totals.
        """
        self.config = config
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)
        #: Trace timebase: instructions retired so far.
        self._trace_clock = 0
        self.exact = exact or config.mantissa_bits == 0
        n = config.native_dim
        self.vrfs: Dict[MemId, VectorRegisterFile] = {
            MemId.InitialVrf: VectorRegisterFile(
                "InitialVrf", config.initial_vrf_depth, n),
            MemId.AddSubVrf: VectorRegisterFile(
                "AddSubVrf", config.addsub_vrf_depth, n),
            MemId.MultiplyVrf: VectorRegisterFile(
                "MultiplyVrf", config.multiply_vrf_depth, n),
        }
        self.mrf = MatrixRegisterFile("MatrixRf", config.mrf_address_space,
                                      n, tile_engines=config.tile_engines)
        self.dram = Dram(native_dim=n)
        self.netq = NetworkQueues(native_dim=n)
        self.scalar_regs: Dict[ScalarReg, int] = {
            ScalarReg.Rows: 1, ScalarReg.Columns: 1, ScalarReg.Iterations: 0,
        }
        self.stats = ExecutionStats()
        if not self.exact:
            self._bfp = BfpFormat(mantissa_bits=config.mantissa_bits,
                                  exponent_bits=config.exponent_bits,
                                  block_size=n)
        else:
            self._bfp = None

    # -- host-facing utilities ---------------------------------------------

    def load_matrix(self, base_tile: int, matrix: np.ndarray) -> int:
        """Pin ``matrix`` into the MRF starting at ``base_tile``.

        The matrix is zero-padded to native tile multiples and stored
        row-major by tile — tile ``(r, c)`` lands at ``base_tile + r*C + c``
        — matching ``mv_mul``'s mega-SIMD layout. Weights are quantized to
        the configured BFP format on write (the hardware quantizes during
        initialization from the network/DRAM). Returns the number of tile
        slots consumed.

        This is the "initialize over the network" path condensed to one
        call; the explicit ISA path (``m_rd``/``m_wr`` chains) is also
        supported and equivalent.
        """
        tiles = self._tiles_of(matrix)
        count = tiles.shape[0]
        self.mrf.write_tiles(base_tile, tiles)
        return count

    def _tiles_of(self, matrix: np.ndarray) -> np.ndarray:
        n = self.config.native_dim
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise ExecutionError("load_matrix expects a 2-D array")
        rows = math.ceil(matrix.shape[0] / n)
        cols = math.ceil(matrix.shape[1] / n)
        padded = np.zeros((rows * n, cols * n), dtype=np.float32)
        padded[:matrix.shape[0], :matrix.shape[1]] = matrix
        if not self.exact:
            padded = quantize(padded, self._bfp)
        tiles = np.zeros((rows * cols, n, n), dtype=np.float32)
        for r in range(rows):
            for c in range(cols):
                tiles[r * cols + c] = padded[r * n:(r + 1) * n,
                                             c * n:(c + 1) * n]
        return tiles

    def load_vector(self, mem: MemId, index: int,
                    vector: np.ndarray) -> int:
        """Write a flat vector into a VRF, padded to native multiples.

        Returns the number of VRF entries consumed.
        """
        n = self.config.native_dim
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        count = max(1, math.ceil(vector.shape[0] / n))
        padded = np.zeros(count * n, dtype=np.float32)
        padded[:vector.shape[0]] = vector
        self._vrf(mem).write(index, padded.reshape(count, n))
        return count

    def read_vector(self, mem: MemId, index: int, length: int) -> np.ndarray:
        """Read ``length`` elements starting at VRF entry ``index``."""
        n = self.config.native_dim
        count = math.ceil(length / n)
        data = self._vrf(mem).read(index, count).reshape(-1)
        return data[:length]

    def push_input(self, vector: np.ndarray) -> None:
        """Queue a flat input vector on the network, padded and split
        into native vectors."""
        n = self.config.native_dim
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        count = max(1, math.ceil(vector.shape[0] / n))
        padded = np.zeros(count * n, dtype=np.float32)
        padded[:vector.shape[0]] = vector
        for i in range(count):
            self.netq.push_input(padded[i * n:(i + 1) * n])

    def pop_outputs_flat(self) -> np.ndarray:
        """Drain the output queue into one flat array."""
        outs = self.netq.pop_outputs()
        if not outs:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate(outs)

    # -- execution -----------------------------------------------------------

    def run(self, program: NpuProgram,
            bindings: Optional[Dict[str, int]] = None) -> ExecutionStats:
        """Execute ``program`` to completion; returns dynamic stats."""
        span = self.tracer.begin("run", float(self._trace_clock),
                                 track="executor")
        for event in program.events(bindings):
            if isinstance(event, SetScalar):
                self._set_scalar(event)
            else:
                self.execute_chain(event)
        self.tracer.end(span, float(self._trace_clock),
                        instructions=self.stats.instructions_executed,
                        chains=self.stats.chains_executed)
        return self.stats

    def _tick(self, name: str, **attrs) -> None:
        """Retire one instruction: advance the trace clock one tick and
        record the instruction span and opcode counter."""
        t = float(self._trace_clock)
        self._trace_clock += 1
        self.tracer.span(name, t, t + 1.0, **attrs)
        self.metrics.counter(f"executor.ops.{name}").inc()

    def _set_scalar(self, event: SetScalar) -> None:
        if event.reg in (ScalarReg.Rows, ScalarReg.Columns) \
                and event.value < 1:
            raise ExecutionError(f"{event.reg.name} must be >= 1")
        self.scalar_regs[event.reg] = event.value
        self.stats.instructions_executed += 1
        self._tick("set_scalar", reg=event.reg.name, value=event.value)

    def execute_chain(self, chain: InstructionChain) -> None:
        """Execute one instruction chain against architectural state."""
        self.stats.chains_executed += 1
        self.stats.instructions_executed += len(chain) + 1  # + end_chain
        span = self.tracer.begin(
            "chain", float(self._trace_clock), track="executor",
            matrix=chain.is_matrix_chain, instructions=len(chain) + 1)
        if chain.is_matrix_chain:
            self._execute_matrix_chain(chain)
        else:
            self._execute_vector_chain(chain)
        self._tick("end_chain")
        self.tracer.end(span, float(self._trace_clock))
        self.metrics.counter("executor.chains").inc()

    # -- matrix chains ------------------------------------------------------

    def _execute_matrix_chain(self, chain: InstructionChain) -> None:
        rows = self.scalar_regs[ScalarReg.Rows]
        cols = self.scalar_regs[ScalarReg.Columns]
        count = rows * cols
        rd, wr = chain.instructions
        if rd.mem_id is MemId.NetQ:
            tiles = self.netq.pop_input_tiles(count)
        else:
            tiles = self.dram.read_tiles(rd.index, count)
        self._tick(rd.opcode.name.lower(), mem=rd.mem_id.name,
                   index=rd.index, tiles=count)
        if wr.mem_id is MemId.MatrixRf:
            if not self.exact:
                # Weights quantize at MRF initialization, per native row.
                tiles = quantize(tiles, self._bfp)
            self.mrf.write_tiles(wr.index, tiles)
        else:
            self.dram.write_tiles(wr.index, tiles)
        self._tick(wr.opcode.name.lower(), mem=wr.mem_id.name,
                   index=wr.index, tiles=count)
        self.metrics.counter("executor.tiles_moved").inc(count)

    # -- vector chains ------------------------------------------------------

    def _execute_vector_chain(self, chain: InstructionChain) -> None:
        chain.assign_function_units(self.config.mfus)  # capacity check
        rows = self.scalar_regs[ScalarReg.Rows]
        cols = self.scalar_regs[ScalarReg.Columns]
        width_in = cols if chain.has_mv_mul else rows

        head = chain.source
        value = self._read_vectors(head, width_in)
        self._tick(head.opcode.name.lower(),
                   mem=head.mem_id.name if head.mem_id else None,
                   index=head.index, vectors=width_in)

        for instr in chain.instructions[1:]:
            if instr.opcode is Opcode.MV_MUL:
                value = self._mv_mul(instr, value, rows, cols)
            elif instr.opcode in ops.BINARY_KERNELS:
                operand = self._pointwise_operand(instr, rows)
                kernel = ops.BINARY_KERNELS[instr.opcode]
                value = kernel(value, operand, exact=self.exact)
                self.stats.pointwise_flops += value.size
                self.metrics.counter("executor.pointwise_flops") \
                    .inc(value.size)
            elif instr.opcode in ops.UNARY_KERNELS:
                kernel = ops.UNARY_KERNELS[instr.opcode]
                value = kernel(value, exact=self.exact)
                self.stats.pointwise_flops += value.size
                self.metrics.counter("executor.pointwise_flops") \
                    .inc(value.size)
            elif instr.opcode is Opcode.V_WR:
                self._write_vectors(instr, value)
            else:  # pragma: no cover - chain validation prevents this
                raise ExecutionError(f"unexpected opcode {instr.opcode}")
            self._tick(instr.opcode.name.lower(),
                       mem=instr.mem_id.name if instr.mem_id else None,
                       index=instr.index)

    def _vrf(self, mem: MemId) -> VectorRegisterFile:
        if mem not in self.vrfs:
            raise MemoryError_(f"{mem.name} is not a vector register file")
        return self.vrfs[mem]

    def _read_vectors(self, instr: Instruction, count: int) -> np.ndarray:
        mem = instr.mem_id
        if mem is MemId.NetQ:
            return self.netq.pop_input(count)
        if mem is MemId.Dram:
            return self.dram.read_vectors(instr.index, count)
        return self._vrf(mem).read(instr.index, count)

    def _write_vectors(self, instr: Instruction, value: np.ndarray) -> None:
        value = np.atleast_2d(value)
        mem = instr.mem_id
        if mem is MemId.NetQ:
            self.netq.push_output(value)
        elif mem is MemId.Dram:
            self.dram.write_vectors(instr.index, value)
        else:
            self._vrf(mem).write(instr.index, value)

    def _pointwise_operand(self, instr: Instruction, rows: int) -> np.ndarray:
        if instr.opcode is Opcode.VV_MUL:
            return self._vrf(MemId.MultiplyVrf).read(instr.index, rows)
        return self._vrf(MemId.AddSubVrf).read(instr.index, rows)

    def _mv_mul(self, instr: Instruction, value: np.ndarray,
                rows: int, cols: int) -> np.ndarray:
        n = self.config.native_dim
        value = np.atleast_2d(value)
        if value.shape != (cols, n):
            raise ExecutionError(
                f"mv_mul expected {cols} input vector(s) of length {n}, "
                f"got shape {value.shape}")
        base = instr.index
        if base + rows * cols > self.config.mrf_address_space:
            raise MemoryError_(
                f"mv_mul tile window [{base}, {base + rows * cols}) "
                f"exceeds MRF address space "
                f"{self.config.mrf_address_space}")
        if self.exact:
            inputs = value.astype(np.float64)
        else:
            # The MVM quantizes its input vector at the native-block level;
            # weights were quantized when written into the MRF.
            inputs = quantize(value, self._bfp).astype(np.float64)
        out = np.zeros((rows, n), dtype=np.float64)
        for r in range(rows):
            acc = np.zeros(n, dtype=np.float64)
            for c in range(cols):
                tile = self.mrf.read_tile(base + r * cols + c)
                acc += tile.astype(np.float64) @ inputs[c]
            out[r] = acc
        self.stats.mv_mul_count += 1
        self.stats.macs += rows * cols * n * n
        self.metrics.counter("executor.macs").inc(rows * cols * n * n)
        result = out.astype(np.float32)
        return result if self.exact else to_float16(result)
