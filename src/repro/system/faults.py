"""Fault injection and resilient invocation (Section II-A, hardened).

The paper's serving substrate — FPGAs "logically disaggregated and
pooled into instances of hardware microservices" behind a resource
manager — only earns its keep at datacenter scale if it survives node
and network failures. This module supplies the fault model and the
client-side resilience machinery:

* :class:`FaultInjector` — a deterministic, seeded source of injected
  faults: permanent node crashes (until repaired), transient
  invocation failures, tail-latency spikes, and packet-loss-induced
  retransmit delays. It plugs into
  :meth:`~repro.system.microservice.HardwareMicroservice.invoke` as an
  optional hook, so fault-free call sites are untouched.
* :class:`ResilientClient` — deadline-bounded retries with exponential
  backoff + jitter, replica failover against the registry's circuit
  breakers, and optional request hedging (a second replica is tried
  once the primary's latency exceeds a p9x budget). Every call returns
  an :class:`InvocationOutcome` recording attempts, replicas tried,
  and whether the SLO deadline was met.

All randomness comes from seeded private generators: the same seed
produces the same fault sequence and the same retry jitter, request
for request.
"""

from __future__ import annotations

import collections
import dataclasses
import random
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from ..errors import ConfigError, FaultError
from ..obs import Metrics, Tracer, or_null, or_null_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .microservice import InvocationResult, MicroserviceRegistry


@dataclasses.dataclass(frozen=True)
class FaultProfile:
    """Per-invocation fault probabilities and magnitudes."""

    #: Probability an invocation fails transiently (caller may retry).
    transient_failure_prob: float = 0.0
    #: Probability the node crashes on an invocation (down until
    #: :meth:`FaultInjector.repair`).
    crash_prob: float = 0.0
    #: Probability compute latency is multiplied by
    #: ``tail_spike_multiplier`` (straggler / contention model).
    tail_spike_prob: float = 0.0
    tail_spike_multiplier: float = 8.0
    #: Probability the request's network transfer loses a packet and
    #: pays ``retransmit_delay_s`` extra.
    packet_loss_prob: float = 0.0
    retransmit_delay_s: float = 50e-6

    def __post_init__(self) -> None:
        for field in ("transient_failure_prob", "crash_prob",
                      "tail_spike_prob", "packet_loss_prob"):
            p = getattr(self, field)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{field}={p} not a probability")
        if self.tail_spike_multiplier < 1.0:
            raise ConfigError("tail_spike_multiplier must be >= 1")
        if self.retransmit_delay_s < 0:
            raise ConfigError("retransmit_delay_s must be >= 0")


@dataclasses.dataclass(frozen=True)
class FaultSample:
    """One invocation's drawn faults."""

    #: ``None`` (healthy), ``"node_down"``, ``"crash"``, or
    #: ``"transient"``; non-``None`` means the invocation fails.
    fail_kind: Optional[str]
    #: Multiplier applied to compute latency (tail spike).
    compute_multiplier: float = 1.0
    #: Extra one-way network delay (packet retransmit).
    extra_network_s: float = 0.0


class FaultInjector:
    """Deterministic, seeded fault source shared by a set of nodes.

    One injector instance models the fault environment of a deployment;
    each :class:`~repro.system.microservice.HardwareMicroservice`
    holding a reference consults :meth:`sample` once per invocation.
    Crashed nodes stay down until :meth:`repair` — the injector is the
    single source of truth for node liveness.
    """

    def __init__(self, profile: Optional[FaultProfile] = None,
                 seed: int = 0):
        self.profile = profile if profile is not None else FaultProfile()
        self._rng = random.Random(seed)
        self._down: set = set()
        #: Injected-fault counts by category (observability).
        self.counts: Dict[str, int] = collections.Counter()

    # -- node liveness ----------------------------------------------------

    def crash(self, node_name: str) -> None:
        """Take a node down (stays down until :meth:`repair`)."""
        self._down.add(node_name)

    def repair(self, node_name: str) -> None:
        """Bring a crashed node back."""
        self._down.discard(node_name)

    def is_down(self, node_name: str) -> bool:
        return node_name in self._down

    @property
    def down_nodes(self) -> List[str]:
        return sorted(self._down)

    # -- per-invocation draws ---------------------------------------------

    def sample(self, node_name: str) -> FaultSample:
        """Draw this invocation's faults for ``node_name``.

        A fixed number of RNG draws happens per call regardless of
        outcome, so the fault sequence depends only on the seed and the
        call order — never on which faults happened to fire.
        """
        p = self.profile
        r_crash = self._rng.random()
        r_transient = self._rng.random()
        r_spike = self._rng.random()
        r_loss = self._rng.random()
        if node_name in self._down:
            self.counts["node_down"] += 1
            return FaultSample(fail_kind="node_down")
        if r_crash < p.crash_prob:
            self._down.add(node_name)
            self.counts["crash"] += 1
            return FaultSample(fail_kind="crash")
        if r_transient < p.transient_failure_prob:
            self.counts["transient"] += 1
            return FaultSample(fail_kind="transient")
        mult = 1.0
        extra = 0.0
        if r_spike < p.tail_spike_prob:
            self.counts["tail_spike"] += 1
            mult = p.tail_spike_multiplier
        if r_loss < p.packet_loss_prob:
            self.counts["packet_loss"] += 1
            extra = p.retransmit_delay_s
        return FaultSample(fail_kind=None, compute_multiplier=mult,
                           extra_network_s=extra)


# ---------------------------------------------------------------------------
# Resilient invocation
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Deadline-bounded retry/hedging parameters."""

    #: Maximum invocation attempts (1 = no retries).
    max_attempts: int = 3
    #: Wall-clock budget per request; exceeded => SLO miss.
    deadline_s: float = 20e-3
    #: First retry backoff; doubles (``backoff_multiplier``) per retry.
    base_backoff_s: float = 200e-6
    backoff_multiplier: float = 2.0
    #: Backoff jitter as a fraction of the backoff (+/-).
    jitter_frac: float = 0.25
    #: Hedge to a second replica once the primary's latency exceeds
    #: this budget (``None`` disables hedging). Set it near the
    #: service's p95/p99 latency.
    hedge_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts={self.max_attempts} must be >= 1 "
                "(1 means no retries)")
        if self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s={self.deadline_s} must be positive — a "
                "zero deadline fails every request before its first "
                "attempt")
        if self.base_backoff_s < 0:
            raise ConfigError(
                f"base_backoff_s={self.base_backoff_s} must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier={self.backoff_multiplier} must be "
                ">= 1 (shrinking backoff would hammer failing replicas)")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ConfigError(
                f"jitter_frac={self.jitter_frac} must be in [0, 1]")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ConfigError(
                f"hedge_after_s={self.hedge_after_s} must be positive "
                "(or None to disable hedging)")


@dataclasses.dataclass(frozen=True)
class InvocationOutcome:
    """What one resilient invocation did and how it ended."""

    service: str
    #: Whether a result was produced at all (availability).
    ok: bool
    #: The successful invocation's latency breakdown (``None`` on
    #: failure).
    result: Optional["InvocationResult"]
    #: Invocation attempts issued, including the hedge.
    attempts: int
    #: Node names tried, in order (repeats possible across retries).
    replicas_tried: List[str]
    #: End-to-end request latency including backoff waits (seconds);
    #: on failure, the time burned before giving up.
    latency_s: float
    #: ``ok`` and the request finished within the deadline (goodput).
    deadline_met: bool
    #: A hedged (duplicate) invocation was issued.
    hedged: bool = False
    #: Failure category when not ``ok``: ``"all_replicas_down"``,
    #: ``"deadline_exceeded"``, or ``"retries_exhausted"``.
    error_kind: Optional[str] = None
    error: Optional[str] = None

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


class ResilientClient:
    """Retries, failover, and hedging over a replicated registry.

    Time is simulated, not wall-clock: the caller passes the request's
    arrival time ``now`` and the client accounts attempt latencies and
    backoff waits against the policy deadline, reporting breaker events
    to the registry at the simulated instant they happen.
    """

    def __init__(self, registry: "MicroserviceRegistry",
                 policy: Optional[RetryPolicy] = None, seed: int = 0,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None):
        """``tracer``/``metrics`` are optional :mod:`repro.obs` hooks
        (simulated-seconds timebase): every request gets a span with
        nested attempt, replica-invocation, backoff, and hedge child
        spans; counters track attempts, failures by kind, and hedges,
        and ``serving.request_latency_ms`` collects the end-to-end
        latency histogram. Tracing never perturbs the retry RNG."""
        self.registry = registry
        self.policy = policy if policy is not None else RetryPolicy()
        self._rng = random.Random(seed)
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)

    def _backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        p = self.policy
        base = p.base_backoff_s * p.backoff_multiplier ** (attempt - 1)
        jitter = 1.0 + p.jitter_frac * (2.0 * self._rng.random() - 1.0)
        return base * jitter

    def _trace_invocation(self, node_name: str, start: float,
                          result: "InvocationResult") -> None:
        """Span the replica-side work of one successful invocation,
        with the network/compute breakdown as child spans."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        span = tracer.begin("replica", start, track=node_name,
                            node=node_name)
        t = start
        tracer.span("net_in", t, t + result.network_in_s)
        t += result.network_in_s
        tracer.span("compute", t, t + result.compute_s)
        t += result.compute_s
        tracer.span("net_out", t, t + result.network_out_s)
        tracer.end(span, start + result.total_s)

    def invoke(self, name: str, steps: int, now: float = 0.0,
               functional_inputs: Optional[List[np.ndarray]] = None
               ) -> InvocationOutcome:
        """Resiliently serve one request arriving at time ``now``."""
        policy = self.policy
        tracer, m = self.tracer, self.metrics
        request = tracer.begin("request", now, track="client",
                               service=name, steps=steps)
        m.counter("serving.requests").inc()
        deadline = now + policy.deadline_s
        t = now
        attempts = 0
        tried: List[str] = []
        hedged = False
        error_kind: Optional[str] = None
        error: Optional[str] = None
        failovers = 0
        while attempts < policy.max_attempts:
            if t >= deadline:
                error_kind, error = "deadline_exceeded", (
                    f"{name}: deadline {policy.deadline_s * 1e3:.1f} ms "
                    f"exhausted after {attempts} attempts")
                break
            candidates = self.registry.healthy(name, now=t)
            if not candidates:
                error_kind, error = "all_replicas_down", (
                    f"{name}: no healthy replicas "
                    f"(circuit breakers open or nodes crashed)")
                break
            primary = candidates[failovers % len(candidates)]
            attempts += 1
            tried.append(primary.node.name)
            m.counter("serving.attempts").inc()
            m.counter(f"serving.replica.{primary.node.name}.attempts") \
                .inc()
            try:
                result = primary.invoke(
                    steps, functional_inputs=functional_inputs)
            except FaultError as exc:
                self.registry.record_failure(name, primary, now=t)
                error_kind, error = "retries_exhausted", str(exc)
                failovers += 1
                attempt = tracer.begin(
                    "attempt", t, track="client", n=attempts,
                    replica=primary.node.name, ok=False, fault=exc.kind)
                m.counter(f"serving.faults.{exc.kind}").inc()
                wait = self._backoff(attempts)
                tracer.span("backoff", t, t + wait)
                tracer.end(attempt, t + wait)
                t += wait
                continue
            self.registry.record_success(name, primary, now=t)
            latency = result.total_s
            attempt = tracer.begin(
                "attempt", t, track="client", n=attempts,
                replica=primary.node.name, ok=True)
            self._trace_invocation(primary.node.name, t, result)
            tracer.end(attempt, t + result.total_s)
            if (policy.hedge_after_s is not None
                    and latency > policy.hedge_after_s):
                others = [c for c in candidates if c is not primary]
                if others:
                    hedge_svc = others[0]
                    hedged = True
                    attempts += 1
                    tried.append(hedge_svc.node.name)
                    hedge_t = t + policy.hedge_after_s
                    m.counter("serving.hedges").inc()
                    m.counter(f"serving.replica."
                              f"{hedge_svc.node.name}.attempts").inc()
                    try:
                        hedge_result = hedge_svc.invoke(
                            steps, functional_inputs=functional_inputs)
                    except FaultError as exc:
                        self.registry.record_failure(
                            name, hedge_svc, now=hedge_t)
                        tracer.span("hedge", hedge_t, hedge_t,
                                    track="client", ok=False,
                                    replica=hedge_svc.node.name,
                                    fault=exc.kind)
                        m.counter(f"serving.faults.{exc.kind}").inc()
                    else:
                        self.registry.record_success(
                            name, hedge_svc, now=hedge_t)
                        hedge_latency = (policy.hedge_after_s
                                         + hedge_result.total_s)
                        won = hedge_latency < latency
                        hedge = tracer.begin(
                            "hedge", hedge_t, track="client", ok=True,
                            replica=hedge_svc.node.name, won=won)
                        self._trace_invocation(
                            hedge_svc.node.name, hedge_t, hedge_result)
                        tracer.end(hedge,
                                   hedge_t + hedge_result.total_s)
                        if won:
                            m.counter("serving.hedge_wins").inc()
                            latency = hedge_latency
                            result = hedge_result
            finish = t + latency
            met = finish <= deadline
            tracer.end(request, finish, ok=True, attempts=attempts,
                       deadline_met=met, hedged=hedged)
            m.histogram("serving.request_latency_ms") \
                .observe((finish - now) * 1e3)
            if not met:
                m.counter("serving.deadline_misses").inc()
            return InvocationOutcome(
                service=name, ok=True, result=result, attempts=attempts,
                replicas_tried=tried, latency_s=finish - now,
                deadline_met=met, hedged=hedged)
        else:
            error_kind = error_kind or "retries_exhausted"
            error = error or (f"{name}: {policy.max_attempts} attempts "
                              "exhausted")
        tracer.end(request, t, ok=False, attempts=attempts,
                   error_kind=error_kind)
        m.counter(f"serving.failures.{error_kind}").inc()
        return InvocationOutcome(
            service=name, ok=False, result=None, attempts=attempts,
            replicas_tried=tried, latency_s=t - now, deadline_met=False,
            hedged=hedged, error_kind=error_kind, error=error)
