"""Datacenter network model (Section II-A, Fig. 1).

Accelerators sit bump-in-the-wire between the server NIC and the TOR
switch and speak an RDMA-like lossless protocol point-to-point. The
latency model uses per-hop constants consistent with published Catapult
LTL figures (single-digit microseconds within a rack, a few more across
the datacenter fabric) plus serialization time at the NIC line rate.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, Optional, Set


class Locality(enum.Enum):
    """Relative placement of two endpoints."""

    SAME_NODE = "same_node"
    SAME_RACK = "same_rack"
    SAME_POD = "same_pod"
    SAME_DATACENTER = "same_datacenter"


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """Point-to-point latency/bandwidth model."""

    line_rate_gbps: float = 40.0
    base_latency_us: float = 0.8      # NIC + protocol engine
    rack_hop_us: float = 1.7          # one TOR traversal
    pod_hop_us: float = 6.0           # aggregation layer
    datacenter_hop_us: float = 18.0   # spine traversal

    def propagation_us(self, locality: Locality) -> float:
        """One-way latency excluding serialization."""
        if locality is Locality.SAME_NODE:
            return self.base_latency_us
        if locality is Locality.SAME_RACK:
            return self.base_latency_us + self.rack_hop_us
        if locality is Locality.SAME_POD:
            return self.base_latency_us + self.pod_hop_us
        return self.base_latency_us + self.datacenter_hop_us

    def serialization_us(self, nbytes: float) -> float:
        """Time to put ``nbytes`` on the wire."""
        return nbytes * 8 / (self.line_rate_gbps * 1e3)

    def transfer_us(self, nbytes: float,
                    locality: Locality = Locality.SAME_RACK) -> float:
        """One-way message latency for a payload of ``nbytes``."""
        return self.propagation_us(locality) + self.serialization_us(nbytes)

    def round_trip_us(self, request_bytes: float, response_bytes: float,
                      locality: Locality = Locality.SAME_RACK) -> float:
        """Request/response round trip."""
        return (self.transfer_us(request_bytes, locality)
                + self.transfer_us(response_bytes, locality))


class NetworkFabric:
    """Mutable reachability overlay on a :class:`NetworkModel`.

    The latency model is immutable; what changes during a chaos
    scenario is *connectivity* — a TOR failure or a spine partition
    severs whole localities from each other.  A fabric tracks severed
    domain pairs (domains are caller-chosen labels: ``"frontend"``,
    ``"rack3"``, ...) so scenario runners can cut and heal links
    between failure domains while reusing one latency model.
    """

    def __init__(self, model: Optional[NetworkModel] = None):
        self.model = model if model is not None else NetworkModel()
        self._cuts: Set[FrozenSet[str]] = set()

    def cut(self, a: str, b: str) -> None:
        """Sever connectivity between domains ``a`` and ``b``."""
        if a == b:
            raise ValueError(
                f"cannot partition domain {a!r} from itself")
        self._cuts.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore connectivity between ``a`` and ``b`` (idempotent)."""
        self._cuts.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._cuts.clear()

    def connected(self, a: str, b: str) -> bool:
        """Whether ``a`` can currently reach ``b`` (symmetric)."""
        return frozenset((a, b)) not in self._cuts

    @property
    def cuts(self) -> Set[FrozenSet[str]]:
        return set(self._cuts)
