"""Federated CPU+FPGA runtime (Section II-B).

"A federated runtime that orchestrates model execution between CPUs and
distributed hardware microservices": execution plans interleave CPU
stages (arbitrary Python callables standing in for CPU sub-graph
binaries) with FPGA stages (published microservices). Includes the
production bidirectional-RNN pattern: forward and backward halves on two
FPGAs invoked concurrently, outputs concatenated on the CPU.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING, \
    Union

import numpy as np

from ..errors import AllReplicasDownError, DeadlineExceededError, \
    FaultError, ReproError
from ..obs import Tracer, or_null
from .microservice import HardwareMicroservice, InvocationResult, \
    MicroserviceRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .faults import ResilientClient


class RuntimeError_(ReproError):
    """Execution-plan failure."""


#: Modeled latency of completing one FPGA-sized request on a CPU —
#: the federated escape hatch (:class:`FpgaStage.fallback`) and the
#: cluster simulator's brownout path
#: (:class:`~repro.system.cluster.BrownoutPolicy`) share this default,
#: deliberately far slower than the accelerator it stands in for.
DEFAULT_CPU_FALLBACK_LATENCY_S = 5e-3


@dataclasses.dataclass(frozen=True)
class CpuStage:
    """A CPU sub-graph: a callable over the inter-stage value."""

    name: str
    fn: Callable
    #: Modeled CPU latency for the stage (seconds).
    latency_s: float = 20e-6


@dataclasses.dataclass(frozen=True)
class FpgaStage:
    """An accelerated sub-graph served by a hardware microservice.

    ``deadline_s``, ``fallback``, and ``fallback_latency_s`` only take
    effect when the runtime executes through a
    :class:`~repro.system.faults.ResilientClient`: the stage then gets
    its own SLO deadline, and if every replica of the service is down
    (or retries are exhausted) the ``fallback`` CPU callable — the
    paper's federated CPU+FPGA escape hatch — completes the stage at
    an honestly-accounted CPU latency instead of failing the plan.
    """

    name: str
    service: str
    #: Steps per invocation; ``None`` = length of the input sequence.
    steps: Optional[int] = None
    #: Per-stage SLO deadline override (``None`` = the client policy's).
    deadline_s: Optional[float] = None
    #: CPU fallback over the stage's input sequence, used when the
    #: resilient invocation fails.
    fallback: Optional[Callable] = None
    #: Modeled CPU latency of the fallback (seconds) — deliberately far
    #: slower than the FPGA path it stands in for.
    fallback_latency_s: float = DEFAULT_CPU_FALLBACK_LATENCY_S


Stage = Union[CpuStage, FpgaStage]


@dataclasses.dataclass
class PlanResult:
    """Outcome of one plan execution."""

    value: object
    total_latency_s: float
    stage_latencies: List[float]

    @property
    def total_latency_ms(self) -> float:
        return self.total_latency_s * 1e3


class FederatedRuntime:
    """Executes CPU/FPGA stage plans against a service registry.

    With a :class:`~repro.system.faults.ResilientClient` attached, FPGA
    stages are invoked through it — retries, replica failover, hedging
    — under a per-stage deadline, and a stage whose service is
    unreachable completes through its declared CPU ``fallback`` (or
    raises :class:`~repro.errors.AllReplicasDownError` /
    :class:`~repro.errors.DeadlineExceededError` /
    :class:`~repro.errors.FaultError` if it has none).
    """

    def __init__(self, registry: MicroserviceRegistry,
                 client: Optional["ResilientClient"] = None,
                 tracer: Optional[Tracer] = None):
        self.registry = registry
        self.client = client
        #: Optional :class:`~repro.obs.Tracer` (simulated-seconds
        #: timebase): one ``plan`` span per execution with a child span
        #: per CPU/FPGA stage, and a ``fallback`` instant event when a
        #: stage completes on its CPU escape hatch.
        self.tracer = or_null(tracer)

    def _invoke_resilient(self, stage: FpgaStage, seq: List, steps: int,
                          now: float, functional: bool):
        """One FPGA stage through the resilient client; returns
        ``(latency_s, result_or_None, used_fallback)``."""
        client = self.client
        policy = client.policy
        if stage.deadline_s is not None:
            policy = dataclasses.replace(policy,
                                         deadline_s=stage.deadline_s)
        saved = client.policy
        client.policy = policy
        try:
            outcome = client.invoke(
                stage.service, steps, now=now,
                functional_inputs=seq if functional else None)
        finally:
            client.policy = saved
        if outcome.ok:
            return outcome.latency_s, outcome.result, False
        if stage.fallback is not None:
            # Federated escape hatch: the CPU finishes the stage, paying
            # the time already burned on the FPGA path plus CPU compute.
            return (outcome.latency_s + stage.fallback_latency_s,
                    None, True)
        if outcome.error_kind == "all_replicas_down":
            raise AllReplicasDownError(outcome.error)
        if outcome.error_kind == "deadline_exceeded":
            raise DeadlineExceededError(outcome.error)
        raise FaultError(outcome.error or
                         f"stage {stage.name!r} failed", kind="transient")

    def execute(self, stages: Sequence[Stage],
                inputs: List[np.ndarray],
                functional: bool = False) -> PlanResult:
        """Run ``inputs`` (a vector sequence) through the plan.

        With ``functional=True`` the FPGA stages run the architectural
        simulator and real values flow between stages; otherwise only
        latency is accounted and the value stream carries the inputs
        through unchanged shape-wise.
        """
        value: object = inputs
        latencies: List[float] = []
        tracer = self.tracer
        plan = tracer.begin("plan", 0.0, track="runtime",
                            stages=len(stages))
        for stage in stages:
            t0 = sum(latencies)
            if isinstance(stage, CpuStage):
                value = stage.fn(value)
                latencies.append(stage.latency_s)
                tracer.span(f"cpu:{stage.name}", t0, t0 + stage.latency_s)
            elif isinstance(stage, FpgaStage):
                seq = value if isinstance(value, list) else [value]
                steps = stage.steps if stage.steps is not None else len(seq)
                span = tracer.begin(f"fpga:{stage.name}", t0,
                                    service=stage.service, steps=steps)
                if self.client is not None:
                    latency, result, used_fallback = \
                        self._invoke_resilient(stage, seq, steps,
                                               now=t0,
                                               functional=functional)
                    if used_fallback:
                        value = stage.fallback(seq)
                        tracer.instant("fallback", t0 + latency,
                                       stage=stage.name,
                                       service=stage.service)
                    elif functional:
                        value = result.outputs
                    latencies.append(latency)
                    tracer.end(span, t0 + latency,
                               fallback=used_fallback)
                else:
                    service: HardwareMicroservice = \
                        self.registry.lookup(stage.service)
                    result: InvocationResult = service.invoke(
                        steps,
                        functional_inputs=seq if functional else None)
                    if functional:
                        value = result.outputs
                    latencies.append(result.total_s)
                    tracer.end(span, t0 + result.total_s)
            else:  # pragma: no cover - defensive
                raise RuntimeError_(f"unknown stage {stage!r}")
        total = sum(latencies)
        tracer.end(plan, total)
        return PlanResult(value=value, total_latency_s=total,
                          stage_latencies=latencies)


class BidirectionalRnnService:
    """Forward+backward RNN halves on two FPGAs (Section II-A).

    The server invokes both halves concurrently and concatenates their
    outputs; latency is the max of the two invocations plus the CPU
    concatenation.
    """

    def __init__(self, registry: MicroserviceRegistry, forward: str,
                 backward: str, concat_latency_s: float = 15e-6):
        self.registry = registry
        self.forward_name = forward
        self.backward_name = backward
        self.concat_latency_s = concat_latency_s

    def invoke(self, inputs: List[np.ndarray],
               functional: bool = False) -> PlanResult:
        forward = self.registry.lookup(self.forward_name)
        backward = self.registry.lookup(self.backward_name)
        steps = len(inputs)
        fwd = forward.invoke(
            steps, functional_inputs=inputs if functional else None)
        bwd = backward.invoke(
            steps,
            functional_inputs=list(reversed(inputs)) if functional
            else None)
        value = None
        if functional:
            value = [np.concatenate([f, b]) for f, b in
                     zip(fwd.outputs, reversed(bwd.outputs))]
        total = max(fwd.total_s, bwd.total_s) + self.concat_latency_s
        return PlanResult(
            value=value, total_latency_s=total,
            stage_latencies=[fwd.total_s, bwd.total_s,
                             self.concat_latency_s])
