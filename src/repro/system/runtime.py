"""Federated CPU+FPGA runtime (Section II-B).

"A federated runtime that orchestrates model execution between CPUs and
distributed hardware microservices": execution plans interleave CPU
stages (arbitrary Python callables standing in for CPU sub-graph
binaries) with FPGA stages (published microservices). Includes the
production bidirectional-RNN pattern: forward and backward halves on two
FPGAs invoked concurrently, outputs concatenated on the CPU.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..errors import ReproError
from .microservice import HardwareMicroservice, InvocationResult, \
    MicroserviceRegistry


class RuntimeError_(ReproError):
    """Execution-plan failure."""


@dataclasses.dataclass(frozen=True)
class CpuStage:
    """A CPU sub-graph: a callable over the inter-stage value."""

    name: str
    fn: Callable
    #: Modeled CPU latency for the stage (seconds).
    latency_s: float = 20e-6


@dataclasses.dataclass(frozen=True)
class FpgaStage:
    """An accelerated sub-graph served by a hardware microservice."""

    name: str
    service: str
    #: Steps per invocation; ``None`` = length of the input sequence.
    steps: Optional[int] = None


Stage = Union[CpuStage, FpgaStage]


@dataclasses.dataclass
class PlanResult:
    """Outcome of one plan execution."""

    value: object
    total_latency_s: float
    stage_latencies: List[float]

    @property
    def total_latency_ms(self) -> float:
        return self.total_latency_s * 1e3


class FederatedRuntime:
    """Executes CPU/FPGA stage plans against a service registry."""

    def __init__(self, registry: MicroserviceRegistry):
        self.registry = registry

    def execute(self, stages: Sequence[Stage],
                inputs: List[np.ndarray],
                functional: bool = False) -> PlanResult:
        """Run ``inputs`` (a vector sequence) through the plan.

        With ``functional=True`` the FPGA stages run the architectural
        simulator and real values flow between stages; otherwise only
        latency is accounted and the value stream carries the inputs
        through unchanged shape-wise.
        """
        value: object = inputs
        latencies: List[float] = []
        for stage in stages:
            if isinstance(stage, CpuStage):
                value = stage.fn(value)
                latencies.append(stage.latency_s)
            elif isinstance(stage, FpgaStage):
                service = self.registry.lookup(stage.service)
                seq = value if isinstance(value, list) else [value]
                steps = stage.steps if stage.steps is not None else len(seq)
                result = service.invoke(
                    steps,
                    functional_inputs=seq if functional else None)
                if functional:
                    value = result.outputs
                latencies.append(result.total_s)
            else:  # pragma: no cover - defensive
                raise RuntimeError_(f"unknown stage {stage!r}")
        return PlanResult(value=value, total_latency_s=sum(latencies),
                          stage_latencies=latencies)


class BidirectionalRnnService:
    """Forward+backward RNN halves on two FPGAs (Section II-A).

    The server invokes both halves concurrently and concatenates their
    outputs; latency is the max of the two invocations plus the CPU
    concatenation.
    """

    def __init__(self, registry: MicroserviceRegistry, forward: str,
                 backward: str, concat_latency_s: float = 15e-6):
        self.registry = registry
        self.forward_name = forward
        self.backward_name = backward
        self.concat_latency_s = concat_latency_s

    def invoke(self, inputs: List[np.ndarray],
               functional: bool = False) -> PlanResult:
        forward = self.registry.lookup(self.forward_name)
        backward = self.registry.lookup(self.backward_name)
        steps = len(inputs)
        fwd = forward.invoke(
            steps, functional_inputs=inputs if functional else None)
        bwd = backward.invoke(
            steps,
            functional_inputs=list(reversed(inputs)) if functional
            else None)
        value = None
        if functional:
            value = [np.concatenate([f, b]) for f, b in
                     zip(fwd.outputs, reversed(bwd.outputs))]
        total = max(fwd.total_s, bwd.total_s) + self.concat_latency_s
        return PlanResult(
            value=value, total_latency_s=total,
            stage_latencies=[fwd.total_s, bwd.total_s,
                             self.concat_latency_s])
