"""Dynamic batching: SLO-aware request coalescing onto batched replay.

The paper's Section I frames the serving dilemma: "a throughput
architecture must either process these requests individually, leading
to reduced throughput while still sustaining batch-equivalent latency,
or incur increased latency by waiting for multiple request arrivals to
form a batch."  This module implements the second regime end to end
and makes its cost/benefit measurable against the BW batch-1 design:

* :class:`ServiceTimeCurve` — a piecewise-linear batch-size ->
  aggregate-service-time curve, **measured** from batched replay
  wall-clock by :func:`calibrate_batch_curve` rather than hand-written,
  so every queueing simulation downstream is backed by the same
  executable fast path the perf gates check for bit-equality.
* :class:`BatchPolicy` / :class:`AdaptiveBatchPolicy` — static and
  SLO-aware batch formation.  The adaptive policy is a deterministic
  AIMD controller on the *target* batch size: it grows the target while
  observed p99 latency has headroom against the SLO and the queue is
  deep enough to fill bigger batches, and halves it when p99 encroaches
  on the SLO.  No randomness — identical inputs reproduce identical
  target trajectories.
* :class:`DynamicBatcher` — the serving loop: a discrete-event
  simulation of one batching queue in front of one node.  In
  *real-execution* mode it drives
  :meth:`~repro.system.microservice.HardwareMicroservice.invoke_batched`
  so every dispatched batch is one
  :class:`~repro.functional.replay.BatchedReplay` execution with
  per-request outputs bit-identical to sequential invocation; in
  *curve-only* mode service times come from a measured
  :class:`ServiceTimeCurve` and million-request sweeps run in seconds.
* :func:`slo_sweep` — the headline benchmark: goodput (requests
  completed within a fixed p99-style SLO per second) of dynamic
  batching vs. the batch-1 server, swept over arrival rates.  Its
  payload feeds ``BENCH_perf.json`` and the CI goodput gate.

Simulated time is seconds.  Everything except the wall-clock
calibration itself is deterministic for fixed seeds.
"""

from __future__ import annotations

import bisect
import dataclasses
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..obs import Metrics, Tracer, or_null, or_null_metrics, \
    percentile_or_nan
from .loadgen import Batch1Server, ServedRequest, poisson_arrivals
from .microservice import HardwareMicroservice

#: Histogram bucket bounds for batch occupancy (requests per dispatch).
OCCUPANCY_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Histogram bucket bounds for queue wait (seconds).
QUEUE_WAIT_BOUNDS = (1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1)


class BatchingError(ReproError):
    """Invalid batching policy, curve, or serving parameters."""


# ---------------------------------------------------------------------------
# Measured batch service-time curves
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ServiceTimeCurve:
    """Aggregate service time of a batch-``b`` dispatch, piecewise
    linear between measured points.

    ``batches`` must start at 1 and increase strictly; ``times_s`` must
    be positive and non-decreasing (a bigger batch never finishes
    sooner in aggregate).  Beyond the last measured point the curve
    extrapolates at the last marginal per-request cost.
    """

    batches: Tuple[int, ...]
    times_s: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.batches) != len(self.times_s) or not self.batches:
            raise BatchingError(
                f"{len(self.batches)} batch sizes vs "
                f"{len(self.times_s)} times; need equal, >= 1")
        if self.batches[0] != 1:
            raise BatchingError(
                f"curve must anchor at batch=1, starts at "
                f"{self.batches[0]}")
        if any(b2 <= b1 for b1, b2 in zip(self.batches,
                                          self.batches[1:])):
            raise BatchingError(
                f"batch sizes must increase strictly: {self.batches}")
        if any(t <= 0 for t in self.times_s):
            raise BatchingError(
                f"service times must be positive: {self.times_s}")
        if any(t2 < t1 for t1, t2 in zip(self.times_s,
                                         self.times_s[1:])):
            raise BatchingError(
                f"aggregate service time must be non-decreasing in "
                f"batch size: {self.times_s}")

    def __call__(self, batch: int) -> float:
        """Aggregate service time (seconds) of one batch-``batch``
        dispatch."""
        if batch < 1:
            raise BatchingError(f"batch must be >= 1, got {batch}")
        bs, ts = self.batches, self.times_s
        if batch <= bs[-1]:
            return float(np.interp(batch, bs, ts))
        if len(bs) == 1:
            return ts[0] * batch
        slope = (ts[-1] - ts[-2]) / (bs[-1] - bs[-2])
        return ts[-1] + slope * (batch - bs[-1])

    def relative(self, batch: int) -> float:
        """Service-time multiple over batch-1 (``relative(1) == 1``);
        the form :meth:`FpgaNode.set_batch_curve
        <repro.system.microservice.FpgaNode.set_batch_curve>` takes."""
        return self(batch) / self.times_s[0]

    def scaled(self, base_s: float) -> "ServiceTimeCurve":
        """The same relative shape re-anchored so the batch-1 service
        time is ``base_s`` — e.g. a wall-clock-measured shape applied
        to a timing-simulator latency."""
        if base_s <= 0:
            raise BatchingError(f"base_s must be positive, got {base_s}")
        k = base_s / self.times_s[0]
        return ServiceTimeCurve(self.batches,
                                tuple(t * k for t in self.times_s))

    def throughput_rps(self, batch: int) -> float:
        """Steady-state throughput at a fixed dispatch size."""
        return batch / self(batch)

    def best_batch(self, max_batch: Optional[int] = None) -> int:
        """The measured dispatch size with the highest throughput."""
        candidates = [b for b in self.batches
                      if max_batch is None or b <= max_batch]
        if not candidates:
            candidates = [1]
        return max(candidates, key=self.throughput_rps)

    def to_json(self) -> Dict:
        return {"batches": list(self.batches),
                "times_s": list(self.times_s)}

    @classmethod
    def from_json(cls, payload: Dict) -> "ServiceTimeCurve":
        return cls(tuple(int(b) for b in payload["batches"]),
                   tuple(float(t) for t in payload["times_s"]))


def calibrate_batch_curve(compiled, batches: Sequence[int] = (1, 2, 4,
                                                             8, 16),
                          steps: int = 8, repeats: int = 3,
                          seed: int = 11) -> ServiceTimeCurve:
    """Measure a :class:`ServiceTimeCurve` from batched replay.

    Runs ``compiled.run_sequence_batched`` at each batch size on
    long-lived warmed simulators (the plan compiles once and the MRF
    pins once, as on the hardware), interleaving timed repetitions
    round-robin across batch sizes so host-speed drift hits every
    point alike, and keeping the best of ``repeats`` per point.  The
    result is wall-clock — a *measurement*, not deterministic — but
    the curve it produces drives only latency models; functional
    outputs always come from the bit-exact replay path itself.

    Aggregate times are clamped monotone non-decreasing before the
    curve is built (timer jitter can otherwise make a larger batch
    appear marginally cheaper in aggregate, which no queueing model
    should believe).
    """
    batches = tuple(sorted(set(int(b) for b in batches)))
    if not batches or batches[0] != 1:
        raise BatchingError(
            f"calibration must include batch=1, got {batches}")
    if steps < 1 or repeats < 1:
        raise BatchingError("steps and repeats must be >= 1")
    rng = np.random.default_rng(seed)
    xs = [rng.standard_normal(compiled.input_length).astype(np.float32)
          for _ in range(steps)]
    sims = {}
    inputs = {}
    for batch in batches:
        # Distinct lossless power-of-two scalings per request keep the
        # batch from being degenerate identical work.
        inputs[batch] = [[(x * 2.0 ** (-(b % 5))).astype(np.float32)
                          for x in xs] for b in range(batch)]
        sims[batch] = compiled.new_simulator(naive=False)
        compiled.run_sequence_batched(inputs[batch], sim=sims[batch])
    best = {batch: float("inf") for batch in batches}
    for _ in range(repeats):
        for batch in batches:
            t0 = time.perf_counter()
            compiled.run_sequence_batched(inputs[batch],
                                          sim=sims[batch])
            elapsed = time.perf_counter() - t0
            if elapsed < best[batch]:
                best[batch] = elapsed
    times = np.maximum.accumulate(
        np.asarray([best[b] for b in batches], dtype=np.float64))
    return ServiceTimeCurve(batches, tuple(float(t) for t in times))


# ---------------------------------------------------------------------------
# Batch formation policies
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class BatchPolicy:
    """Static batch formation: dispatch when ``max_batch`` requests
    have queued or the oldest has waited ``timeout_s``."""

    max_batch: int = 16
    timeout_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise BatchingError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.timeout_s < 0:
            raise BatchingError(
                f"timeout_s must be >= 0, got {self.timeout_s}")


class AdaptiveBatchPolicy:
    """Deterministic SLO-aware controller for the target batch size.

    After every dispatch the controller observes the batch's request
    latencies and the queue depth left behind, then adjusts the target
    dispatch size:

    * **grow** when the queue is at least one full target deep — under
      backlog only a bigger dispatch raises throughput, so growth is
      goodput-optimal no matter what the (queue-dominated) latency
      window says.  With real headroom (windowed p99 below
      ``grow_headroom * slo_s``) the target doubles; with the window
      already queue-poisoned it creeps ``+1``, still climbing out of
      the backlog instead of stalling.
    * **shrink** (multiplicative, halve) when there is *no* backlog
      but the windowed p99 still exceeds ``shrink_headroom * slo_s``
      — latency is batch/timeout-induced, so smaller dispatches are
      the lever.

    Shrinking on queue-dominated latency is the classic adaptive-batch
    death spiral (halving the target cuts throughput, deepening the
    very queue that blew the latency budget); conditioning shrink on a
    shallow queue avoids it. All state is a bounded latency window and
    an integer target; no randomness, so a fixed arrival trace
    reproduces the exact target trajectory (the seed-determinism suite
    asserts this).
    """

    def __init__(self, slo_s: float, min_batch: int = 1,
                 max_batch: int = 16, window: int = 64,
                 grow_headroom: float = 0.5,
                 shrink_headroom: float = 0.85):
        if slo_s <= 0:
            raise BatchingError(f"slo_s must be positive, got {slo_s}")
        if not 1 <= min_batch <= max_batch:
            raise BatchingError(
                f"need 1 <= min_batch ({min_batch}) <= max_batch "
                f"({max_batch})")
        if window < 1:
            raise BatchingError(f"window must be >= 1, got {window}")
        if not 0.0 < grow_headroom < shrink_headroom:
            raise BatchingError(
                f"need 0 < grow_headroom ({grow_headroom}) < "
                f"shrink_headroom ({shrink_headroom})")
        self.slo_s = slo_s
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.grow_headroom = grow_headroom
        self.shrink_headroom = shrink_headroom
        self._latencies: deque = deque(maxlen=window)
        self.target = min_batch
        #: ``(dispatch_finish_s, target_after)`` per observation.
        self.trace: List[Tuple[float, int]] = []

    def observe(self, now: float, batch_size: int, queue_depth: int,
                latencies_s: Sequence[float]) -> int:
        """Fold one dispatch's outcome in; returns the new target."""
        self._latencies.extend(latencies_s)
        p99 = percentile_or_nan(list(self._latencies), 99)
        if queue_depth >= self.target:
            # Backlog: growth is the only throughput lever.  Double on
            # real headroom, creep when the window is queue-poisoned.
            step = (self.target if p99 < self.grow_headroom * self.slo_s
                    else 1)
            self.target = min(self.max_batch, self.target + step)
        elif p99 > self.shrink_headroom * self.slo_s:
            self.target = max(self.min_batch, self.target // 2)
        self.trace.append((now, self.target))
        return self.target


# ---------------------------------------------------------------------------
# The serving loop
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class BatchServeResult:
    """Per-request lifecycles and per-dispatch shapes of one run.

    ``requests[i]`` corresponds to ``arrivals[i]``; every request in a
    dispatch shares its ``start``/``finish``.  Percentiles follow
    NaN-with-flag semantics (``empty``).
    """

    requests: List[ServedRequest]
    #: Requests per dispatch, in dispatch order.
    batch_sizes: List[int]
    #: Adaptive-target trajectory (empty without an adaptive policy).
    target_trace: List[Tuple[float, int]]
    #: Per-request outputs (real-execution mode only), aligned with
    #: ``requests``.
    outputs: Optional[List[List[np.ndarray]]] = None

    @property
    def empty(self) -> bool:
        return not self.requests

    @property
    def mean_batch(self) -> float:
        if not self.batch_sizes:
            return float("nan")
        return float(np.mean(self.batch_sizes))

    def percentile_latency(self, q: float) -> float:
        return percentile_or_nan(
            [r.latency for r in self.requests], q)

    @property
    def p50_ms(self) -> float:
        return self.percentile_latency(50) * 1e3

    @property
    def p99_ms(self) -> float:
        return self.percentile_latency(99) * 1e3

    def percentile_queue_wait(self, q: float) -> float:
        return percentile_or_nan(
            [r.queue_wait for r in self.requests], q)

    @property
    def span_s(self) -> float:
        if self.empty:
            return float("nan")
        return (max(r.finish for r in self.requests)
                - self.requests[0].arrival)

    @property
    def throughput_rps(self) -> float:
        span = self.span_s
        if np.isnan(span):
            return float("nan")
        return len(self.requests) / span if span > 0 else float("inf")

    def slo_attainment(self, slo_s: float) -> float:
        """Fraction of requests finishing within ``slo_s``."""
        if self.empty:
            return float("nan")
        met = sum(1 for r in self.requests if r.latency <= slo_s)
        return met / len(self.requests)

    def goodput_rps(self, slo_s: float) -> float:
        """SLO-met completions per second of run time — the headline
        serving metric."""
        span = self.span_s
        if np.isnan(span):
            return float("nan")
        met = sum(1 for r in self.requests if r.latency <= slo_s)
        return met / span if span > 0 else float("inf")


def goodput_rps(requests: Sequence[ServedRequest],
                slo_s: float) -> float:
    """SLO-met completions per second for any served-request list
    (shared with the batch-1 baseline in :func:`slo_sweep`)."""
    if not requests:
        return float("nan")
    span = max(r.finish for r in requests) - requests[0].arrival
    met = sum(1 for r in requests if r.latency <= slo_s)
    return met / span if span > 0 else float("inf")


class DynamicBatcher:
    """One SLO-aware batching queue in front of one serving node.

    Exactly one of ``service`` / ``curve`` backs the service-time
    model:

    * ``service`` (a :class:`~repro.system.microservice
      .HardwareMicroservice`): dispatches call
      :meth:`~repro.system.microservice.HardwareMicroservice
      .invoke_batched`; with per-request ``inputs`` the node runs one
      real :class:`~repro.functional.replay.BatchedReplay` per
      dispatch and the result carries per-request outputs bit-identical
      to sequential invocation.
    * ``curve`` (a measured :class:`ServiceTimeCurve`): pure
      discrete-event mode for large sweeps.

    ``metrics`` receives the observability contract of the serving
    stack: a ``serving.batch_occupancy`` histogram (requests per
    dispatch), a ``serving.queue_wait_s`` histogram (arrival ->
    dispatch wait per request), and ``serving.dispatches`` /
    ``serving.requests`` counters — all exported verbatim by
    :func:`repro.obs.render_prometheus`.  ``tracer`` (simulated
    seconds) gets one span per dispatch on the ``batching`` track.
    """

    def __init__(self, policy: BatchPolicy,
                 service: Optional[HardwareMicroservice] = None,
                 curve: Optional[ServiceTimeCurve] = None,
                 adaptive: Optional[AdaptiveBatchPolicy] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None):
        if (service is None) == (curve is None):
            raise BatchingError(
                "exactly one of service/curve must back the batcher")
        if adaptive is not None and adaptive.max_batch > policy.max_batch:
            raise BatchingError(
                f"adaptive max_batch ({adaptive.max_batch}) exceeds "
                f"policy max_batch ({policy.max_batch})")
        self.policy = policy
        self.service = service
        self.curve = curve
        self.adaptive = adaptive
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)

    def _dispatch(self, steps: Optional[int], batch: int,
                  batch_inputs) -> Tuple[float, Optional[List]]:
        """Service time and (optionally) per-request outputs of one
        batch-``batch`` dispatch."""
        if self.curve is not None:
            return self.curve(batch), None
        res = self.service.invoke_batched(
            steps, batch=batch, functional_inputs=batch_inputs)
        return res.total_s, res.outputs

    def run(self, arrivals: Sequence[float],
            steps: Optional[int] = None,
            inputs: Optional[List[List[np.ndarray]]] = None
            ) -> BatchServeResult:
        """Serve a sorted arrival trace; returns per-request
        lifecycles (aligned with ``arrivals``) and dispatch shapes.

        ``steps`` (timesteps per request) is required in service mode;
        ``inputs`` (one input-vector list per request) additionally
        runs every dispatch through batched replay for real outputs.
        """
        arrivals = [float(a) for a in arrivals]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise BatchingError("arrivals must be sorted")
        if self.service is not None and steps is None:
            raise BatchingError("service-backed runs need steps")
        if inputs is not None:
            if self.service is None:
                raise BatchingError(
                    "real execution (inputs) needs a service backend")
            if len(inputs) != len(arrivals):
                raise BatchingError(
                    f"{len(inputs)} input lists for "
                    f"{len(arrivals)} arrivals")
        n = len(arrivals)
        served: List[Optional[ServedRequest]] = [None] * n
        outputs: Optional[List] = [None] * n if inputs is not None \
            else None
        batch_sizes: List[int] = []
        occupancy = self.metrics.histogram("serving.batch_occupancy",
                                           bounds=OCCUPANCY_BOUNDS)
        queue_wait = self.metrics.histogram("serving.queue_wait_s",
                                            bounds=QUEUE_WAIT_BOUNDS)
        dispatches = self.metrics.counter("serving.dispatches")
        requests_ctr = self.metrics.counter("serving.requests")
        policy = self.policy
        adaptive = self.adaptive
        free_at = 0.0
        i = 0
        while i < n:
            target = (adaptive.target if adaptive is not None
                      else policy.max_batch)
            target = min(max(target, 1), policy.max_batch)
            # The server considers dispatch once it is free and at
            # least one request is waiting; stragglers may join until
            # the head's timeout, a full *target* dispatches at once.
            head = max(arrivals[i], free_at)
            deadline = max(arrivals[i] + policy.timeout_s, head)
            j = i
            dispatch_at = deadline
            while j < n and j - i < target and arrivals[j] <= deadline:
                j += 1
            if j - i == target:
                dispatch_at = max(arrivals[j - 1], head)
            batch = j - i
            start = max(dispatch_at, free_at)
            batch_inputs = inputs[i:j] if inputs is not None else None
            service_s, batch_outputs = self._dispatch(
                steps, batch, batch_inputs)
            finish = start + service_s
            free_at = finish
            latencies = []
            for k in range(i, j):
                served[k] = ServedRequest(arrivals[k], start, finish)
                latencies.append(finish - arrivals[k])
                queue_wait.observe(start - arrivals[k])
                if batch_outputs is not None:
                    outputs[k] = batch_outputs[k - i]
            batch_sizes.append(batch)
            occupancy.observe(float(batch))
            dispatches.inc()
            requests_ctr.inc(batch)
            self.tracer.span(f"dispatch b={batch}", start, finish,
                             track="batching", batch=batch,
                             queued=j - i)
            if adaptive is not None:
                # Queue depth the controller sees: arrivals that are
                # already waiting when this dispatch finishes.
                depth = bisect.bisect_right(arrivals, finish, lo=j) - j
                adaptive.observe(finish, batch, depth, latencies)
            i = j
        return BatchServeResult(
            requests=served, batch_sizes=batch_sizes,
            target_trace=list(adaptive.trace) if adaptive is not None
            else [], outputs=outputs)


# ---------------------------------------------------------------------------
# The headline sweep: goodput at a fixed SLO, batch-1 vs dynamic
# ---------------------------------------------------------------------------

def slo_sweep(curve: ServiceTimeCurve, slo_s: float,
              rates_rps: Sequence[float], requests: int = 2000,
              max_batch: int = 16, timeout_s: Optional[float] = None,
              seed: int = 0,
              metrics: Optional[Metrics] = None) -> Dict:
    """Goodput at a fixed SLO: batch-1 vs SLO-aware dynamic batching.

    Both servers see identical Poisson arrival traces per rate.  The
    batch-1 server runs at the measured batch-1 service time (the BW
    regime); the dynamic batcher runs the same measured curve under an
    :class:`AdaptiveBatchPolicy` targeting ``slo_s``.  The payload's
    ``goodput_ratio`` is the peak dynamic goodput over the peak
    batch-1 goodput across the sweep — the number the perf gate floors.
    """
    if slo_s <= 0:
        raise BatchingError(f"slo_s must be positive, got {slo_s}")
    if not rates_rps:
        raise BatchingError("rates_rps must be non-empty")
    if timeout_s is None:
        timeout_s = slo_s / 4.0
    batch1 = Batch1Server(curve(1))
    rows = []
    for rate in rates_rps:
        arrivals = poisson_arrivals(float(rate), requests, seed=seed)
        base = batch1.simulate(arrivals)
        batcher = DynamicBatcher(
            BatchPolicy(max_batch=max_batch, timeout_s=timeout_s),
            curve=curve,
            adaptive=AdaptiveBatchPolicy(slo_s, max_batch=max_batch),
            metrics=metrics)
        dyn = batcher.run(arrivals)
        rows.append({
            "rate_rps": float(rate),
            "batch1_goodput_rps": goodput_rps(base.requests, slo_s),
            "batch1_p99_ms": base.p99_ms,
            "dynamic_goodput_rps": dyn.goodput_rps(slo_s),
            "dynamic_p99_ms": dyn.p99_ms,
            "dynamic_mean_batch": dyn.mean_batch,
            "dynamic_slo_attainment": dyn.slo_attainment(slo_s),
        })
    peak_batch1 = max(r["batch1_goodput_rps"] for r in rows)
    peak_dynamic = max(r["dynamic_goodput_rps"] for r in rows)
    ratio = (peak_dynamic / peak_batch1 if peak_batch1 > 0
             else float("nan"))
    return {
        "slo_ms": slo_s * 1e3,
        "timeout_ms": timeout_s * 1e3,
        "max_batch": max_batch,
        "requests_per_rate": requests,
        "curve": curve.to_json(),
        "rates": rows,
        "peak_goodput_batch1_rps": peak_batch1,
        "peak_goodput_dynamic_rps": peak_dynamic,
        "goodput_ratio": ratio,
    }


def record_batch_series(batch_log: Sequence[Tuple[float, int]],
                        store) -> None:
    """Fold a batched run's dispatch log into a
    :class:`~repro.obs.timeseries.TimeSeriesStore`.

    Records the fleet-scoped ``cluster.batch_occupancy`` gauge (mean
    dispatch size per store window) that the dashboard renderers plot
    as the batch-size strip; pass
    :attr:`~repro.system.cluster.ClusterResult.batch_log`.
    """
    if not batch_log:
        return
    gauge = store.gauge("cluster.batch_occupancy", scope="fleet")
    times = np.asarray([t for t, _ in batch_log], dtype=np.float64)
    sizes = np.asarray([b for _, b in batch_log], dtype=np.float64)
    idx = np.clip(((times - store.start_s)
                   // store.interval_s).astype(int),
                  0, store.windows - 1)
    sums = np.bincount(idx, weights=sizes, minlength=store.windows)
    counts = np.bincount(idx, minlength=store.windows)
    for w in np.nonzero(counts)[0]:
        gauge.record(store.start_s + (w + 0.5) * store.interval_s,
                     sums[w] / counts[w])


def render_slo_sweep(payload: Dict) -> str:
    """Fixed-width table of one :func:`slo_sweep` payload."""
    header = (f"{'rate r/s':>10} {'b1 goodput':>11} {'b1 p99ms':>9} "
              f"{'dyn goodput':>12} {'dyn p99ms':>10} {'mean b':>7}")
    lines = [f"SLO {payload['slo_ms']:.3f} ms, max_batch "
             f"{payload['max_batch']}, timeout "
             f"{payload['timeout_ms']:.3f} ms",
             header, "-" * len(header)]
    for r in payload["rates"]:
        lines.append(
            f"{r['rate_rps']:>10.0f} {r['batch1_goodput_rps']:>11.0f} "
            f"{r['batch1_p99_ms']:>9.3f} "
            f"{r['dynamic_goodput_rps']:>12.0f} "
            f"{r['dynamic_p99_ms']:>10.3f} "
            f"{r['dynamic_mean_batch']:>7.2f}")
    lines.append(
        f"peak goodput: batch-1 "
        f"{payload['peak_goodput_batch1_rps']:.0f}/s, dynamic "
        f"{payload['peak_goodput_dynamic_rps']:.0f}/s -> "
        f"{payload['goodput_ratio']:.2f}x")
    return "\n".join(lines)
