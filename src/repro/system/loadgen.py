"""Request-level serving simulation: latency under load.

The paper's motivation (Section I): "in an online inference setting,
requests often arrive one at a time; a throughput architecture must
either process these requests individually, leading to reduced
throughput while still sustaining batch-equivalent latency, or incur
increased latency by waiting for multiple request arrivals to form a
batch." This module makes that argument quantitative: a discrete-event
simulation of Poisson request arrivals against

* a **batch-1 server** (the BW NPU: one request at a time, fixed
  service time), and
* a **batching server** (the GPU serving stack: requests queue until
  ``max_batch`` accumulate or the oldest waits ``timeout``; a batch of
  size b takes ``batch_service_time(b)``),

reporting the latency distribution each sustains at a given arrival
rate.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ReproError
from ..obs import Metrics, Tracer, or_null, or_null_metrics, \
    percentile_or_nan
from .faults import FaultInjector, InvocationOutcome, ResilientClient


class LoadError(ReproError):
    """Invalid load-generation parameters."""


@dataclasses.dataclass(frozen=True)
class ServedRequest:
    """One request's lifecycle timestamps (seconds)."""

    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival


@dataclasses.dataclass(frozen=True)
class LoadResult:
    """Latency statistics of one simulation.

    Degenerate (empty) result sets follow NaN-with-flag semantics:
    :attr:`empty` is the flag, and every statistic returns ``nan``
    instead of raising or reporting a misleading ``0.0``.
    """

    requests: List[ServedRequest]

    @property
    def empty(self) -> bool:
        """No requests were served — every statistic below is ``nan``."""
        return not self.requests

    def percentile_latency(self, q: float) -> float:
        """Latency percentile (seconds) via the shared
        :func:`repro.obs.percentile_or_nan` helper; ``nan`` when
        :attr:`empty`."""
        return percentile_or_nan([r.latency for r in self.requests], q)

    @property
    def p50_ms(self) -> float:
        return self.percentile_latency(50) * 1e3

    @property
    def p99_ms(self) -> float:
        return self.percentile_latency(99) * 1e3

    @property
    def mean_ms(self) -> float:
        if self.empty:
            return float("nan")
        return 1e3 * float(np.mean([r.latency for r in self.requests]))

    @property
    def throughput_rps(self) -> float:
        if self.empty:
            return float("nan")
        span = self.requests[-1].finish - self.requests[0].arrival
        return len(self.requests) / span if span > 0 else float("inf")


def poisson_arrivals(rate_rps: float, count: int,
                     seed: int = 0) -> List[float]:
    """Arrival times of a Poisson process at ``rate_rps``."""
    if rate_rps <= 0 or count < 1:
        raise LoadError("rate and count must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, count)
    return list(np.cumsum(gaps))


def uniform_arrivals(rate_rps: float, count: int) -> List[float]:
    """Deterministic equally-spaced arrivals (for tests)."""
    if rate_rps <= 0 or count < 1:
        raise LoadError("rate and count must be positive")
    return [(i + 1) / rate_rps for i in range(count)]


# ---------------------------------------------------------------------------
# Open-loop arrival traces (vectorized)
#
# The cluster/chaos simulations drive 1e6+ simulated requests, so trace
# synthesis is fully vectorized: each generator is a handful of numpy
# calls with no per-request Python work, seeded for bit-determinism.
# Non-homogeneous processes use Lewis-Shedler thinning of a homogeneous
# Poisson process at the peak rate.
# ---------------------------------------------------------------------------

def _homogeneous_times(rate_rps: float, duration_s: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Event times of a homogeneous Poisson process over a duration."""
    times: List[np.ndarray] = []
    t = 0.0
    # Over-draw ~10% past the expected count, looping in the (rare)
    # case the trace still falls short of the duration.
    chunk = max(int(rate_rps * duration_s * 1.1) + 16, 64)
    while t < duration_s:
        gaps = rng.exponential(1.0 / rate_rps, chunk)
        block = t + np.cumsum(gaps)
        times.append(block)
        t = float(block[-1])
    all_times = np.concatenate(times)
    return all_times[all_times < duration_s]


def diurnal_arrivals(base_rate_rps: float, peak_rate_rps: float,
                     duration_s: float, period_s: float = 86400.0,
                     seed: int = 0) -> np.ndarray:
    """Sinusoidal diurnal traffic: rate swings ``base`` -> ``peak`` ->
    ``base`` over each ``period_s`` (trough at t=0, peak at half
    period)."""
    if base_rate_rps <= 0 or peak_rate_rps < base_rate_rps:
        raise LoadError(
            f"need 0 < base_rate ({base_rate_rps}) <= peak_rate "
            f"({peak_rate_rps})")
    if duration_s <= 0 or period_s <= 0:
        raise LoadError("duration and period must be positive")
    rng = np.random.default_rng(seed)
    t = _homogeneous_times(peak_rate_rps, duration_s, rng)
    rate_t = base_rate_rps + (peak_rate_rps - base_rate_rps) * 0.5 * (
        1.0 - np.cos(2.0 * np.pi * t / period_s))
    keep = rng.random(t.size) < rate_t / peak_rate_rps
    return t[keep]


def bursty_arrivals(base_rate_rps: float, burst_rate_rps: float,
                    duration_s: float, mean_quiet_s: float = 1.0,
                    mean_burst_s: float = 0.2,
                    seed: int = 0) -> np.ndarray:
    """Markov-modulated (two-state) traffic: exponential quiet/burst
    sojourns alternate, with Poisson arrivals at the state's rate."""
    if base_rate_rps <= 0 or burst_rate_rps < base_rate_rps:
        raise LoadError(
            f"need 0 < base_rate ({base_rate_rps}) <= burst_rate "
            f"({burst_rate_rps})")
    if duration_s <= 0 or mean_quiet_s <= 0 or mean_burst_s <= 0:
        raise LoadError("duration and sojourn means must be positive")
    rng = np.random.default_rng(seed)
    # Draw alternating sojourn boundaries well past the duration.
    cycle = mean_quiet_s + mean_burst_s
    n_cycles = max(int(duration_s / cycle * 2) + 8, 8)
    quiet = rng.exponential(mean_quiet_s, n_cycles)
    burst = rng.exponential(mean_burst_s, n_cycles)
    while float(np.sum(quiet) + np.sum(burst)) < duration_s:
        quiet = np.concatenate([quiet,
                                rng.exponential(mean_quiet_s, n_cycles)])
        burst = np.concatenate([burst,
                                rng.exponential(mean_burst_s, n_cycles)])
    bounds = np.cumsum(np.stack([quiet[:len(burst)], burst],
                                axis=1).ravel())
    t = _homogeneous_times(burst_rate_rps, duration_s, rng)
    # Even segment index (0, 2, ...) = quiet state, odd = burst.
    in_burst = (np.searchsorted(bounds, t, side="right") % 2) == 1
    rate_t = np.where(in_burst, burst_rate_rps, base_rate_rps)
    keep = rng.random(t.size) < rate_t / burst_rate_rps
    return t[keep]


def heavy_tailed_arrivals(rate_rps: float, count: int,
                          alpha: float = 1.5,
                          seed: int = 0) -> np.ndarray:
    """Pareto inter-arrival gaps with tail index ``alpha`` (heavier as
    ``alpha`` -> 1) and mean gap ``1/rate_rps``: long silences broken
    by dense request clumps."""
    if rate_rps <= 0 or count < 1:
        raise LoadError("rate and count must be positive")
    if alpha <= 1.0:
        raise LoadError(
            f"alpha={alpha} needs alpha > 1 for a finite mean gap")
    rng = np.random.default_rng(seed)
    scale = (alpha - 1.0) / alpha / rate_rps  # Pareto x_m for the mean
    # 1-U maps [0,1) to (0,1], keeping the inverse CDF finite.
    gaps = scale * (1.0 - rng.random(count)) ** (-1.0 / alpha)
    return np.cumsum(gaps)


class Batch1Server:
    """One request at a time at a fixed service time — the BW regime."""

    def __init__(self, service_time_s: float):
        if service_time_s <= 0:
            raise LoadError("service time must be positive")
        self.service_time_s = service_time_s

    @property
    def capacity_rps(self) -> float:
        return 1.0 / self.service_time_s

    def simulate(self, arrivals: Sequence[float]) -> LoadResult:
        served: List[ServedRequest] = []
        free_at = 0.0
        for arrival in arrivals:
            start = max(arrival, free_at)
            finish = start + self.service_time_s
            free_at = finish
            served.append(ServedRequest(arrival, start, finish))
        return LoadResult(served)


class BatchingServer:
    """Forms batches up to ``max_batch``, waiting at most ``timeout_s``
    for stragglers — the GPU serving-stack regime."""

    def __init__(self, batch_service_time: Callable[[int], float],
                 max_batch: int, timeout_s: float):
        if max_batch < 1:
            raise LoadError("max_batch must be >= 1")
        if timeout_s < 0:
            raise LoadError("timeout must be non-negative")
        self.batch_service_time = batch_service_time
        self.max_batch = max_batch
        self.timeout_s = timeout_s

    @classmethod
    def from_curve(cls, curve, max_batch: int,
                   timeout_s: float) -> "BatchingServer":
        """A batching server backed by a **measured**
        :class:`~repro.system.batching.ServiceTimeCurve` instead of a
        hand-written service-time function, so SLO comparisons run
        against the service times batched replay actually achieves."""
        if not callable(curve):
            raise LoadError(
                f"curve must be callable (batch -> seconds), got "
                f"{type(curve).__name__}")
        return cls(curve, max_batch, timeout_s)

    def capacity_rps(self) -> float:
        """Throughput ceiling at full batches."""
        return self.max_batch / self.batch_service_time(self.max_batch)

    def simulate(self, arrivals: Sequence[float]) -> LoadResult:
        arrivals = sorted(arrivals)
        served: List[ServedRequest] = []
        free_at = 0.0
        i = 0
        n = len(arrivals)
        while i < n:
            # The server considers dispatch once it is free and at
            # least one request is waiting.
            head = max(arrivals[i], free_at)
            deadline = max(arrivals[i] + self.timeout_s, head)
            # Requests arriving by the deadline may join, up to
            # max_batch; a full batch dispatches immediately.
            j = i
            dispatch_at = deadline
            while j < n and j - i < self.max_batch \
                    and arrivals[j] <= deadline:
                j += 1
            if j - i == self.max_batch:
                dispatch_at = max(arrivals[j - 1], head)
            batch = arrivals[i:j]
            start = max(dispatch_at, free_at)
            finish = start + self.batch_service_time(len(batch))
            free_at = finish
            for arrival in batch:
                served.append(ServedRequest(arrival, start, finish))
            i = j
        return LoadResult(served)


@dataclasses.dataclass(frozen=True)
class SloComparison:
    """One arrival-rate point of the BW-vs-GPU serving comparison."""

    rate_rps: float
    bw: LoadResult
    gpu: LoadResult


# ---------------------------------------------------------------------------
# Fault-aware serving scenarios
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """A scheduled liveness change: crash or repair a node at a time."""

    time_s: float
    action: str  # "crash" | "repair"
    node: str

    def __post_init__(self) -> None:
        if self.action not in ("crash", "repair"):
            raise LoadError(f"unknown fault action {self.action!r}")


@dataclasses.dataclass(frozen=True)
class FaultScenarioResult:
    """Availability/goodput/latency statistics of one fault scenario."""

    outcomes: List[InvocationOutcome]
    #: Request arrival times, aligned with ``outcomes``.
    arrivals: List[float]
    #: Injected-fault counts by category, snapshotted at scenario end.
    fault_counts: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def empty(self) -> bool:
        """No requests were issued — rate/latency statistics are ``nan``."""
        return not self.outcomes

    @property
    def served(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return self.total - self.served

    @property
    def has_successes(self) -> bool:
        """At least one request succeeded — latency percentiles are
        real numbers rather than ``nan``."""
        return any(o.ok for o in self.outcomes)

    @property
    def availability(self) -> float:
        """Fraction of requests that produced a result at all; ``nan``
        for an empty scenario (see :attr:`empty`)."""
        if not self.outcomes:
            return float("nan")
        return self.served / self.total

    @property
    def slo_met(self) -> int:
        return sum(1 for o in self.outcomes if o.deadline_met)

    @property
    def goodput_rps(self) -> float:
        """Deadline-met completions per second of scenario time;
        ``nan`` for an empty scenario."""
        span = self.span_s
        if np.isnan(span):
            return float("nan")
        return self.slo_met / span if span > 0 else float("inf")

    @property
    def span_s(self) -> float:
        """First arrival to last finish (seconds); ``nan`` when empty."""
        if not self.outcomes:
            return float("nan")
        last_finish = max(a + o.latency_s
                          for a, o in zip(self.arrivals, self.outcomes))
        return last_finish - self.arrivals[0]

    def percentile_latency_ms(self, q: float) -> float:
        """Latency percentile over *successful* requests (ms), via the
        shared :func:`repro.obs.percentile_or_nan` helper; ``nan`` when
        every request failed (:attr:`has_successes` is the flag)."""
        lat = [o.latency_s for o in self.outcomes if o.ok]
        return percentile_or_nan(lat, q) * 1e3

    @property
    def p50_ms(self) -> float:
        return self.percentile_latency_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_latency_ms(99)

    @property
    def p999_ms(self) -> float:
        return self.percentile_latency_ms(99.9)

    @property
    def mean_attempts(self) -> float:
        if not self.outcomes:
            return float("nan")
        return float(np.mean([o.attempts for o in self.outcomes]))

    @property
    def hedged(self) -> int:
        return sum(1 for o in self.outcomes if o.hedged)


def run_fault_scenario(client: ResilientClient, service: str,
                       arrivals: Sequence[float], steps: int,
                       injector: Optional[FaultInjector] = None,
                       events: Sequence[FaultEvent] = (),
                       tracer: Optional[Tracer] = None,
                       metrics: Optional[Metrics] = None
                       ) -> FaultScenarioResult:
    """Drive ``arrivals`` through a resilient client under faults.

    Requests are issued open-loop at their arrival times, in order;
    scheduled :class:`FaultEvent` crashes/repairs are applied to
    ``injector`` as simulated time passes them. Server-side queueing is
    not modeled here (each request sees an unloaded replica) — the
    point is the fault/recovery behavior, and
    :class:`Batch1Server`/:class:`BatchingServer` cover queueing.

    ``tracer`` (simulated-seconds timebase) receives an instant event
    per applied :class:`FaultEvent`; ``metrics`` gets scenario-level
    served/failed counters. Per-request spans come from the *client's*
    tracer — pass the same instance to both for one unified trace.

    Fully deterministic: fixed seeds (injector + client) and a fixed
    arrival sequence reproduce identical outcomes, traced or not.
    """
    if events and injector is None:
        raise LoadError("fault events scheduled but no injector given")
    tracer = or_null(tracer)
    metrics = or_null_metrics(metrics)
    arrivals = sorted(arrivals)
    pending = sorted(events, key=lambda e: e.time_s)
    idx = 0
    outcomes: List[InvocationOutcome] = []
    for arrival in arrivals:
        while idx < len(pending) and pending[idx].time_s <= arrival:
            event = pending[idx]
            if event.action == "crash":
                injector.crash(event.node)
            else:
                injector.repair(event.node)
            tracer.instant(f"fault:{event.action}", event.time_s,
                           track="faults", node=event.node)
            metrics.counter(f"scenario.{event.action}_events").inc()
            idx += 1
        outcome = client.invoke(service, steps, now=arrival)
        outcomes.append(outcome)
        metrics.counter("scenario.served" if outcome.ok
                        else "scenario.failed").inc()
    counts = dict(injector.counts) if injector is not None else {}
    for kind, count in counts.items():
        metrics.gauge(f"scenario.injected.{kind}").set(count)
    return FaultScenarioResult(outcomes=outcomes,
                               arrivals=list(arrivals),
                               fault_counts=counts)


def compare_under_load(bw_service_s: float,
                       gpu_batch_service: Callable[[int], float],
                       max_batch: int, timeout_s: float,
                       rates_rps: Sequence[float],
                       requests: int = 2000,
                       seed: int = 0) -> List[SloComparison]:
    """Simulate both serving stacks across arrival rates."""
    bw_server = Batch1Server(bw_service_s)
    gpu_server = BatchingServer(gpu_batch_service, max_batch, timeout_s)
    out = []
    for rate in rates_rps:
        arrivals = poisson_arrivals(rate, requests, seed=seed)
        out.append(SloComparison(
            rate_rps=rate,
            bw=bw_server.simulate(arrivals),
            gpu=gpu_server.simulate(arrivals)))
    return out
