"""Fleet monitoring plane: scraping, SLO alerting, detection scoring.

The missing layer between the cluster simulator (ground truth: every
request outcome, every injected fault) and an operator: a
:class:`FleetMonitor` scrapes the simulator through scheduled discrete
events into a :class:`~repro.obs.timeseries.TimeSeriesStore`, an SLO
monitor turns the store into burn-rate alerts, and — because the chaos
injector *knows* when each fault happened — a detection scorecard
grades the whole pipeline on time-to-detect, precision, and recall
instead of taking it on faith.

The monitor is strictly an observer: scrapes read simulator state and
write only into the monitor's own store, the per-request node
attribution is a plain list assignment, and all counters/quantiles are
built from the result arrays in one vectorized pass after the run — a
monitored run is bit-identical to an unmonitored one in outcomes (the
benchmark asserts it) and introduces no new RNG streams.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.slo import (LATENCY_METRIC, REQUESTS_METRIC, Alert,
                       BacklogRule, CapacityRule, SloMonitor,
                       merge_alerts)
from ..obs.scorecard import (DetectionScorecard, FaultInterval,
                             score_detection, scorecard_table)
from ..obs.timeseries import TimeSeriesStore
from .chaos import SCENARIOS, ChaosScenario, _simulator
from .cluster import (STATUS_NAMES, ClusterError, ClusterResult,
                      ClusterSpec)


# Latency histogram ladder (ms): consecutive powers of two from
# 2**-4 (62.5us) to 2**14 (16.4s).  Power-of-two edges let finish()
# bin a million latencies straight from the float64 exponent bits —
# identical buckets to searchsorted at a fraction of the cost.
POW2_LATENCY_BOUNDS_MS: Tuple[float, ...] = tuple(
    float(2.0 ** e) for e in range(-4, 15))

def _pow2_exponent(bounds: Sequence[float]) -> Optional[int]:
    """Exponent of ``bounds[0]`` if the bounds are consecutive powers
    of two (the fast-binning precondition), else ``None``."""
    exps = []
    for b in bounds:
        if b <= 0 or not math.isfinite(b):
            return None
        mantissa, exp = math.frexp(b)
        if mantissa != 0.5:
            return None
        exps.append(exp - 1)
    if exps != list(range(exps[0], exps[0] + len(exps))):
        return None
    return exps[0]


def _pow2_buckets(values: np.ndarray, e0: int, nb: int) -> np.ndarray:
    """Histogram bucket per value for bounds ``2**e0 .. 2**(e0+nb-2)``.

    Equivalent to ``searchsorted(bounds, values)`` for positive float64
    input: the exponent field is ``floor(log2 v)``, and a non-zero
    mantissa bumps v past the edge into the next ``le`` bucket.
    Subnormals clamp into bucket 0 and infinities into the overflow
    bucket, matching searchsorted.
    """
    # Decrementing the raw bits borrows out of the exponent field
    # exactly when the mantissa is zero, so ``exponent(bits-1) + 1``
    # is ceil(log2 v) in three array passes with no mantissa test.
    bs = values.view(np.int64) - 1
    bs >>= 52
    bs -= 1022 + e0
    np.clip(bs, 0, nb - 1, out=bs)
    return bs


class FleetMonitor:
    """Scrapes one cluster run into a time-series store.

    The simulator calls :meth:`begin` once per run (the monitor picks
    a window grid spanning the run and returns the scrape instants,
    which the simulator schedules as ``_scrape`` control events),
    :meth:`scrape` at each of those instants (gauge samples per node,
    rack, and fleet), and :meth:`finish` after the run (vectorized
    construction of request counters and latency quantile windows from
    the result arrays plus the per-request node attribution).
    """

    def __init__(self, windows: int = 256,
                 interval_s: Optional[float] = None,
                 latency_bounds: Optional[Sequence[float]] = None):
        if windows < 8:
            raise ClusterError("monitor windows must be >= 8")
        if interval_s is not None and interval_s <= 0:
            raise ClusterError("monitor interval_s must be positive")
        self.windows = int(windows)
        self.interval_s = interval_s
        self.latency_bounds: Tuple[float, ...] = (
            tuple(sorted(latency_bounds))
            if latency_bounds is not None else POW2_LATENCY_BOUNDS_MS)
        self._pow2_e0 = _pow2_exponent(self.latency_bounds)
        self.store: Optional[TimeSeriesStore] = None
        self.scrapes = 0
        self._fleet_gauges = ()
        self._rack_gauges: list = []
        self._node_gauges: list = []
        self._fleet_buf = np.empty((0, 3))
        self._rack_up_buf = np.empty((0, 0))
        self._node_backlog = np.empty((0, 0))

    # -- simulator-facing hooks -------------------------------------------

    def begin(self, sim, arrivals: np.ndarray, events) -> np.ndarray:
        """Start a run: build the store, return scrape instants.

        The grid spans from 0 to just past the last arrival or
        scheduled event; scrapes land mid-window so the final scrape
        stays inside the grid.
        """
        last = float(arrivals[-1]) if arrivals.size else 0.0
        for ev in events:
            last = max(last, float(ev.time_s))
        span = last + 2.0 * sim.spec.deadline_s
        if span <= 0:
            span = 1.0
        if self.interval_s is not None:
            interval = self.interval_s
            self.windows = max(8, int(np.ceil(span / interval)))
        else:
            interval = span / self.windows
        self.store = TimeSeriesStore(interval_s=interval, start_s=0.0,
                                     windows=self.windows)
        self.scrapes = 0
        # Resolve every gauge once: scrapes run inside the simulator's
        # event loop, so the per-scrape path must not pay label-key
        # construction and registry lookups 30+ times per tick.
        store = self.store
        spec = sim.spec
        self._fleet_gauges = (
            store.gauge("cluster.nodes_up", scope="fleet"),
            store.gauge("cluster.nodes_live", scope="fleet"),
            store.gauge("cluster.nodes_evicted", scope="fleet"))
        self._rack_gauges = [
            (spec.nodes_in_rack(rack),
             store.gauge("cluster.nodes_up", scope=f"rack{rack}"),
             store.gauge("cluster.backlog_s", scope=f"rack{rack}"))
            for rack in range(spec.racks)]
        self._node_gauges = [
            store.gauge("cluster.backlog_s",
                        scope=f"rack{spec.rack_of(node)}",
                        node=str(node))
            for node in range(spec.num_nodes)]
        # Scrape buffers: one row per scheduled scrape (scrape i lands
        # mid-window i), flushed into the gauge series after the run —
        # the in-loop cost is a handful of scalar stores, not 30+
        # ring-buffer writes per tick.
        self._fleet_buf = np.full((self.windows, 3), np.nan)
        self._rack_up_buf = np.full((self.windows, spec.racks), np.nan)
        self._node_backlog = np.full(
            (self.windows, spec.num_nodes), np.nan)
        return (np.arange(self.windows) + 0.5) * interval

    def scrape(self, when: float, sim) -> None:
        """One scheduled scrape: sample live simulator state into the
        per-window buffers (:meth:`finish` flushes them to the gauge
        series).  Reads only; never mutates ``sim``."""
        idx = self.scrapes
        self.scrapes += 1
        if idx >= self._fleet_buf.shape[0]:
            return
        up = sim._up
        fleet = self._fleet_buf[idx]
        fleet[0] = sum(up)
        fleet[1] = len(sim._view)
        fleet[2] = len(sim.detector.evicted) if sim.detector else 0
        rack_up = self._rack_up_buf[idx]
        for r, (nodes, _, _) in enumerate(self._rack_gauges):
            rack_up[r] = sum(up[i] for i in nodes)
        row = np.asarray(sim._free_at, dtype=np.float64)
        row -= when
        np.maximum(row, 0.0, out=row)
        self._node_backlog[idx] = row

    def _flush_scrapes(self) -> None:
        """Bulk-write the scrape buffers into the gauge series."""
        scraped = min(self.scrapes, self._fleet_buf.shape[0])
        if not scraped:
            return
        g_up, g_live, g_evicted = self._fleet_gauges
        fleet = self._fleet_buf[:scraped]
        g_up.record_values(fleet[:, 0])
        g_live.record_values(fleet[:, 1])
        g_evicted.record_values(fleet[:, 2])
        backlog = self._node_backlog[:scraped]
        for r, (nodes, rack_up, rack_backlog) in \
                enumerate(self._rack_gauges):
            rack_up.record_values(self._rack_up_buf[:scraped, r])
            rack_backlog.record_values(
                backlog[:, list(nodes)].max(axis=1))
        for node, gauge in enumerate(self._node_gauges):
            gauge.record_values(backlog[:, node])

    def finish(self, result: ClusterResult,
               node_of: Sequence[int]) -> None:
        """Post-run: build request counters and latency quantile
        windows from the result arrays.

        Everything is keyed bincounts: one pass over the run bins
        every request into ``(rack, window, status)`` and every finite
        latency into ``(rack, window, bucket)``, and the per-label
        series are sliced out of those grids.  Re-binning per label
        set (a mask + bincount per status x scope) costs ~10x more at
        1e6 requests; the monitoring-overhead benchmark gates this
        path at <10% over an unmonitored run.
        """
        self._flush_scrapes()
        store = self.store
        spec = result.spec
        arrivals = result.arrivals
        status = result.status
        latency = result.latency_s
        windows = store.windows
        span = spec.nodes_per_rack
        if isinstance(node_of, (bytes, bytearray)):
            # The simulator hands attribution back as raw bytes with
            # 0xFF for unrouted.  The sentinel's slot (0xFF//span + 1)
            # is strictly past every real rack slot, so it needs no
            # remapping: fleet sums cover it, rack slices skip it.
            rack_slot = np.frombuffer(node_of, dtype=np.uint8) \
                .astype(np.int64)
            nslots = 0xFF // span + 2
        else:
            # List path: -1 marks unrouted, and floor division maps
            # -1 // span to -1, so the sentinel lands in slot 0.
            rack_slot = np.asarray(node_of, dtype=np.int64)
            nslots = spec.racks + 1
        rack_slot //= span
        rack_slot += 1
        rel = arrivals if store.start_s == 0.0 \
            else arrivals - store.start_s
        w = (rel * (1.0 / store.interval_s)).astype(np.int64)
        np.clip(w, 0, windows - 1, out=w)

        # ``base`` is the shared (rack_slot, window) key.  The latency
        # pass slices it before the status pass consumes it in place.
        ns = len(STATUS_NAMES)
        base = rack_slot
        base *= windows
        base += w
        finite = np.isfinite(latency)
        skey = base[finite]
        ms = latency[finite]
        ms *= 1e3

        # Request counters per (status, scope): one keyed bincount
        # over (rack_slot, window, status).
        key = base
        key *= ns
        key += status
        grid = np.bincount(key, minlength=nslots * windows * ns) \
            .reshape(nslots, windows, ns)
        fleet_grid = grid.sum(axis=0)
        for code, name in STATUS_NAMES.items():
            fleet = fleet_grid[:, code]
            if not fleet.any():
                continue
            store.counter(REQUESTS_METRIC, scope="fleet",
                          status=name).add_increments(fleet)
            for rack in range(spec.racks):
                store.counter(
                    REQUESTS_METRIC, scope=f"rack{rack}",
                    status=name).add_increments(grid[rack + 1, :, code])

        # Latency quantiles (ms): one rack-slot-keyed pass over the
        # finite completions; the fleet window is the slot sum, so
        # unrouted completions (brownouts) count fleet-wide but in no
        # rack (the mergeable-window layout).
        fleet_q = store.quantile(LATENCY_METRIC,
                                 bounds=self.latency_bounds,
                                 scope="fleet")
        nb = len(fleet_q.bounds) + 1
        if self._pow2_e0 is not None:
            bs = _pow2_buckets(ms, self._pow2_e0, nb)
        else:
            bs = np.searchsorted(fleet_q.bounds, ms)
        lat_sums = np.bincount(
            skey, weights=ms, minlength=nslots * windows) \
            .reshape(nslots, windows)
        skey *= nb
        skey += bs
        lat_counts = np.bincount(
            skey, minlength=nslots * windows * nb) \
            .reshape(nslots, windows, nb)
        fleet_q.add_counts(lat_counts.sum(axis=0),
                           lat_sums.sum(axis=0))
        for rack in range(spec.racks):
            store.quantile(
                LATENCY_METRIC, bounds=self.latency_bounds,
                scope=f"rack{rack}").add_counts(
                    lat_counts[rack + 1], lat_sums[rack + 1])


# ---------------------------------------------------------------------------
# Ground truth: fault intervals from a scenario's event stream
# ---------------------------------------------------------------------------

def scenario_fault_intervals(scenario: ChaosScenario
                             ) -> List[FaultInterval]:
    """The injector's ground truth as scored intervals.

    Paired control events become their natural intervals (rack_down/
    rack_up, partition/heal, crash/repair); a rolling slow/unslow
    chain coalesces into one fleet-scoped interval; the overload
    scenario has no events, so its ground truth is computed from the
    arrival trace — sustained windows where offered load exceeds
    aggregate capacity.
    """
    spec = scenario.spec
    out: List[FaultInterval] = []
    open_at = {}
    slow_start: Optional[float] = None
    slow_end: Optional[float] = None
    pairs = {"rack_down": ("rack_up", "rack_outage"),
             "partition": ("heal", "partition"),
             "crash": ("repair", "node_crash")}
    closers = {closer: opener
               for opener, (closer, _) in pairs.items()}
    for ev in sorted(scenario.events,
                     key=lambda e: (e.time_s, e.action)):
        if ev.action in pairs:
            open_at[(ev.action, ev.target)] = ev.time_s
        elif ev.action in closers:
            opener = closers[ev.action]
            start = open_at.pop((opener, ev.target), None)
            if start is None:
                continue
            kind = pairs[opener][1]
            scope = (f"rack{ev.target}" if opener != "crash"
                     else f"rack{spec.rack_of(ev.target)}")
            out.append(FaultInterval(kind, scope, start, ev.time_s))
        elif ev.action == "slow":
            if slow_start is None:
                slow_start = ev.time_s
        elif ev.action == "unslow":
            slow_end = ev.time_s
    if slow_start is not None and slow_end is not None \
            and slow_end > slow_start:
        out.append(FaultInterval("rolling_slow", "fleet",
                                 slow_start, slow_end))
    out.extend(_overload_intervals(scenario))
    out.sort(key=lambda f: (f.start_s, f.scope))
    return out


def _overload_intervals(scenario: ChaosScenario, bins: int = 128
                        ) -> List[FaultInterval]:
    """Sustained offered-load > capacity windows in the arrival trace."""
    arrivals = np.asarray(scenario.arrivals, dtype=np.float64)
    if arrivals.size < 2:
        return []
    span = float(arrivals[-1])
    if span <= 0:
        return []
    width = span / bins
    counts = np.bincount(
        np.minimum((arrivals / width).astype(np.int64), bins - 1),
        minlength=bins)
    over = counts / width > scenario.spec.capacity_rps
    # Close single-bin dips, then keep only sustained (>= 2 bin) runs.
    for i in range(1, bins - 1):
        if over[i - 1] and over[i + 1]:
            over[i] = True
    out: List[FaultInterval] = []
    start = None
    for i in range(bins):
        if over[i] and start is None:
            start = i
        elif not over[i] and start is not None:
            if i - start >= 2:
                out.append(FaultInterval(
                    "overload", "fleet", start * width, i * width))
            start = None
    if start is not None and bins - start >= 2:
        out.append(FaultInterval("overload", "fleet",
                                 start * width, span))
    return out


# ---------------------------------------------------------------------------
# Monitored scenario runs and the detection scorecard suite
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class MonitoredRun:
    """One chaos scenario run with its full monitoring readout."""

    name: str
    stack: str
    result: ClusterResult
    store: TimeSeriesStore
    alerts: List[Alert]
    incidents: List[Alert]
    faults: List[FaultInterval]
    scorecard: DetectionScorecard


def default_slo(spec: ClusterSpec) -> SloMonitor:
    """The serving SLO the monitoring plane watches: three nines of
    availability, p99 under 90% of the deadline, a per-node backlog
    outlier rule that sees degraded nodes the routing layer
    successfully hides from the user-facing metrics, and a fleet
    capacity rule on the detector's live-node count (a rack down is an
    incident even when failover absorbs it completely)."""
    return SloMonitor(
        availability_target=0.999,
        latency_threshold_ms=0.9 * spec.deadline_s * 1e3,
        backlog_rules=[BacklogRule(
            abs_floor_s=5.0 * spec.service_time_s,
            rel_factor=6.0, min_windows=2)],
        capacity_rules=[CapacityRule(min_fraction=0.95,
                                     min_windows=1)])


def run_monitored_scenario(name: str,
                           spec: Optional[ClusterSpec] = None,
                           requests: int = 50_000, seed: int = 0,
                           mitigated: bool = True,
                           windows: int = 256,
                           slo: Optional[SloMonitor] = None
                           ) -> MonitoredRun:
    """Run one catalog scenario with the monitoring plane attached and
    score its alerts against the injector's ground truth."""
    if name not in SCENARIOS:
        raise ClusterError(
            f"unknown chaos scenario {name!r}; one of "
            f"{sorted(SCENARIOS)}")
    if requests < 1:
        raise ClusterError("requests must be >= 1")
    spec = spec if spec is not None else ClusterSpec()
    scenario = SCENARIOS[name](spec, seed, requests)
    monitor = FleetMonitor(windows=windows)
    sim = _simulator(spec, mitigated, seed + 1, None, None)
    sim.monitor = monitor
    result = sim.run(scenario.arrivals, scenario.events)
    store = monitor.store
    slo = slo if slo is not None else default_slo(spec)
    alerts = slo.evaluate(store)
    incidents = merge_alerts(alerts, join_gap_s=0.02 * store.span_s)
    faults = scenario_fault_intervals(scenario)
    grace = slo.grace_s(store.span_s)
    stack = "mitigated" if mitigated else "ablated"
    card = score_detection(incidents, faults, store.span_s,
                           grace_s=grace, scenario=name, stack=stack)
    return MonitoredRun(name=name, stack=stack, result=result,
                        store=store, alerts=alerts,
                        incidents=incidents, faults=faults,
                        scorecard=card)


def detection_scorecards(requests: int = 50_000, seed: int = 0,
                         spec: Optional[ClusterSpec] = None,
                         windows: int = 256,
                         stacks: Sequence[bool] = (True, False)
                         ) -> List[DetectionScorecard]:
    """Score every catalog scenario (mitigated and ablated)."""
    spec = spec if spec is not None else ClusterSpec()
    cards: List[DetectionScorecard] = []
    for name in SCENARIOS:
        for mitigated in stacks:
            run = run_monitored_scenario(
                name, spec=spec, requests=requests, seed=seed,
                mitigated=mitigated, windows=windows)
            cards.append(run.scorecard)
    return cards


def detection_table(requests: int = 50_000, seed: int = 0,
                    spec: Optional[ClusterSpec] = None,
                    windows: int = 256):
    """The archived chaos-detection experiment table."""
    spec = spec if spec is not None else ClusterSpec()
    cards = detection_scorecards(requests=requests, seed=seed,
                                 spec=spec, windows=windows)
    table = scorecard_table(
        cards,
        title=f"Chaos detection: {spec.racks}x{spec.nodes_per_rack} "
              f"nodes, {requests} requests/scenario, seed {seed}")
    return table
