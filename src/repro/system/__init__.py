"""Datacenter-scale serving: network, microservices, federated runtime."""

from .network import Locality, NetworkModel
from .microservice import (
    FpgaNode,
    HardwareMicroservice,
    InvocationResult,
    MicroserviceRegistry,
    ServiceError,
)
from .loadgen import (
    Batch1Server,
    BatchingServer,
    LoadResult,
    ServedRequest,
    SloComparison,
    compare_under_load,
    poisson_arrivals,
    uniform_arrivals,
)
from .runtime import (
    BidirectionalRnnService,
    CpuStage,
    FederatedRuntime,
    FpgaStage,
    PlanResult,
)

__all__ = [
    "Locality", "NetworkModel", "FpgaNode", "HardwareMicroservice",
    "InvocationResult", "MicroserviceRegistry", "ServiceError",
    "BidirectionalRnnService", "CpuStage", "FederatedRuntime",
    "FpgaStage", "PlanResult", "Batch1Server", "BatchingServer",
    "LoadResult", "ServedRequest", "SloComparison",
    "compare_under_load", "poisson_arrivals", "uniform_arrivals",
]
