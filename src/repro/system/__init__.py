"""Datacenter-scale serving: network, microservices, faults, runtime."""

from .network import Locality, NetworkModel
from .microservice import (
    FpgaNode,
    HardwareMicroservice,
    InvocationResult,
    MicroserviceRegistry,
    ServiceError,
)
from .faults import (
    FaultInjector,
    FaultProfile,
    FaultSample,
    InvocationOutcome,
    ResilientClient,
    RetryPolicy,
)
from .loadgen import (
    Batch1Server,
    BatchingServer,
    FaultEvent,
    FaultScenarioResult,
    LoadResult,
    ServedRequest,
    SloComparison,
    compare_under_load,
    poisson_arrivals,
    run_fault_scenario,
    uniform_arrivals,
)
from .runtime import (
    BidirectionalRnnService,
    CpuStage,
    FederatedRuntime,
    FpgaStage,
    PlanResult,
)

__all__ = [
    "Locality", "NetworkModel", "FpgaNode", "HardwareMicroservice",
    "InvocationResult", "MicroserviceRegistry", "ServiceError",
    "FaultInjector", "FaultProfile", "FaultSample", "InvocationOutcome",
    "ResilientClient", "RetryPolicy",
    "BidirectionalRnnService", "CpuStage", "FederatedRuntime",
    "FpgaStage", "PlanResult", "Batch1Server", "BatchingServer",
    "FaultEvent", "FaultScenarioResult", "LoadResult", "ServedRequest",
    "SloComparison", "compare_under_load", "poisson_arrivals",
    "run_fault_scenario", "uniform_arrivals",
]
