"""Datacenter-scale serving: network, microservices, faults, runtime,
and the cluster/chaos simulation layer."""

from .network import Locality, NetworkFabric, NetworkModel
from .microservice import (
    FpgaNode,
    HardwareMicroservice,
    InvocationResult,
    MicroserviceRegistry,
    ServiceError,
)
from .faults import (
    FaultInjector,
    FaultProfile,
    FaultSample,
    InvocationOutcome,
    ResilientClient,
    RetryPolicy,
)
from .loadgen import (
    Batch1Server,
    BatchingServer,
    FaultEvent,
    FaultScenarioResult,
    LoadResult,
    ServedRequest,
    SloComparison,
    bursty_arrivals,
    compare_under_load,
    diurnal_arrivals,
    heavy_tailed_arrivals,
    poisson_arrivals,
    run_fault_scenario,
    uniform_arrivals,
)
from .cluster import (
    BrownoutPolicy,
    ClusterError,
    ClusterEvent,
    ClusterResult,
    ClusterSimulator,
    ClusterSpec,
    PhiAccrualDetector,
    TokenBucket,
)
from .chaos import (
    ChaosScenario,
    CorrelatedFaultInjector,
    RepairDistribution,
    SCENARIOS,
    chaos_suite,
    run_chaos_scenario,
)
from .monitor import (
    FleetMonitor,
    MonitoredRun,
    default_slo,
    detection_scorecards,
    detection_table,
    run_monitored_scenario,
    scenario_fault_intervals,
)
from .runtime import (
    BidirectionalRnnService,
    CpuStage,
    FederatedRuntime,
    FpgaStage,
    PlanResult,
)

__all__ = [
    "Locality", "NetworkFabric", "NetworkModel", "FpgaNode",
    "HardwareMicroservice", "InvocationResult", "MicroserviceRegistry",
    "ServiceError",
    "FaultInjector", "FaultProfile", "FaultSample", "InvocationOutcome",
    "ResilientClient", "RetryPolicy",
    "BidirectionalRnnService", "CpuStage", "FederatedRuntime",
    "FpgaStage", "PlanResult", "Batch1Server", "BatchingServer",
    "FaultEvent", "FaultScenarioResult", "LoadResult", "ServedRequest",
    "SloComparison", "bursty_arrivals", "compare_under_load",
    "diurnal_arrivals", "heavy_tailed_arrivals", "poisson_arrivals",
    "run_fault_scenario", "uniform_arrivals",
    "BrownoutPolicy", "ClusterError", "ClusterEvent", "ClusterResult",
    "ClusterSimulator", "ClusterSpec", "PhiAccrualDetector",
    "TokenBucket",
    "ChaosScenario", "CorrelatedFaultInjector", "RepairDistribution",
    "SCENARIOS", "chaos_suite", "run_chaos_scenario",
    "FleetMonitor", "MonitoredRun", "default_slo",
    "detection_scorecards", "detection_table",
    "run_monitored_scenario", "scenario_fault_intervals",
]
