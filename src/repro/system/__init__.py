"""Datacenter-scale serving: network, microservices, faults, runtime,
and the cluster/chaos simulation layer."""

from .network import Locality, NetworkFabric, NetworkModel
from .microservice import (
    BatchedInvocationResult,
    FpgaNode,
    HardwareMicroservice,
    InvocationResult,
    MicroserviceRegistry,
    ServiceError,
)
from .batching import (
    AdaptiveBatchPolicy,
    BatchPolicy,
    BatchServeResult,
    BatchingError,
    DynamicBatcher,
    ServiceTimeCurve,
    calibrate_batch_curve,
    record_batch_series,
    render_slo_sweep,
    slo_sweep,
)
from .faults import (
    FaultInjector,
    FaultProfile,
    FaultSample,
    InvocationOutcome,
    ResilientClient,
    RetryPolicy,
)
from .loadgen import (
    Batch1Server,
    BatchingServer,
    FaultEvent,
    FaultScenarioResult,
    LoadResult,
    ServedRequest,
    SloComparison,
    bursty_arrivals,
    compare_under_load,
    diurnal_arrivals,
    heavy_tailed_arrivals,
    poisson_arrivals,
    run_fault_scenario,
    uniform_arrivals,
)
from .cluster import (
    AutoscalePolicy,
    BrownoutPolicy,
    ClusterError,
    ClusterEvent,
    ClusterResult,
    ClusterSimulator,
    ClusterSpec,
    NodeBatching,
    PhiAccrualDetector,
    TokenBucket,
)
from .chaos import (
    ChaosScenario,
    CorrelatedFaultInjector,
    RepairDistribution,
    SCENARIOS,
    chaos_suite,
    run_chaos_scenario,
)
from .monitor import (
    FleetMonitor,
    MonitoredRun,
    default_slo,
    detection_scorecards,
    detection_table,
    run_monitored_scenario,
    scenario_fault_intervals,
)
from .runtime import (
    BidirectionalRnnService,
    CpuStage,
    FederatedRuntime,
    FpgaStage,
    PlanResult,
)

__all__ = [
    "Locality", "NetworkFabric", "NetworkModel", "FpgaNode",
    "HardwareMicroservice", "InvocationResult",
    "BatchedInvocationResult", "MicroserviceRegistry",
    "ServiceError",
    "AdaptiveBatchPolicy", "BatchPolicy", "BatchServeResult",
    "BatchingError", "DynamicBatcher", "ServiceTimeCurve",
    "calibrate_batch_curve", "record_batch_series",
    "render_slo_sweep", "slo_sweep",
    "AutoscalePolicy", "NodeBatching",
    "FaultInjector", "FaultProfile", "FaultSample", "InvocationOutcome",
    "ResilientClient", "RetryPolicy",
    "BidirectionalRnnService", "CpuStage", "FederatedRuntime",
    "FpgaStage", "PlanResult", "Batch1Server", "BatchingServer",
    "FaultEvent", "FaultScenarioResult", "LoadResult", "ServedRequest",
    "SloComparison", "bursty_arrivals", "compare_under_load",
    "diurnal_arrivals", "heavy_tailed_arrivals", "poisson_arrivals",
    "run_fault_scenario", "uniform_arrivals",
    "BrownoutPolicy", "ClusterError", "ClusterEvent", "ClusterResult",
    "ClusterSimulator", "ClusterSpec", "PhiAccrualDetector",
    "TokenBucket",
    "ChaosScenario", "CorrelatedFaultInjector", "RepairDistribution",
    "SCENARIOS", "chaos_suite", "run_chaos_scenario",
    "FleetMonitor", "MonitoredRun", "default_slo",
    "detection_scorecards", "detection_table",
    "run_monitored_scenario", "scenario_fault_intervals",
]
