"""Correlated fault injection and the chaos scenario catalog.

PR 1's :class:`~repro.system.faults.FaultInjector` models *independent*
per-invocation faults.  Real fleets fail in correlated ways: a rack
power event takes down ``nodes_per_rack`` replicas at once, a TOR
switch failure partitions a whole rack while its nodes keep running,
slow nodes roll through the fleet as firmware updates or thermal events
migrate, and repair is not instant but drawn from a distribution.
:class:`CorrelatedFaultInjector` extends the fault injector with those
domain-scoped faults, emitting the :class:`~repro.system.cluster.ClusterEvent`
streams the cluster simulator consumes.

The **scenario catalog** scripts named chaos experiments over that
machinery — the situations a datacenter operator actually drills:

* ``rack_loss`` — a rack power event in the middle of a traffic burst;
* ``rolling_slow`` — an 8x slowdown rolling node-by-node through the
  fleet under diurnal traffic;
* ``partition`` — a TOR partition and its heal: the detector must
  evict the unreachable rack and readmit it afterwards;
* ``overload`` — heavy-tailed traffic beyond aggregate capacity:
  admission control, deadline shedding, and brownout decide who waits,
  who degrades, and who is turned away.

Every scenario is built from one seed: arrival trace, fault times, and
repair draws all derive from it, so a scenario replays bit-identically.
``run_chaos_scenario(..., mitigated=False)`` ablates the robustness
machinery (random routing, no failure detector, no admission control,
no shedding, no brownout) to quantify what the mitigations buy — the
chaos benchmark archives both sides.
"""

from __future__ import annotations

import dataclasses
import math
from statistics import NormalDist
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs import Metrics, Tracer
from .cluster import (BrownoutPolicy, ClusterError, ClusterEvent,
                      ClusterResult, ClusterSimulator, ClusterSpec,
                      TokenBucket)
from .faults import FaultInjector, FaultProfile
from .loadgen import bursty_arrivals, diurnal_arrivals, \
    heavy_tailed_arrivals


_REPAIR_KINDS = ("fixed", "exponential", "lognormal")


@dataclasses.dataclass(frozen=True)
class RepairDistribution:
    """Time-to-repair model for crash-until-repair faults.

    ``fixed`` repairs after exactly ``mean_s``; ``exponential`` draws
    with mean ``mean_s``; ``lognormal`` (the empirical shape of human
    plus automated repair) uses ``mean_s`` as the mean with log-space
    spread ``sigma``.
    """

    kind: str = "lognormal"
    mean_s: float = 30.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _REPAIR_KINDS:
            raise ClusterError(
                f"unknown repair distribution {self.kind!r}; "
                f"one of {_REPAIR_KINDS}")
        if self.mean_s <= 0:
            raise ClusterError("repair mean_s must be positive")
        if self.sigma <= 0:
            raise ClusterError("repair sigma must be positive")

    def draw(self, rng: np.random.Generator) -> float:
        """One repair time (seconds). Always consumes exactly one
        draw, so event streams stay seed-aligned across kinds."""
        u = rng.random()
        if self.kind == "fixed":
            return self.mean_s
        if self.kind == "exponential":
            return -self.mean_s * math.log(1.0 - u)
        # Lognormal via the inverse-transformed uniform: mean_s is the
        # distribution mean, so mu compensates for sigma^2/2.
        z = NormalDist().inv_cdf(min(max(u, 1e-12), 1.0 - 1e-12))
        mu = math.log(self.mean_s) - 0.5 * self.sigma ** 2
        return math.exp(mu + self.sigma * z)


class CorrelatedFaultInjector(FaultInjector):
    """Domain-aware fault source layered on the per-invocation model.

    Keeps the whole :class:`~repro.system.faults.FaultInjector` API
    (``sample``/``crash``/``repair`` for registry-scope serving) and
    adds builders for correlated, domain-scoped fault event streams
    with drawn repair times.  All draws come from a private seeded
    generator — distinct from the per-invocation RNG, so adding
    cluster events never shifts the invocation fault sequence.
    """

    def __init__(self, spec: ClusterSpec,
                 profile: Optional[FaultProfile] = None,
                 repair: Optional[RepairDistribution] = None,
                 seed: int = 0):
        super().__init__(profile, seed=seed)
        self.spec = spec
        self.repair_dist = (repair if repair is not None
                            else RepairDistribution())
        self._np_rng = np.random.default_rng(seed + 0x5EED)

    # -- correlated event-stream builders ---------------------------------

    def rack_outage(self, rack: int, at_s: float) -> List[ClusterEvent]:
        """Rack power event: every node in the rack crashes at once;
        the rack comes back after one drawn repair time."""
        self.spec.nodes_in_rack(rack)  # validates the rack index
        repair = self.repair_dist.draw(self._np_rng)
        return [ClusterEvent(at_s, "rack_down", rack),
                ClusterEvent(at_s + repair, "rack_up", rack)]

    def tor_partition(self, rack: int, at_s: float,
                      duration_s: Optional[float] = None
                      ) -> List[ClusterEvent]:
        """TOR failure: the rack's nodes stay up but are unreachable
        until the partition heals (drawn unless given)."""
        self.spec.nodes_in_rack(rack)
        if duration_s is None:
            duration_s = self.repair_dist.draw(self._np_rng)
        elif duration_s <= 0:
            raise ClusterError("partition duration_s must be positive")
        return [ClusterEvent(at_s, "partition", rack),
                ClusterEvent(at_s + duration_s, "heal", rack)]

    def node_crashes(self, duration_s: float,
                     crashes_per_hour: float) -> List[ClusterEvent]:
        """Independent node crashes as a Poisson process over the
        fleet, each repaired after a drawn time."""
        if duration_s <= 0 or crashes_per_hour < 0:
            raise ClusterError(
                "duration_s must be positive and crashes_per_hour >= 0")
        rate = crashes_per_hour / 3600.0
        events: List[ClusterEvent] = []
        t = 0.0
        rng = self._np_rng
        while True:
            t += float(rng.exponential(1.0 / rate)) if rate > 0 else \
                float("inf")
            if t >= duration_s:
                break
            node = int(rng.integers(self.spec.num_nodes))
            repair = self.repair_dist.draw(rng)
            events.append(ClusterEvent(t, "crash", node))
            events.append(ClusterEvent(t + repair, "repair", node))
        return events

    def rolling_slowdown(self, factor: float, start_s: float,
                         dwell_s: float,
                         nodes: Optional[List[int]] = None
                         ) -> List[ClusterEvent]:
        """A slowdown (thermal event, background scrub) rolling through
        ``nodes`` (default: the whole fleet), one at a time, each
        degraded for ``dwell_s``."""
        if factor < 1.0:
            raise ClusterError("slowdown factor must be >= 1")
        if dwell_s <= 0:
            raise ClusterError("dwell_s must be positive")
        if nodes is None:
            nodes = list(range(self.spec.num_nodes))
        events: List[ClusterEvent] = []
        for k, node in enumerate(nodes):
            t = start_s + k * dwell_s
            events.append(ClusterEvent(t, "slow", node, factor))
            events.append(ClusterEvent(t + dwell_s, "unslow", node))
        return events


# ---------------------------------------------------------------------------
# Scenario catalog
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ChaosScenario:
    """One named chaos experiment: arrival trace + fault events."""

    name: str
    description: str
    arrivals: np.ndarray
    events: List[ClusterEvent]
    spec: ClusterSpec


ScenarioBuilder = Callable[[ClusterSpec, int, int], ChaosScenario]


def _duration_for(spec: ClusterSpec, requests: int,
                  load_fraction: float) -> Tuple[float, float]:
    """(rate, duration) putting ``requests`` at ``load_fraction`` of
    aggregate capacity."""
    rate = load_fraction * spec.capacity_rps
    return rate, requests / rate


def build_rack_loss(spec: ClusterSpec, seed: int,
                    requests: int) -> ChaosScenario:
    """A rack power event mid-burst: bursty traffic at ~60% of
    capacity loses 1/racks of the fleet right as a burst lands."""
    rate, duration = _duration_for(spec, requests, 0.6)
    arrivals = bursty_arrivals(
        0.5 * rate, 2.0 * rate, duration,
        mean_quiet_s=duration / 8, mean_burst_s=duration / 12,
        seed=seed)
    injector = CorrelatedFaultInjector(
        spec, repair=RepairDistribution("fixed",
                                        mean_s=0.25 * duration),
        seed=seed)
    events = injector.rack_outage(0, 0.4 * duration)
    return ChaosScenario(
        "rack_loss",
        "rack 0 power loss mid-burst, fixed repair at 25% of the run",
        arrivals, events, spec)


def build_rolling_slow(spec: ClusterSpec, seed: int,
                       requests: int) -> ChaosScenario:
    """Slow nodes rolling through the fleet under diurnal traffic."""
    rate, duration = _duration_for(spec, requests, 0.55)
    arrivals = diurnal_arrivals(0.4 * rate, 1.6 * rate, duration,
                                period_s=duration, seed=seed)
    injector = CorrelatedFaultInjector(spec, seed=seed)
    dwell = 0.6 * duration / spec.num_nodes
    events = injector.rolling_slowdown(8.0, 0.2 * duration, dwell)
    return ChaosScenario(
        "rolling_slow",
        "8x slowdown rolling node-by-node under diurnal load",
        arrivals, events, spec)


def build_partition(spec: ClusterSpec, seed: int,
                    requests: int) -> ChaosScenario:
    """TOR partition and recovery: a rack is unreachable for a third
    of the run, then heals — evict and readmit."""
    rate, duration = _duration_for(spec, requests, 0.5)
    arrivals = diurnal_arrivals(0.8 * rate, 1.2 * rate, duration,
                                period_s=2 * duration, seed=seed)
    injector = CorrelatedFaultInjector(spec, seed=seed)
    events = injector.tor_partition(spec.racks - 1, 0.3 * duration,
                                    duration_s=duration / 3)
    return ChaosScenario(
        "partition",
        "TOR partition of the last rack for 1/3 of the run, then heal",
        arrivals, events, spec)


def build_overload(spec: ClusterSpec, seed: int,
                   requests: int) -> ChaosScenario:
    """Heavy-tailed traffic beyond capacity: 1.4x aggregate capacity
    with Pareto gaps; no injected faults — overload *is* the fault."""
    rate = 1.4 * spec.capacity_rps
    arrivals = heavy_tailed_arrivals(rate, requests, alpha=1.6,
                                     seed=seed)
    return ChaosScenario(
        "overload",
        "heavy-tailed arrivals at 1.4x aggregate capacity, no faults",
        np.asarray(arrivals), [], spec)


SCENARIOS: Dict[str, ScenarioBuilder] = {
    "rack_loss": build_rack_loss,
    "rolling_slow": build_rolling_slow,
    "partition": build_partition,
    "overload": build_overload,
}


def _simulator(spec: ClusterSpec, mitigated: bool, seed: int,
               tracer: Optional[Tracer],
               metrics: Optional[Metrics]) -> ClusterSimulator:
    """The mitigated stack vs the ablated baseline.

    Mitigated: p2c routing, phi-accrual detection, token-bucket
    admission at ~95% of capacity, deadline shedding, CPU brownout.
    Ablated: random routing, no detection, no admission, no shedding,
    no brownout, no failover retry — requests land where they land.
    """
    if mitigated:
        return ClusterSimulator(
            spec, router="p2c",
            admission=TokenBucket(rate_rps=0.95 * spec.capacity_rps,
                                  burst=4.0 * spec.num_nodes),
            brownout=BrownoutPolicy(max_concurrent=spec.num_nodes),
            detector_threshold=8.0, shed_on_deadline=True, retries=1,
            seed=seed, tracer=tracer, metrics=metrics)
    return ClusterSimulator(
        spec, router="random", admission=None, brownout=None,
        detector_threshold=None, shed_on_deadline=False, retries=0,
        seed=seed, tracer=tracer, metrics=metrics)


def run_chaos_scenario(name: str, spec: Optional[ClusterSpec] = None,
                       requests: int = 50_000, seed: int = 0,
                       mitigated: bool = True,
                       tracer: Optional[Tracer] = None,
                       metrics: Optional[Metrics] = None,
                       monitor=None) -> ClusterResult:
    """Build and run one named scenario; bit-deterministic per seed.

    ``monitor`` (a :class:`~repro.system.monitor.FleetMonitor`)
    attaches the telemetry plane without perturbing the run — see
    :func:`~repro.system.monitor.run_monitored_scenario` for the
    scored end-to-end pipeline.
    """
    if name not in SCENARIOS:
        raise ClusterError(
            f"unknown chaos scenario {name!r}; one of "
            f"{sorted(SCENARIOS)}")
    if requests < 1:
        raise ClusterError("requests must be >= 1")
    spec = spec if spec is not None else ClusterSpec()
    scenario = SCENARIOS[name](spec, seed, requests)
    sim = _simulator(spec, mitigated, seed + 1, tracer, metrics)
    sim.monitor = monitor
    return sim.run(scenario.arrivals, scenario.events)


def chaos_suite(requests: int = 50_000, seed: int = 0,
                spec: Optional[ClusterSpec] = None):
    """Run every scenario, mitigated and ablated, into one table.

    Returns an :class:`~repro.harness.tables.ExperimentTable` with
    availability, goodput, shed/violated counts, and p99/p99.9 per
    scenario — the archived artifact of the chaos benchmark.
    """
    from ..harness.tables import ExperimentTable
    spec = spec if spec is not None else ClusterSpec()

    def fmt_pct(x: float) -> str:
        return "n/a" if math.isnan(x) else f"{100 * x:.3f}"

    def fmt_ms(x: float) -> str:
        return "n/a" if math.isnan(x) else f"{x:.2f}"

    rows = []
    for name in SCENARIOS:
        for mitigated in (True, False):
            res = run_chaos_scenario(name, spec=spec,
                                     requests=requests, seed=seed,
                                     mitigated=mitigated)
            rows.append([
                name, "mitigated" if mitigated else "ablated",
                f"{res.total}", fmt_pct(res.availability),
                f"{res.goodput_rps:.0f}", f"{res.shed}",
                f"{res.deadline_violations}",
                fmt_ms(res.p99_ms), fmt_ms(res.p999_ms)])
    return ExperimentTable(
        title=f"Chaos suite: {spec.racks}x{spec.nodes_per_rack} nodes, "
              f"{requests} requests/scenario, seed {seed}",
        headers=["scenario", "stack", "reqs", "avail %", "goodput/s",
                 "shed", "violated", "p99 ms", "p99.9 ms"],
        rows=rows,
        notes=["mitigated = p2c routing + phi-accrual detection + "
               "token-bucket admission + deadline shedding + CPU "
               "brownout; ablated = random routing, no detection, no "
               "admission, no shedding",
               "shed counts admission + deadline sheds; violated = "
               "completed past the SLO deadline",
               "scenarios: " + "; ".join(
                   f"{n}: {SCENARIOS[n](spec, seed, 10).description}"
                   for n in SCENARIOS)])
