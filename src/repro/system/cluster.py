"""Cluster-scale serving: failure domains, detection, degradation.

The paper's deployment is not one FPGA but pools of hundreds of
Brainwave nodes serving many models at datacenter scale, where
correlated failures (rack power, TOR switches), overload, and slow
nodes are the norm.  This module scales :mod:`repro.system` from the
handful-of-replicas registry to that setting: a seeded discrete-event
simulator of racks -> nodes -> replicas with *failure domains*, plus
the robustness machinery a real fleet needs to stay available while
things break underneath it:

* :class:`PhiAccrualDetector` — a heartbeat-based failure detector.
  Suspicion (phi) grows with the time since a node's last heartbeat;
  past a threshold the node is *evicted* from routing, and it is
  *readmitted* at the first heartbeat after repair.  This replaces
  per-request consecutive-failure circuit breaking at cluster scope:
  detection happens on the control plane, not by burning requests.
* Domain-aware routing — ``p2c`` (power-of-two-choices),
  ``least_loaded``, and ``random`` policies over the detector's view
  of live nodes, so traffic avoids suspected/failed domains.
* Graceful degradation under overload — :class:`TokenBucket` admission
  control, deadline-aware load shedding from bounded per-replica
  queues, and optional :class:`BrownoutPolicy` fallback to a degraded
  CPU path (the federated escape hatch of
  :class:`~repro.system.runtime.FpgaStage`).

Simulated time is seconds, as in the rest of the serving layer.  All
randomness comes from one ``numpy`` generator whose draws are
pre-vectorized per run, so a fixed seed reproduces bit-identical
results request for request — the chaos benchmarks and the CI smoke
gate rely on it.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..obs import Metrics, Tracer, or_null, or_null_metrics, \
    percentile_or_nan
from .batching import OCCUPANCY_BOUNDS, QUEUE_WAIT_BOUNDS
from .network import NetworkFabric, NetworkModel
from .runtime import DEFAULT_CPU_FALLBACK_LATENCY_S

_LN10 = math.log(10.0)

#: Per-request outcome codes (:attr:`ClusterResult.status` values).
#: Client-timeout semantics are uniform: a request whose response lands
#: past the SLO deadline is a ``TIMEOUT`` — the client hung up, the
#: server time was wasted. Only ``SERVED``/``BROWNOUT`` responses count
#: toward availability.
SERVED = 0           #: completed on an FPGA node within the deadline
BROWNOUT = 1         #: completed on the degraded CPU path in time
SHED_ADMISSION = 2   #: rejected by token-bucket admission control
SHED_DEADLINE = 3    #: shed: queue full or predicted deadline violation
FAILED = 4           #: sent to a dead/partitioned node, no retry left
TIMEOUT = 5          #: completed, but past the deadline (wasted work)

STATUS_NAMES = {SERVED: "served", BROWNOUT: "brownout",
                SHED_ADMISSION: "shed_admission",
                SHED_DEADLINE: "shed_deadline", FAILED: "failed",
                TIMEOUT: "timeout"}


class ClusterError(ReproError):
    """Invalid cluster topology, policy, or scenario parameters."""


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Topology and per-node service model of one cluster.

    Nodes are numbered ``0 .. racks*nodes_per_rack-1``; node ``i``
    lives in rack ``i // nodes_per_rack`` — the rack is the failure
    domain for correlated faults (rack power, TOR switch).
    """

    racks: int = 4
    nodes_per_rack: int = 6
    #: Base per-request service time of one node (seconds).
    service_time_s: float = 1e-3
    #: Bounded per-replica queue: requests admitted while the backlog
    #: exceeds ``queue_depth`` service times are shed.
    queue_depth: int = 16
    #: Request SLO deadline (seconds).
    deadline_s: float = 20e-3
    #: Heartbeat period of the failure detector (seconds).
    heartbeat_interval_s: float = 10e-3
    network: NetworkModel = dataclasses.field(default_factory=NetworkModel)
    #: Request/response payload on the wire (bytes, one way).
    payload_bytes: float = 2048.0

    def __post_init__(self) -> None:
        if self.racks < 1 or self.nodes_per_rack < 1:
            raise ClusterError(
                f"racks={self.racks}, nodes_per_rack="
                f"{self.nodes_per_rack}: both must be >= 1")
        if self.service_time_s <= 0:
            raise ClusterError("service_time_s must be positive")
        if self.queue_depth < 1:
            raise ClusterError("queue_depth must be >= 1")
        if self.deadline_s <= 0:
            raise ClusterError("deadline_s must be positive")
        if self.heartbeat_interval_s <= 0:
            raise ClusterError("heartbeat_interval_s must be positive")
        if self.payload_bytes < 0:
            raise ClusterError("payload_bytes must be >= 0")

    @property
    def num_nodes(self) -> int:
        return self.racks * self.nodes_per_rack

    def rack_of(self, node: int) -> int:
        if not 0 <= node < self.num_nodes:
            raise ClusterError(
                f"node {node} outside 0..{self.num_nodes - 1}")
        return node // self.nodes_per_rack

    def nodes_in_rack(self, rack: int) -> range:
        if not 0 <= rack < self.racks:
            raise ClusterError(f"rack {rack} outside 0..{self.racks - 1}")
        return range(rack * self.nodes_per_rack,
                     (rack + 1) * self.nodes_per_rack)

    @property
    def capacity_rps(self) -> float:
        """Aggregate fault-free throughput ceiling."""
        return self.num_nodes / self.service_time_s


@dataclasses.dataclass(frozen=True)
class TokenBucket:
    """Token-bucket admission control (one token per request)."""

    rate_rps: float
    burst: float = 32.0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ClusterError("admission rate_rps must be positive")
        if self.burst < 1:
            raise ClusterError("admission burst must be >= 1")


@dataclasses.dataclass(frozen=True)
class BrownoutPolicy:
    """Degraded CPU path for requests the FPGA pool cannot take.

    Mirrors the federated runtime's per-stage CPU fallback
    (:class:`~repro.system.runtime.FpgaStage`): instead of shedding, a
    request completes at an honestly-accounted (much slower) CPU
    latency.  ``max_concurrent`` bounds the CPU pool — beyond it,
    requests are shed as usual.
    """

    cpu_latency_s: float = DEFAULT_CPU_FALLBACK_LATENCY_S
    max_concurrent: int = 64

    def __post_init__(self) -> None:
        if self.cpu_latency_s <= 0:
            raise ClusterError("brownout cpu_latency_s must be positive")
        if self.max_concurrent < 1:
            raise ClusterError("brownout max_concurrent must be >= 1")


@dataclasses.dataclass(frozen=True)
class NodeBatching:
    """Per-node dynamic batching backed by a measured service-time
    curve.

    ``curve`` maps a dispatch size to its aggregate service time in
    seconds — a :class:`~repro.system.batching.ServiceTimeCurve` from
    :func:`~repro.system.batching.calibrate_batch_curve` (scaled to
    the node's batch-1 service time via
    :meth:`~repro.system.batching.ServiceTimeCurve.scaled`), replacing
    both ``ClusterSpec.service_time_s`` and the hand-written
    ``batch_service_time`` functions of
    :class:`~repro.system.loadgen.BatchingServer`.  Each node queues
    requests and dispatches ``min(queued, max_batch)`` when the batch
    fills or the oldest request has waited ``timeout_s``.
    """

    curve: object
    max_batch: int = 16
    timeout_s: float = 1e-3

    def __post_init__(self) -> None:
        if not callable(self.curve):
            raise ClusterError(
                "batching curve must be callable (batch -> seconds), "
                f"got {type(self.curve).__name__}")
        if self.max_batch < 1:
            raise ClusterError(
                f"batching max_batch must be >= 1, got {self.max_batch}")
        if self.timeout_s < 0:
            raise ClusterError(
                f"batching timeout_s must be >= 0, got {self.timeout_s}")
        t1 = float(self.curve(1))
        if not t1 > 0:
            raise ClusterError(
                f"batching curve(1) must be positive, got {t1:g}")


@dataclasses.dataclass(frozen=True)
class AutoscalePolicy:
    """Replica autoscaling from observed arrival rate.

    Every ``interval_s`` of simulated time the controller measures the
    arrival rate over the last interval and resizes the active node
    set to ``ceil(rate / (target_utilization * per_node_capacity))``,
    clamped to ``[min_nodes, max_nodes]``, where per-node capacity is
    the batched throughput ceiling ``max_batch / curve(max_batch)``.
    Nodes activate lowest-index first; a deactivated node drains its
    queue but receives no new traffic.  Deterministic — the decision
    is a pure function of the arrival trace.
    """

    min_nodes: int = 1
    max_nodes: Optional[int] = None
    target_utilization: float = 0.6
    interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ClusterError(
                f"autoscale min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes is not None and self.max_nodes < self.min_nodes:
            raise ClusterError(
                f"autoscale max_nodes ({self.max_nodes}) < min_nodes "
                f"({self.min_nodes})")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ClusterError(
                f"target_utilization must be in (0, 1], got "
                f"{self.target_utilization}")
        if self.interval_s <= 0:
            raise ClusterError(
                f"autoscale interval_s must be positive, got "
                f"{self.interval_s}")


class PhiAccrualDetector:
    """Phi-accrual-style failure detector over periodic heartbeats.

    Every node emits a heartbeat each ``heartbeat_interval_s`` while it
    is up and reachable.  Suspicion of a node at time ``t`` is::

        phi(t) = (t - last_heartbeat) / (interval * ln 10)

    i.e. the negative log10 tail probability of the gap under an
    exponential model with the heartbeat interval as its mean.  A node
    whose phi crosses ``threshold`` is **evicted** from routing; it is
    **readmitted** at its first heartbeat after recovery.  Both edges
    are deterministic functions of the silence/resume instants, so the
    simulator schedules them as discrete events instead of polling.
    """

    def __init__(self, spec: ClusterSpec, threshold: float = 8.0,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None):
        if threshold <= 0:
            raise ClusterError("detector threshold must be positive")
        self.spec = spec
        self.threshold = threshold
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)
        #: Time each node stopped heartbeating (``None`` = healthy).
        self._silenced: Dict[int, float] = {}
        self.evicted: set = set()
        #: ``(time_s, "evict" | "readmit", node)`` transition log.
        self.transitions: List[Tuple[float, str, int]] = []

    def last_heartbeat(self, node: int, now: float) -> float:
        """The newest heartbeat from ``node`` observed by ``now``."""
        interval = self.spec.heartbeat_interval_s
        alive_until = min(now, self._silenced.get(node, now))
        return math.floor(alive_until / interval) * interval

    def phi(self, node: int, now: float) -> float:
        """Current suspicion level of ``node``."""
        gap = now - self.last_heartbeat(node, now)
        return gap / (self.spec.heartbeat_interval_s * _LN10)

    def suspect_time(self, silenced_at: float) -> float:
        """When phi crosses the threshold for a node silenced then."""
        interval = self.spec.heartbeat_interval_s
        last = math.floor(silenced_at / interval) * interval
        return last + self.threshold * interval * _LN10

    def silence(self, node: int, now: float) -> Optional[float]:
        """Node stopped heartbeating (crash/partition); returns the
        future eviction time, or ``None`` if already silenced."""
        if node in self._silenced:
            return None
        self._silenced[node] = now
        return self.suspect_time(now)

    def resume(self, node: int, now: float) -> Optional[float]:
        """Node heartbeats again (repair/heal); returns the readmission
        time (its next heartbeat), or ``None`` if it was not silenced."""
        if node not in self._silenced:
            return None
        del self._silenced[node]
        interval = self.spec.heartbeat_interval_s
        return math.ceil(now / interval) * interval

    def evict(self, node: int, now: float) -> bool:
        """Apply a scheduled eviction (no-op if the node resumed)."""
        if node not in self._silenced or node in self.evicted:
            return False
        self.evicted.add(node)
        self.transitions.append((now, "evict", node))
        self.tracer.instant("detector:evict", now, track="detector",
                            node=node, phi=round(self.phi(node, now), 3))
        self.metrics.counter("cluster.detector.evictions").inc()
        return True

    def readmit(self, node: int, now: float) -> bool:
        """Apply a scheduled readmission (no-op unless evicted)."""
        if node in self._silenced or node not in self.evicted:
            return False
        self.evicted.discard(node)
        self.transitions.append((now, "readmit", node))
        self.tracer.instant("detector:readmit", now, track="detector",
                            node=node)
        self.metrics.counter("cluster.detector.readmissions").inc()
        return True


_EVENT_ACTIONS = ("crash", "repair", "rack_down", "rack_up",
                  "partition", "heal", "slow", "unslow")


@dataclasses.dataclass(frozen=True, order=True)
class ClusterEvent:
    """One scheduled cluster state change.

    ``target`` is a node index for node-scoped actions (``crash``,
    ``repair``, ``slow``, ``unslow``) and a rack index for
    domain-scoped ones (``rack_down``, ``rack_up``, ``partition``,
    ``heal``).  ``value`` is the slowdown multiplier for ``slow``.
    """

    time_s: float
    action: str
    target: int
    value: float = 1.0

    def __post_init__(self) -> None:
        if self.action not in _EVENT_ACTIONS:
            raise ClusterError(
                f"unknown cluster event action {self.action!r}; "
                f"one of {_EVENT_ACTIONS}")
        if self.time_s < 0:
            raise ClusterError("event time_s must be >= 0")
        if self.action == "slow" and self.value < 1.0:
            raise ClusterError("slow multiplier must be >= 1")


@dataclasses.dataclass
class ClusterResult:
    """Per-request outcomes and summary statistics of one run.

    Percentiles follow NaN-with-flag semantics: when there are no
    served requests (``has_latencies`` is ``False``) they return
    ``nan`` rather than raising or reporting a misleading ``0.0``.
    """

    spec: ClusterSpec
    arrivals: np.ndarray
    #: Per-request outcome code (``SERVED`` ... ``FAILED``).
    status: np.ndarray
    #: End-to-end latency (seconds); ``nan`` for non-completed requests.
    latency_s: np.ndarray
    #: Applied control events, including detector evict/readmit edges.
    event_log: List[Tuple[float, str, int]]
    detector_transitions: List[Tuple[float, str, int]]
    #: Batched runs only: ``(finish_time_s, batch_size)`` per dispatch.
    batch_log: Optional[List[Tuple[float, int]]] = None
    #: Autoscaled runs only: ``(time_s, active_nodes)`` per resize.
    active_nodes_trace: Optional[List[Tuple[float, int]]] = None

    @property
    def total(self) -> int:
        return int(self.status.size)

    @property
    def mean_batch(self) -> float:
        """Mean dispatch size of a batched run; ``nan`` otherwise."""
        if not self.batch_log:
            return float("nan")
        return float(np.mean([b for _, b in self.batch_log]))

    @property
    def empty(self) -> bool:
        return self.total == 0

    def count(self, code: int) -> int:
        return int(np.count_nonzero(self.status == code))

    @property
    def served(self) -> int:
        """Requests answered within the deadline (FPGA or brownout)."""
        return self.count(SERVED) + self.count(BROWNOUT)

    @property
    def availability(self) -> float:
        """Fraction of requests answered within the SLO deadline —
        the tail-latency-bound product metric; ``nan`` when the run is
        empty (see :attr:`empty`)."""
        if self.empty:
            return float("nan")
        return self.served / self.total

    @property
    def shed(self) -> int:
        return self.count(SHED_ADMISSION) + self.count(SHED_DEADLINE)

    @property
    def failed(self) -> int:
        return self.count(FAILED)

    @property
    def has_latencies(self) -> bool:
        """At least one request completed — latency percentiles are
        real numbers rather than ``nan``."""
        return bool(np.isfinite(self.latency_s).any())

    @property
    def deadline_met(self) -> int:
        return self.served

    @property
    def deadline_violations(self) -> int:
        """Completed requests that finished past the SLO deadline —
        wasted server work the client never saw."""
        return self.count(TIMEOUT)

    @property
    def span_s(self) -> float:
        if self.empty:
            return float("nan")
        finite = np.isfinite(self.latency_s)
        last = float(self.arrivals[-1])
        if finite.any():
            last = max(last, float(
                (self.arrivals[finite] + self.latency_s[finite]).max()))
        return last - float(self.arrivals[0])

    @property
    def goodput_rps(self) -> float:
        """Deadline-met completions per second of simulated time."""
        span = self.span_s
        if not span or math.isnan(span):
            return float("nan")
        return self.deadline_met / span

    def percentile_latency_ms(self, q: float) -> float:
        """Latency percentile over completed requests (ms); ``nan``
        when nothing completed (``has_latencies`` flags it)."""
        samples = self.latency_s[np.isfinite(self.latency_s)]
        return percentile_or_nan(samples, q) * 1e3

    @property
    def p50_ms(self) -> float:
        return self.percentile_latency_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_latency_ms(99)

    @property
    def p999_ms(self) -> float:
        return self.percentile_latency_ms(99.9)

    def counts(self) -> Dict[str, int]:
        return {name: self.count(code)
                for code, name in STATUS_NAMES.items()}

    def render(self) -> str:
        avail = self.availability
        lines = [
            f"cluster: {self.spec.racks} racks x "
            f"{self.spec.nodes_per_rack} nodes, "
            f"{self.total} requests over {self.span_s:.2f} s",
            f"  availability: "
            + ("n/a" if math.isnan(avail) else f"{100 * avail:.3f}%")
            + f"  goodput {self.goodput_rps:.0f}/s"
            f"  deadline violations {self.deadline_violations}",
            "  outcomes: " + "  ".join(
                f"{name}={n}" for name, n in self.counts().items() if n),
            f"  latency ms: p50 {self.p50_ms:.2f}  "
            f"p99 {self.p99_ms:.2f}  p99.9 {self.p999_ms:.2f}",
            f"  detector: {len(self.detector_transitions)} transitions",
        ]
        if self.batch_log:
            lines.append(
                f"  batching: {len(self.batch_log)} dispatches, "
                f"mean batch {self.mean_batch:.2f}")
        if self.active_nodes_trace:
            lines.append(
                f"  autoscaler: {len(self.active_nodes_trace)} resizes,"
                f" final {self.active_nodes_trace[-1][1]} active nodes")
        return "\n".join(lines)


_ROUTERS = ("p2c", "least_loaded", "random")


class ClusterSimulator:
    """Discrete-event simulator of one cluster under load and faults.

    The event heap carries control-plane changes (crashes, repairs,
    rack/TOR outages, partitions, slow-node onsets, detector
    evict/readmit edges); the data plane processes the open-loop
    arrival trace in time order between them.  Per-request work is
    O(1) for ``p2c``/``random`` routing (O(nodes) for
    ``least_loaded``), with all per-request randomness pre-drawn as
    vectorized ``numpy`` arrays, so million-request traces run in
    seconds and are bit-deterministic per seed.

    Ground truth (which nodes are actually up/reachable) is separate
    from the router's view (the failure detector's eviction set): in
    the detection window after a fault, traffic still lands on dead
    nodes and fails — exactly the availability gap the detector closes.
    """

    def __init__(self, spec: Optional[ClusterSpec] = None,
                 router: str = "p2c",
                 admission: Optional[TokenBucket] = None,
                 brownout: Optional[BrownoutPolicy] = None,
                 detector_threshold: Optional[float] = 8.0,
                 shed_on_deadline: bool = True,
                 retries: int = 1,
                 seed: int = 0,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None,
                 monitor=None,
                 batching: Optional[NodeBatching] = None,
                 autoscaler: Optional[AutoscalePolicy] = None):
        """``detector_threshold=None`` disables failure detection (the
        router keeps sending to dead nodes); ``admission=None`` and
        ``brownout=None`` disable those mitigations; ``retries`` is the
        number of immediate failovers after landing on a dead node.

        ``monitor`` (a :class:`~repro.system.monitor.FleetMonitor`)
        attaches the telemetry plane: the simulator schedules its
        scrape instants as ``_scrape`` control events and hands it the
        per-request node attribution after the run.  Monitoring is
        observation-only — it never touches the RNG stream, the event
        log, or any outcome.

        ``batching`` (a :class:`NodeBatching`) switches :meth:`run` to
        the batched-node data plane: every node runs a batching queue
        whose dispatch service time comes from the measured curve.
        ``autoscaler`` (requires ``batching``) resizes the active node
        set from observed arrival rate.  The batched path models
        bounded queues and deadline shedding but not admission
        control, brownout, or the telemetry monitor — those
        combinations raise rather than silently ignoring a policy."""
        if router not in _ROUTERS:
            raise ClusterError(
                f"unknown router {router!r}; one of {_ROUTERS}")
        if retries < 0:
            raise ClusterError("retries must be >= 0")
        if autoscaler is not None and batching is None:
            raise ClusterError("autoscaler requires batching")
        if batching is not None and (admission is not None
                                     or brownout is not None
                                     or monitor is not None):
            raise ClusterError(
                "batched clusters do not support admission control, "
                "brownout, or a monitor; configure those on the "
                "unbatched data plane")
        self.spec = spec if spec is not None else ClusterSpec()
        self.router = router
        self.admission = admission
        self.brownout = brownout
        self.shed_on_deadline = shed_on_deadline
        self.retries = retries
        self.seed = seed
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)
        self.monitor = monitor
        self.batching = batching
        self.autoscaler = autoscaler
        self.detector = (PhiAccrualDetector(
            self.spec, detector_threshold, tracer=self.tracer,
            metrics=self.metrics)
            if detector_threshold is not None else None)
        self.fabric = NetworkFabric(self.spec.network)

    # -- state helpers ----------------------------------------------------

    def _rebuild_view(self) -> None:
        """Recompute the router's candidate list (cheap: state changes
        only at control events, never per request)."""
        evicted = self.detector.evicted if self.detector else ()
        self._view = [i for i in range(self.spec.num_nodes)
                      if i not in evicted]

    def _alive(self, node: int) -> bool:
        return self._up[node] and self.fabric.connected(
            "frontend", f"rack{self.spec.rack_of(node)}")

    def _partitioned(self, rack: int) -> bool:
        return rack in self._cut_racks

    def _silence(self, node: int, now: float, heap, seq) -> None:
        if self.detector is None:
            return
        at = self.detector.silence(node, now)
        if at is not None:
            heapq.heappush(heap, (at, next(seq), "_evict", node, 0.0))

    def _resume(self, node: int, now: float, heap, seq) -> None:
        if self.detector is None:
            return
        at = self.detector.resume(node, now)
        if at is not None:
            heapq.heappush(heap, (at, next(seq), "_readmit", node, 0.0))

    def _apply(self, when: float, action: str, target: int,
               value: float, heap, seq) -> None:
        """Apply one control event at simulated time ``when``."""
        if action == "_scrape":
            # Observation only: read state into the monitor's store and
            # return before the event log / tracer / view rebuild, so a
            # monitored run's log and outcomes stay bit-identical to an
            # unmonitored one.
            self.monitor.scrape(when, self)
            return
        spec = self.spec
        log = self._event_log
        if action == "crash":
            if self._up[target]:
                self._up[target] = False
                self._silence(target, when, heap, seq)
        elif action == "repair":
            if not self._up[target]:
                self._up[target] = True
                # Queued work on a crashed node is lost with it.
                self._free_at[target] = when
                if self._alive(target):
                    self._resume(target, when, heap, seq)
        elif action == "rack_down":
            for node in spec.nodes_in_rack(target):
                if self._up[node]:
                    self._up[node] = False
                    self._silence(node, when, heap, seq)
        elif action == "rack_up":
            for node in spec.nodes_in_rack(target):
                if not self._up[node]:
                    self._up[node] = True
                    self._free_at[node] = when
                    if self._alive(node):
                        self._resume(node, when, heap, seq)
        elif action == "partition":
            self.fabric.cut("frontend", f"rack{target}")
            self._cut_racks.add(target)
            for node in spec.nodes_in_rack(target):
                if self._up[node]:
                    self._silence(node, when, heap, seq)
        elif action == "heal":
            self.fabric.heal("frontend", f"rack{target}")
            self._cut_racks.discard(target)
            for node in spec.nodes_in_rack(target):
                if self._up[node]:
                    # Queued work stranded behind the partition is lost.
                    self._free_at[node] = when
                    self._resume(node, when, heap, seq)
        elif action == "slow":
            self._slow[target] = value
        elif action == "unslow":
            self._slow[target] = 1.0
        elif action == "_evict":
            if not (self.detector.evict(target, when)):
                return
        elif action == "_readmit":
            if not (self.detector.readmit(target, when)):
                return
        else:  # pragma: no cover - actions validated at construction
            raise ClusterError(f"unknown event action {action!r}")
        log.append((when, action.lstrip("_"), target))
        self.tracer.instant(f"cluster:{action.lstrip('_')}", when,
                            track="cluster", target=target)
        self._rebuild_view()

    # -- the run ----------------------------------------------------------

    def run(self, arrivals: Sequence[float],
            events: Sequence[ClusterEvent] = ()) -> ClusterResult:
        """Drive ``arrivals`` (sorted seconds) through the cluster.

        With a :class:`NodeBatching` configured this delegates to the
        batched data plane (:meth:`_run_batched`); the unbatched hot
        loop below is untouched by that path and stays bit-identical
        to its pre-batching behavior.
        """
        if self.batching is not None:
            return self._run_batched(arrivals, events)
        spec = self.spec
        arrivals = np.ascontiguousarray(arrivals, dtype=np.float64)
        if arrivals.size and np.any(np.diff(arrivals) < 0):
            raise ClusterError("arrivals must be sorted")
        n = int(arrivals.size)

        # Pre-vectorized load generation: every per-request random draw
        # for the whole run happens here, in two numpy calls — the hot
        # loop below only indexes. This is what keeps 1e6+ requests
        # fast *and* bit-deterministic per seed.
        rng = np.random.default_rng(self.seed)
        route_u = rng.random((2, max(n, 1)))
        choice1 = route_u[0]
        choice2 = route_u[1]

        self._up = [True] * spec.num_nodes
        self._slow = [1.0] * spec.num_nodes
        self._free_at = [0.0] * spec.num_nodes
        self._cut_racks: set = set()
        self._event_log: List[Tuple[float, str, int]] = []
        self.fabric.heal_all()
        self._rebuild_view()

        seq = iter(range(1 << 62))
        heap: List[Tuple[float, int, str, int, float]] = []
        for ev in events:
            heapq.heappush(heap, (ev.time_s, next(seq), ev.action,
                                  ev.target, ev.value))

        monitor = self.monitor
        node_of = None
        if monitor is not None:
            # Per-request node attribution for the monitor.  A bytearray
            # (0xFF = unrouted) converts to numpy zero-copy after the
            # run; fall back to a list when node ids don't fit a byte.
            node_of = bytearray(b"\xff" * n) \
                if spec.num_nodes < 0xFF else [-1] * n
            for ts in monitor.begin(self, arrivals, events):
                heapq.heappush(
                    heap, (float(ts), next(seq), "_scrape", 0, 0.0))

        status = np.full(n, FAILED, dtype=np.uint8)
        latency = np.full(n, np.nan, dtype=np.float64)

        # Hot-loop locals (attribute lookups hoisted out of the loop).
        service_s = spec.service_time_s
        deadline_s = spec.deadline_s
        queue_s = spec.queue_depth * service_s
        net_s = 2e-6 * spec.network.transfer_us(spec.payload_bytes)
        free_at = self._free_at
        slow = self._slow
        up = self._up
        least_loaded = self.router == "least_loaded"
        random_router = self.router == "random"
        retries = self.retries
        admission = self.admission
        tokens = admission.burst if admission else 0.0
        tok_rate = admission.rate_rps if admission else 0.0
        tok_burst = admission.burst if admission else 0.0
        last_t = float(arrivals[0]) if n else 0.0
        brownout = self.brownout
        cpu_free: List[float] = []
        if brownout is not None:
            cpu_free = [0.0] * brownout.max_concurrent
            cpu_latency = brownout.cpu_latency_s
        shed_on_deadline = self.shed_on_deadline
        cut_racks = self._cut_racks
        rack_span = spec.nodes_per_rack

        for i in range(n):
            t = float(arrivals[i])
            while heap and heap[0][0] <= t:
                when, _, action, target, value = heapq.heappop(heap)
                self._apply(when, action, target, value, heap, seq)
            view = self._view

            # Admission control: continuous token refill, 1/request.
            # Rejected requests get the brownout CPU path if it has
            # room — degrade before turning users away.
            if admission is not None:
                tokens = min(tok_burst, tokens + (t - last_t) * tok_rate)
                last_t = t
                if tokens < 1.0:
                    if brownout is not None:
                        slot = int(choice1[i] * len(cpu_free))
                        finish = max(t, cpu_free[slot]) + cpu_latency
                        if finish - t <= deadline_s:
                            cpu_free[slot] = finish
                            status[i] = BROWNOUT
                            latency[i] = finish - t
                            continue
                    status[i] = SHED_ADMISSION
                    continue
                tokens -= 1.0

            nh = len(view)
            node = -1
            if nh:
                if random_router:
                    node = view[int(choice1[i] * nh)]
                elif least_loaded:
                    backlog = [free_at[j] for j in view]
                    node = view[min(range(nh),
                                    key=backlog.__getitem__)]
                else:  # p2c
                    a = view[int(choice1[i] * nh)]
                    b = view[int(choice2[i] * nh)]
                    node = a if free_at[a] <= free_at[b] else b
                # Failover: in the detection window after a fault the
                # router's view still contains dead nodes; one retry on
                # the alternate candidate is the client-side hedge.
                chosen = node
                if not up[node] or node // rack_span in cut_racks:
                    node = -1 if retries < 1 else \
                        view[int(choice2[i] * nh)]
                    if node >= 0 and (not up[node]
                                      or node // rack_span in cut_racks):
                        node = -1

                if node_of is not None:
                    # Failed requests attribute to the dead node they
                    # landed on — that's the failure domain that ate
                    # them, which is what the per-rack breakdown needs.
                    node_of[i] = node if node >= 0 else chosen

            if node < 0:
                # No live candidate: brownout if possible, else fail.
                if brownout is not None:
                    slot = int(choice1[i] * len(cpu_free))
                    finish = max(t, cpu_free[slot]) + cpu_latency
                    if finish - t <= deadline_s:
                        cpu_free[slot] = finish
                        status[i] = BROWNOUT
                        latency[i] = finish - t
                        continue
                status[i] = FAILED
                continue

            wait = free_at[node] - t
            if wait < 0.0:
                wait = 0.0
            service = service_s * slow[node]
            predicted = wait + service + net_s
            if shed_on_deadline and (wait > queue_s
                                     or predicted > deadline_s):
                # Bounded queue / deadline-aware shedding: don't burn
                # server time on a request that cannot meet its SLO.
                # The ablated stack skips this — it queues without
                # backpressure and lets clients time out instead.
                if brownout is not None:
                    slot = int(choice2[i] * len(cpu_free))
                    finish = max(t, cpu_free[slot]) + cpu_latency
                    if finish - t <= deadline_s:
                        cpu_free[slot] = finish
                        status[i] = BROWNOUT
                        latency[i] = finish - t
                        continue
                status[i] = SHED_DEADLINE
                continue
            free_at[node] = t + wait + service
            latency[i] = predicted
            status[i] = SERVED if predicted <= deadline_s else TIMEOUT

        # Drain any control events past the last arrival so the event
        # log reflects the full scenario timeline.
        while heap:
            when, _, action, target, value = heapq.heappop(heap)
            self._apply(when, action, target, value, heap, seq)

        m = self.metrics
        for code, name in STATUS_NAMES.items():
            count = int(np.count_nonzero(status == code))
            if count:
                m.counter(f"cluster.requests.{name}").inc(count)
        finite = np.isfinite(latency)
        if finite.any():
            m.counter("cluster.deadline_violations").inc(
                int(np.count_nonzero(
                    latency[finite] > deadline_s)))

        result = ClusterResult(
            spec=spec, arrivals=arrivals, status=status,
            latency_s=latency, event_log=list(self._event_log),
            detector_transitions=list(
                self.detector.transitions if self.detector else []))
        if monitor is not None:
            monitor.finish(result, node_of)
        return result

    # -- the batched data plane -------------------------------------------

    def _run_batched(self, arrivals: Sequence[float],
                     events: Sequence[ClusterEvent] = ()
                     ) -> ClusterResult:
        """Batched-node discrete-event run (see :class:`NodeBatching`).

        Each node owns a FIFO batching queue: a dispatch of
        ``min(queued, max_batch)`` requests starts when the node is
        free and either the batch is full or the oldest queued request
        has waited ``timeout_s``; its service time is the measured
        curve at the dispatch size (times any slow-node multiplier).
        Requests queued or in flight on a node that crashes or is
        partitioned away are ``FAILED`` — batching widens the blast
        radius of a node loss, and the model is honest about it.
        Routing, the failure detector, and control events share the
        unbatched path's machinery; per-request routing randomness is
        pre-vectorized exactly the same way, so runs are
        bit-deterministic per seed.
        """
        spec = self.spec
        bcfg = self.batching
        autoscaler = self.autoscaler
        arrivals = np.ascontiguousarray(arrivals, dtype=np.float64)
        if arrivals.size and np.any(np.diff(arrivals) < 0):
            raise ClusterError("arrivals must be sorted")
        n = int(arrivals.size)
        num_nodes = spec.num_nodes

        rng = np.random.default_rng(self.seed)
        route_u = rng.random((2, max(n, 1)))
        choice1 = route_u[0]
        choice2 = route_u[1]

        self._up = [True] * num_nodes
        self._slow = [1.0] * num_nodes
        self._free_at = [0.0] * num_nodes
        self._cut_racks = set()
        self._event_log = []
        self.fabric.heal_all()
        self._rebuild_view()

        max_batch = bcfg.max_batch
        timeout_s = bcfg.timeout_s
        # The curve is evaluated once per dispatch size, not per
        # dispatch — measured curves interpolate, and a million
        # dispatches should not pay that repeatedly.
        svc = [0.0] + [float(bcfg.curve(b))
                       for b in range(1, max_batch + 1)]
        per_req_s = svc[max_batch] / max_batch
        queue_cap = spec.queue_depth * max_batch
        deadline_s = spec.deadline_s
        net_s = 2e-6 * spec.network.transfer_us(spec.payload_bytes)
        shed_on_deadline = self.shed_on_deadline
        retries = self.retries
        free_at = self._free_at
        slow = self._slow
        up = self._up
        cut_racks = self._cut_racks
        rack_span = spec.nodes_per_rack
        least_loaded = self.router == "least_loaded"
        random_router = self.router == "random"

        queues: List[deque] = [deque() for _ in range(num_nodes)]
        inflight: List[Optional[Tuple[float, List[Tuple[float, int]]]]] \
            = [None] * num_nodes
        epoch = [0] * num_nodes
        flush_at = [math.inf] * num_nodes
        status = np.full(n, FAILED, dtype=np.uint8)
        latency = np.full(n, np.nan, dtype=np.float64)
        batch_log: List[Tuple[float, int]] = []
        active_trace: List[Tuple[float, int]] = []

        m = self.metrics
        occupancy = m.histogram("cluster.batch_occupancy",
                                bounds=OCCUPANCY_BOUNDS)
        queue_wait = m.histogram("cluster.queue_wait_s",
                                 bounds=QUEUE_WAIT_BOUNDS)

        seq = iter(range(1 << 62))
        heap: List[Tuple[float, int, str, int, float]] = []
        for ev in events:
            heapq.heappush(heap, (ev.time_s, next(seq), ev.action,
                                  ev.target, ev.value))

        active_count = num_nodes
        if autoscaler is not None:
            active_count = autoscaler.min_nodes
            active_trace.append((0.0, active_count))
            heapq.heappush(heap, (autoscaler.interval_s, next(seq),
                                  "_ascale", 0, 0.0))
        eligible = list(self._view)
        eligible_dirty = autoscaler is not None

        def fail_node(node: int, when: float) -> None:
            """A node died or became unreachable: its queued and
            in-flight requests are lost."""
            flight = inflight[node]
            if flight is not None:
                inflight[node] = None
                for _, idx in flight[1]:
                    status[idx] = FAILED
                    latency[idx] = np.nan
            for _, idx in queues[node]:
                status[idx] = FAILED
            queues[node].clear()
            epoch[node] += 1
            flush_at[node] = math.inf

        def dispatch(node: int, now: float) -> None:
            q = queues[node]
            b = min(len(q), max_batch)
            batch = [q.popleft() for _ in range(b)]
            finish = now + svc[b] * slow[node]
            free_at[node] = finish
            inflight[node] = (finish, batch)
            flush_at[node] = math.inf
            heapq.heappush(heap, (finish, next(seq), "_bdone", node,
                                  float(epoch[node])))
            batch_log.append((finish, b))
            occupancy.observe(float(b))
            for arr, _ in batch:
                queue_wait.observe(now - arr)

        def maybe_dispatch(node: int, now: float) -> None:
            if inflight[node] is not None:
                return
            q = queues[node]
            if not q:
                return
            due = q[0][0] + timeout_s
            if len(q) >= max_batch or now >= due:
                dispatch(node, now)
                return
            if due < flush_at[node]:
                flush_at[node] = due
                heapq.heappush(heap, (due, next(seq), "_bflush",
                                      node, 0.0))

        def handle(when: float, action: str, target: int,
                   value: float) -> None:
            nonlocal eligible_dirty, active_count
            if action == "_bdone":
                node = target
                flight = inflight[node]
                if int(value) != epoch[node] or flight is None:
                    return
                finish, batch = flight
                inflight[node] = None
                for arr, idx in batch:
                    lat = finish - arr + net_s
                    latency[idx] = lat
                    status[idx] = SERVED if lat <= deadline_s \
                        else TIMEOUT
                maybe_dispatch(node, when)
                return
            if action == "_bflush":
                maybe_dispatch(target, when)
                return
            if action == "_ascale":
                lo = np.searchsorted(arrivals,
                                     when - autoscaler.interval_s,
                                     side="right")
                hi = np.searchsorted(arrivals, when, side="right")
                rate = (hi - lo) / autoscaler.interval_s
                cap = max_batch / svc[max_batch]
                desired = math.ceil(
                    rate / (autoscaler.target_utilization * cap))
                ceiling = (autoscaler.max_nodes
                           if autoscaler.max_nodes is not None
                           else num_nodes)
                desired = min(max(desired, autoscaler.min_nodes),
                              ceiling)
                if desired != active_count:
                    active_count = desired
                    active_trace.append((when, desired))
                    eligible_dirty = True
                    self.tracer.instant("cluster:autoscale", when,
                                        track="cluster",
                                        target=desired)
                if n and when <= float(arrivals[-1]):
                    heapq.heappush(
                        heap, (when + autoscaler.interval_s,
                               next(seq), "_ascale", 0, 0.0))
                return
            self._apply(when, action, target, value, heap, seq)
            eligible_dirty = True
            if action in ("crash", "rack_down", "partition"):
                affected = ([target] if action == "crash"
                            else spec.nodes_in_rack(target))
                for node in affected:
                    if not up[node] or node // rack_span in cut_racks:
                        fail_node(node, when)

        def load(node: int, now: float) -> float:
            """Backlog estimate for routing: residual busy time plus
            amortized queue drain time."""
            busy = free_at[node] - now
            if busy < 0.0:
                busy = 0.0
            return busy + len(queues[node]) * per_req_s

        for i in range(n):
            t = float(arrivals[i])
            while heap and heap[0][0] <= t:
                when, _, action, target, value = heapq.heappop(heap)
                handle(when, action, target, value)
            if eligible_dirty:
                view = self._view
                eligible = (view if autoscaler is None else
                            [v for v in view if v < active_count])
                eligible_dirty = False

            nh = len(eligible)
            node = -1
            if nh:
                if random_router:
                    node = eligible[int(choice1[i] * nh)]
                elif least_loaded:
                    backlog = [load(j, t) for j in eligible]
                    node = eligible[min(range(nh),
                                        key=backlog.__getitem__)]
                else:  # p2c
                    a = eligible[int(choice1[i] * nh)]
                    b = eligible[int(choice2[i] * nh)]
                    node = a if load(a, t) <= load(b, t) else b
                if not up[node] or node // rack_span in cut_racks:
                    node = -1 if retries < 1 else \
                        eligible[int(choice2[i] * nh)]
                    if node >= 0 and (not up[node]
                                      or node // rack_span in cut_racks):
                        node = -1

            if node < 0:
                status[i] = FAILED
                continue

            q = queues[node]
            qlen = len(q)
            if qlen >= queue_cap:
                status[i] = SHED_DEADLINE
                continue
            if shed_on_deadline:
                # Optimistic finish bound: residual busy time, the
                # full batches already ahead, then this request's own
                # dispatch — no timeout waits included, so a request
                # is only shed when even the best case misses the SLO.
                busy = free_at[node] - t
                if busy < 0.0:
                    busy = 0.0
                own = svc[min(qlen + 1, max_batch)] * slow[node]
                predicted = busy + (qlen // max_batch) \
                    * svc[max_batch] * slow[node] + own + net_s
                if predicted > deadline_s:
                    status[i] = SHED_DEADLINE
                    continue
            q.append((t, i))
            maybe_dispatch(node, t)

        # Drain everything past the last arrival: pending timeouts
        # dispatch, in-flight batches commit, control events land.
        while heap:
            when, _, action, target, value = heapq.heappop(heap)
            handle(when, action, target, value)

        for code, name in STATUS_NAMES.items():
            count = int(np.count_nonzero(status == code))
            if count:
                m.counter(f"cluster.requests.{name}").inc(count)
        finite = np.isfinite(latency)
        if finite.any():
            m.counter("cluster.deadline_violations").inc(
                int(np.count_nonzero(latency[finite] > deadline_s)))

        return ClusterResult(
            spec=spec, arrivals=arrivals, status=status,
            latency_s=latency, event_log=list(self._event_log),
            detector_transitions=list(
                self.detector.transitions if self.detector else []),
            batch_log=batch_log,
            active_nodes_trace=active_trace if autoscaler is not None
            else None)
