"""Hardware microservices: pooled FPGAs served over the network.

Section II-A: accelerators are "logically disaggregated and pooled into
instances of hardware microservices with no software in the loop",
registered with a resource manager and addressed directly by IP.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler.lowering import CompiledModel
from ..errors import ReproError
from ..timing.scheduler import TimingSimulator
from .network import Locality, NetworkModel


class ServiceError(ReproError):
    """Microservice registration/lookup failure."""


_ip_counter = itertools.count(1)


@dataclasses.dataclass
class FpgaNode:
    """One network-attached FPGA hosting a compiled model."""

    name: str
    compiled: CompiledModel
    locality: Locality = Locality.SAME_RACK

    def __post_init__(self) -> None:
        self.ip_address = f"10.0.{next(_ip_counter) // 256}." \
                          f"{next(_ip_counter) % 256}"
        self._timing = TimingSimulator(self.compiled.config)

    def compute_latency_s(self, steps: int) -> float:
        """NPU compute latency for a ``steps``-step invocation."""
        report = self._timing.run(
            self.compiled.program,
            bindings={self.compiled.steps_binding: steps},
            nominal_ops=self.compiled.ops_per_step * steps)
        return report.latency_s

    def run_functional(self, xs: List[np.ndarray],
                       exact: bool = True) -> List[np.ndarray]:
        """Architecturally exact evaluation (small models/tests)."""
        return self.compiled.run_sequence(xs, exact=exact)


@dataclasses.dataclass(frozen=True)
class InvocationResult:
    """Latency breakdown of one microservice invocation."""

    network_in_s: float
    compute_s: float
    network_out_s: float
    outputs: Optional[List[np.ndarray]] = None

    @property
    def total_s(self) -> float:
        return self.network_in_s + self.compute_s + self.network_out_s

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


class HardwareMicroservice:
    """A published model-serving endpoint backed by one FPGA node."""

    def __init__(self, name: str, node: FpgaNode,
                 network: Optional[NetworkModel] = None):
        self.name = name
        self.node = node
        self.network = network if network is not None else NetworkModel()

    def invoke(self, steps: int, functional_inputs:
               Optional[List[np.ndarray]] = None) -> InvocationResult:
        """Serve one request of ``steps`` timesteps.

        Network time covers the input vector stream in and the output
        stream back; compute time comes from the timing simulator. Pass
        ``functional_inputs`` to additionally produce real outputs via
        the functional simulator.
        """
        compiled = self.node.compiled
        bytes_per_vec = compiled.config.native_dim * 2  # float16 wire fmt
        in_bytes = steps * compiled.input_vectors_per_step * bytes_per_vec
        out_bytes = steps * compiled.output_vectors_per_step * bytes_per_vec
        # Inputs stream concurrently with compute (the NPU consumes
        # vectors as they arrive) and outputs stream back per step, so
        # the request pays one propagation plus the first step's
        # serialization on the way in, and one propagation plus the
        # last step's serialization on the way out; serialization of
        # the full payload only matters if it exceeds compute.
        first_in = in_bytes / max(steps, 1)
        last_out = out_bytes / max(steps, 1)
        net_in = self.network.transfer_us(first_in,
                                          self.node.locality) * 1e-6
        net_out = self.network.transfer_us(last_out,
                                           self.node.locality) * 1e-6
        compute = max(self.node.compute_latency_s(steps),
                      self.network.serialization_us(in_bytes) * 1e-6,
                      self.network.serialization_us(out_bytes) * 1e-6)
        outputs = None
        if functional_inputs is not None:
            if len(functional_inputs) != steps:
                raise ServiceError(
                    f"{self.name}: {len(functional_inputs)} inputs for "
                    f"{steps} steps")
            outputs = self.node.run_functional(functional_inputs)
        return InvocationResult(network_in_s=net_in, compute_s=compute,
                                network_out_s=net_out, outputs=outputs)


class MicroserviceRegistry:
    """The distributed resource manager: name -> published service."""

    def __init__(self):
        self._services: Dict[str, HardwareMicroservice] = {}

    def publish(self, service: HardwareMicroservice) -> str:
        """Register a service; returns the endpoint address."""
        if service.name in self._services:
            raise ServiceError(f"service {service.name!r} already "
                               "published")
        self._services[service.name] = service
        return service.node.ip_address

    def lookup(self, name: str) -> HardwareMicroservice:
        if name not in self._services:
            raise ServiceError(
                f"no service {name!r}; published: "
                f"{sorted(self._services)}")
        return self._services[name]

    def __len__(self) -> int:
        return len(self._services)
