"""Hardware microservices: pooled FPGAs served over the network.

Section II-A: accelerators are "logically disaggregated and pooled into
instances of hardware microservices with no software in the loop",
registered with a resource manager and addressed directly by IP. The
resource manager here is replica-aware: a service name maps to one or
more :class:`FpgaNode` replicas, each with a consecutive-failure
circuit breaker (open -> timed half-open probe -> closed) so callers
can fail over around crashed or misbehaving nodes.
"""

from __future__ import annotations

import dataclasses
import difflib
import itertools
import math
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from ..compiler.lowering import CompiledModel
from ..errors import FaultError, ReproError
from ..obs import Metrics, Tracer, or_null, or_null_metrics
from ..timing.scheduler import TimingSimulator
from .network import Locality, NetworkModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .faults import FaultInjector


class ServiceError(ReproError):
    """Microservice registration/lookup failure."""


_ip_counter = itertools.count(1)


@dataclasses.dataclass
class FpgaNode:
    """One network-attached FPGA hosting a compiled model."""

    name: str
    compiled: CompiledModel
    locality: Locality = Locality.SAME_RACK

    def __post_init__(self) -> None:
        n = next(_ip_counter)
        self.ip_address = f"10.0.{n // 256}.{n % 256}"
        self._timing = TimingSimulator(self.compiled.config)
        self._latency_cache: Dict[int, float] = {}

    def compute_latency_s(self, steps: int) -> float:
        """NPU compute latency for a ``steps``-step invocation.

        The timing simulator is deterministic for a given program and
        step count, so results are memoized — serving simulations
        invoke the same shape thousands of times.
        """
        if steps not in self._latency_cache:
            report = self._timing.run(
                self.compiled.program,
                bindings={self.compiled.steps_binding: steps},
                nominal_ops=self.compiled.ops_per_step * steps)
            self._latency_cache[steps] = report.latency_s
        return self._latency_cache[steps]

    def run_functional(self, xs: List[np.ndarray],
                       exact: bool = True) -> List[np.ndarray]:
        """Architecturally exact evaluation (small models/tests)."""
        return self.compiled.run_sequence(xs, exact=exact)


@dataclasses.dataclass(frozen=True)
class InvocationResult:
    """Latency breakdown of one microservice invocation."""

    network_in_s: float
    compute_s: float
    network_out_s: float
    outputs: Optional[List[np.ndarray]] = None

    @property
    def total_s(self) -> float:
        return self.network_in_s + self.compute_s + self.network_out_s

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


class HardwareMicroservice:
    """A published model-serving endpoint backed by one FPGA node.

    ``injector`` is an optional :class:`~repro.system.faults.FaultInjector`
    hook: when set, every invocation draws from the fault model and may
    raise :class:`~repro.errors.FaultError` or have its latency
    perturbed (tail spikes, packet retransmits). Without it, behavior
    is exactly the fault-free model.
    """

    def __init__(self, name: str, node: FpgaNode,
                 network: Optional[NetworkModel] = None,
                 injector: Optional["FaultInjector"] = None):
        self.name = name
        self.node = node
        self.network = network if network is not None else NetworkModel()
        self.injector = injector

    def invoke(self, steps: int, functional_inputs:
               Optional[List[np.ndarray]] = None) -> InvocationResult:
        """Serve one request of ``steps`` timesteps.

        Network time covers the input vector stream in and the output
        stream back; compute time comes from the timing simulator. Pass
        ``functional_inputs`` to additionally produce real outputs via
        the functional simulator. Raises
        :class:`~repro.errors.FaultError` when the fault injector
        fails the invocation (node down, crash, or transient failure).
        """
        compute_multiplier = 1.0
        extra_network_s = 0.0
        if self.injector is not None:
            sample = self.injector.sample(self.node.name)
            if sample.fail_kind is not None:
                raise FaultError(
                    f"{self.name}@{self.node.name}: injected "
                    f"{sample.fail_kind} fault", kind=sample.fail_kind)
            compute_multiplier = sample.compute_multiplier
            extra_network_s = sample.extra_network_s
        compiled = self.node.compiled
        bytes_per_vec = compiled.config.native_dim * 2  # float16 wire fmt
        in_bytes = steps * compiled.input_vectors_per_step * bytes_per_vec
        out_bytes = steps * compiled.output_vectors_per_step * bytes_per_vec
        # Inputs stream concurrently with compute (the NPU consumes
        # vectors as they arrive) and outputs stream back per step, so
        # the request pays one propagation plus the first step's
        # serialization on the way in, and one propagation plus the
        # last step's serialization on the way out; serialization of
        # the full payload only matters if it exceeds compute.
        first_in = in_bytes / max(steps, 1)
        last_out = out_bytes / max(steps, 1)
        net_in = self.network.transfer_us(first_in,
                                          self.node.locality) * 1e-6
        net_in += extra_network_s
        net_out = self.network.transfer_us(last_out,
                                           self.node.locality) * 1e-6
        compute = max(self.node.compute_latency_s(steps),
                      self.network.serialization_us(in_bytes) * 1e-6,
                      self.network.serialization_us(out_bytes) * 1e-6)
        compute *= compute_multiplier
        outputs = None
        if functional_inputs is not None:
            if len(functional_inputs) != steps:
                raise ServiceError(
                    f"{self.name}: {len(functional_inputs)} inputs for "
                    f"{steps} steps")
            outputs = self.node.run_functional(functional_inputs)
        return InvocationResult(network_in_s=net_in, compute_s=compute,
                                network_out_s=net_out, outputs=outputs)


@dataclasses.dataclass
class _ReplicaState:
    """One replica's circuit-breaker bookkeeping."""

    service: HardwareMicroservice
    consecutive_failures: int = 0
    #: Breaker is open (replica excluded) until this simulated time;
    #: past it, the replica is admitted as a half-open probe.
    open_until: float = -math.inf
    #: Last breaker state surfaced to the tracer (transition edges are
    #: emitted as instant events when this changes).
    last_reported: str = "closed"

    def state(self, now: float) -> str:
        if self.open_until == -math.inf:
            return "closed"
        if now < self.open_until:
            return "open"
        return "half_open"


class MicroserviceRegistry:
    """The distributed resource manager: name -> service replicas.

    Each published name holds an ordered list of replicas. Health is
    tracked per replica with a consecutive-failure circuit breaker:
    after ``failure_threshold`` consecutive failures the breaker opens
    for ``recovery_timeout_s`` of simulated time, after which the
    replica is re-admitted as a half-open probe — one success closes
    the breaker, one failure re-opens it.
    """

    def __init__(self, failure_threshold: int = 3,
                 recovery_timeout_s: float = 25e-3,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None):
        if failure_threshold < 1:
            raise ServiceError("failure_threshold must be >= 1")
        if recovery_timeout_s < 0:
            raise ServiceError("recovery_timeout_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)
        self._services: Dict[str, List[_ReplicaState]] = {}

    def _note_state(self, name: str, r: _ReplicaState,
                    now: float) -> None:
        """Emit an instant event on any breaker state transition since
        the last observation of this replica (closed -> open on the
        threshold failure, open -> half_open when the probe window
        opens, half_open -> closed on probe success, ...)."""
        state = r.state(now)
        if state != r.last_reported:
            self.tracer.instant(
                "breaker", now, track="breaker", service=name,
                replica=r.service.node.name,
                from_state=r.last_reported, to_state=state)
            self.metrics.counter(f"breaker.to_{state}").inc()
            r.last_reported = state

    # -- registration -----------------------------------------------------

    def publish(self, service: HardwareMicroservice) -> str:
        """Register a new service name; returns the endpoint address."""
        if service.name in self._services:
            raise ServiceError(
                f"service {service.name!r} already published; use "
                "publish_replica() to add replicas")
        self._services[service.name] = [_ReplicaState(service)]
        return service.node.ip_address

    def publish_replica(self, service: HardwareMicroservice) -> str:
        """Add a replica under ``service.name`` (creating the name if
        needed); returns the replica's endpoint address."""
        replicas = self._services.setdefault(service.name, [])
        if any(r.service.node.name == service.node.name
               for r in replicas):
            raise ServiceError(
                f"node {service.node.name!r} already serves "
                f"{service.name!r}")
        replicas.append(_ReplicaState(service))
        return service.node.ip_address

    def unpublish(self, name: str) -> None:
        """Withdraw a service name and all its replicas."""
        if name not in self._services:
            raise ServiceError(f"cannot unpublish {name!r}: not published")
        del self._services[name]

    def __contains__(self, name: object) -> bool:
        return name in self._services

    def __len__(self) -> int:
        return len(self._services)

    # -- lookup -----------------------------------------------------------

    def lookup(self, name: str) -> HardwareMicroservice:
        """The primary (first) replica of ``name``."""
        if name not in self._services:
            if not self._services:
                raise ServiceError(
                    f"no service {name!r}; registry is empty")
            close = difflib.get_close_matches(
                name, self._services, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise ServiceError(
                f"no service {name!r}{hint}; published: "
                f"{sorted(self._services)}")
        return self._services[name][0].service

    def replicas(self, name: str) -> List[HardwareMicroservice]:
        """All replicas of ``name``, in publication order."""
        self.lookup(name)
        return [r.service for r in self._services[name]]

    def healthy(self, name: str,
                now: float = 0.0) -> List[HardwareMicroservice]:
        """Replicas admissible at time ``now``: half-open probes first
        (standard breaker semantics — one trial request goes through),
        then closed replicas; open breakers are excluded."""
        self.lookup(name)
        probes, closed = [], []
        for r in self._services[name]:
            self._note_state(name, r, now)
            state = r.state(now)
            if state == "half_open":
                probes.append(r.service)
            elif state == "closed":
                closed.append(r.service)
        return probes + closed

    # -- health reporting -------------------------------------------------

    def _replica_state(self, name: str,
                       service: HardwareMicroservice) -> _ReplicaState:
        for r in self._services.get(name, []):
            if r.service is service or \
                    r.service.node.name == service.node.name:
                return r
        raise ServiceError(
            f"{service.node.name!r} is not a replica of {name!r}")

    def record_success(self, name: str, service: HardwareMicroservice,
                       now: float = 0.0) -> None:
        """A replica served a request: close its breaker."""
        r = self._replica_state(name, service)
        self._note_state(name, r, now)
        r.consecutive_failures = 0
        r.open_until = -math.inf
        self._note_state(name, r, now)

    def record_failure(self, name: str, service: HardwareMicroservice,
                       now: float = 0.0) -> None:
        """A replica failed a request: count it, and open the breaker
        at the threshold (a failed half-open probe re-opens it)."""
        r = self._replica_state(name, service)
        self._note_state(name, r, now)
        r.consecutive_failures += 1
        was_half_open = r.state(now) == "half_open"
        if was_half_open or \
                r.consecutive_failures >= self.failure_threshold:
            r.open_until = now + self.recovery_timeout_s
        self._note_state(name, r, now)

    def breaker_state(self, name: str, service: HardwareMicroservice,
                      now: float = 0.0) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` for a replica."""
        return self._replica_state(name, service).state(now)
