"""Hardware microservices: pooled FPGAs served over the network.

Section II-A: accelerators are "logically disaggregated and pooled into
instances of hardware microservices with no software in the loop",
registered with a resource manager and addressed directly by IP. The
resource manager here is replica-aware: a service name maps to one or
more :class:`FpgaNode` replicas, each with a consecutive-failure
circuit breaker (open -> timed half-open probe -> closed) so callers
can fail over around crashed or misbehaving nodes.
"""

from __future__ import annotations

import dataclasses
import difflib
import itertools
import math
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from ..compiler.lowering import CompiledModel
from ..errors import FaultError, ReproError
from ..obs import Metrics, Tracer, or_null, or_null_metrics
from ..timing.scheduler import TimingSimulator
from .network import Locality, NetworkModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .faults import FaultInjector


class ServiceError(ReproError):
    """Microservice registration/lookup failure."""


_ip_counter = itertools.count(1)


@dataclasses.dataclass
class FpgaNode:
    """One network-attached FPGA hosting a compiled model."""

    name: str
    compiled: CompiledModel
    locality: Locality = Locality.SAME_RACK

    def __post_init__(self) -> None:
        n = next(_ip_counter)
        self.ip_address = f"10.0.{n // 256}.{n % 256}"
        self._timing = TimingSimulator(self.compiled.config)
        self._latency_cache: Dict[int, float] = {}
        self._batch_relative = None

    def compute_latency_s(self, steps: int) -> float:
        """NPU compute latency for a ``steps``-step invocation.

        The timing simulator is deterministic for a given program and
        step count, so results are memoized — serving simulations
        invoke the same shape thousands of times.
        """
        if steps not in self._latency_cache:
            report = self._timing.run(
                self.compiled.program,
                bindings={self.compiled.steps_binding: steps},
                nominal_ops=self.compiled.ops_per_step * steps)
            self._latency_cache[steps] = report.latency_s
        return self._latency_cache[steps]

    def set_batch_curve(self, relative) -> None:
        """Install a relative batch service-time curve ``r(b)``.

        ``relative`` maps a batch size to the aggregate service-time
        multiple of a batch-1 invocation (``r(1) == 1``); pass the
        :meth:`~repro.system.batching.ServiceTimeCurve.relative` of a
        measured curve from
        :func:`~repro.system.batching.calibrate_batch_curve`, or
        ``None`` to revert to the uncalibrated serial model.
        """
        if relative is not None:
            r1 = float(relative(1))
            if not math.isclose(r1, 1.0, rel_tol=1e-6):
                raise ServiceError(
                    f"{self.name}: batch curve must be relative "
                    f"(r(1) == 1), got r(1) = {r1:g}")
        self._batch_relative = relative

    @property
    def batch_calibrated(self) -> bool:
        """A measured batch curve is installed (see
        :meth:`set_batch_curve`)."""
        return self._batch_relative is not None

    def batch_compute_latency_s(self, steps: int, batch: int) -> float:
        """Compute latency of one batched invocation of ``batch``
        requests of ``steps`` timesteps each.

        Uncalibrated nodes process requests serially (``batch`` times
        the batch-1 latency — a batch-1 NPU gains nothing from
        coalescing); calibrated nodes scale by the measured relative
        curve, which is sublinear when batched replay amortizes
        per-step overheads across requests.
        """
        if batch < 1:
            raise ServiceError(f"{self.name}: batch must be >= 1, "
                               f"got {batch}")
        base = self.compute_latency_s(steps)
        if self._batch_relative is None:
            return base * batch
        return base * float(self._batch_relative(batch))

    def run_functional(self, xs: List[np.ndarray],
                       exact: bool = True) -> List[np.ndarray]:
        """Architecturally exact evaluation (small models/tests)."""
        return self.compiled.run_sequence(xs, exact=exact)

    def run_functional_batched(self, xs_batch: List[List[np.ndarray]],
                               exact: bool = True
                               ) -> List[List[np.ndarray]]:
        """Architecturally exact batched evaluation: one
        :class:`~repro.functional.replay.BatchedReplay` execution whose
        per-request outputs are bit-identical to per-request
        :meth:`run_functional` calls."""
        return self.compiled.run_sequence_batched(xs_batch, exact=exact)


@dataclasses.dataclass(frozen=True)
class InvocationResult:
    """Latency breakdown of one microservice invocation."""

    network_in_s: float
    compute_s: float
    network_out_s: float
    outputs: Optional[List[np.ndarray]] = None

    @property
    def total_s(self) -> float:
        return self.network_in_s + self.compute_s + self.network_out_s

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


@dataclasses.dataclass(frozen=True)
class BatchedInvocationResult:
    """Latency breakdown of one *batched* microservice invocation.

    One dispatch serves ``batch`` coalesced requests; every request in
    the batch finishes together at ``total_s``.  ``outputs[b]`` (when
    functional inputs were given) is request ``b``'s output list,
    bit-identical to a sequential :meth:`HardwareMicroservice.invoke`
    of that request alone.
    """

    batch: int
    network_in_s: float
    compute_s: float
    network_out_s: float
    outputs: Optional[List[List[np.ndarray]]] = None

    @property
    def total_s(self) -> float:
        return self.network_in_s + self.compute_s + self.network_out_s

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3

    @property
    def per_request_s(self) -> float:
        """Aggregate service time amortized per request."""
        return self.total_s / self.batch


class HardwareMicroservice:
    """A published model-serving endpoint backed by one FPGA node.

    ``injector`` is an optional :class:`~repro.system.faults.FaultInjector`
    hook: when set, every invocation draws from the fault model and may
    raise :class:`~repro.errors.FaultError` or have its latency
    perturbed (tail spikes, packet retransmits). Without it, behavior
    is exactly the fault-free model.
    """

    def __init__(self, name: str, node: FpgaNode,
                 network: Optional[NetworkModel] = None,
                 injector: Optional["FaultInjector"] = None):
        self.name = name
        self.node = node
        self.network = network if network is not None else NetworkModel()
        self.injector = injector

    def invoke(self, steps: int, functional_inputs:
               Optional[List[np.ndarray]] = None) -> InvocationResult:
        """Serve one request of ``steps`` timesteps.

        Network time covers the input vector stream in and the output
        stream back; compute time comes from the timing simulator. Pass
        ``functional_inputs`` to additionally produce real outputs via
        the functional simulator. Raises
        :class:`~repro.errors.FaultError` when the fault injector
        fails the invocation (node down, crash, or transient failure).
        """
        compute_multiplier = 1.0
        extra_network_s = 0.0
        if self.injector is not None:
            sample = self.injector.sample(self.node.name)
            if sample.fail_kind is not None:
                raise FaultError(
                    f"{self.name}@{self.node.name}: injected "
                    f"{sample.fail_kind} fault", kind=sample.fail_kind)
            compute_multiplier = sample.compute_multiplier
            extra_network_s = sample.extra_network_s
        compiled = self.node.compiled
        bytes_per_vec = compiled.config.native_dim * 2  # float16 wire fmt
        in_bytes = steps * compiled.input_vectors_per_step * bytes_per_vec
        out_bytes = steps * compiled.output_vectors_per_step * bytes_per_vec
        # Inputs stream concurrently with compute (the NPU consumes
        # vectors as they arrive) and outputs stream back per step, so
        # the request pays one propagation plus the first step's
        # serialization on the way in, and one propagation plus the
        # last step's serialization on the way out; serialization of
        # the full payload only matters if it exceeds compute.
        first_in = in_bytes / max(steps, 1)
        last_out = out_bytes / max(steps, 1)
        net_in = self.network.transfer_us(first_in,
                                          self.node.locality) * 1e-6
        net_in += extra_network_s
        net_out = self.network.transfer_us(last_out,
                                           self.node.locality) * 1e-6
        compute = max(self.node.compute_latency_s(steps),
                      self.network.serialization_us(in_bytes) * 1e-6,
                      self.network.serialization_us(out_bytes) * 1e-6)
        compute *= compute_multiplier
        outputs = None
        if functional_inputs is not None:
            if len(functional_inputs) != steps:
                raise ServiceError(
                    f"{self.name}: {len(functional_inputs)} inputs for "
                    f"{steps} steps")
            outputs = self.node.run_functional(functional_inputs)
        return InvocationResult(network_in_s=net_in, compute_s=compute,
                                network_out_s=net_out, outputs=outputs)

    def invoke_batched(self, steps: int, batch: Optional[int] = None,
                       functional_inputs:
                       Optional[List[List[np.ndarray]]] = None
                       ) -> BatchedInvocationResult:
        """Serve ``batch`` coalesced requests of ``steps`` timesteps in
        one dispatch.

        The network model mirrors :meth:`invoke` with batch-scaled
        payloads: each timestep now streams every request's vectors, so
        the request pays the first (batched) step's serialization on
        the way in and the last on the way out.  Compute comes from the
        node's batched latency model
        (:meth:`FpgaNode.batch_compute_latency_s`) — serial replay
        until the node is calibrated with a measured curve.  Pass
        ``functional_inputs`` (one input list per request, lockstep
        lengths) for real outputs via one
        :class:`~repro.functional.replay.BatchedReplay` execution; the
        fault injector is sampled once per dispatch, exactly as a
        single invocation on the wire.
        """
        if functional_inputs is not None:
            if batch is None:
                batch = len(functional_inputs)
            elif batch != len(functional_inputs):
                raise ServiceError(
                    f"{self.name}: batch={batch} but "
                    f"{len(functional_inputs)} functional input lists")
            for b, xs in enumerate(functional_inputs):
                if len(xs) != steps:
                    raise ServiceError(
                        f"{self.name}: request {b} has {len(xs)} "
                        f"inputs for {steps} steps")
        if batch is None or batch < 1:
            raise ServiceError(
                f"{self.name}: batched invocation needs batch >= 1 "
                f"or functional_inputs, got batch={batch}")
        compute_multiplier = 1.0
        extra_network_s = 0.0
        if self.injector is not None:
            sample = self.injector.sample(self.node.name)
            if sample.fail_kind is not None:
                raise FaultError(
                    f"{self.name}@{self.node.name}: injected "
                    f"{sample.fail_kind} fault", kind=sample.fail_kind)
            compute_multiplier = sample.compute_multiplier
            extra_network_s = sample.extra_network_s
        compiled = self.node.compiled
        bytes_per_vec = compiled.config.native_dim * 2  # float16 wire fmt
        in_bytes = (batch * steps * compiled.input_vectors_per_step
                    * bytes_per_vec)
        out_bytes = (batch * steps * compiled.output_vectors_per_step
                     * bytes_per_vec)
        first_in = in_bytes / max(steps, 1)
        last_out = out_bytes / max(steps, 1)
        net_in = self.network.transfer_us(first_in,
                                          self.node.locality) * 1e-6
        net_in += extra_network_s
        net_out = self.network.transfer_us(last_out,
                                           self.node.locality) * 1e-6
        compute = max(self.node.batch_compute_latency_s(steps, batch),
                      self.network.serialization_us(in_bytes) * 1e-6,
                      self.network.serialization_us(out_bytes) * 1e-6)
        compute *= compute_multiplier
        outputs = None
        if functional_inputs is not None:
            outputs = self.node.run_functional_batched(functional_inputs)
        return BatchedInvocationResult(
            batch=batch, network_in_s=net_in, compute_s=compute,
            network_out_s=net_out, outputs=outputs)


@dataclasses.dataclass
class _ReplicaState:
    """One replica's circuit-breaker bookkeeping."""

    service: HardwareMicroservice
    consecutive_failures: int = 0
    #: Breaker is open (replica excluded) until this simulated time;
    #: past it, the replica is admitted as a half-open probe.
    open_until: float = -math.inf
    #: Last breaker state surfaced to the tracer (transition edges are
    #: emitted as instant events when this changes).
    last_reported: str = "closed"

    def state(self, now: float) -> str:
        if self.open_until == -math.inf:
            return "closed"
        if now < self.open_until:
            return "open"
        return "half_open"


class MicroserviceRegistry:
    """The distributed resource manager: name -> service replicas.

    Each published name holds an ordered list of replicas. Health is
    tracked per replica with a consecutive-failure circuit breaker:
    after ``failure_threshold`` consecutive failures the breaker opens
    for ``recovery_timeout_s`` of simulated time, after which the
    replica is re-admitted as a half-open probe — one success closes
    the breaker, one failure re-opens it.
    """

    def __init__(self, failure_threshold: int = 3,
                 recovery_timeout_s: float = 25e-3,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None):
        if failure_threshold < 1:
            raise ServiceError("failure_threshold must be >= 1")
        if recovery_timeout_s < 0:
            raise ServiceError("recovery_timeout_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)
        self._services: Dict[str, List[_ReplicaState]] = {}

    def _note_state(self, name: str, r: _ReplicaState,
                    now: float) -> None:
        """Emit an instant event on any breaker state transition since
        the last observation of this replica (closed -> open on the
        threshold failure, open -> half_open when the probe window
        opens, half_open -> closed on probe success, ...)."""
        state = r.state(now)
        if state != r.last_reported:
            self.tracer.instant(
                "breaker", now, track="breaker", service=name,
                replica=r.service.node.name,
                from_state=r.last_reported, to_state=state)
            self.metrics.counter(f"breaker.to_{state}").inc()
            r.last_reported = state

    # -- registration -----------------------------------------------------

    def publish(self, service: HardwareMicroservice) -> str:
        """Register a new service name; returns the endpoint address."""
        if service.name in self._services:
            raise ServiceError(
                f"service {service.name!r} already published; use "
                "publish_replica() to add replicas")
        self._services[service.name] = [_ReplicaState(service)]
        return service.node.ip_address

    def publish_replica(self, service: HardwareMicroservice) -> str:
        """Add a replica under ``service.name`` (creating the name if
        needed); returns the replica's endpoint address."""
        replicas = self._services.setdefault(service.name, [])
        if any(r.service.node.name == service.node.name
               for r in replicas):
            raise ServiceError(
                f"node {service.node.name!r} already serves "
                f"{service.name!r}")
        replicas.append(_ReplicaState(service))
        return service.node.ip_address

    def unpublish(self, name: str) -> None:
        """Withdraw a service name and all its replicas."""
        if name not in self._services:
            raise ServiceError(f"cannot unpublish {name!r}: not published")
        del self._services[name]

    def __contains__(self, name: object) -> bool:
        return name in self._services

    def __len__(self) -> int:
        return len(self._services)

    # -- lookup -----------------------------------------------------------

    def lookup(self, name: str) -> HardwareMicroservice:
        """The primary (first) replica of ``name``."""
        if name not in self._services:
            if not self._services:
                raise ServiceError(
                    f"no service {name!r}; registry is empty")
            close = difflib.get_close_matches(
                name, self._services, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise ServiceError(
                f"no service {name!r}{hint}; published: "
                f"{sorted(self._services)}")
        return self._services[name][0].service

    def replicas(self, name: str) -> List[HardwareMicroservice]:
        """All replicas of ``name``, in publication order."""
        self.lookup(name)
        return [r.service for r in self._services[name]]

    def healthy(self, name: str,
                now: float = 0.0) -> List[HardwareMicroservice]:
        """Replicas admissible at time ``now``: half-open probes first
        (standard breaker semantics — one trial request goes through),
        then closed replicas; open breakers are excluded."""
        self.lookup(name)
        probes, closed = [], []
        for r in self._services[name]:
            self._note_state(name, r, now)
            state = r.state(now)
            if state == "half_open":
                probes.append(r.service)
            elif state == "closed":
                closed.append(r.service)
        return probes + closed

    # -- health reporting -------------------------------------------------

    def _replica_state(self, name: str,
                       service: HardwareMicroservice) -> _ReplicaState:
        for r in self._services.get(name, []):
            if r.service is service or \
                    r.service.node.name == service.node.name:
                return r
        raise ServiceError(
            f"{service.node.name!r} is not a replica of {name!r}")

    def record_success(self, name: str, service: HardwareMicroservice,
                       now: float = 0.0) -> None:
        """A replica served a request: close its breaker."""
        r = self._replica_state(name, service)
        self._note_state(name, r, now)
        r.consecutive_failures = 0
        r.open_until = -math.inf
        self._note_state(name, r, now)

    def record_failure(self, name: str, service: HardwareMicroservice,
                       now: float = 0.0) -> None:
        """A replica failed a request: count it, and open the breaker
        at the threshold (a failed half-open probe re-opens it)."""
        r = self._replica_state(name, service)
        self._note_state(name, r, now)
        r.consecutive_failures += 1
        was_half_open = r.state(now) == "half_open"
        if was_half_open or \
                r.consecutive_failures >= self.failure_threshold:
            r.open_until = now + self.recovery_timeout_s
        self._note_state(name, r, now)

    def breaker_state(self, name: str, service: HardwareMicroservice,
                      now: float = 0.0) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` for a replica."""
        return self._replica_state(name, service).state(now)
