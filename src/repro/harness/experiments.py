"""Experiment drivers: one function per table/figure of the paper.

Each driver reruns the reproduction pipeline (compile -> simulate ->
compare against the published numbers where available) and returns an
:class:`~repro.harness.tables.ExperimentTable`. The ``benchmarks/``
suite calls these drivers and prints their tables; EXPERIMENTS.md records
their output.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..baselines.deepbench import BATCH_SCALING_SUBSET, FIG8_BATCH_SIZES, SUITE, RnnBenchmark, \
    published_row
from ..baselines.gpu import P40, TITAN_XP, GpuCnnModel, GpuRnnModel
from ..compiler.lowering import CompiledModel, compile_rnn_shape
from ..config import BW_A10, BW_CNN_A10, BW_S5, BW_S10, NpuConfig
from ..criticalpath import (
    conv_layer_dfg,
    gru_step_dfg,
    lstm_step_dfg,
    recurrent_cycle_depth,
    sdm_analyze_recurrent,
    sdm_cycles_bound,
    udm_cycles,
)
from ..criticalpath import analytic
from ..models.cnn import TABLE1_CNN_1X1, TABLE1_CNN_3X3
from ..models.resnet import resnet50_featurizer, total_ops
from ..synthesis.resources import estimate as resource_estimate
from ..timing.cnn import network_timing
from ..timing.report import TimingReport
from ..timing.scheduler import TimingSimulator
from .tables import ExperimentTable, fmt

#: Measured peak chip power of the Stratix 10 280 (Section VII-B4).
BW_S10_PEAK_POWER_W = 125.0


# ---------------------------------------------------------------------------
# Shared measurement helpers
# ---------------------------------------------------------------------------

_PROGRAM_CACHE: Dict[Tuple[str, int, str], CompiledModel] = {}


def rnn_compiled(kind: str, hidden_dim: int,
                 config: NpuConfig = BW_S10) -> CompiledModel:
    """Shape-compiled RNN program (cached across experiments)."""
    key = (kind, hidden_dim, config.name)
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = compile_rnn_shape(kind, hidden_dim, config)
    return _PROGRAM_CACHE[key]


def bw_rnn_report(benchmark: RnnBenchmark,
                  config: NpuConfig = BW_S10) -> TimingReport:
    """Full BW timing of one DeepBench benchmark (all timesteps)."""
    compiled = rnn_compiled(benchmark.kind, benchmark.hidden_dim, config)
    sim = TimingSimulator(config)
    return sim.run(compiled.program,
                   bindings={"steps": benchmark.time_steps},
                   nominal_ops=benchmark.total_ops)


def step_dfg(benchmark: RnnBenchmark):
    if benchmark.kind == "lstm":
        return lstm_step_dfg(benchmark.hidden_dim)
    return gru_step_dfg(benchmark.hidden_dim)


def sdm_latency_ms(benchmark: RnnBenchmark,
                   config: NpuConfig = BW_S10) -> float:
    """SDM reference latency of a benchmark (96k MACs at 250 MHz)."""
    result = sdm_analyze_recurrent(step_dfg(benchmark),
                                   benchmark.time_steps,
                                   config.total_macs)
    return result.latency_ms(config.clock_mhz)


def gpu_rnn_result(benchmark: RnnBenchmark, batch: int = 1):
    """Titan Xp roofline estimate of a benchmark."""
    model = GpuRnnModel(TITAN_XP)
    return model.run(
        weight_bytes=benchmark.weight_bytes(TITAN_XP.bytes_per_weight),
        ops_per_step=benchmark.ops_per_step,
        steps=benchmark.time_steps, batch=batch)


# ---------------------------------------------------------------------------
# Table I: critical-path analysis of LSTM, GRU, and CNN
# ---------------------------------------------------------------------------

#: Published Table I: (label, ops, UDM, SDM, BW cycles, data).
TABLE1_PUBLISHED = [
    ("LSTM 2000x2000", 64e6, 19, 352, 718, "32MB"),
    ("GRU 2800x2800", 94e6, 31, 520, 662, "47MB"),
    ("CNN 28x28x128 K:128x3x3", 231e6, 13, 1204, 1326, "247KB"),
    ("CNN 56x56x64 K:256x1x1", 103e6, 13, 549, 646, "200KB"),
]


def table1(config: NpuConfig = BW_S10) -> ExperimentTable:
    """Critical-path analysis (UDM/SDM/BW) of Table I's four workloads."""
    from ..timing.cnn import conv_layer_compute_cycles

    rows: List[List[str]] = []
    num_macs = config.total_macs
    # Table I reports the working set at one byte per element (the
    # paper's 2000x2000 LSTM shows 32MB for 32M weights).
    bits = 8.0

    # LSTM 2000 and GRU 2800: one timestep.
    for kind, dim, pub in (("lstm", 2000, TABLE1_PUBLISHED[0]),
                           ("gru", 2800, TABLE1_PUBLISHED[1])):
        dfg = (lstm_step_dfg if kind == "lstm" else gru_step_dfg)(dim)
        udm = recurrent_cycle_depth(dfg) + 1  # + state write-back
        sdm = sdm_analyze_recurrent(dfg, 1, num_macs).cycles
        bench = RnnBenchmark(kind, dim, 1)
        compiled = rnn_compiled(kind, dim, config)
        sim = TimingSimulator(config)
        a = sim.run(compiled.program, bindings={"steps": 8},
                    include_invocation_overhead=False).total_cycles
        b = TimingSimulator(config).run(
            compiled.program, bindings={"steps": 24},
            include_invocation_overhead=False).total_cycles
        bw = (b - a) / 16
        data_mb = bench.shape().parameter_count * bits / 8 / 1e6
        rows.append([pub[0], f"{dfg.total_ops / 1e6:.0f}M",
                     str(udm), f"{sdm:.0f}", f"{bw:.0f}",
                     f"{data_mb:.0f}MB",
                     f"paper: {pub[1] / 1e6:.0f}M/{pub[2]}/{pub[3]}/"
                     f"{pub[4]}/{pub[5]}"])

    # The two ResNet-50 layers.
    for spec, pub in ((TABLE1_CNN_3X3, TABLE1_PUBLISHED[2]),
                      (TABLE1_CNN_1X1, TABLE1_PUBLISHED[3])):
        dfg = conv_layer_dfg(spec)
        udm = udm_cycles(dfg)
        sdm = sdm_cycles_bound(dfg, num_macs)
        bw = conv_layer_compute_cycles(spec, config)
        data_kb = (spec.parameter_count + spec.input_elements) * bits \
            / 8 / 1e3
        rows.append([pub[0], f"{dfg.total_ops / 1e6:.0f}M",
                     str(udm), f"{sdm:.0f}", f"{bw:.0f}",
                     f"{data_kb:.0f}KB",
                     f"paper: {pub[1] / 1e6:.0f}M/{pub[2]}/{pub[3]}/"
                     f"{pub[4]}/{pub[5]}"])

    return ExperimentTable(
        title="Table I: critical-path analysis (one LSTM/GRU timestep, "
              "one CNN layer)",
        headers=["Model", "Ops", "UDM", "SDM", "BW NPU", "Data",
                 "Published"],
        rows=rows,
        notes=["UDM/SDM latencies count functional-unit cycles only "
               "(Section III); BW cycles from the calibrated timing "
               "simulator at steady state.",
               "Data column at 1 byte/element, the paper's "
               "convention."])


# ---------------------------------------------------------------------------
# Fig. 2: LSTM ops and latency vs dimension and #FU
# ---------------------------------------------------------------------------

def fig2(dims: Sequence[int] = (256, 512, 1024, 2000, 2816, 4096),
         fu_counts: Sequence[int] = (6000, 16384, 96000, 1 << 30)
         ) -> ExperimentTable:
    """LSTM critical-path scaling: ops O(N^2), UDM O(log N), SDM work."""
    rows = []
    for n in dims:
        ops = analytic.lstm_ops_per_step(n)
        udm = analytic.lstm_udm_cycles_per_step(n)
        cells = [f"LSTM {n}", f"{ops / 1e6:.1f}M", str(udm)]
        for fus in fu_counts:
            cells.append(fmt(analytic.lstm_sdm_cycles_per_step(n, fus)))
        rows.append(cells)
    headers = ["Model", "Ops/step", "UDM"]
    headers += [("SDM inf FU" if fus >= 1 << 30 else f"SDM {fus} FU")
                for fus in fu_counts]
    return ExperimentTable(
        title="Fig. 2: LSTM critical path vs dimension N and #FU",
        headers=headers, rows=rows,
        notes=["Operation count grows as O(N^2); idealized latency grows "
               "as O(log N) (the adder tree); SDM latency transitions "
               "from depth-bound to work-bound as N grows."])


# ---------------------------------------------------------------------------
# Table III: FPGA implementation results
# ---------------------------------------------------------------------------

#: Published Table III resource rows: (ALMs, M20Ks, DSPs, MHz, TFLOPS).
TABLE3_PUBLISHED = {
    "BW_S5": (149641, 1192, 1047, 200, 2.4),
    "BW_A10": (216602, 2171, 1518, 300, 9.8),
    "BW_S10": (845719, 8192, 5245, 250, 48.0),
}


def table3() -> ExperimentTable:
    """Hardware implementation results for the three BW instances."""
    rows = []
    for config in (BW_S5, BW_A10, BW_S10):
        est = resource_estimate(config)
        pub = TABLE3_PUBLISHED[config.name]
        rows.append([
            config.name, str(config.tile_engines), str(config.lanes),
            str(config.native_dim), str(config.mrf_size),
            str(config.mfus), config.device,
            f"{est.alms} ({100 * est.alm_fraction:.0f}%)",
            f"{est.m20ks} ({100 * est.m20k_fraction:.0f}%)",
            f"{est.dsps} ({100 * est.dsp_fraction:.0f}%)",
            f"{config.clock_mhz:.0f}",
            f"{config.peak_tflops:.1f}",
            f"paper: {pub[0]}/{pub[1]}/{pub[2]}/{pub[3]}MHz/{pub[4]}",
        ])
    return ExperimentTable(
        title="Table III: BW NPU implementations across three FPGA "
              "generations",
        headers=["Instance", "#MV Tiles", "#Lanes", "Native Dim.",
                 "MRF Size", "#MFUs", "Device", "ALMs", "M20Ks", "DSPs",
                 "MHz", "Peak TFLOPS", "Published"],
        rows=rows,
        notes=["Resource estimates from the calibrated cost model "
               "(repro.synthesis.resources); peak TFLOPS is structural: "
               "2 x tiles x native_dim x lanes x clock."])


# ---------------------------------------------------------------------------
# Table IV: experiment hardware specifications
# ---------------------------------------------------------------------------

def table4() -> ExperimentTable:
    """Experiment hardware: Titan Xp vs BW_S10."""
    cfg = BW_S10
    rows = [
        ["Numerical Type", TITAN_XP.numerical_type, cfg.precision_name],
        ["Peak TFLOPS", f"{TITAN_XP.peak_tflops:.1f}",
         f"{cfg.peak_tflops:.1f}"],
        ["TDP (W)", f"{TITAN_XP.tdp_w:.0f}",
         f"{BW_S10_PEAK_POWER_W:.0f}"],
        ["Process", TITAN_XP.process, "Intel 14nm"],
    ]
    return ExperimentTable(
        title="Table IV: experiment hardware specifications",
        headers=["", "Titan Xp", "BW_S10"], rows=rows)


# ---------------------------------------------------------------------------
# Table V: DeepBench RNN inference
# ---------------------------------------------------------------------------

def table5(config: NpuConfig = BW_S10) -> ExperimentTable:
    """DeepBench RNN inference: SDM / BW / Titan Xp, model vs paper."""
    rows = []
    for bench in SUITE:
        pub = published_row(bench)
        sdm_ms = sdm_latency_ms(bench, config)
        bw = bw_rnn_report(bench, config)
        gpu = gpu_rnn_result(bench)
        rows.append([
            bench.name, "SDM", f"{sdm_ms:.4f}", "-", "-",
            f"{pub.sdm_latency_ms:.4f}", "-", "-"])
        rows.append([
            "", "BW", f"{bw.latency_ms:.3f}",
            f"{bw.effective_tflops:.2f}",
            f"{100 * bw.utilization:.1f}",
            f"{pub.bw_latency_ms:.3f}", f"{pub.bw_tflops:.2f}",
            f"{pub.bw_utilization_pct:.1f}"])
        rows.append([
            "", "Titan Xp", f"{gpu.latency_ms:.2f}",
            f"{gpu.effective_tflops:.2f}",
            f"{100 * gpu.utilization:.1f}",
            f"{pub.gpu_latency_ms:.2f}", f"{pub.gpu_tflops:.2f}",
            f"{pub.gpu_utilization_pct:.1f}"])
    return ExperimentTable(
        title="Table V: DeepBench RNN inference (batch 1)",
        headers=["Benchmark", "Device", "Latency ms", "TFLOPS", "%Util",
                 "paper ms", "paper TFLOPS", "paper %Util"],
        rows=rows,
        notes=["BW latencies from the calibrated cycle-level simulator; "
               "SDM from the dataflow analysis; Titan Xp from the "
               "roofline baseline model."])


# ---------------------------------------------------------------------------
# Fig. 7: utilization across DeepBench experiments
# ---------------------------------------------------------------------------

def fig7(config: NpuConfig = BW_S10) -> ExperimentTable:
    """Hardware utilization, BW vs Titan Xp, per benchmark."""
    rows = []
    for bench in SUITE:
        pub = published_row(bench)
        bw = bw_rnn_report(bench, config)
        gpu = gpu_rnn_result(bench)
        advantage = (bw.utilization / gpu.utilization
                     if gpu.utilization else float("inf"))
        rows.append([
            bench.name, f"{100 * bw.utilization:.1f}",
            f"{100 * gpu.utilization:.1f}", f"{advantage:.1f}x",
            f"{pub.bw_utilization_pct:.1f}",
            f"{pub.gpu_utilization_pct:.1f}"])
    return ExperimentTable(
        title="Fig. 7: hardware utilization across DeepBench RNN "
              "inference (batch 1)",
        headers=["Benchmark", "BW %util", "GPU %util", "BW advantage",
                 "paper BW %", "paper GPU %"],
        rows=rows,
        notes=["The paper reports a 4-23x utilization advantage for "
               "medium-to-large RNNs (>1500 dimension)."])


# ---------------------------------------------------------------------------
# Fig. 8: utilization scaling with batch size
# ---------------------------------------------------------------------------

def fig8(batches: Sequence[int] = FIG8_BATCH_SIZES,
         config: NpuConfig = BW_S10) -> ExperimentTable:
    """Utilization vs batch size: BW flat, GPU rising."""
    rows = []
    for bench in BATCH_SCALING_SUBSET:
        bw = bw_rnn_report(bench, config)
        gpu_model = GpuRnnModel(TITAN_XP)
        for batch in batches:
            gpu = gpu_model.run(
                weight_bytes=bench.weight_bytes(
                    TITAN_XP.bytes_per_weight),
                ops_per_step=bench.ops_per_step,
                steps=bench.time_steps, batch=batch)
            # BW serves requests one at a time: utilization is constant
            # and batch latency scales linearly (Section VII-B3).
            rows.append([
                bench.name, str(batch),
                f"{100 * bw.utilization:.1f}",
                f"{100 * gpu.utilization:.1f}",
                f"{batch * bw.latency_ms:.2f}",
                f"{gpu.latency_ms:.2f}"])
    return ExperimentTable(
        title="Fig. 8: utilization scaling with batch size",
        headers=["Benchmark", "Batch", "BW %util", "GPU %util",
                 "BW latency ms", "GPU latency ms"],
        rows=rows,
        notes=["BW executes a single input at a time, so utilization "
               "stays flat while the GPU fills its SMs with batch "
               "parallelism; BW stays ahead until batch ~32."])


# ---------------------------------------------------------------------------
# Table VI: ResNet-50 featurizer, BW_CNN_A10 vs P40
# ---------------------------------------------------------------------------

def table6() -> ExperimentTable:
    """ResNet-50-based featurizer at batch 1: BW_CNN_A10 vs P40."""
    layers = resnet50_featurizer()
    ops = total_ops(layers)
    bw = network_timing(BW_CNN_A10, layers)
    p40 = GpuCnnModel(P40)
    gpu1 = p40.run(ops, batch=1)
    gpu16 = p40.run(ops, batch=16)
    rows = [
        ["Technology node", "16nm TSMC", "20nm TSMC", ""],
        ["Precision", P40.numerical_type, BW_CNN_A10.precision_name, ""],
        ["IPS (batch 1)", f"{gpu1.ips:.0f}", f"{bw.ips:.0f}",
         "paper: 461 / 559"],
        ["Latency (batch 1)", f"{gpu1.latency_ms:.2f} ms",
         f"{bw.latency_ms:.2f} ms", "paper: 2.17 / 1.8 ms"],
        ["IPS (batch 16, GPU)", f"{gpu16.ips:.0f}", "-",
         "paper: 2,270"],
        ["Latency (batch 16, GPU)", f"{gpu16.latency_ms:.2f} ms", "-",
         "paper: 7 ms"],
    ]
    return ExperimentTable(
        title="Table VI: ResNet-50 featurizer serving, Nvidia P40 vs "
              "BW_CNN_A10",
        headers=["", "Nvidia P40", "BW_CNN_A10", "Published"],
        rows=rows,
        notes=[f"ResNet-50 featurizer: {len(layers)} conv layers, "
               f"{ops / 1e9:.1f} GOPs per inference; BW latency "
               "includes PCIe transfer and DRAM weight streaming "
               "overlapped with compute."])


# ---------------------------------------------------------------------------
# Section VII-B2: SDM gap, and the per-step latency band
# ---------------------------------------------------------------------------

def sdm_gap(config: NpuConfig = BW_S10) -> ExperimentTable:
    """BW-to-SDM latency ratio per benchmark (<= ~2.2x for dims > 2000)."""
    rows = []
    for bench in SUITE:
        if bench.time_steps < 2:
            continue
        sdm_ms = sdm_latency_ms(bench, config)
        bw = bw_rnn_report(bench, config)
        per_step_us = bw.latency_ms * 1e3 / bench.time_steps
        rows.append([
            bench.name, f"{sdm_ms:.4f}", f"{bw.latency_ms:.3f}",
            f"{bw.latency_ms / sdm_ms:.2f}x", f"{per_step_us:.2f}"])
    return ExperimentTable(
        title="Section VII-B2: latency gap between BW_S10 and the SDM",
        headers=["Benchmark", "SDM ms", "BW ms", "gap", "BW us/step"],
        rows=rows,
        notes=["The paper reports a gap within 2.17x for dims > 2000, "
               "growing for smaller models because steady-state per-step "
               "latency is nearly constant (2.5-3.1 us/step)."])


# ---------------------------------------------------------------------------
# Section VII-B4: power efficiency
# ---------------------------------------------------------------------------

def power_efficiency(config: NpuConfig = BW_S10) -> ExperimentTable:
    """Power efficiency at peak utilization (paper: 287 GFLOPS/W)."""
    best = max((bw_rnn_report(b, config) for b in SUITE
                if b.time_steps > 1),
               key=lambda r: r.effective_tflops)
    gflops_per_w = best.effective_tflops * 1e3 / BW_S10_PEAK_POWER_W
    gpu_best = max((gpu_rnn_result(b) for b in SUITE),
                   key=lambda r: r.effective_tflops)
    gpu_eff = gpu_best.effective_tflops * 1e3 / TITAN_XP.tdp_w
    rows = [
        ["BW_S10", f"{best.effective_tflops:.1f}",
         f"{BW_S10_PEAK_POWER_W:.0f}", f"{gflops_per_w:.0f}",
         "paper: 287 GFLOPS/W"],
        ["Titan Xp", f"{gpu_best.effective_tflops:.2f}",
         f"{TITAN_XP.tdp_w:.0f}", f"{gpu_eff:.1f}", ""],
    ]
    return ExperimentTable(
        title="Section VII-B4: power efficiency on large RNNs (batch 1)",
        headers=["Device", "Best eff. TFLOPS", "Peak power W",
                 "GFLOPS/W", "Published"],
        rows=rows,
        notes=["BW power is the measured 125 W peak (power-virus "
               "methodology); GPU uses TDP, both conservative."])




# ---------------------------------------------------------------------------
# Section VII-B1: recovering utilization by synthesis specialization
# ---------------------------------------------------------------------------

def specialization_recovery() -> ExperimentTable:
    """Small-RNN utilization recovery by right-sizing the instance.

    Section VII-B1: "BW's reconfigurable architecture allows us to
    adjust for the different degrees of parallelism (e.g. shrink native
    dimension) according to the overall DNN dimensions, which can
    recover utilization and lower latency." Small models on the huge
    BW_S10 sit at a dimension-independent latency floor, so most of the
    96k MACs idle; a synthesis-specialized instance with a matched
    native dimension and a right-sized MVM serves them at the same (or
    better) latency with an order of magnitude higher utilization.
    """
    from ..timing.scheduler import steady_state_cycles_per_step

    specialized = {
        512: NpuConfig(name="BW_S10_gru512", tile_engines=2, lanes=16,
                       native_dim=128, mrf_size=128,
                       clock_mhz=BW_S10.clock_mhz,
                       device=BW_S10.device),
        1024: NpuConfig(name="BW_S10_gru1024", tile_engines=4, lanes=32,
                        native_dim=128, mrf_size=512,
                        clock_mhz=BW_S10.clock_mhz,
                        device=BW_S10.device),
    }
    rows = []
    for hidden, lean in specialized.items():
        bench_ops = RnnBenchmark("gru", hidden, 1).ops_per_step
        for config in (BW_S10, lean):
            per = steady_state_cycles_per_step(
                config,
                lambda c=config, h=hidden: compile_rnn_shape("gru", h,
                                                             c),
                steps_a=6, steps_b=16)
            seconds = per * config.cycle_time_s
            tflops = bench_ops / seconds / 1e12
            rows.append([
                f"GRU {hidden}", config.name,
                f"{config.peak_tflops:.1f}", f"{per:.0f}",
                f"{per * config.cycle_time_s * 1e6:.2f}",
                f"{tflops:.2f}",
                f"{100 * tflops / config.peak_tflops:.1f}"])
    return ExperimentTable(
        title="Section VII-B1: utilization recovery by synthesis "
              "specialization (small GRUs)",
        headers=["Model", "Instance", "Peak TFLOPS", "cycles/step",
                 "us/step", "eff TFLOPS", "%util"],
        rows=rows,
        notes=["The specialized instances align the native dimension "
               "to the model (no padding) and shrink the MVM to what "
               "the model can feed; latency holds or improves while "
               "utilization recovers by an order of magnitude."])


# ---------------------------------------------------------------------------
# System-level serving: network vs compute latency breakdown
# ---------------------------------------------------------------------------

def serving_breakdown() -> ExperimentTable:
    """End-to-end hardware-microservice latency decomposition.

    The accelerators sit directly on the datacenter network
    (Section II-A); this experiment quantifies how little the network
    adds on top of NPU compute for RNN serving, across placements.
    """
    from ..system.network import Locality, NetworkModel

    net = NetworkModel()
    rows = []
    for bench in (RnnBenchmark("gru", 2816, 750),
                  RnnBenchmark("lstm", 1024, 25),
                  RnnBenchmark("gru", 512, 1)):
        compute_ms = bw_rnn_report(bench).latency_ms
        bytes_per_vec = BW_S10.native_dim * 2
        per_step_vectors = math.ceil(bench.hidden_dim
                                     / BW_S10.native_dim)
        step_bytes = per_step_vectors * bytes_per_vec
        stream_bytes = bench.time_steps * step_bytes
        for locality in (Locality.SAME_RACK, Locality.SAME_DATACENTER):
            # Inputs/outputs stream concurrently with compute; the
            # request pays one first-step transfer in and one
            # last-step transfer out, and compute must cover the full
            # stream's serialization.
            net_ms = (net.transfer_us(step_bytes, locality)
                      + net.transfer_us(step_bytes, locality)) * 1e-3
            effective_compute = max(
                compute_ms, net.serialization_us(stream_bytes) * 1e-3)
            total = effective_compute + net_ms
            rows.append([
                bench.name, locality.value, f"{effective_compute:.3f}",
                f"{net_ms:.4f}", f"{total:.3f}",
                f"{100 * net_ms / total:.1f}"])
    return ExperimentTable(
        title="System: hardware-microservice serving latency breakdown",
        headers=["Benchmark", "Placement", "compute ms", "network ms",
                 "total ms", "net %"],
        rows=rows,
        notes=["Round-trip payloads at 40 Gb/s with LTL-style hop "
               "latencies; even datacenter-scale placement adds little "
               "to RNN serving (no software in the loop)."])




# ---------------------------------------------------------------------------
# Serving under load: batch-1 vs batching (Section I's motivation)
# ---------------------------------------------------------------------------

def slo_under_load() -> ExperimentTable:
    """Latency percentiles under Poisson load: BW batch-1 serving vs a
    GPU batching queue.

    Quantifies Section I: a throughput architecture must form batches to
    reach efficiency, paying queueing latency, while the BW NPU serves
    each request as it arrives. GRU h=2048 t=375; the GPU stack batches
    up to 32 with a 20 ms forming timeout.
    """
    from ..system.loadgen import compare_under_load

    bench = RnnBenchmark("gru", 2048, 375)
    bw_service = bw_rnn_report(bench).latency_s
    gpu_model = GpuRnnModel(TITAN_XP)

    def gpu_batch_time(batch: int) -> float:
        return gpu_model.run(bench.weight_bytes(TITAN_XP.bytes_per_weight),
                             bench.ops_per_step, bench.time_steps,
                             batch=batch).latency_s

    rows = []
    comparisons = compare_under_load(
        bw_service, gpu_batch_time, max_batch=32, timeout_s=0.02,
        rates_rps=(50, 150, 250), requests=1500)
    for comp in comparisons:
        rows.append([
            f"{comp.rate_rps:.0f}",
            f"{comp.bw.p50_ms:.2f}", f"{comp.bw.p99_ms:.2f}",
            f"{comp.gpu.p50_ms:.1f}", f"{comp.gpu.p99_ms:.1f}",
            f"{comp.gpu.p99_ms / comp.bw.p99_ms:.0f}x"])
    return ExperimentTable(
        title="Serving under load: GRU-2048, BW batch-1 vs GPU batching "
              "queue (latency ms)",
        headers=["arrivals/s", "BW p50", "BW p99", "GPU p50", "GPU p99",
                 "p99 gap"],
        rows=rows,
        notes=["Poisson arrivals; GPU batches up to 32 with a 20 ms "
               "forming timeout (capacity ~282 req/s); BW serves "
               "requests individually (capacity ~1005 req/s). The gap "
               "is the cost of buying GPU efficiency with batching."])


# ---------------------------------------------------------------------------
# Serving under faults: replicas, retries, hedging (Section II-A hardened)
# ---------------------------------------------------------------------------

def slo_under_faults(requests: int = 3000, rate_rps: float = 400.0,
                     transient_prob: float = 0.02,
                     replicas: int = 2, seed: int = 0) -> ExperimentTable:
    """Availability/goodput/latency of GRU-2048 serving under injected
    faults: transient failures, tail-latency spikes, packet loss, and a
    node crash lasting a quarter of the run.

    Three scenarios share one arrival trace: a fault-free single
    replica (baseline), a single replica under faults with no retries
    (the naive client loses every request the fault model touches),
    and ``replicas`` replicas behind a :class:`ResilientClient` with
    retries, circuit-breaker failover, and hedging — which holds
    availability at (or above) three nines through the crash.

    Deterministic: the same ``seed`` reproduces identical numbers.
    """
    from ..system.faults import (FaultInjector, FaultProfile,
                                 ResilientClient, RetryPolicy)
    from ..system.loadgen import (FaultEvent, poisson_arrivals,
                                  run_fault_scenario)
    from ..system.microservice import (FpgaNode, HardwareMicroservice,
                                       MicroserviceRegistry)

    bench = RnnBenchmark("gru", 2048, 375)
    compiled = rnn_compiled(bench.kind, bench.hidden_dim)
    arrivals = poisson_arrivals(rate_rps, requests, seed=seed)
    duration = requests / rate_rps
    profile = FaultProfile(
        transient_failure_prob=transient_prob,
        tail_spike_prob=0.01, tail_spike_multiplier=8.0,
        packet_loss_prob=0.01, retransmit_delay_s=50e-6)
    naive = RetryPolicy(max_attempts=1, deadline_s=20e-3)
    resilient = RetryPolicy(max_attempts=4, deadline_s=20e-3,
                            base_backoff_s=200e-6, jitter_frac=0.25,
                            hedge_after_s=2.5e-3)
    # One replica crashes a quarter into the run and is repaired at the
    # midpoint — long enough to open its breaker and then demonstrate
    # the timed half-open recovery.
    crash_events = [FaultEvent(0.25 * duration, "crash", "gru-0"),
                    FaultEvent(0.50 * duration, "repair", "gru-0")]

    def scenario(n_replicas, policy, faulty, events):
        injector = (FaultInjector(profile, seed=seed + 1)
                    if faulty else None)
        registry = MicroserviceRegistry(failure_threshold=3,
                                        recovery_timeout_s=25e-3)
        for i in range(n_replicas):
            svc = HardwareMicroservice(
                "gru", FpgaNode(f"gru-{i}", compiled),
                injector=injector)
            registry.publish_replica(svc)
        client = ResilientClient(registry, policy, seed=seed + 2)
        return run_fault_scenario(client, "gru", arrivals,
                                  steps=bench.time_steps,
                                  injector=injector, events=events)

    scenarios = [
        ("no faults, no retries", 1, naive, False, ()),
        ("faults, no retries", 1, naive, True, crash_events),
        (f"faults, {replicas} replicas + retries + hedging",
         replicas, resilient, True, crash_events),
    ]
    rows = []
    for label, n, policy, faulty, events in scenarios:
        res = scenario(n, policy, faulty, events)
        rows.append([
            label, f"{n}",
            f"{100 * res.availability:.3f}",
            f"{res.goodput_rps:.0f}",
            f"{res.p50_ms:.2f}", f"{res.p99_ms:.2f}",
            f"{res.p999_ms:.2f}",
            f"{res.mean_attempts:.2f}", f"{res.hedged}"])
    return ExperimentTable(
        title=f"Serving under faults: GRU-2048, {requests} requests at "
              f"{rate_rps:.0f}/s ({100 * transient_prob:.0f}% transient "
              "failures, 1% tail spikes, 1% packet loss, one node down "
              "25%-50% of the run)",
        headers=["scenario", "repl", "avail %", "goodput/s", "p50 ms",
                 "p99 ms", "p99.9 ms", "att", "hedges"],
        rows=rows,
        notes=["Retries: <=4 attempts, 200 us exponential backoff with "
               "jitter, 20 ms deadline; hedge to a second replica after "
               "2.5 ms; breaker opens after 3 consecutive failures, "
               "half-open probe after 25 ms. Latency percentiles are "
               "over successful requests; goodput counts deadline-met "
               "completions. Same seed => identical table."])


# ---------------------------------------------------------------------------
# Cluster-scale chaos: failure domains and graceful degradation
# ---------------------------------------------------------------------------

def chaos(requests: int = 50_000, seed: int = 0) -> ExperimentTable:
    """Cluster-scale chaos suite: every named scenario (rack loss
    mid-burst, rolling slow nodes, partition + recovery, overload
    beyond capacity) run through the mitigated serving stack and its
    no-mitigation ablation.  See :func:`repro.system.chaos.chaos_suite`.
    """
    from ..system.chaos import chaos_suite
    return chaos_suite(requests=requests, seed=seed)


def monitoring(requests: int = 50_000, seed: int = 0) -> ExperimentTable:
    """Chaos-detection scorecards: every catalog scenario (mitigated
    and ablated) run with the fleet monitoring plane attached, alerts
    scored against the injector's ground-truth fault intervals.  See
    :func:`repro.system.monitor.detection_table`.
    """
    from ..system.monitor import detection_table
    return detection_table(requests=requests, seed=seed)


#: All experiment drivers by identifier.
ALL_EXPERIMENTS = {
    "table1": table1,
    "fig2": fig2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig7": fig7,
    "fig8": fig8,
    "table6": table6,
    "sdm_gap": sdm_gap,
    "power_efficiency": power_efficiency,
    "specialization_recovery": specialization_recovery,
    "serving_breakdown": serving_breakdown,
    "slo_under_load": slo_under_load,
    "slo_under_faults": slo_under_faults,
    "chaos": chaos,
    "monitoring": monitoring,
}


def run_all() -> Dict[str, ExperimentTable]:
    """Run every experiment driver; returns tables by identifier."""
    return {name: driver() for name, driver in ALL_EXPERIMENTS.items()}
