"""Experiment harness: table rendering and per-table/figure drivers."""

from .tables import ExperimentTable, fmt, fmt_ratio
from .experiments import (
    ALL_EXPERIMENTS,
    bw_rnn_report,
    fig2,
    fig7,
    fig8,
    power_efficiency,
    rnn_compiled,
    run_all,
    sdm_gap,
    sdm_latency_ms,
    table1,
    table3,
    table4,
    table5,
    table6,
)

__all__ = [
    "ExperimentTable", "fmt", "fmt_ratio", "ALL_EXPERIMENTS", "run_all",
    "table1", "fig2", "table3", "table4", "table5", "fig7", "fig8",
    "table6", "sdm_gap", "power_efficiency", "bw_rnn_report",
    "rnn_compiled", "sdm_latency_ms",
]
