"""Micro-benchmark harness for the vectorized execution layer.

Times the three simulator hot paths on the Table IV configurations —
functional LSTM/GRU execution (vectorized vs. the ``naive=True``
reference per-tile path), timing-simulator scheduling, and BFP
quantization — and assembles the ``BENCH_perf.json`` trajectory record:
wall-clock per step/call, op rates, and the vectorized-over-naive
speedup. ``scripts/bench.py`` is the command-line driver.

Vectorized and naive functional runs are bit-identical by construction
(see docs/PERFORMANCE.md); every functional benchmark re-checks output
equality on its first repetition so a speedup number can never come from
a divergent fast path.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..compiler.lowering import CompiledModel, compile_gru, compile_lstm
from ..config import BW_CNN_A10, BW_S5, BW_S10, NpuConfig
from ..models.gru import GruReference
from ..models.lstm import LstmReference
from ..numerics.bfp import BfpFormat, quantize
from ..timing import TimingSimulator

#: The headline workload class for the speedup acceptance gate: the
#: DeepBench h=1024 LSTM on the production part (Table IV/V).
HEADLINE = ("lstm", 1024, "BW_S10")


@dataclasses.dataclass
class BenchResult:
    """One timed workload."""

    name: str
    config: str
    #: Wall-clock per unit of work (timestep for RNNs, call otherwise).
    unit_ms: float
    #: Work units measured per repetition.
    units: int
    repeats: int
    #: Model-level useful operations per unit (0 when not applicable).
    ops_per_unit: float = 0.0
    #: Naive-path wall-clock per unit (functional benchmarks only).
    naive_unit_ms: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.naive_unit_ms is None or self.unit_ms <= 0:
            return None
        return self.naive_unit_ms / self.unit_ms

    @property
    def gops(self) -> Optional[float]:
        """Useful model operations per second, in 1e9 ops/s."""
        if not self.ops_per_unit or self.unit_ms <= 0:
            return None
        return self.ops_per_unit / (self.unit_ms * 1e-3) / 1e9

    def to_json(self) -> Dict:
        out = dataclasses.asdict(self)
        out["speedup"] = self.speedup
        out["gops"] = self.gops
        return out


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall-clock seconds (insensitive to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _compile_rnn(kind: str, hidden: int, config: NpuConfig) -> CompiledModel:
    if kind == "lstm":
        return compile_lstm(LstmReference(hidden_dim=hidden, seed=7), config)
    return compile_gru(GruReference(hidden_dim=hidden, seed=7), config)


def bench_functional_rnn(kind: str, hidden: int, config: NpuConfig,
                         steps: int = 8, repeats: int = 3) -> BenchResult:
    """Time steady-state functional execution, vectorized vs. naive.

    Each path keeps one long-lived simulator (weights pin once — the
    amortization the hardware gets from its pinned MRF), runs one
    untimed warm-up sequence, then takes the best of ``repeats``
    interleaved timed sequences so host noise hits both paths alike.
    The warm-up also asserts the two paths are bit-identical, so a
    speedup can never come from a divergent fast path.
    """
    model = _compile_rnn(kind, hidden, config)
    rng = np.random.default_rng(11)
    xs = [rng.standard_normal(model.input_length).astype(np.float32)
          for _ in range(steps)]

    sims = {False: model.new_simulator(naive=False),
            True: model.new_simulator(naive=True)}
    warm = {naive: (model.run_sequence(xs, sim=sim), sim.stats)
            for naive, sim in sims.items()}
    fast_outs, fast_stats = warm[False]
    ref_outs, ref_stats = warm[True]
    if fast_stats != ref_stats or any(
            not np.array_equal(a, b) for a, b in zip(fast_outs, ref_outs)):
        raise AssertionError(
            f"{kind} h={hidden} on {config.name}: vectorized path "
            f"diverged from naive reference")

    best = {False: float("inf"), True: float("inf")}
    for _ in range(repeats):
        for naive in (False, True):
            t0 = time.perf_counter()
            model.run_sequence(xs, sim=sims[naive])
            best[naive] = min(best[naive], time.perf_counter() - t0)

    ops = model.ops_per_step
    return BenchResult(
        name=f"functional_{kind}_h{hidden}", config=config.name,
        unit_ms=best[False] / steps * 1e3, units=steps, repeats=repeats,
        ops_per_unit=float(ops),
        naive_unit_ms=best[True] / steps * 1e3)


def bench_timing_sim(kind: str, hidden: int, config: NpuConfig,
                     steps: int = 64, repeats: int = 3) -> BenchResult:
    """Time the cycle-level scheduler over an RNN program."""
    model = _compile_rnn(kind, hidden, config)
    sim = TimingSimulator(config)

    def run():
        return sim.run(model.program, bindings={model.steps_binding: steps})

    total = _best_time(run, repeats)
    return BenchResult(
        name=f"timing_{kind}_h{hidden}", config=config.name,
        unit_ms=total / steps * 1e3, units=steps, repeats=repeats)


def bench_quantize(config: NpuConfig, vectors: int = 4096,
                   repeats: int = 5) -> BenchResult:
    """Time BFP quantization throughput at the config's format."""
    fmt = BfpFormat(mantissa_bits=max(config.mantissa_bits, 1),
                    exponent_bits=config.exponent_bits,
                    block_size=config.native_dim)
    rng = np.random.default_rng(3)
    data = rng.standard_normal(
        (vectors, config.native_dim)).astype(np.float32)
    total = _best_time(lambda: quantize(data, fmt), repeats)
    return BenchResult(
        name="bfp_quantize", config=config.name,
        unit_ms=total / vectors * 1e3, units=vectors, repeats=repeats,
        ops_per_unit=float(config.native_dim))


def run_suite(quick: bool = False) -> Dict:
    """Run the full perf suite; returns the ``BENCH_perf.json`` payload.

    ``quick`` shrinks the workloads for CI smoke runs (same coverage,
    smaller hidden dims / fewer repeats).
    """
    if quick:
        functional = [("lstm", 256, BW_S5), ("gru", 256, BW_S5),
                      ("lstm", 1024, BW_S10), ("lstm", 512, BW_CNN_A10)]
        steps, repeats = 4, 2
        timing = [("lstm", 1024, BW_S10)]
        timing_steps = 16
    else:
        functional = [("lstm", 512, BW_S5), ("gru", 512, BW_S5),
                      ("lstm", 1024, BW_S10), ("gru", 1152, BW_S10),
                      ("lstm", 1024, BW_CNN_A10)]
        steps, repeats = 8, 3
        timing = [("lstm", 1024, BW_S10), ("gru", 2816, BW_S10)]
        timing_steps = 64
    results = [bench_functional_rnn(kind, hidden, cfg,
                                    steps=steps, repeats=repeats)
               for kind, hidden, cfg in functional]
    results += [bench_timing_sim(kind, hidden, cfg,
                                 steps=timing_steps, repeats=repeats)
                for kind, hidden, cfg in timing]
    results += [bench_quantize(cfg, vectors=1024 if quick else 4096)
                for cfg in (BW_S10, BW_CNN_A10)]
    return {
        "benchmark": "perf",
        "quick": quick,
        "headline": {"kind": HEADLINE[0], "hidden": HEADLINE[1],
                     "config": HEADLINE[2],
                     "speedup": headline_speedup(results)},
        "results": [r.to_json() for r in results],
    }


def headline_speedup(results: List[BenchResult]) -> Optional[float]:
    """Vectorized-over-naive speedup on the headline LSTM workload."""
    kind, hidden, cfg = HEADLINE
    for r in results:
        if r.name == f"functional_{kind}_h{hidden}" and r.config == cfg:
            return r.speedup
    return None


def render_table(results: List[BenchResult]) -> str:
    """Fixed-width comparison table of a result list."""
    header = (f"{'workload':<28} {'config':<12} {'ms/unit':>10} "
              f"{'naive':>10} {'speedup':>8} {'Gops/s':>8}")
    lines = [header, "-" * len(header)]
    for r in results:
        naive = f"{r.naive_unit_ms:.3f}" if r.naive_unit_ms else "-"
        speed = f"{r.speedup:.2f}x" if r.speedup else "-"
        gops = f"{r.gops:.2f}" if r.gops else "-"
        lines.append(f"{r.name:<28} {r.config:<12} {r.unit_ms:>10.3f} "
                     f"{naive:>10} {speed:>8} {gops:>8}")
    return "\n".join(lines)


def results_from_json(payload: Dict) -> List[BenchResult]:
    """Rehydrate :class:`BenchResult` rows from a JSON payload."""
    fields = {f.name for f in dataclasses.fields(BenchResult)}
    return [BenchResult(**{k: v for k, v in row.items() if k in fields})
            for row in payload["results"]]
