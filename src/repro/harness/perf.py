"""Micro-benchmark harness for the vectorized execution layer.

Times the simulator hot paths on the Table IV configurations —
functional LSTM/GRU execution (vectorized vs. the ``naive=True``
reference per-tile path), compiled program replay (sequential and
batched, vs. the vectorized interpreter), timing-simulator scheduling,
and BFP quantization — and assembles the ``BENCH_perf.json`` trajectory
record: wall-clock per step/call, op rates, and baseline-over-optimized
speedups. ``scripts/bench.py`` and ``repro bench`` are the command-line
drivers.

Every fast path benchmarked here is bit-identical to its baseline by
construction (see docs/PERFORMANCE.md); each benchmark re-checks output
equality on its warm-up so a speedup number can never come from a
divergent fast path.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..compiler.lowering import CompiledModel, compile_gru, compile_lstm
from ..config import BW_CNN_A10, BW_S5, BW_S10, NpuConfig
from ..models.gru import GruReference
from ..models.lstm import LstmReference
from ..numerics.bfp import BfpFormat, quantize
from ..timing import TimingSimulator

#: The headline workload class for the speedup acceptance gate: the
#: DeepBench h=1024 LSTM on the production part (Table IV/V).
HEADLINE = ("lstm", 1024, "BW_S10")

#: Acceptance floors on the headline workload for the full suite:
#: compiled replay over the vectorized interpreter at batch=1, and
#: aggregate batched-replay throughput at batch=16. Quick (CI smoke)
#: runs use the relaxed floors — single-core CI hosts are noisy and the
#: smoke gate only has to prove the fast paths beat their baselines.
COMPILED_GATE, COMPILED_GATE_QUICK = 1.3, 1.0
BATCH16_GATE, BATCH16_GATE_QUICK = 4.0, 2.0

#: Acceptance floor on the headline serving benchmark: peak goodput of
#: SLO-aware dynamic batching over the batch-1 server at the same SLO,
#: both backed by the same measured batch service-time curve.
BATCHING_GATE, BATCHING_GATE_QUICK = 2.0, 1.3


@dataclasses.dataclass
class BenchResult:
    """One timed workload."""

    name: str
    config: str
    #: Wall-clock per unit of work (timestep for RNNs, call otherwise).
    unit_ms: float
    #: Work units measured per repetition.
    units: int
    repeats: int
    #: Model-level useful operations per unit (0 when not applicable).
    ops_per_unit: float = 0.0
    #: Baseline-path wall-clock per unit: the naive per-tile path for
    #: ``functional_*`` rows, the vectorized interpreter for
    #: ``compiled_*``/``batched_*`` rows.
    naive_unit_ms: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.naive_unit_ms is None or self.unit_ms <= 0:
            return None
        return self.naive_unit_ms / self.unit_ms

    @property
    def gops(self) -> Optional[float]:
        """Useful model operations per second, in 1e9 ops/s."""
        if not self.ops_per_unit or self.unit_ms <= 0:
            return None
        return self.ops_per_unit / (self.unit_ms * 1e-3) / 1e9

    def to_json(self) -> Dict:
        out = dataclasses.asdict(self)
        out["speedup"] = self.speedup
        out["gops"] = self.gops
        return out


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall-clock seconds (insensitive to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _compile_rnn(kind: str, hidden: int, config: NpuConfig) -> CompiledModel:
    if kind == "lstm":
        return compile_lstm(LstmReference(hidden_dim=hidden, seed=7), config)
    return compile_gru(GruReference(hidden_dim=hidden, seed=7), config)


def bench_functional_rnn(kind: str, hidden: int, config: NpuConfig,
                         steps: int = 8, repeats: int = 3) -> BenchResult:
    """Time steady-state functional execution, vectorized vs. naive.

    Each path keeps one long-lived simulator (weights pin once — the
    amortization the hardware gets from its pinned MRF), runs one
    untimed warm-up sequence, then takes the best of ``repeats``
    interleaved timed sequences so host noise hits both paths alike.
    The warm-up also asserts the two paths are bit-identical, so a
    speedup can never come from a divergent fast path.
    """
    model = _compile_rnn(kind, hidden, config)
    rng = np.random.default_rng(11)
    xs = [rng.standard_normal(model.input_length).astype(np.float32)
          for _ in range(steps)]

    sims = {False: model.new_simulator(naive=False),
            True: model.new_simulator(naive=True)}
    warm = {naive: (model.run_sequence(xs, sim=sim), sim.stats)
            for naive, sim in sims.items()}
    fast_outs, fast_stats = warm[False]
    ref_outs, ref_stats = warm[True]
    if fast_stats != ref_stats or any(
            not np.array_equal(a, b) for a, b in zip(fast_outs, ref_outs)):
        raise AssertionError(
            f"{kind} h={hidden} on {config.name}: vectorized path "
            f"diverged from naive reference")

    best = {False: float("inf"), True: float("inf")}
    for _ in range(repeats):
        for naive in (False, True):
            t0 = time.perf_counter()
            model.run_sequence(xs, sim=sims[naive])
            best[naive] = min(best[naive], time.perf_counter() - t0)

    ops = model.ops_per_step
    return BenchResult(
        name=f"functional_{kind}_h{hidden}", config=config.name,
        unit_ms=best[False] / steps * 1e3, units=steps, repeats=repeats,
        ops_per_unit=float(ops),
        naive_unit_ms=best[True] / steps * 1e3)


def bench_compiled_rnn(kind: str, hidden: int, config: NpuConfig,
                       steps: int = 8, repeats: int = 3) -> BenchResult:
    """Time compiled program replay vs. the vectorized interpreter.

    Both paths keep one long-lived simulator. The compiled simulator is
    warmed twice before timing: the plan-cache key includes the entry
    scalar registers, which only reach their fixed point on the second
    run (first run: initial registers; later runs: program-final
    registers). Timed repetitions interleave the two paths and take the
    best of ``repeats`` so host noise hits both alike. The warm-up
    asserts the two paths are bit-identical from the same initial state.
    """
    model = _compile_rnn(kind, hidden, config)
    rng = np.random.default_rng(11)
    xs = [rng.standard_normal(model.input_length).astype(np.float32)
          for _ in range(steps)]

    sim_v = model.new_simulator(naive=False)
    sim_c = model.new_simulator(naive=False)
    out_v = model.run_sequence(xs, sim=sim_v)
    out_c = model.run_sequence(xs, sim=sim_c, compiled=True)
    if any(not np.array_equal(a, b) for a, b in zip(out_v, out_c)):
        raise AssertionError(
            f"{kind} h={hidden} on {config.name}: compiled replay "
            f"diverged from the vectorized interpreter")
    model.run_sequence(xs, sim=sim_c, compiled=True)  # plan-key fixpoint
    model.run_sequence(xs, sim=sim_v)  # keep trajectories aligned

    best = {"vec": float("inf"), "comp": float("inf")}
    for _ in range(repeats):
        t0 = time.perf_counter()
        model.run_sequence(xs, sim=sim_v)
        best["vec"] = min(best["vec"], time.perf_counter() - t0)
        t0 = time.perf_counter()
        model.run_sequence(xs, sim=sim_c, compiled=True)
        best["comp"] = min(best["comp"], time.perf_counter() - t0)

    return BenchResult(
        name=f"compiled_{kind}_h{hidden}", config=config.name,
        unit_ms=best["comp"] / steps * 1e3, units=steps, repeats=repeats,
        ops_per_unit=float(model.ops_per_step),
        naive_unit_ms=best["vec"] / steps * 1e3)


def bench_batch_sweep(kind: str, hidden: int, config: NpuConfig,
                      batches=(1, 4, 16), steps: int = 8,
                      repeats: int = 3) -> List[BenchResult]:
    """Batched replay throughput sweep vs. the vectorized interpreter.

    Each batch size B gets a :class:`BenchResult` whose unit is one
    *request-step* (``steps * B`` units per repetition) and whose
    baseline is the vectorized interpreter's ms/step, so ``speedup`` is
    the aggregate-throughput multiplier. The baseline is re-measured
    interleaved with each batch size's timed repetitions — machine
    speed drifts over a long suite (thermals, allocator state), and a
    throughput ratio is only meaningful between same-state
    measurements. Per-request inputs are scaled by distinct powers of
    two (lossless in float32); before timing, every request's batched
    outputs are asserted bit-identical to a sequential
    ``run(compiled=True)`` of the same request.
    """
    model = _compile_rnn(kind, hidden, config)
    rng = np.random.default_rng(11)
    xs = [rng.standard_normal(model.input_length).astype(np.float32)
          for _ in range(steps)]

    sim_v = model.new_simulator(naive=False)
    model.run_sequence(xs, sim=sim_v)  # warm

    results = []
    for batch in batches:
        xb = [[(x * 2.0 ** (-(b % 5))).astype(np.float32) for x in xs]
              for b in range(batch)]
        sim_b = model.new_simulator(naive=False)
        outs_b = model.run_sequence_batched(xb, sim=sim_b)  # warm+compile
        # Batched runs never mutate the base simulator, so every call
        # starts from fresh recurrent state — compare each request
        # against a fresh sequential compiled run.
        for b in range(batch):
            sim_s = model.new_simulator(naive=False)
            seq = model.run_sequence(xb[b], sim=sim_s, compiled=True)
            if any(not np.array_equal(p, q)
                   for p, q in zip(outs_b[b], seq)):
                raise AssertionError(
                    f"{kind} h={hidden} on {config.name}: batched "
                    f"request {b}/{batch} diverged from sequential "
                    f"compiled replay")
        t_vec = t_b = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            model.run_sequence(xs, sim=sim_v)
            t_vec = min(t_vec, time.perf_counter() - t0)
            t0 = time.perf_counter()
            model.run_sequence_batched(xb, sim=sim_b)
            t_b = min(t_b, time.perf_counter() - t0)
        results.append(BenchResult(
            name=f"batched_{kind}_h{hidden}_b{batch}", config=config.name,
            unit_ms=t_b / (steps * batch) * 1e3, units=steps * batch,
            repeats=repeats, ops_per_unit=float(model.ops_per_step),
            naive_unit_ms=t_vec / steps * 1e3))
    return results


def bench_batching_goodput(kind: str, hidden: int, config: NpuConfig,
                           quick: bool = False) -> BenchResult:
    """Goodput at a fixed SLO: dynamic batching vs. the batch-1 server.

    Calibrates a :class:`~repro.system.batching.ServiceTimeCurve` from
    batched-replay wall clock (interleaved best-of timing, monotone
    clamp), then runs the :func:`~repro.system.batching.slo_sweep`
    discrete-event comparison on that measured curve: identical Poisson
    arrival traces through a batch-1 server and an SLO-aware
    :class:`~repro.system.batching.DynamicBatcher`, SLO fixed at 8x
    the measured batch-1 service time, arrival rates swept as
    multiples of batch-1 capacity.  The row's unit is one request at
    peak goodput (``unit_ms = 1000 / peak dynamic goodput``), the
    baseline is the batch-1 server's peak, so ``speedup`` is the
    goodput ratio the serving gate floors.
    """
    from ..system.batching import calibrate_batch_curve, slo_sweep
    model = _compile_rnn(kind, hidden, config)
    if quick:
        batches, steps, repeats = (1, 4, 8, 16), 4, 2
        requests, fracs = 600, (0.8, 2.0, 3.0)
    else:
        batches, steps, repeats = (1, 2, 4, 8, 16), 8, 3
        requests, fracs = 2000, (0.5, 1.0, 1.8, 2.5, 3.2, 4.0)
    curve = calibrate_batch_curve(model, batches=batches, steps=steps,
                                  repeats=repeats)
    t1 = curve(1)
    payload = slo_sweep(curve, slo_s=8.0 * t1,
                        rates_rps=[f / t1 for f in fracs],
                        requests=requests, max_batch=16)
    return BenchResult(
        name=f"batching_goodput_{kind}_h{hidden}", config=config.name,
        unit_ms=1e3 / payload["peak_goodput_dynamic_rps"],
        units=requests * len(fracs), repeats=repeats,
        naive_unit_ms=1e3 / payload["peak_goodput_batch1_rps"])


def bench_timing_sim(kind: str, hidden: int, config: NpuConfig,
                     steps: int = 64, repeats: int = 3) -> BenchResult:
    """Time the cycle-level scheduler over an RNN program."""
    model = _compile_rnn(kind, hidden, config)
    sim = TimingSimulator(config)

    def run():
        return sim.run(model.program, bindings={model.steps_binding: steps})

    total = _best_time(run, repeats)
    return BenchResult(
        name=f"timing_{kind}_h{hidden}", config=config.name,
        unit_ms=total / steps * 1e3, units=steps, repeats=repeats)


def bench_quantize(config: NpuConfig, vectors: int = 4096,
                   repeats: int = 5) -> BenchResult:
    """Time BFP quantization throughput at the config's format."""
    fmt = config.bfp_format
    if fmt is None:  # exact mode: time the narrowest quantized format
        fmt = BfpFormat(mantissa_bits=1,
                        exponent_bits=config.exponent_bits,
                        block_size=config.native_dim)
    rng = np.random.default_rng(3)
    data = rng.standard_normal(
        (vectors, config.native_dim)).astype(np.float32)
    total = _best_time(lambda: quantize(data, fmt), repeats)
    return BenchResult(
        name="bfp_quantize", config=config.name,
        unit_ms=total / vectors * 1e3, units=vectors, repeats=repeats,
        ops_per_unit=float(config.native_dim))


def run_suite(quick: bool = False) -> Dict:
    """Run the full perf suite; returns the ``BENCH_perf.json`` payload.

    ``quick`` shrinks the workloads for CI smoke runs (same coverage,
    smaller hidden dims / fewer repeats).
    """
    if quick:
        functional = [("lstm", 256, BW_S5), ("gru", 256, BW_S5),
                      ("lstm", 1024, BW_S10), ("lstm", 512, BW_CNN_A10)]
        steps, repeats = 4, 2
        compiled = [("lstm", 1024, BW_S10)]
        batches = (1, 16)
        timing = [("lstm", 1024, BW_S10)]
        timing_steps = 16
    else:
        functional = [("lstm", 512, BW_S5), ("gru", 512, BW_S5),
                      ("lstm", 1024, BW_S10), ("gru", 1152, BW_S10),
                      ("lstm", 1024, BW_CNN_A10)]
        steps, repeats = 8, 3
        compiled = [("lstm", 1024, BW_S10), ("gru", 1152, BW_S10)]
        batches = (1, 4, 16)
        timing = [("lstm", 1024, BW_S10), ("gru", 2816, BW_S10)]
        timing_steps = 64
    results = [bench_functional_rnn(kind, hidden, cfg,
                                    steps=steps, repeats=repeats)
               for kind, hidden, cfg in functional]
    results += [bench_compiled_rnn(kind, hidden, cfg,
                                   steps=steps, repeats=max(repeats, 3))
                for kind, hidden, cfg in compiled]
    results += bench_batch_sweep(HEADLINE[0], HEADLINE[1], BW_S10,
                                 batches=batches, steps=steps,
                                 repeats=max(repeats, 3))
    results.append(bench_batching_goodput(HEADLINE[0], HEADLINE[1],
                                          BW_S10, quick=quick))
    results += [bench_timing_sim(kind, hidden, cfg,
                                 steps=timing_steps, repeats=repeats)
                for kind, hidden, cfg in timing]
    results += [bench_quantize(cfg, vectors=1024 if quick else 4096)
                for cfg in (BW_S10, BW_CNN_A10)]
    return {
        "benchmark": "perf",
        "quick": quick,
        "headline": {"kind": HEADLINE[0], "hidden": HEADLINE[1],
                     "config": HEADLINE[2],
                     "speedup": headline_speedup(results),
                     "compiled_speedup": compiled_headline_speedup(results),
                     "batch16_speedup": batch16_headline_speedup(results),
                     "batching_goodput_ratio":
                         batching_goodput_ratio(results)},
        "results": [r.to_json() for r in results],
    }


def _headline_row(results: List[BenchResult],
                  name: str) -> Optional[float]:
    kind, hidden, cfg = HEADLINE
    full = name.format(kind=kind, hidden=hidden)
    for r in results:
        if r.name == full and r.config == cfg:
            return r.speedup
    return None


def headline_speedup(results: List[BenchResult]) -> Optional[float]:
    """Vectorized-over-naive speedup on the headline LSTM workload."""
    return _headline_row(results, "functional_{kind}_h{hidden}")


def compiled_headline_speedup(results: List[BenchResult]
                              ) -> Optional[float]:
    """Compiled-replay-over-vectorized speedup on the headline LSTM."""
    return _headline_row(results, "compiled_{kind}_h{hidden}")


def batch16_headline_speedup(results: List[BenchResult]
                             ) -> Optional[float]:
    """Aggregate batched-replay throughput multiplier at batch=16."""
    return _headline_row(results, "batched_{kind}_h{hidden}_b16")


def batching_goodput_ratio(results: List[BenchResult]
                           ) -> Optional[float]:
    """Peak-goodput multiplier of SLO-aware dynamic batching over the
    batch-1 server on the headline workload."""
    return _headline_row(results, "batching_goodput_{kind}_h{hidden}")


def headline_gates(results: List[BenchResult], quick: bool
                   ) -> List[tuple]:
    """The perf acceptance gates as ``(label, speedup, floor)`` rows.

    ``speedup`` is ``None`` when the workload is missing from
    ``results``; drivers treat that as a harder failure than a missed
    floor.
    """
    return [
        ("vectorized over naive", headline_speedup(results), 1.0),
        ("compiled over vectorized", compiled_headline_speedup(results),
         COMPILED_GATE_QUICK if quick else COMPILED_GATE),
        ("batch=16 aggregate over vectorized",
         batch16_headline_speedup(results),
         BATCH16_GATE_QUICK if quick else BATCH16_GATE),
        ("dynamic-batching goodput over batch-1 at equal SLO",
         batching_goodput_ratio(results),
         BATCHING_GATE_QUICK if quick else BATCHING_GATE),
    ]


def render_table(results: List[BenchResult]) -> str:
    """Fixed-width comparison table of a result list."""
    header = (f"{'workload':<28} {'config':<12} {'ms/unit':>10} "
              f"{'naive':>10} {'speedup':>8} {'Gops/s':>8}")
    lines = [header, "-" * len(header)]
    for r in results:
        naive = f"{r.naive_unit_ms:.3f}" if r.naive_unit_ms else "-"
        speed = f"{r.speedup:.2f}x" if r.speedup else "-"
        gops = f"{r.gops:.2f}" if r.gops else "-"
        lines.append(f"{r.name:<28} {r.config:<12} {r.unit_ms:>10.3f} "
                     f"{naive:>10} {speed:>8} {gops:>8}")
    return "\n".join(lines)


def results_from_json(payload: Dict) -> List[BenchResult]:
    """Rehydrate :class:`BenchResult` rows from a JSON payload."""
    fields = {f.name for f in dataclasses.fields(BenchResult)}
    return [BenchResult(**{k: v for k, v in row.items() if k in fields})
            for row in payload["results"]]
