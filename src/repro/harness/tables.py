"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

import dataclasses
from typing import List


@dataclasses.dataclass
class ExperimentTable:
    """A rendered experiment result: title, column headers, rows."""

    title: str
    headers: List[str]
    rows: List[List[str]]
    notes: List[str] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        """Align columns and return a printable table."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"row width {len(row)} != header width "
                    f"{len(self.headers)}: {row}")
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i])
                               for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavored markdown table."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def column(self, header: str) -> List[str]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def fmt(value: float, digits: int = 2) -> str:
    """Format a number compactly."""
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.{digits}f}"


def fmt_ratio(model: float, paper: float) -> str:
    """Model-vs-paper ratio cell."""
    if paper == 0:
        return "-"
    return f"{model / paper:.2f}x"
