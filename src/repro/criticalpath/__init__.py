"""Critical-path methodology for latency-aware design (paper Section III)."""

from .dfg import (
    Dfg,
    DfgNode,
    conv_layer_dfg,
    dot_depth,
    gru_step_dfg,
    lstm_step_dfg,
    mlp_dfg,
    recurrent_cycle_depth,
)
from .udm import UdmResult, analyze as udm_analyze, \
    analyze_recurrent as udm_analyze_recurrent, udm_cycles
from .sdm import SdmResult, analyze as sdm_analyze, \
    analyze_recurrent as sdm_analyze_recurrent, sdm_cycles_bound, \
    sdm_cycles_scheduled
from . import analytic

__all__ = [
    "Dfg", "DfgNode", "dot_depth", "lstm_step_dfg", "gru_step_dfg",
    "conv_layer_dfg", "mlp_dfg", "recurrent_cycle_depth",
    "UdmResult", "udm_analyze", "udm_analyze_recurrent", "udm_cycles",
    "SdmResult", "sdm_analyze", "sdm_analyze_recurrent",
    "sdm_cycles_bound", "sdm_cycles_scheduled", "analytic",
]
