"""Structurally-constrained Dataflow Machine (SDM) analysis (Section III).

The SDM shares the functional-unit count of a target implementation
(96,000 MACs for BW_S10) but is otherwise ideal: no decode, memory, or
scheduling overheads. Its latency is "the lowest possible latency under
realistic resource constraints".

Two evaluators are provided:

* :func:`sdm_cycles_bound` — the Graham list-scheduling bound
  ``ceil(work / units) + critical_path``, exact enough to reproduce every
  SDM row of Table V within a few cycles (see DESIGN.md §5);
* :func:`sdm_cycles_scheduled` — an explicit resource-constrained list
  scheduler over the dataflow graph, used on small graphs to validate the
  bound (property-tested: bound >= schedule >= max(work/units, depth)).
"""

from __future__ import annotations

import dataclasses

import math
from typing import Dict, Sequence

from .dfg import Dfg, recurrent_cycle_depth
from .udm import udm_cycles


@dataclasses.dataclass(frozen=True)
class SdmResult:
    """SDM analysis of one workload on a given MAC budget."""

    name: str
    num_macs: int
    cycles: float
    total_ops: int

    def latency_s(self, clock_mhz: float) -> float:
        return self.cycles / (clock_mhz * 1e6)

    def latency_ms(self, clock_mhz: float) -> float:
        return self.latency_s(clock_mhz) * 1e3


def sdm_cycles_bound(dfg: Dfg, num_macs: int) -> float:
    """Graham bound: MAC work serialized over the units plus the
    dataflow critical path."""
    if num_macs <= 0:
        raise ValueError("num_macs must be positive")
    work = math.ceil(dfg.total_macs / num_macs)
    return work + udm_cycles(dfg)


def sdm_cycles_scheduled(dfg: Dfg, num_macs: int) -> float:
    """Explicit list scheduling at vector-operator granularity.

    Each node runs for ``node.depth`` cycles on ``node.macs`` MAC units
    (point-wise work uses the balanced non-MAC units, which the paper
    assumes are never the bottleneck); a node whose MAC demand exceeds
    the free units is split into sequential waves. Greedy
    earliest-ready-first order.
    """
    if num_macs <= 0:
        raise ValueError("num_macs must be positive")
    finish: Dict[str, float] = {}
    # The MAC array is modeled as a full-throughput pipeline: a node's
    # MAC work occupies the array for work/num_macs cycles; its result
    # emerges node.depth cycles after its last wave enters.
    machine_free = 0.0
    for node in dfg.nodes():
        start = max((finish[d] for d in node.deps), default=0.0)
        if node.macs == 0:
            finish[node.name] = start + node.depth
            continue
        start = max(start, machine_free)
        work_cycles = node.macs / num_macs
        machine_free = start + work_cycles
        finish[node.name] = start + work_cycles + node.depth
    return max(finish.values(), default=0.0)


def analyze(dfg: Dfg, num_macs: int) -> SdmResult:
    """SDM analysis (Graham bound) of one graph evaluation."""
    return SdmResult(name=dfg.name, num_macs=num_macs,
                     cycles=sdm_cycles_bound(dfg, num_macs),
                     total_ops=dfg.total_ops)


def analyze_recurrent(step_dfg: Dfg, steps: int, num_macs: int,
                      output: str = "h_t",
                      state_inputs: Sequence[str] = ("h_prev",)
                      ) -> SdmResult:
    """SDM analysis of a recurrent evaluation: per-step MAC work plus the
    recurrent-cycle depth, times the step count (the serial dependence
    between steps prevents cross-step MAC overlap on the critical path).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    per_step_work = math.ceil(step_dfg.total_macs / num_macs)
    per_step_depth = recurrent_cycle_depth(step_dfg, output=output,
                                           state_inputs=state_inputs)
    cycles = steps * (per_step_work + per_step_depth)
    return SdmResult(name=f"{step_dfg.name} x{steps}", num_macs=num_macs,
                     cycles=cycles, total_ops=step_dfg.total_ops * steps)
