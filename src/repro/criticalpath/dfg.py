"""Dataflow graphs for critical-path analysis (paper Section III).

The UDM/SDM methodology models a DNN evaluation as a dataflow graph whose
nodes are primitive operations with unit functional-unit latencies; dot
products additionally carry their adder-tree depth. Graphs are built at
vector-operator granularity — each node records its total work (MAC and
point-wise operation counts) and its intrinsic depth on unconstrained
hardware — which keeps graphs small while preserving exact critical-path
lengths and op counts.

Builders are provided for the paper's Table I workloads: an LSTM step, a
GRU step (classic reset-before-matmul dataflow, which reproduces the
paper's UDM depth of 31 for the 2800-dim GRU), and a convolution layer.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..models.cnn import ConvSpec


@dataclasses.dataclass(frozen=True)
class DfgNode:
    """One vector-operator node.

    Attributes:
        name: Unique node name.
        kind: Operator kind (``"dot"``, ``"add"``, ``"mul"``, ``"sigm"``,
            ``"tanh"``, ``"relu"``, ``"input"``).
        depth: Critical-path latency of the node itself in FU cycles
            (1 for point-wise ops; ``1 + ceil(log2 n)`` for an n-input
            dot product: one multiply plus the adder tree).
        macs: Multiply-accumulate work of the node.
        pointwise_ops: Point-wise operation work of the node.
        deps: Names of predecessor nodes.
    """

    name: str
    kind: str
    depth: int
    macs: int = 0
    pointwise_ops: int = 0
    deps: Tuple[str, ...] = ()

    @property
    def total_ops(self) -> int:
        return 2 * self.macs + self.pointwise_ops


def dot_depth(n: int) -> int:
    """Critical path of an n-element dot product: multiply + adder tree."""
    if n <= 0:
        raise ValueError("dot product length must be positive")
    return 1 + math.ceil(math.log2(n)) if n > 1 else 1


class Dfg:
    """An immutable-after-build dataflow graph."""

    def __init__(self, name: str = "dfg"):
        self.name = name
        self._nodes: Dict[str, DfgNode] = {}
        self._order: List[str] = []

    def add(self, name: str, kind: str, depth: int, macs: int = 0,
            pointwise_ops: int = 0,
            deps: Sequence[str] = ()) -> DfgNode:
        """Add a node; dependencies must already exist (topological)."""
        if name in self._nodes:
            raise ValueError(f"duplicate node {name!r}")
        for dep in deps:
            if dep not in self._nodes:
                raise ValueError(f"{name!r} depends on unknown {dep!r}")
        node = DfgNode(name=name, kind=kind, depth=depth, macs=macs,
                       pointwise_ops=pointwise_ops, deps=tuple(deps))
        self._nodes[name] = node
        self._order.append(name)
        return node

    def add_input(self, name: str) -> DfgNode:
        return self.add(name, "input", depth=0)

    def add_dot(self, name: str, length: int, outputs: int,
                deps: Sequence[str]) -> DfgNode:
        """A matrix-vector product: ``outputs`` dot products of ``length``."""
        return self.add(name, "dot", depth=dot_depth(length),
                        macs=length * outputs, deps=deps)

    def add_pointwise(self, name: str, kind: str, width: int,
                      deps: Sequence[str]) -> DfgNode:
        return self.add(name, kind, depth=1, pointwise_ops=width, deps=deps)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> DfgNode:
        return self._nodes[name]

    def nodes(self) -> Iterable[DfgNode]:
        return (self._nodes[n] for n in self._order)

    @property
    def total_macs(self) -> int:
        return sum(n.macs for n in self.nodes())

    @property
    def total_pointwise_ops(self) -> int:
        return sum(n.pointwise_ops for n in self.nodes())

    @property
    def total_ops(self) -> int:
        return sum(n.total_ops for n in self.nodes())

    def critical_path(self, sinks: Optional[Sequence[str]] = None,
                      sources: Optional[Sequence[str]] = None) -> int:
        """Longest path length in FU cycles.

        Args:
            sinks: Restrict to paths ending at these nodes (default: all).
            sources: Restrict to paths starting at these nodes (default:
                any node; sources' own depth is excluded so a register
                read costs nothing).
        """
        finish: Dict[str, int] = {}
        source_set = set(sources) if sources is not None else None
        for name in self._order:
            node = self._nodes[name]
            if source_set is not None:
                reachable = name in source_set or any(
                    dep in finish for dep in node.deps)
                if not reachable:
                    continue
                base = max((finish.get(dep, 0) for dep in node.deps),
                           default=0)
                finish[name] = base + (0 if name in source_set
                                       else node.depth)
            else:
                base = max((finish.get(dep, 0) for dep in node.deps),
                           default=0)
                finish[name] = base + node.depth
        if not finish:
            return 0
        if sinks is not None:
            return max(finish.get(s, 0) for s in sinks)
        return max(finish.values())


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------

def lstm_step_dfg(hidden_dim: int,
                  input_dim: Optional[int] = None) -> Dfg:
    """One LSTM timestep.

    Gate pre-activations are ``x W + b`` then ``+ U h`` (two add stages),
    matching the paper's Table I depth of 19 for the 2000-dim LSTM:
    dot(12) + add + add + tanh + mul + add + tanh + mul = 19.
    """
    x_dim = input_dim if input_dim is not None else hidden_dim
    h = hidden_dim
    g = Dfg(f"lstm{h}_step")
    g.add_input("x")
    g.add_input("h_prev")
    g.add_input("c_prev")
    for gate in ("f", "i", "o", "c"):
        g.add_dot(f"xW_{gate}", x_dim, h, deps=["x"])
        g.add_pointwise(f"bias_{gate}", "add", h, deps=[f"xW_{gate}"])
        g.add_dot(f"hU_{gate}", h, h, deps=["h_prev"])
        g.add_pointwise(f"pre_{gate}", "add", h,
                        deps=[f"bias_{gate}", f"hU_{gate}"])
    for gate in ("f", "i", "o"):
        g.add_pointwise(f"act_{gate}", "sigm", h, deps=[f"pre_{gate}"])
    g.add_pointwise("c_tilde", "tanh", h, deps=["pre_c"])
    g.add_pointwise("f_c", "mul", h, deps=["act_f", "c_prev"])
    g.add_pointwise("i_ctilde", "mul", h, deps=["act_i", "c_tilde"])
    g.add_pointwise("c_t", "add", h, deps=["f_c", "i_ctilde"])
    g.add_pointwise("tanh_c", "tanh", h, deps=["c_t"])
    g.add_pointwise("h_t", "mul", h, deps=["act_o", "tanh_c"])
    return g


def gru_step_dfg(hidden_dim: int, input_dim: Optional[int] = None,
                 variant: str = "classic") -> Dfg:
    """One GRU timestep.

    ``variant="classic"`` applies the reset gate *before* the recurrent
    matmul (``h~ = tanh(xW + b + U (r*h))``) — the production dataflow
    whose serial chain reproduces the paper's Table I UDM depth of 31 at
    dimension 2800. ``variant="cudnn"`` applies it after
    (``h~ = tanh(xW + b + r*(U h))``), matching the DeepBench kernels and
    this library's GRU lowering.
    """
    if variant not in ("classic", "cudnn"):
        raise ValueError("variant must be 'classic' or 'cudnn'")
    x_dim = input_dim if input_dim is not None else hidden_dim
    h = hidden_dim
    g = Dfg(f"gru{h}_step_{variant}")
    g.add_input("x")
    g.add_input("h_prev")
    for gate in ("r", "z", "h"):
        g.add_dot(f"xW_{gate}", x_dim, h, deps=["x"])
        g.add_pointwise(f"bias_{gate}", "add", h, deps=[f"xW_{gate}"])
    for gate in ("r", "z"):
        g.add_dot(f"hU_{gate}", h, h, deps=["h_prev"])
        g.add_pointwise(f"pre_{gate}", "add", h,
                        deps=[f"bias_{gate}", f"hU_{gate}"])
        g.add_pointwise(f"act_{gate}", "sigm", h, deps=[f"pre_{gate}"])
    if variant == "classic":
        g.add_pointwise("r_h", "mul", h, deps=["act_r", "h_prev"])
        g.add_dot("hU_h", h, h, deps=["r_h"])
        g.add_pointwise("pre_h", "add", h, deps=["bias_h", "hU_h"])
    else:
        g.add_dot("hU_h", h, h, deps=["h_prev"])
        g.add_pointwise("r_Uh", "mul", h, deps=["act_r", "hU_h"])
        g.add_pointwise("pre_h", "add", h, deps=["bias_h", "r_Uh"])
    g.add_pointwise("h_tilde", "tanh", h, deps=["pre_h"])
    g.add_pointwise("one_minus_z", "add", h, deps=["act_z"])
    g.add_pointwise("zb_ht", "mul", h, deps=["one_minus_z", "h_tilde"])
    g.add_pointwise("z_h", "mul", h, deps=["act_z", "h_prev"])
    g.add_pointwise("h_t", "add", h, deps=["zb_ht", "z_h"])
    return g


def conv_layer_dfg(spec: ConvSpec, include_bias: bool = True) -> Dfg:
    """One convolution layer: a dot product per (pixel, kernel) pair,
    aggregated per pixel into one node."""
    g = Dfg(f"conv_{spec.describe()}")
    g.add_input("activations")
    length = spec.patch_length
    for p in range(spec.output_pixels):
        deps = ["activations"]
        g.add_dot(f"pix{p}", length, spec.kernels, deps=deps)
        if include_bias:
            g.add_pointwise(f"pix{p}_bias", "add", spec.kernels,
                            deps=[f"pix{p}"])
    return g


def mlp_dfg(layer_dims: Sequence[int], activation: str = "relu") -> Dfg:
    """A dense MLP: one dot + bias + activation per layer."""
    g = Dfg("mlp")
    g.add_input("x")
    prev = "x"
    for i in range(len(layer_dims) - 1):
        g.add_dot(f"dot{i}", layer_dims[i], layer_dims[i + 1], deps=[prev])
        g.add_pointwise(f"bias{i}", "add", layer_dims[i + 1],
                        deps=[f"dot{i}"])
        g.add_pointwise(f"act{i}", activation, layer_dims[i + 1],
                        deps=[f"bias{i}"])
        prev = f"act{i}"
    return g


def recurrent_cycle_depth(step_dfg: Dfg, output: str = "h_t",
                          state_inputs: Sequence[str] = ("h_prev",)) -> int:
    """Critical path from the recurrent state inputs to the step output —
    the depth each additional timestep adds on an unconstrained machine."""
    return step_dfg.critical_path(sinks=[output], sources=list(state_inputs))
