"""Unconstrained Dataflow Machine (UDM) analysis (Section III).

The UDM has infinite functional units; serving latency is the dataflow
graph's critical path, counting only unit FU latencies (plus adder-tree
depth inside dot products). It is the lower bound on single-request
latency, "capturing all available parallelism of a single DNN request".
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from .dfg import Dfg, recurrent_cycle_depth


@dataclasses.dataclass(frozen=True)
class UdmResult:
    """UDM analysis of one workload."""

    name: str
    cycles: int
    total_ops: int
    total_macs: int

    @property
    def parallelism(self) -> float:
        """Average exploitable ops per cycle on infinite hardware."""
        return self.total_ops / self.cycles if self.cycles else 0.0


def udm_cycles(dfg: Dfg) -> int:
    """Critical-path cycles of one graph evaluation."""
    return dfg.critical_path()


def analyze(dfg: Dfg) -> UdmResult:
    """Full UDM analysis of a single graph evaluation."""
    return UdmResult(name=dfg.name, cycles=udm_cycles(dfg),
                     total_ops=dfg.total_ops, total_macs=dfg.total_macs)


def analyze_recurrent(step_dfg: Dfg, steps: int, output: str = "h_t",
                      state_inputs: Sequence[str] = ("h_prev",),
                      ) -> UdmResult:
    """UDM analysis of a ``steps``-long recurrent evaluation.

    The first step pays the full input-to-output critical path; each
    further step adds only the recurrent-cycle depth (state output to
    state output), since the non-recurrent work of later steps overlaps.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    first = step_dfg.critical_path(sinks=[output])
    per_step = recurrent_cycle_depth(step_dfg, output=output,
                                     state_inputs=state_inputs)
    cycles = first + (steps - 1) * per_step
    return UdmResult(name=f"{step_dfg.name} x{steps}", cycles=cycles,
                     total_ops=step_dfg.total_ops * steps,
                     total_macs=step_dfg.total_macs * steps)
