"""Closed-form critical-path expressions (paper Fig. 2).

Fig. 2 annotates the LSTM dataflow with operation count and latency as
functions of the LSTM dimension N and the functional-unit count #FU.
These closed forms mirror the graph-based analyses in
:mod:`repro.criticalpath.udm` / :mod:`repro.criticalpath.sdm` and are
cross-checked against them in the test suite.
"""

from __future__ import annotations

import math
from typing import Optional


def lstm_ops_per_step(n: int, input_dim: Optional[int] = None) -> int:
    """Operations per LSTM timestep: 8 GEMVs plus point-wise tail.

    ``8 N^2`` multiplies and adds dominate (Fig. 2's ``O(N^2)``).
    """
    x = input_dim if input_dim is not None else n
    return 2 * 4 * (n * x + n * n) + 17 * n


def lstm_udm_cycles_per_step(n: int) -> int:
    """UDM latency of one steady-state LSTM timestep.

    The recurrent path: dot product (``1 + ceil(log2 N)``), recurrent
    add, gate activation, Hadamard with the cell state, cell add, tanh,
    output Hadamard — ``ceil(log2 N) + 8`` cycles. For N=2000 this gives
    19, Table I's UDM entry.
    """
    if n < 2:
        raise ValueError("LSTM dimension must be >= 2")
    return math.ceil(math.log2(n)) + 8


def lstm_sdm_cycles_per_step(n: int, num_fus: int,
                             input_dim: Optional[int] = None) -> float:
    """SDM latency of one LSTM timestep with ``num_fus`` MAC units:
    serialized MAC work plus the unavoidable dataflow depth."""
    x = input_dim if input_dim is not None else n
    macs = 4 * (n * x + n * n)
    return math.ceil(macs / num_fus) + lstm_udm_cycles_per_step(n)


def gru_ops_per_step(n: int, input_dim: Optional[int] = None) -> int:
    """Operations per GRU timestep (6 GEMVs plus point-wise tail)."""
    x = input_dim if input_dim is not None else n
    return 2 * 3 * (n * x + n * n) + 14 * n


def gru_udm_cycles_per_step(n: int) -> int:
    """UDM latency of one steady-state GRU timestep (classic variant).

    The reset gate gates the recurrent matmul, so the serial path crosses
    two dot products: ``2 ceil(log2 N) + 9`` — 31 for N=2800 (Table I).
    """
    if n < 2:
        raise ValueError("GRU dimension must be >= 2")
    return 2 * math.ceil(math.log2(n)) + 7


def gru_sdm_cycles_per_step(n: int, num_fus: int,
                            input_dim: Optional[int] = None) -> float:
    """SDM latency of one GRU timestep with ``num_fus`` MAC units."""
    x = input_dim if input_dim is not None else n
    macs = 3 * (n * x + n * n)
    return math.ceil(macs / num_fus) + gru_udm_cycles_per_step(n)


def conv_udm_cycles(patch_length: int) -> int:
    """UDM latency of a conv layer: one dot product depth plus bias."""
    return 1 + math.ceil(math.log2(patch_length)) + 1


def conv_sdm_cycles(total_macs: int, patch_length: int,
                    num_fus: int) -> float:
    """SDM latency of a conv layer on ``num_fus`` MAC units."""
    return math.ceil(total_macs / num_fus) + conv_udm_cycles(patch_length)
