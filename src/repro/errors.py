"""Exception hierarchy for the Brainwave NPU reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Subclasses are grouped by subsystem: ISA/program
construction, functional execution, compilation, and synthesis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class IsaError(ReproError):
    """An instruction or instruction chain violates the ISA rules."""


class ChainError(IsaError):
    """An instruction chain is malformed (ordering, chain in/out types)."""


class ChainCapacityError(ChainError):
    """A chain needs more function units than the configuration provides."""


class EncodingError(IsaError):
    """An instruction cannot be encoded/decoded in the binary format."""


class AssemblerError(IsaError):
    """Textual assembly could not be parsed."""


class ExecutionError(ReproError):
    """The functional simulator hit an illegal architectural event."""


class MemoryError_(ExecutionError):
    """Out-of-bounds or illegal register file / DRAM / queue access."""


class NetworkQueueEmptyError(ExecutionError):
    """A ``v_rd(NetQ)`` executed with no pending input vector."""


class CompileError(ReproError):
    """A model graph could not be lowered onto the NPU."""


class CapacityError(CompileError):
    """Model parameters exceed the on-chip memory of the target config."""


class PartitionError(CompileError):
    """A graph could not be partitioned across the available accelerators."""


class SynthesisError(ReproError):
    """A configuration does not fit the target FPGA device."""


class FaultError(ReproError):
    """An injected fault (node crash, transient failure, packet loss).

    ``kind`` names the fault category: ``"node_down"``, ``"crash"``, or
    ``"transient"``.
    """

    def __init__(self, message: str, kind: str = "transient"):
        super().__init__(message)
        self.kind = kind


class DeadlineExceededError(ReproError):
    """A request could not complete within its SLO deadline."""


class AllReplicasDownError(ReproError):
    """Every replica of a service is crashed or circuit-broken."""


class ConfigError(ReproError):
    """An NPU configuration is internally inconsistent."""


class UnbatchablePlanError(ConfigError):
    """A compiled replay plan cannot be executed by the batched replayer.

    Raised when a plan contains interpreted fallback steps stemming from
    a statically invalid event (everything from the first
    definitely-raising event onward is interpreted, so per-request
    batched execution cannot preserve the interpreter's error
    semantics). ``step_kinds`` names the offending fallback step kinds,
    e.g. ``("s_wr:Rows",)`` or ``("v_rd>mv_mul>v_wr",)``.
    """

    def __init__(self, message: str, step_kinds: tuple = ()):
        super().__init__(message)
        self.step_kinds = tuple(step_kinds)
