"""repro: a reproduction of the Project Brainwave NPU (ISCA 2018).

"A Configurable Cloud-Scale DNN Processor for Real-Time AI" — the BW NPU
is a single-threaded SIMD soft processor for batch-1 DNN inference. This
package provides:

* :mod:`repro.isa` — the compound matrix-vector/vector-vector ISA with
  instruction chaining and mega-SIMD scaling (Table II);
* :mod:`repro.functional` — an architecturally exact simulator with
  block-floating-point numerics (:mod:`repro.numerics`);
* :mod:`repro.timing` — a calibrated cycle-level performance model
  (hierarchical decode/dispatch, MVM/MFU pipelines, DRAM streaming);
* :mod:`repro.criticalpath` — the UDM/SDM latency methodology
  (Section III);
* :mod:`repro.compiler` — the toolflow: GIR, passes, register
  allocation, model lowering, multi-FPGA partitioning;
* :mod:`repro.synthesis` — FPGA devices, the calibrated resource model,
  and the synthesis specializer (Section VI);
* :mod:`repro.baselines` — GPU roofline baselines and the DeepBench
  suite;
* :mod:`repro.system` — the datacenter serving layer (hardware
  microservices, federated runtime);
* :mod:`repro.obs` — simulated-time tracing and metrics (spans,
  counters, histograms, Chrome-trace export) across all layers;
* :mod:`repro.harness` — drivers regenerating every table and figure of
  the paper's evaluation.

Quickstart::

    from repro import BW_S10, compile_lstm, LstmReference
    model = LstmReference(hidden_dim=256)
    compiled = compile_lstm(model, BW_S10)
    outputs = compiled.run_sequence(list_of_input_vectors)
"""

from .config import (
    BW_A10,
    BW_CNN_A10,
    BW_S5,
    BW_S10,
    STANDARD_CONFIGS,
    NpuConfig,
)
from .errors import (
    CapacityError,
    ChainError,
    CompileError,
    ConfigError,
    ExecutionError,
    IsaError,
    PartitionError,
    ReproError,
    SynthesisError,
    UnbatchablePlanError,
)
from .compiler import (
    CompiledModel,
    compile_conv,
    compile_gru,
    compile_lstm,
    compile_lstm_interleaved,
    compile_lstm_streamed,
    compile_mlp,
    compile_rnn_shape,
    compile_stacked_lstm,
    compile_text_cnn,
)
from .functional import FunctionalSimulator
from .models import (
    ConvSpec,
    GruReference,
    LstmReference,
    MlpReference,
)
from .numerics import BfpFormat, quantize
from .timing import LatencyConstants, TimingSimulator
from .isa import MemId, NpuProgram, ProgramBuilder, ScalarReg

__version__ = "1.0.0"

__all__ = [
    "NpuConfig", "BW_S5", "BW_A10", "BW_S10", "BW_CNN_A10",
    "STANDARD_CONFIGS", "ReproError", "IsaError", "ChainError",
    "ExecutionError", "CompileError", "CapacityError", "PartitionError",
    "SynthesisError", "ConfigError", "UnbatchablePlanError",
    "CompiledModel", "compile_lstm",
    "compile_gru", "compile_mlp", "compile_conv", "compile_rnn_shape",
    "compile_lstm_interleaved", "compile_lstm_streamed",
    "compile_stacked_lstm", "compile_text_cnn",
    "FunctionalSimulator", "LstmReference", "GruReference",
    "MlpReference", "ConvSpec", "BfpFormat", "quantize",
    "TimingSimulator", "LatencyConstants", "MemId", "ScalarReg",
    "NpuProgram", "ProgramBuilder", "__version__",
]
