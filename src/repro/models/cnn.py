"""Convolution layers: numpy reference and im2col lowering metadata.

The BW NPU has no convolution primitive; CNN layers are *linearized onto
matrix-vector multiplication* (Section IV-B). A conv layer with K kernels
of size R x S x C becomes a ``K x (R*S*C)`` matrix multiplied against one
im2col patch vector per output pixel. :class:`ConvSpec` carries the shape
algebra (op counts, Table I's "Data" column); :func:`conv2d_reference`
and :func:`im2col` provide the exact semantics used for verification.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class ConvSpec:
    """One 2-D convolution layer (NCHW-free single-sample form).

    Attributes:
        in_height, in_width, in_channels: Input activation dimensions.
        kernels: Number of output channels K.
        kernel_h, kernel_w: Spatial kernel size R x S.
        stride: Spatial stride.
        padding: Symmetric zero padding.
    """

    in_height: int
    in_width: int
    in_channels: int
    kernels: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: Optional[int] = None  # None = "same" for stride 1

    def __post_init__(self) -> None:
        if min(self.in_height, self.in_width, self.in_channels,
               self.kernels, self.kernel_h, self.kernel_w,
               self.stride) <= 0:
            raise ValueError("all ConvSpec dimensions must be positive")

    @property
    def pad(self) -> int:
        if self.padding is not None:
            return self.padding
        return (self.kernel_h - 1) // 2

    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.pad - self.kernel_h) \
            // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.pad - self.kernel_w) \
            // self.stride + 1

    @property
    def output_pixels(self) -> int:
        return self.out_height * self.out_width

    @property
    def patch_length(self) -> int:
        """im2col patch vector length (R*S*C) — the GEMV inner dim."""
        return self.kernel_h * self.kernel_w * self.in_channels

    @property
    def matmul_ops(self) -> int:
        """Multiply and add ops for the full layer."""
        return 2 * self.output_pixels * self.kernels * self.patch_length

    @property
    def parameter_count(self) -> int:
        return self.kernels * self.patch_length

    @property
    def input_elements(self) -> int:
        return self.in_height * self.in_width * self.in_channels

    def data_bytes(self, bits_per_element: float) -> float:
        """Working-set bytes: weights plus input activations (Table I)."""
        return ((self.parameter_count + self.input_elements)
                * bits_per_element / 8)

    def as_matrix_shape(self) -> Tuple[int, int]:
        """The GEMV matrix shape this layer lowers to: K x (R*S*C)."""
        return (self.kernels, self.patch_length)

    def describe(self) -> str:
        return (f"In:{self.in_height}x{self.in_width}x{self.in_channels} "
                f"K:{self.kernels}x{self.kernel_h}x{self.kernel_w}"
                f"{'' if self.stride == 1 else f' s{self.stride}'}")


def im2col(activations: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Unfold activations (H, W, C) into patch vectors.

    Returns shape ``(out_h * out_w, R*S*C)``: one GEMV input per output
    pixel, in row-major output order.
    """
    activations = np.asarray(activations, dtype=np.float32)
    if activations.shape != (spec.in_height, spec.in_width,
                             spec.in_channels):
        raise ValueError(
            f"activations shape {activations.shape} != "
            f"({spec.in_height}, {spec.in_width}, {spec.in_channels})")
    pad = spec.pad
    padded = np.pad(activations, ((pad, pad), (pad, pad), (0, 0)))
    patches = np.zeros((spec.output_pixels, spec.patch_length),
                       dtype=np.float32)
    idx = 0
    for oy in range(spec.out_height):
        for ox in range(spec.out_width):
            y0 = oy * spec.stride
            x0 = ox * spec.stride
            patch = padded[y0:y0 + spec.kernel_h, x0:x0 + spec.kernel_w, :]
            patches[idx] = patch.reshape(-1)
            idx += 1
    return patches


def conv2d_reference(activations: np.ndarray, weights: np.ndarray,
                     spec: ConvSpec) -> np.ndarray:
    """Exact convolution via im2col; weights shape (K, R, S, C).

    Returns activations of shape ``(out_h, out_w, K)``.
    """
    weights = np.asarray(weights, dtype=np.float32)
    expected = (spec.kernels, spec.kernel_h, spec.kernel_w,
                spec.in_channels)
    if weights.shape != expected:
        raise ValueError(f"weights shape {weights.shape} != {expected}")
    matrix = weights.reshape(spec.kernels, spec.patch_length)
    patches = im2col(activations, spec)
    out = patches @ matrix.T
    return out.reshape(spec.out_height, spec.out_width, spec.kernels)


def random_conv_weights(spec: ConvSpec, seed: int = 0,
                        scale: float = 0.2) -> np.ndarray:
    """Seeded random weights with shape (K, R, S, C)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-scale, scale,
                       (spec.kernels, spec.kernel_h, spec.kernel_w,
                        spec.in_channels)).astype(np.float32)


#: Table I's two representative ResNet-50 layers.
TABLE1_CNN_3X3 = ConvSpec(in_height=28, in_width=28, in_channels=128,
                          kernels=128, kernel_h=3, kernel_w=3)
TABLE1_CNN_1X1 = ConvSpec(in_height=56, in_width=56, in_channels=64,
                          kernels=256, kernel_h=1, kernel_w=1)
