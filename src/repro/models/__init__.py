"""Reference DNN models: numpy ground truth plus shape/op metadata."""

from .lstm import LstmReference, LstmShape
from .gru import GruReference, GruShape
from .mlp import MlpReference, MlpShape
from .cnn import (
    TABLE1_CNN_1X1,
    TABLE1_CNN_3X3,
    ConvSpec,
    conv2d_reference,
    im2col,
    random_conv_weights,
)
from .resnet import NetworkLayer, resnet50_featurizer, total_ops, total_parameters

__all__ = [
    "LstmReference", "LstmShape", "GruReference", "GruShape",
    "MlpReference", "MlpShape", "ConvSpec", "conv2d_reference", "im2col",
    "random_conv_weights", "TABLE1_CNN_3X3", "TABLE1_CNN_1X1",
    "NetworkLayer", "resnet50_featurizer", "total_ops", "total_parameters",
]
