"""Reference dense multi-layer perceptron in numpy.

MLPs are one of the memory-intensive model classes (with RNNs) that the
BW NPU's L2 matrix-vector focus targets (Section IV-B).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

_ACTIVATIONS = {
    "relu": lambda x: np.maximum(x, 0.0),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x.astype(np.float64))),
    "tanh": lambda x: np.tanh(x.astype(np.float64)),
    "linear": lambda x: x,
}


@dataclasses.dataclass(frozen=True)
class MlpShape:
    """Static shape metadata for an MLP."""

    layer_dims: tuple  # (input, hidden..., output)

    @property
    def matmul_ops(self) -> int:
        return sum(2 * self.layer_dims[i] * self.layer_dims[i + 1]
                   for i in range(len(self.layer_dims) - 1))

    @property
    def pointwise_ops(self) -> int:
        return sum(2 * d for d in self.layer_dims[1:])  # bias + activation

    @property
    def total_ops(self) -> int:
        return self.matmul_ops + self.pointwise_ops

    @property
    def parameter_count(self) -> int:
        return sum(self.layer_dims[i] * self.layer_dims[i + 1]
                   + self.layer_dims[i + 1]
                   for i in range(len(self.layer_dims) - 1))

    def data_bytes(self, bits_per_element: float) -> float:
        return self.parameter_count * bits_per_element / 8


class MlpReference:
    """A concrete MLP with materialized weights."""

    def __init__(self, layer_dims: Sequence[int],
                 activation: str = "relu",
                 output_activation: str = "linear",
                 seed: int = 0, scale: float = 0.2):
        if len(layer_dims) < 2:
            raise ValueError("an MLP needs at least input and output dims")
        if activation not in _ACTIVATIONS or \
                output_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation; choose from "
                             f"{sorted(_ACTIVATIONS)}")
        self.layer_dims = tuple(int(d) for d in layer_dims)
        self.activation = activation
        self.output_activation = output_activation
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for i in range(len(self.layer_dims) - 1):
            self.weights.append(rng.uniform(
                -scale, scale, (self.layer_dims[i + 1], self.layer_dims[i])
            ).astype(np.float32))
            self.biases.append(rng.uniform(
                -scale, scale, self.layer_dims[i + 1]).astype(np.float32))

    def shape(self) -> MlpShape:
        return MlpShape(self.layer_dims)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the MLP on a single input vector."""
        value = np.asarray(x, dtype=np.float32)
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            value = w @ value + b
            name = self.output_activation if i == last else self.activation
            value = _ACTIVATIONS[name](value).astype(np.float32)
        return value
