"""Reference LSTM (Hochreiter & Schmidhuber) in numpy.

Matches the structure of the paper's Section IV-C LSTM listing: per gate
g in {f, i, o, c}, ``pre_g = x W_g + b_g + h U_g``; then

    f, i, o = sigmoid(pre_f), sigmoid(pre_i), sigmoid(pre_o)
    c_t = f * c_{t-1} + i * tanh(pre_c)
    h_t = o * tanh(c_t)

Used as ground truth for the functional simulator and as the op-count /
data-size oracle for the critical-path analysis (Table I).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

GATES = ("f", "i", "o", "c")


@dataclasses.dataclass(frozen=True)
class LstmShape:
    """Static shape metadata for an LSTM layer."""

    hidden_dim: int
    input_dim: int
    time_steps: int = 1

    @property
    def matmul_ops_per_step(self) -> int:
        """Multiply and add ops in the eight GEMVs of one timestep."""
        h, x = self.hidden_dim, self.input_dim
        return 2 * 4 * (h * x + h * h)

    @property
    def pointwise_ops_per_step(self) -> int:
        """Point-wise ops per step: 4 bias adds, 4 recurrent adds,
        3 sigmoids, 2 tanhs, 3 Hadamards, 1 add."""
        return 17 * self.hidden_dim

    @property
    def ops_per_step(self) -> int:
        return self.matmul_ops_per_step + self.pointwise_ops_per_step

    @property
    def total_ops(self) -> int:
        return self.ops_per_step * self.time_steps

    @property
    def parameter_count(self) -> int:
        h, x = self.hidden_dim, self.input_dim
        return 4 * (h * x + h * h + h)

    def data_bytes(self, bits_per_element: float) -> float:
        """Model weight footprint at the given storage precision."""
        return self.parameter_count * bits_per_element / 8


class LstmReference:
    """A concrete LSTM with materialized weights."""

    def __init__(self, hidden_dim: int, input_dim: Optional[int] = None,
                 seed: int = 0, scale: float = 0.2):
        self.hidden_dim = hidden_dim
        self.input_dim = input_dim if input_dim is not None else hidden_dim
        rng = np.random.default_rng(seed)
        self.W: Dict[str, np.ndarray] = {}
        self.U: Dict[str, np.ndarray] = {}
        self.b: Dict[str, np.ndarray] = {}
        for gate in GATES:
            self.W[gate] = rng.uniform(
                -scale, scale, (hidden_dim, self.input_dim)
            ).astype(np.float32)
            self.U[gate] = rng.uniform(
                -scale, scale, (hidden_dim, hidden_dim)).astype(np.float32)
            self.b[gate] = rng.uniform(
                -scale, scale, hidden_dim).astype(np.float32)

    def shape(self, time_steps: int = 1) -> LstmShape:
        return LstmShape(self.hidden_dim, self.input_dim, time_steps)

    def step(self, x: np.ndarray, h: np.ndarray, c: np.ndarray
             ) -> Tuple[np.ndarray, np.ndarray]:
        """One timestep; returns ``(h_t, c_t)``."""

        def pre(gate: str) -> np.ndarray:
            return (self.W[gate] @ x + self.b[gate] + self.U[gate] @ h)

        f = _sigmoid(pre("f"))
        i = _sigmoid(pre("i"))
        o = _sigmoid(pre("o"))
        c_tilde = np.tanh(pre("c"))
        c_t = f * c + i * c_tilde
        h_t = o * np.tanh(c_t)
        return h_t.astype(np.float32), c_t.astype(np.float32)

    def run(self, xs: List[np.ndarray],
            h0: Optional[np.ndarray] = None,
            c0: Optional[np.ndarray] = None) -> List[np.ndarray]:
        """Run a sequence; returns the per-step hidden states."""
        h = (np.zeros(self.hidden_dim, dtype=np.float32)
             if h0 is None else np.asarray(h0, dtype=np.float32))
        c = (np.zeros(self.hidden_dim, dtype=np.float32)
             if c0 is None else np.asarray(c0, dtype=np.float32))
        outputs: List[np.ndarray] = []
        for x in xs:
            h, c = self.step(np.asarray(x, dtype=np.float32), h, c)
            outputs.append(h)
        return outputs


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return (1.0 / (1.0 + np.exp(-x.astype(np.float64)))).astype(np.float32)
