"""Reference GRU in numpy (cuDNN / DeepBench variant).

The DeepBench GRU (the paper's RNN benchmark suite) applies the reset
gate *after* the recurrent matrix product::

    r = sigmoid(W_r x + U_r h + b_r)
    z = sigmoid(W_z x + U_z h + b_z)
    h~ = tanh(W_h x + r * (U_h h) + b_h)
    h' = (1 - z) * h~ + z * h

This ordering matters for the NPU lowering: ``U_h h`` can be computed
by an mv_mul chain whose MFU section applies the Hadamard with ``r``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

GATES = ("r", "z", "h")


@dataclasses.dataclass(frozen=True)
class GruShape:
    """Static shape metadata for a GRU layer."""

    hidden_dim: int
    input_dim: int
    time_steps: int = 1

    @property
    def matmul_ops_per_step(self) -> int:
        h, x = self.hidden_dim, self.input_dim
        return 2 * 3 * (h * x + h * h)

    @property
    def pointwise_ops_per_step(self) -> int:
        """3 bias adds, 3 recurrent adds, 2 sigmoids, 1 tanh,
        3 Hadamards, 1 subtraction, 1 final add."""
        return 14 * self.hidden_dim

    @property
    def ops_per_step(self) -> int:
        return self.matmul_ops_per_step + self.pointwise_ops_per_step

    @property
    def total_ops(self) -> int:
        return self.ops_per_step * self.time_steps

    @property
    def parameter_count(self) -> int:
        h, x = self.hidden_dim, self.input_dim
        return 3 * (h * x + h * h + h)

    def data_bytes(self, bits_per_element: float) -> float:
        return self.parameter_count * bits_per_element / 8


class GruReference:
    """A concrete GRU with materialized weights."""

    def __init__(self, hidden_dim: int, input_dim: Optional[int] = None,
                 seed: int = 0, scale: float = 0.2):
        self.hidden_dim = hidden_dim
        self.input_dim = input_dim if input_dim is not None else hidden_dim
        rng = np.random.default_rng(seed)
        self.W: Dict[str, np.ndarray] = {}
        self.U: Dict[str, np.ndarray] = {}
        self.b: Dict[str, np.ndarray] = {}
        for gate in GATES:
            self.W[gate] = rng.uniform(
                -scale, scale, (hidden_dim, self.input_dim)
            ).astype(np.float32)
            self.U[gate] = rng.uniform(
                -scale, scale, (hidden_dim, hidden_dim)).astype(np.float32)
            self.b[gate] = rng.uniform(
                -scale, scale, hidden_dim).astype(np.float32)

    def shape(self, time_steps: int = 1) -> GruShape:
        return GruShape(self.hidden_dim, self.input_dim, time_steps)

    def step(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        """One timestep; returns ``h_t``."""
        r = _sigmoid(self.W["r"] @ x + self.U["r"] @ h + self.b["r"])
        z = _sigmoid(self.W["z"] @ x + self.U["z"] @ h + self.b["z"])
        h_tilde = np.tanh(self.W["h"] @ x + r * (self.U["h"] @ h)
                          + self.b["h"])
        h_t = (1.0 - z) * h_tilde + z * h
        return h_t.astype(np.float32)

    def run(self, xs: List[np.ndarray],
            h0: Optional[np.ndarray] = None) -> List[np.ndarray]:
        """Run a sequence; returns the per-step hidden states."""
        h = (np.zeros(self.hidden_dim, dtype=np.float32)
             if h0 is None else np.asarray(h0, dtype=np.float32))
        outputs: List[np.ndarray] = []
        for x in xs:
            h = self.step(np.asarray(x, dtype=np.float32), h)
            outputs.append(h)
        return outputs


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return (1.0 / (1.0 + np.exp(-x.astype(np.float64)))).astype(np.float32)
