"""ResNet-50 featurizer layer table (paper Section VII-C, Table VI).

The paper serves a production image featurizer whose topology and
computational requirements are "nearly identical" to ResNet-50 with the
final dense layer removed (scenario-specific classifiers run on CPU).
This module provides the full convolution layer inventory so the CNN
timing path can cost the whole network.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from .cnn import ConvSpec


@dataclasses.dataclass(frozen=True)
class NetworkLayer:
    """A named convolution layer with a static repeat count."""

    name: str
    spec: ConvSpec
    count: int = 1

    @property
    def total_ops(self) -> int:
        return self.spec.matmul_ops * self.count

    @property
    def total_parameters(self) -> int:
        return self.spec.parameter_count * self.count


def _bottleneck(name: str, spatial: int, in_channels: int, width: int,
                stride_first: bool) -> List[NetworkLayer]:
    """One ResNet-50 bottleneck block: 1x1 reduce, 3x3, 1x1 expand."""
    out_spatial = spatial // 2 if stride_first else spatial
    layers = [
        NetworkLayer(f"{name}.conv1", ConvSpec(
            spatial, spatial, in_channels, width, 1, 1, padding=0)),
        NetworkLayer(f"{name}.conv2", ConvSpec(
            spatial, spatial, width, width, 3, 3,
            stride=2 if stride_first else 1, padding=1)),
        NetworkLayer(f"{name}.conv3", ConvSpec(
            out_spatial, out_spatial, width, 4 * width, 1, 1, padding=0)),
    ]
    if in_channels != 4 * width or stride_first:
        layers.append(NetworkLayer(f"{name}.downsample", ConvSpec(
            spatial, spatial, in_channels, 4 * width, 1, 1,
            stride=2 if stride_first else 1, padding=0)))
    return layers


def resnet50_featurizer() -> List[NetworkLayer]:
    """All convolution layers of the ResNet-50-based featurizer.

    The classifier head is omitted (it runs on CPU in the Bing pipeline,
    Section VII-C); pooling and batch-norm are folded/negligible for the
    op-count and timing model.
    """
    layers: List[NetworkLayer] = [
        NetworkLayer("conv1", ConvSpec(224, 224, 3, 64, 7, 7,
                                       stride=2, padding=3)),
    ]
    stages: List[Tuple[str, int, int, int, int]] = [
        # (name, blocks, spatial at block input, in_channels, width)
        ("layer1", 3, 56, 64, 64),
        ("layer2", 4, 56, 256, 128),
        ("layer3", 6, 28, 512, 256),
        ("layer4", 3, 14, 1024, 512),
    ]
    for name, blocks, spatial, in_channels, width in stages:
        stride_first = name != "layer1"
        block_spatial = spatial
        block_in = in_channels
        for b in range(blocks):
            layers.extend(_bottleneck(
                f"{name}.{b}", block_spatial, block_in, width,
                stride_first=stride_first and b == 0))
            if stride_first and b == 0:
                block_spatial //= 2
            block_in = 4 * width
    return layers


def total_ops(layers: List[NetworkLayer]) -> int:
    """Total multiply+add operations across the network."""
    return sum(layer.total_ops for layer in layers)


def total_parameters(layers: List[NetworkLayer]) -> int:
    """Total convolution weights across the network."""
    return sum(layer.total_parameters for layer in layers)
