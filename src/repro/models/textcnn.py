"""A 1-D text CNN: embedding, convolution over time, max-pool, classify.

The paper's ISA "has evolved to accommodate ... 1D (text) CNNs [and]
word/character embeddings" (Section IV-C). This reference model is the
classic text-classification CNN: token embeddings, a bank of width-k
1-D convolution filters over the sequence, ReLU, global max-pooling over
time, and a dense classifier. The embedding lookup runs on the CPU (a
gather is not profitable on the NPU — it lands in the CPU sub-graph of
the federated runtime); everything downstream lowers onto the NPU.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class TextCnnShape:
    """Static shape metadata."""

    vocab_size: int
    embed_dim: int
    filter_width: int
    num_filters: int
    num_classes: int
    sequence_length: int

    @property
    def conv_positions(self) -> int:
        return self.sequence_length - self.filter_width + 1

    @property
    def patch_length(self) -> int:
        return self.filter_width * self.embed_dim

    @property
    def conv_ops(self) -> int:
        return 2 * self.conv_positions * self.num_filters \
            * self.patch_length

    @property
    def classifier_ops(self) -> int:
        return 2 * self.num_classes * self.num_filters

    @property
    def total_ops(self) -> int:
        return self.conv_ops + self.classifier_ops


class TextCnnReference:
    """A concrete text CNN with materialized weights."""

    def __init__(self, vocab_size: int, embed_dim: int,
                 filter_width: int, num_filters: int, num_classes: int,
                 seed: int = 0, scale: float = 0.2):
        if filter_width < 1:
            raise ValueError("filter_width must be >= 1")
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.filter_width = filter_width
        self.num_filters = num_filters
        self.num_classes = num_classes
        rng = np.random.default_rng(seed)
        self.embeddings = rng.uniform(
            -scale, scale, (vocab_size, embed_dim)).astype(np.float32)
        self.conv_weights = rng.uniform(
            -scale, scale,
            (num_filters, filter_width * embed_dim)).astype(np.float32)
        self.conv_bias = rng.uniform(
            -scale, scale, num_filters).astype(np.float32)
        self.classifier_weights = rng.uniform(
            -scale, scale, (num_classes, num_filters)).astype(np.float32)
        self.classifier_bias = rng.uniform(
            -scale, scale, num_classes).astype(np.float32)

    def shape(self, sequence_length: int) -> TextCnnShape:
        return TextCnnShape(self.vocab_size, self.embed_dim,
                            self.filter_width, self.num_filters,
                            self.num_classes, sequence_length)

    def embed(self, tokens: Sequence[int]) -> np.ndarray:
        """Embedding lookup (the CPU sub-graph): (T, embed_dim)."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 1 or len(tokens) < self.filter_width:
            raise ValueError(
                f"need a 1-D token sequence of length >= "
                f"{self.filter_width}")
        if tokens.min() < 0 or tokens.max() >= self.vocab_size:
            raise ValueError("token id out of vocabulary range")
        return self.embeddings[tokens]

    def patches(self, tokens: Sequence[int]) -> np.ndarray:
        """im2col over time: (positions, filter_width * embed_dim)."""
        embedded = self.embed(tokens)
        positions = embedded.shape[0] - self.filter_width + 1
        out = np.zeros((positions, self.filter_width * self.embed_dim),
                       dtype=np.float32)
        for p in range(positions):
            out[p] = embedded[p:p + self.filter_width].reshape(-1)
        return out

    def forward(self, tokens: Sequence[int]) -> np.ndarray:
        """Logits for one token sequence."""
        patches = self.patches(tokens)
        features = np.maximum(
            patches @ self.conv_weights.T + self.conv_bias, 0.0)
        pooled = features.max(axis=0)
        return (self.classifier_weights @ pooled
                + self.classifier_bias).astype(np.float32)

    def predict(self, tokens: Sequence[int]) -> int:
        """Predicted class index."""
        return int(np.argmax(self.forward(tokens)))
