"""Multi-FPGA model partitioning (Sections II-A, II-B).

"In latency-sensitive real-time scenarios, the toolflow can often
partition large graphs that exceed the capacity of a single FPGA into
sub-graphs whose parameters can be pinned individually into accelerators'
on-chip memory."

The partitioner packs a model's weight matrices into per-accelerator
bins under the packed MRF capacity, preserving layer order so that a
pipeline of accelerators evaluates the model with vectors flowing over
the datacenter network between stages. A helper splits bidirectional
RNNs into independent forward/backward halves (the paper's production
example).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from ..config import NpuConfig
from ..errors import PartitionError


@dataclasses.dataclass(frozen=True)
class WeightBlock:
    """One weight matrix to place: a named (rows, cols) block."""

    name: str
    rows: int
    cols: int
    #: Index of the pipeline stage this block belongs to; blocks of the
    #: same stage must land on the same accelerator.
    stage: int = 0

    @property
    def elements(self) -> int:
        return self.rows * self.cols


@dataclasses.dataclass
class Partition:
    """Weight blocks assigned to one accelerator."""

    accelerator: int
    blocks: List[WeightBlock]

    @property
    def elements(self) -> int:
        return sum(b.elements for b in self.blocks)

    @property
    def stages(self) -> Tuple[int, ...]:
        return tuple(sorted({b.stage for b in self.blocks}))


def capacity_elements(config: NpuConfig) -> int:
    """Packed on-chip weight capacity of one accelerator."""
    return config.mrf_capacity_elements


def partition_blocks(blocks: Sequence[WeightBlock], config: NpuConfig,
                     max_accelerators: int = 64) -> List[Partition]:
    """Pack stages onto accelerators in order, opening a new accelerator
    when the next stage no longer fits.

    Raises:
        PartitionError: if a single stage exceeds one accelerator's
            capacity, or more than ``max_accelerators`` are needed.
    """
    capacity = capacity_elements(config)
    stage_ids = sorted({b.stage for b in blocks})
    stage_elements = {
        s: sum(b.elements for b in blocks if b.stage == s)
        for s in stage_ids
    }
    for stage, elements in stage_elements.items():
        if elements > capacity:
            raise PartitionError(
                f"stage {stage} needs {elements} weight elements but one "
                f"{config.name} holds only {capacity}; split the stage "
                "or use a larger device")

    partitions: List[Partition] = []
    current = Partition(accelerator=0, blocks=[])
    used = 0
    for stage in stage_ids:
        elements = stage_elements[stage]
        if used + elements > capacity and current.blocks:
            partitions.append(current)
            current = Partition(accelerator=len(partitions), blocks=[])
            used = 0
        current.blocks.extend(b for b in blocks if b.stage == stage)
        used += elements
    if current.blocks:
        partitions.append(current)
    if len(partitions) > max_accelerators:
        raise PartitionError(
            f"model needs {len(partitions)} accelerators, limit is "
            f"{max_accelerators}")
    return partitions


def accelerators_needed(blocks: Sequence[WeightBlock],
                        config: NpuConfig) -> int:
    """Number of accelerators the partitioner uses for ``blocks``."""
    return len(partition_blocks(blocks, config))


def rnn_weight_blocks(kind: str, hidden_dim: int, input_dim: int = None,
                      layers: int = 1) -> List[WeightBlock]:
    """Weight blocks of a (possibly stacked) LSTM/GRU, one stage per
    layer."""
    gates = {"lstm": ("f", "i", "o", "c"), "gru": ("r", "z", "h")}
    if kind not in gates:
        raise PartitionError("kind must be 'lstm' or 'gru'")
    x = input_dim if input_dim is not None else hidden_dim
    blocks: List[WeightBlock] = []
    for layer in range(layers):
        in_dim = x if layer == 0 else hidden_dim
        for gate in gates[kind]:
            blocks.append(WeightBlock(f"L{layer}.W_{gate}", hidden_dim,
                                      in_dim, stage=layer))
            blocks.append(WeightBlock(f"L{layer}.U_{gate}", hidden_dim,
                                      hidden_dim, stage=layer))
    return blocks


def bidirectional_split(kind: str, hidden_dim: int,
                        input_dim: int = None
                        ) -> Tuple[List[WeightBlock], List[WeightBlock]]:
    """Split a bidirectional RNN into independent forward/backward halves
    for two accelerators invoked separately (Section II-A: "the server
    invoking the forward and backward RNN FPGAs separately and
    concatenating their outputs")."""
    forward = rnn_weight_blocks(kind, hidden_dim, input_dim)
    backward = [dataclasses.replace(b, name="bwd." + b.name)
                for b in rnn_weight_blocks(kind, hidden_dim, input_dim)]
    return forward, backward
