"""Toolflow: lowering DNN models onto the BW NPU."""

from .allocator import RegisterAllocator, Slot
from .lowering import (
    CompiledConv,
    CompiledModel,
    GruShapeOnly,
    LstmShapeOnly,
    compile_conv,
    compile_gru,
    compile_lstm,
    compile_mlp,
    compile_rnn_shape,
)
from .interleave import CompiledInterleaved, compile_lstm_interleaved
from .stacked import compile_stacked_lstm, reference_stacked_run
from .streaming import compile_lstm_streamed, compile_lstm_streamed_shape
from .textcnn import CompiledTextCnn, compile_text_cnn
from .girlower import CompiledGir, lower_gir

__all__ = [
    "RegisterAllocator", "Slot", "CompiledModel", "CompiledConv",
    "compile_conv", "compile_gru", "compile_lstm", "compile_mlp",
    "compile_rnn_shape", "LstmShapeOnly", "GruShapeOnly",
    "CompiledInterleaved", "compile_lstm_interleaved",
    "compile_stacked_lstm", "reference_stacked_run",
    "compile_lstm_streamed", "compile_lstm_streamed_shape",
    "CompiledTextCnn", "compile_text_cnn", "CompiledGir", "lower_gir",
]
