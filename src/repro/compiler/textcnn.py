"""Lowering the 1-D text CNN onto the NPU.

Per convolution position, one chain computes the filter bank response
and folds the global max-pool into the same pass using ``vv_max``
against a running-maximum register: ``relu`` guarantees non-negative
features, so a zero-initialized accumulator is the identity. After the
position loop, a single dense chain classifies the pooled feature
vector. The embedding lookup and time-unfolding run on the host (the
CPU sub-graph), streaming patch vectors over the network queue.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..config import NpuConfig
from ..errors import CompileError
from ..functional.executor import FunctionalSimulator
from ..isa.memspace import MemId
from ..isa.program import ProgramBuilder
from ..models.textcnn import TextCnnReference
from .allocator import RegisterAllocator
from .lowering import CompiledModel, _DimTracker, _padded, _vector_count


@dataclasses.dataclass
class CompiledTextCnn(CompiledModel):
    """A compiled text CNN with a token-level convenience API."""

    model: TextCnnReference = None  # set by compile_text_cnn

    def classify(self, tokens: Sequence[int],
                 exact: bool = False) -> np.ndarray:
        """Return class logits for one token sequence.

        A fresh simulator per call keeps the max-pool accumulator (and
        RNN-free state) clean between requests.
        """
        patches = self.model.patches(tokens)
        sim = self.new_simulator(exact=exact)
        for patch in patches:
            self._push_padded(sim, patch)
        sim.run(self.program, bindings={"positions": len(patches),
                                        "steps": len(patches)})
        vectors = sim.netq.pop_outputs()
        flat = np.concatenate(vectors)
        return flat[:self.model.num_classes]

    def predict(self, tokens: Sequence[int], exact: bool = False) -> int:
        return int(np.argmax(self.classify(tokens, exact=exact)))


def compile_text_cnn(model: TextCnnReference, config: NpuConfig,
                     name: str = "text_cnn") -> CompiledTextCnn:
    """Lower the convolution + pool + classifier onto the NPU."""
    n = config.native_dim
    k, patch = model.num_filters, model.filter_width * model.embed_dim
    rows_f = _vector_count(k, n)
    cols_p = _vector_count(patch, n)
    rows_o = _vector_count(model.num_classes, n)
    cols_f = _vector_count(k, n)
    if rows_f != cols_f:
        # The pooled feature vector is both the conv output (rows_f
        # entries) and the classifier input (cols_f entries); they tile
        # identically by construction.
        raise CompileError("internal: feature tiling mismatch")

    alloc = RegisterAllocator(config)
    conv_w = alloc.alloc_matrix(k, patch, "conv_w")
    cls_w = alloc.alloc_matrix(model.num_classes, k, "cls_w")
    conv_b = alloc.alloc(MemId.AddSubVrf, rows_f, "conv_b")
    pooled = alloc.alloc(MemId.AddSubVrf, rows_f, "pooled")
    pooled_in = alloc.alloc(MemId.InitialVrf, cols_f, "pooled_in")
    cls_b = alloc.alloc(MemId.AddSubVrf, rows_o, "cls_b")

    b = ProgramBuilder(name)
    dims = _DimTracker(b)
    dims.set(rows=rows_f, cols=cols_p)
    with b.loop("positions"):
        b.v_rd(MemId.NetQ)
        b.mv_mul(conv_w.base)
        b.vv_add(conv_b.base)
        b.v_relu()
        b.vv_max(pooled.base)
        b.v_wr(MemId.AddSubVrf, pooled.base)
    # Move the pooled features to the MVM input register file, then
    # classify.
    dims.set(rows=cols_f)
    b.v_rd(MemId.AddSubVrf, pooled.base)
    b.v_wr(MemId.InitialVrf, pooled_in.base)
    dims.set(rows=rows_o, cols=cols_f)
    b.v_rd(MemId.InitialVrf, pooled_in.base)
    b.mv_mul(cls_w.base)
    b.vv_add(cls_b.base)
    b.v_wr(MemId.NetQ)
    program = b.build()

    def loader(sim: FunctionalSimulator) -> None:
        sim.load_matrix(conv_w.base, model.conv_weights)
        sim.load_matrix(cls_w.base, model.classifier_weights)
        sim.vrfs[MemId.AddSubVrf].write(
            conv_b.base, _padded(model.conv_bias, rows_f, n))
        sim.vrfs[MemId.AddSubVrf].write(
            cls_b.base, _padded(model.classifier_bias, rows_o, n))

    compiled = CompiledTextCnn(
        name=name, kind="conv", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=patch, output_length=model.num_classes,
        input_vectors_per_step=cols_p, output_vectors_per_step=rows_o,
        steps_binding="positions",
        ops_per_step=2 * k * patch,
    )
    compiled.model = model
    return compiled
