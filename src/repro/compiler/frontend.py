"""GIR frontends: export reference models into the graph IR.

Stands in for the paper's framework exporters (TensorFlow checkpoints
into GIR, Section II-B).
"""

from __future__ import annotations


import numpy as np

from ..models.gru import GruReference
from ..models.lstm import LstmReference
from ..models.mlp import MlpReference
from .gir import GirGraph


def lstm_to_gir(model: LstmReference, steps: int = 1,
                name: str = "lstm") -> GirGraph:
    """Export an LSTM to GIR, unrolled over ``steps`` timesteps."""
    h, x_dim = model.hidden_dim, model.input_dim
    g = GirGraph(name)
    for gate in ("f", "i", "o", "c"):
        g.add(f"W_{gate}", "constant", shape=(h, x_dim),
              value=model.W[gate])
        g.add(f"U_{gate}", "constant", shape=(h, h),
              value=model.U[gate])
        g.add(f"b_{gate}", "constant", shape=(h,), value=model.b[gate])
    g.add("h_0", "constant", shape=(h,), value=np.zeros(h))
    g.add("c_0", "constant", shape=(h,), value=np.zeros(h))
    h_prev, c_prev = "h_0", "c_0"
    for t in range(steps):
        g.add(f"x_{t}", "input", shape=(x_dim,))
        acts = {}
        for gate in ("f", "i", "o", "c"):
            g.add(f"xW_{gate}_{t}", "matmul",
                  [f"W_{gate}", f"x_{t}"], shape=(h,))
            g.add(f"xWb_{gate}_{t}", "add",
                  [f"xW_{gate}_{t}", f"b_{gate}"], shape=(h,))
            g.add(f"hU_{gate}_{t}", "matmul",
                  [f"U_{gate}", h_prev], shape=(h,))
            g.add(f"pre_{gate}_{t}", "add",
                  [f"xWb_{gate}_{t}", f"hU_{gate}_{t}"], shape=(h,))
            act_op = "tanh" if gate == "c" else "sigmoid"
            acts[gate] = f"act_{gate}_{t}"
            g.add(acts[gate], act_op, [f"pre_{gate}_{t}"], shape=(h,))
        g.add(f"fc_{t}", "mul", [acts["f"], c_prev], shape=(h,))
        g.add(f"ic_{t}", "mul", [acts["i"], acts["c"]], shape=(h,))
        g.add(f"c_{t + 1}", "add", [f"fc_{t}", f"ic_{t}"], shape=(h,))
        g.add(f"tanh_c_{t}", "tanh", [f"c_{t + 1}"], shape=(h,))
        g.add(f"h_{t + 1}", "mul", [acts["o"], f"tanh_c_{t}"], shape=(h,))
        g.add(f"out_{t}", "output", [f"h_{t + 1}"], shape=(h,))
        h_prev, c_prev = f"h_{t + 1}", f"c_{t + 1}"
    g.validate()
    return g


def gru_to_gir(model: GruReference, steps: int = 1,
               name: str = "gru") -> GirGraph:
    """Export a GRU (cuDNN dataflow) to GIR, unrolled over ``steps``."""
    h, x_dim = model.hidden_dim, model.input_dim
    g = GirGraph(name)
    for gate in ("r", "z", "h"):
        g.add(f"W_{gate}", "constant", shape=(h, x_dim),
              value=model.W[gate])
        g.add(f"U_{gate}", "constant", shape=(h, h),
              value=model.U[gate])
        g.add(f"b_{gate}", "constant", shape=(h,), value=model.b[gate])
    g.add("one", "constant", shape=(h,), value=np.ones(h))
    g.add("h_0", "constant", shape=(h,), value=np.zeros(h))
    h_prev = "h_0"
    for t in range(steps):
        g.add(f"x_{t}", "input", shape=(x_dim,))
        for gate in ("r", "z", "h"):
            g.add(f"xW_{gate}_{t}", "matmul",
                  [f"W_{gate}", f"x_{t}"], shape=(h,))
            g.add(f"xWb_{gate}_{t}", "add",
                  [f"xW_{gate}_{t}", f"b_{gate}"], shape=(h,))
        for gate in ("r", "z"):
            g.add(f"hU_{gate}_{t}", "matmul",
                  [f"U_{gate}", h_prev], shape=(h,))
            g.add(f"pre_{gate}_{t}", "add",
                  [f"xWb_{gate}_{t}", f"hU_{gate}_{t}"], shape=(h,))
            g.add(f"act_{gate}_{t}", "sigmoid", [f"pre_{gate}_{t}"],
                  shape=(h,))
        g.add(f"hU_h_{t}", "matmul", ["U_h", h_prev], shape=(h,))
        g.add(f"rUh_{t}", "mul", [f"act_r_{t}", f"hU_h_{t}"], shape=(h,))
        g.add(f"pre_h_{t}", "add", [f"xWb_h_{t}", f"rUh_{t}"], shape=(h,))
        g.add(f"htilde_{t}", "tanh", [f"pre_h_{t}"], shape=(h,))
        g.add(f"zbar_{t}", "sub", ["one", f"act_z_{t}"], shape=(h,))
        g.add(f"zbh_{t}", "mul", [f"zbar_{t}", f"htilde_{t}"], shape=(h,))
        g.add(f"zh_{t}", "mul", [f"act_z_{t}", h_prev], shape=(h,))
        g.add(f"h_{t + 1}", "add", [f"zbh_{t}", f"zh_{t}"], shape=(h,))
        g.add(f"out_{t}", "output", [f"h_{t + 1}"], shape=(h,))
        h_prev = f"h_{t + 1}"
    g.validate()
    return g


def mlp_to_gir(model: MlpReference, name: str = "mlp") -> GirGraph:
    """Export an MLP to GIR."""
    dims = model.layer_dims
    g = GirGraph(name)
    g.add("x", "input", shape=(dims[0],))
    prev = "x"
    last = len(model.weights) - 1
    for i in range(len(model.weights)):
        g.add(f"W{i}", "constant", shape=(dims[i + 1], dims[i]),
              value=model.weights[i])
        g.add(f"b{i}", "constant", shape=(dims[i + 1],),
              value=model.biases[i])
        g.add(f"mm{i}", "matmul", [f"W{i}", prev], shape=(dims[i + 1],))
        g.add(f"pre{i}", "add", [f"mm{i}", f"b{i}"], shape=(dims[i + 1],))
        act = model.output_activation if i == last else model.activation
        op = {"relu": "relu", "sigmoid": "sigmoid", "tanh": "tanh",
              "linear": "identity"}[act]
        g.add(f"act{i}", op, [f"pre{i}"], shape=(dims[i + 1],))
        prev = f"act{i}"
    g.add("y", "output", [prev], shape=(dims[-1],))
    g.validate()
    return g
